//! Criterion bench regenerating Figure 14 at reduced scale.
use criterion::{criterion_group, criterion_main, Criterion};
use laser_bench::performance::fig14_sheriff;
use laser_bench::ExperimentScale;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig14_sheriff");
    group.sample_size(10);
    group.bench_function("fig14_sheriff", |b| {
        b.iter(|| fig14_sheriff(&ExperimentScale::bench()).unwrap())
    });
    group.finish();
}
criterion_group!(benches, bench);
criterion_main!(benches);
