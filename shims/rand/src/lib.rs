//! Offline stand-in for the subset of the `rand` crate this workspace uses.
//!
//! Provides [`rngs::StdRng`], [`SeedableRng::seed_from_u64`] and the [`Rng`]
//! methods `gen`, `gen_bool` and `gen_range` over integer ranges, backed by a
//! xoshiro256++ generator seeded through splitmix64. The statistical quality
//! is more than sufficient for the imprecision model's Bernoulli draws, and
//! determinism-per-seed — the property the reproduction actually relies on —
//! is guaranteed by construction.

use std::ops::Range;

/// Types that can be drawn uniformly from the generator's raw 64-bit output.
pub trait Standard: Sized {
    /// Draw one value.
    fn from_raw(raw: u64) -> Self;
}

impl Standard for f64 {
    fn from_raw(raw: u64) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (raw >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    fn from_raw(raw: u64) -> Self {
        raw
    }
}

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draw one value from the range.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                // Modulo draw; the spans used here are tiny relative to 2^64,
                // so the bias is far below the tolerances of any consumer.
                self.start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

impl_int_range!(u64, u32, usize);

/// Raw 64-bit generator interface.
pub trait RngCore {
    /// Next raw 64-bit value.
    fn next_u64(&mut self) -> u64;
}

/// The user-facing sampling interface, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draw a value of type `T` (e.g. an f64 in [0, 1)).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::from_raw(self.next_u64())
    }

    /// Bernoulli draw with probability `p` (clamped to [0, 1]).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }

    /// Uniform draw from a range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<R: RngCore> Rng for R {}

/// Seedable constructor interface, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// A xoshiro256++ generator — the stand-in for `rand::rngs::StdRng`.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_and_floats_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let v = r.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let u = r.gen_range(0usize..3);
            assert!(u < 3);
            let f: f64 = r.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = StdRng::seed_from_u64(1);
        let hits = (0..100_000).filter(|_| r.gen_bool(0.25)).count();
        let frac = hits as f64 / 100_000.0;
        assert!((frac - 0.25).abs() < 0.01, "observed {frac}");
    }
}
