//! The kernel-driver model.
//!
//! The paper's driver is "a standard Linux kernel module … \[it\] configures the
//! chip's performance monitoring unit to record HITM events into per-core
//! memory buffers. The driver receives an interrupt whenever a per-core buffer
//! is full, and empties the buffer by moving the records to an internal buffer
//! that feeds into a kernel file-like device. The driver removes irrelevant
//! information from the HITM records … and sends only the PC, data address,
//! and originating core to the detector." (Section 6)
//!
//! This module reproduces that flow: [`Driver::poll`] pulls ground-truth HITM
//! events out of the machine, feeds them to the [`Pmu`], charges the
//! interrupted cores for interrupt handling and record copying, and stages the
//! resulting records in an internal buffer the detector reads with
//! [`Driver::read_records`].

use serde::{Deserialize, Serialize};

use laser_machine::{CoreId, HitmEvent, Machine};

use crate::pmu::Pmu;
use crate::record::HitmRecord;

/// Overhead parameters of the driver.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DriverConfig {
    /// Cycles charged to a core for handling one performance-monitoring
    /// interrupt (register save/restore, handler body, buffer swap).
    pub interrupt_cycles: u64,
    /// Cycles charged per record for stripping and copying it to the internal
    /// buffer.
    pub per_record_cycles: u64,
}

impl Default for DriverConfig {
    fn default() -> Self {
        DriverConfig {
            interrupt_cycles: 3000,
            per_record_cycles: 60,
        }
    }
}

/// Aggregate statistics of the driver's activity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DriverStats {
    /// Ground-truth HITM events observed by the PMU.
    pub events_observed: u64,
    /// Records sampled.
    pub records_sampled: u64,
    /// Ground-truth events the PMU dropped outright (e.g. events from cores
    /// outside its configured range) — never sampled, never counted against a
    /// SAV countdown.
    pub events_dropped: u64,
    /// Sampled records discarded *after* the PMU because the downstream
    /// consumer lagged — a full record channel overflowing the way a real
    /// PEBS buffer does (see [`Driver::note_lagging_drops`]). Zero under
    /// lossless (backpressure) delivery.
    pub records_dropped: u64,
    /// Interrupts taken.
    pub interrupts: u64,
    /// Cycles of overhead charged to the application's cores.
    pub overhead_cycles: u64,
}

/// A quantum's driver overhead as a deferred value: every cycle
/// [`Driver::ingest`] would have charged into the machine synchronously,
/// recorded instead as a pure function of the ingested batch.
///
/// This is the charge-back half of the three-stage pipeline. A driver stage
/// running off the machine thread cannot touch the [`Machine`]; it computes
/// the ledger with [`Driver::ingest_deferred`] and ships it back on a second
/// channel, and the machine applies it at a fixed quantum boundary with
/// [`ChargeLedger::apply`]. Charges are additive (they only advance core
/// clocks and the injected-overhead counter), so applying a ledger — or a
/// [`ChargeLedger::merge`] of several — reproduces the machine state of the
/// equivalent synchronous `ingest` calls exactly, regardless of order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ChargeLedger {
    /// Cycles charged uniformly to every core.
    all_cores: u64,
    /// Targeted charges, indexed by core id.
    per_core: Vec<u64>,
}

impl ChargeLedger {
    /// An empty ledger for a machine with `num_cores` cores.
    pub fn for_cores(num_cores: usize) -> Self {
        ChargeLedger {
            all_cores: 0,
            per_core: vec![0; num_cores],
        }
    }

    /// Record `cycles` against one core.
    pub fn charge(&mut self, core: CoreId, cycles: u64) {
        if core.0 >= self.per_core.len() {
            self.per_core.resize(core.0 + 1, 0);
        }
        self.per_core[core.0] += cycles;
    }

    /// Record `cycles` against every core.
    pub fn charge_all(&mut self, cycles: u64) {
        self.all_cores += cycles;
    }

    /// Whether the ledger carries no charges at all.
    pub fn is_empty(&self) -> bool {
        self.all_cores == 0 && self.per_core.iter().all(|&c| c == 0)
    }

    /// Fold another ledger into this one. Applying the merged ledger is
    /// identical to applying both in sequence.
    pub fn merge(&mut self, other: &ChargeLedger) {
        self.all_cores += other.all_cores;
        if self.per_core.len() < other.per_core.len() {
            self.per_core.resize(other.per_core.len(), 0);
        }
        for (mine, theirs) in self.per_core.iter_mut().zip(&other.per_core) {
            *mine += theirs;
        }
    }

    /// Apply the recorded charges to the machine (the quantum-boundary
    /// settlement of the credit scheme).
    pub fn apply(&self, machine: &mut Machine) {
        if self.all_cores > 0 {
            machine.charge_all_cores(self.all_cores);
        }
        machine.charge_per_core(&self.per_core);
    }
}

/// The kernel driver standing between the PMU and the user-space detector.
#[derive(Debug)]
pub struct Driver {
    pmu: Pmu,
    config: DriverConfig,
    staged: Vec<HitmRecord>,
    stats: DriverStats,
}

impl Driver {
    /// Create a driver around a configured PMU.
    pub fn new(pmu: Pmu, config: DriverConfig) -> Self {
        Driver {
            pmu,
            config,
            staged: Vec::new(),
            stats: DriverStats::default(),
        }
    }

    /// Driver statistics so far.
    pub fn stats(&self) -> DriverStats {
        self.stats
    }

    /// Access the underlying PMU (e.g. to read the raw event counter).
    pub fn pmu(&self) -> &Pmu {
        &self.pmu
    }

    /// Service the PMU: drain the machine's pending HITM events, sample them,
    /// take any buffer-full interrupts (charging their cost to the cores), and
    /// stage completed records for the detector.
    pub fn poll(&mut self, machine: &mut Machine) {
        let events = machine.take_hitm_events();
        self.ingest(events, machine);
    }

    /// Consume one *yielded* batch of HITM events (see
    /// [`laser_machine::Machine::run_quantum`]): sample the batch, take any
    /// buffer-full interrupts (charging their cost to the cores), and stage
    /// completed records for the detector. [`Driver::poll`] is this operation
    /// applied to the machine's own pending events; pipelined callers pass
    /// the batch the quantum yielded instead.
    pub fn ingest(&mut self, events: Vec<HitmEvent>, machine: &mut Machine) {
        let ledger = self.ingest_deferred(events, machine.num_cores());
        ledger.apply(machine);
    }

    /// [`Driver::ingest`] with the charge-back deferred: sample the batch and
    /// stage the records exactly as `ingest` does, but *return* the overhead
    /// charges as a [`ChargeLedger`] instead of applying them to a machine.
    ///
    /// This is the pure function at the heart of the three-stage pipeline's
    /// latency-tolerant charge-back: the ledger depends only on the batch and
    /// the driver's sampling state, never on machine timing, so a driver
    /// stage can compute it on its own thread and the machine can settle it
    /// any bounded number of quanta later. `ingest` itself is this operation
    /// followed by an immediate [`ChargeLedger::apply`], so the inline and
    /// pipelined paths share one charge policy.
    pub fn ingest_deferred(&mut self, events: Vec<HitmEvent>, num_cores: usize) -> ChargeLedger {
        let mut ledger = ChargeLedger::for_cores(num_cores);
        if events.is_empty() {
            return ledger;
        }
        self.stats.events_observed += events.len() as u64;
        let activity = self.pmu.observe(&events);
        self.stats.records_sampled += activity.records_sampled as u64;
        self.stats.events_dropped += activity.events_dropped as u64;
        self.stats.interrupts += activity.interrupts as u64;
        if activity.interrupts > 0 || activity.records_sampled > 0 {
            // Interrupt handling lands on the core whose buffer filled; we
            // charge it round-robin over the cores that produced events, which
            // is equivalent in aggregate.
            let per_interrupt = self.config.interrupt_cycles;
            for i in 0..activity.interrupts {
                let core = CoreId(events[i % events.len()].core.0 % num_cores);
                ledger.charge(core, per_interrupt);
                self.stats.overhead_cycles += per_interrupt;
            }
            let copy_cycles = self.config.per_record_cycles * activity.records_sampled as u64;
            if copy_cycles > 0 {
                // Record copying is spread over the cores. Integer division
                // would silently drop `copy_cycles % n_cores` — on small
                // batches that rounds the whole charge down to zero — so the
                // remainder is distributed one cycle each to the first cores,
                // keeping the total charged exactly `copy_cycles`.
                let per_core = copy_cycles / num_cores as u64;
                if per_core > 0 {
                    ledger.charge_all(per_core);
                }
                let remainder = (copy_cycles % num_cores as u64) as usize;
                for core in 0..remainder {
                    ledger.charge(CoreId(core), 1);
                }
                self.stats.overhead_cycles += copy_cycles;
            }
        }
        self.staged.append(&mut self.pmu.drain_ready());
        ledger
    }

    /// Flush everything still sitting in PEBS buffers (used at the end of a
    /// run so no sampled record is lost).
    pub fn flush(&mut self) {
        self.staged.append(&mut self.pmu.drain_all_buffers());
    }

    /// Account `records` sampled records that were discarded because the
    /// record channel to the detector was full — the consumer lagged and the
    /// buffer overflowed, as real PEBS hardware does. Pipelined sessions
    /// running with a lossy channel report their channel drops here so the
    /// loss is visible in [`DriverStats::records_dropped`].
    pub fn note_lagging_drops(&mut self, records: u64) {
        self.stats.records_dropped += records;
    }

    /// Read the records staged for the detector (the file-like device read).
    pub fn read_records(&mut self) -> Vec<HitmRecord> {
        std::mem::take(&mut self.staged)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::imprecision::{ImprecisionModel, ImprecisionParams};
    use crate::pmu::PmuConfig;
    use laser_isa::inst::{Operand, Reg};
    use laser_isa::ProgramBuilder;
    use laser_machine::{Machine, MachineConfig, ThreadSpec, WorkloadImage};

    /// Two threads pounding the same cache line.
    fn contended_image(iters: u64) -> WorkloadImage {
        let mut b = ProgramBuilder::new("contended");
        b.source("contended.c", 5);
        let body = b.block("body");
        let done = b.block("done");
        b.switch_to(body);
        b.load(Reg(1), Reg(0), 0, 8);
        b.addi(Reg(1), Reg(1), 1);
        b.store(Operand::Reg(Reg(1)), Reg(0), 0, 8);
        b.addi(Reg(2), Reg(2), 1);
        b.cmp_lt(Reg(3), Reg(2), Operand::Imm(iters));
        b.branch(Reg(3), body, done);
        b.switch_to(done);
        b.halt();
        let program = b.finish();
        let mut image = WorkloadImage::new("contended", program);
        let base = image.layout_mut().heap_alloc(64, 64).unwrap();
        image.push_thread(ThreadSpec::new("t0", "body").with_reg(Reg(0), base));
        image.push_thread(ThreadSpec::new("t1", "body").with_reg(Reg(0), base + 8));
        image
    }

    fn driver_for(machine: &Machine, sav: u32) -> Driver {
        let code = (machine.program().base_pc(), machine.program().end_pc());
        let model =
            ImprecisionModel::new(ImprecisionParams::perfect(), machine.memory_map(), code, 11);
        let pmu = Pmu::new(
            PmuConfig {
                sav,
                num_cores: machine.num_cores(),
                ..Default::default()
            },
            model,
        );
        Driver::new(pmu, DriverConfig::default())
    }

    #[test]
    fn driver_collects_records_online() {
        let image = contended_image(3000);
        let mut machine = Machine::new(MachineConfig::default(), &image);
        let mut driver = driver_for(&machine, 19);
        let mut collected = Vec::new();
        loop {
            let status = machine.run_steps(5_000);
            driver.poll(&mut machine);
            collected.extend(driver.read_records());
            if status == laser_machine::RunStatus::Done {
                break;
            }
        }
        driver.flush();
        collected.extend(driver.read_records());
        let stats = driver.stats();
        assert!(stats.events_observed > 1000);
        assert_eq!(stats.records_sampled as usize, collected.len());
        // Sampling at 19 keeps roughly 1/19 of the events.
        let ratio = stats.records_sampled as f64 / stats.events_observed as f64;
        assert!((ratio - 1.0 / 19.0).abs() < 0.02, "sampling ratio {ratio}");
        // Overhead was charged to the machine.
        assert!(machine.stats().injected_overhead_cycles > 0);
    }

    #[test]
    fn lower_sav_costs_more_overhead() {
        let image = contended_image(3000);
        let mut m1 = Machine::new(MachineConfig::default(), &image);
        let mut d1 = driver_for(&m1, 1);
        while m1.run_steps(5_000) == laser_machine::RunStatus::Running {
            d1.poll(&mut m1);
        }
        d1.poll(&mut m1);

        let mut m19 = Machine::new(MachineConfig::default(), &image);
        let mut d19 = driver_for(&m19, 19);
        while m19.run_steps(5_000) == laser_machine::RunStatus::Running {
            d19.poll(&mut m19);
        }
        d19.poll(&mut m19);

        assert!(d1.stats().overhead_cycles > d19.stats().overhead_cycles * 5);
    }

    #[test]
    fn copy_overhead_totals_are_exact() {
        // A per-record cost that is not divisible by the core count: the old
        // `copy_cycles / n_cores` spreading dropped the remainder, silently
        // charging small batches nothing. The total charged must now equal
        // interrupt cost plus exactly `per_record_cycles` per sampled record.
        let image = contended_image(3000);
        let mut machine = Machine::new(MachineConfig::default(), &image);
        let code = (machine.program().base_pc(), machine.program().end_pc());
        let model =
            ImprecisionModel::new(ImprecisionParams::perfect(), machine.memory_map(), code, 11);
        let pmu = Pmu::new(
            PmuConfig {
                sav: 19,
                num_cores: machine.num_cores(),
                ..Default::default()
            },
            model,
        );
        let config = DriverConfig {
            interrupt_cycles: 101,
            per_record_cycles: 7,
        };
        let mut driver = Driver::new(pmu, config);
        loop {
            let status = machine.run_steps(5_000);
            driver.poll(&mut machine);
            if status == laser_machine::RunStatus::Done {
                break;
            }
        }
        let stats = driver.stats();
        assert!(stats.records_sampled > 0);
        assert_eq!(
            stats.overhead_cycles,
            stats.interrupts * config.interrupt_cycles
                + stats.records_sampled * config.per_record_cycles
        );
        // Every charged cycle landed on the machine — nothing double-counted,
        // nothing dropped.
        assert_eq!(
            machine.stats().injected_overhead_cycles,
            stats.overhead_cycles
        );
    }

    #[test]
    fn ingesting_yielded_quanta_matches_polling_in_place() {
        // `run_quantum` + `ingest` is the pipelined decomposition of
        // `run_steps` + `poll`; the two must produce identical records,
        // statistics and machine charges.
        let image = contended_image(3000);

        let mut polled_machine = Machine::new(MachineConfig::default(), &image);
        let mut polled_driver = driver_for(&polled_machine, 19);
        let mut polled = Vec::new();
        loop {
            let status = polled_machine.run_steps(5_000);
            polled_driver.poll(&mut polled_machine);
            polled.extend(polled_driver.read_records());
            if status == laser_machine::RunStatus::Done {
                break;
            }
        }

        let mut yielded_machine = Machine::new(MachineConfig::default(), &image);
        let mut yielded_driver = driver_for(&yielded_machine, 19);
        let mut ingested = Vec::new();
        loop {
            let quantum = yielded_machine.run_quantum(5_000);
            yielded_driver.ingest(quantum.events, &mut yielded_machine);
            ingested.extend(yielded_driver.read_records());
            if quantum.status == laser_machine::RunStatus::Done {
                break;
            }
        }

        assert_eq!(polled, ingested);
        assert_eq!(polled_driver.stats(), yielded_driver.stats());
        assert_eq!(polled_machine.cycles(), yielded_machine.cycles());
        assert_eq!(
            polled_machine.stats().injected_overhead_cycles,
            yielded_machine.stats().injected_overhead_cycles
        );
    }

    #[test]
    fn deferred_ingest_settled_immediately_matches_synchronous_ingest() {
        // `ingest_deferred` + an immediate `apply` is the lag = 0 credit
        // scheme; it must be byte-identical to the synchronous `ingest` —
        // same records, same statistics, same machine charges.
        let image = contended_image(3000);

        let mut sync_machine = Machine::new(MachineConfig::default(), &image);
        let mut sync_driver = driver_for(&sync_machine, 19);
        let mut synced = Vec::new();
        loop {
            let quantum = sync_machine.run_quantum(5_000);
            sync_driver.ingest(quantum.events, &mut sync_machine);
            synced.extend(sync_driver.read_records());
            if quantum.status == laser_machine::RunStatus::Done {
                break;
            }
        }

        let mut def_machine = Machine::new(MachineConfig::default(), &image);
        let mut def_driver = driver_for(&def_machine, 19);
        let mut deferred = Vec::new();
        loop {
            let quantum = def_machine.run_quantum(5_000);
            let ledger = def_driver.ingest_deferred(quantum.events, def_machine.num_cores());
            ledger.apply(&mut def_machine);
            deferred.extend(def_driver.read_records());
            if quantum.status == laser_machine::RunStatus::Done {
                break;
            }
        }

        assert_eq!(synced, deferred);
        assert_eq!(sync_driver.stats(), def_driver.stats());
        assert_eq!(sync_machine.cycles(), def_machine.cycles());
        assert_eq!(
            sync_machine.stats().injected_overhead_cycles,
            def_machine.stats().injected_overhead_cycles
        );
    }

    #[test]
    fn deferred_ingest_settled_late_is_deterministic() {
        // Settling each quantum's ledger one boundary late (lag = 1) changes
        // the interleaving — the next quantum runs before the overhead lands,
        // so the run is *not* inline-identical. What the credit scheme does
        // guarantee is determinism: two identical lagged runs produce the
        // same records, statistics and machine state, and every charged cycle
        // still lands (the machine absorbs exactly the overhead the driver
        // accounted).
        let run = || {
            let image = contended_image(3000);
            let mut machine = Machine::new(MachineConfig::default(), &image);
            let mut driver = driver_for(&machine, 19);
            let mut records = Vec::new();
            let mut pending: Vec<ChargeLedger> = Vec::new();
            loop {
                let quantum = machine.run_quantum(5_000);
                pending.push(driver.ingest_deferred(quantum.events, machine.num_cores()));
                records.extend(driver.read_records());
                if pending.len() > 1 {
                    pending.remove(0).apply(&mut machine);
                }
                if quantum.status == laser_machine::RunStatus::Done {
                    break;
                }
            }
            for ledger in pending {
                ledger.apply(&mut machine);
            }
            (records, driver.stats(), machine.result())
        };
        let (rec_a, stats_a, result_a) = run();
        let (rec_b, stats_b, result_b) = run();
        assert_eq!(rec_a, rec_b);
        assert_eq!(stats_a, stats_b);
        assert_eq!(result_a.cycles, result_b.cycles);
        assert_eq!(result_a.per_core_cycles, result_b.per_core_cycles);
        assert_eq!(
            result_a.stats.injected_overhead_cycles,
            stats_a.overhead_cycles
        );
    }

    #[test]
    fn merged_ledgers_apply_like_their_parts() {
        let image = contended_image(10);
        let mut a = Machine::new(MachineConfig::default(), &image);
        let mut b = Machine::new(MachineConfig::default(), &image);

        let mut first = ChargeLedger::for_cores(a.num_cores());
        first.charge(CoreId(0), 100);
        first.charge_all(7);
        let mut second = ChargeLedger::for_cores(a.num_cores());
        second.charge(CoreId(1), 41);
        second.charge(CoreId(0), 2);

        first.apply(&mut a);
        second.apply(&mut a);

        let mut merged = ChargeLedger::for_cores(b.num_cores());
        merged.merge(&first);
        merged.merge(&second);
        merged.apply(&mut b);

        assert_eq!(a.cycles(), b.cycles());
        assert_eq!(
            a.stats().injected_overhead_cycles,
            b.stats().injected_overhead_cycles
        );
        assert_eq!(a.result().per_core_cycles, b.result().per_core_cycles);
    }

    #[test]
    fn empty_ledger_is_empty_and_free() {
        let image = contended_image(10);
        let mut machine = Machine::new(MachineConfig::default(), &image);
        let mut driver = driver_for(&machine, 19);
        let ledger = driver.ingest_deferred(Vec::new(), machine.num_cores());
        assert!(ledger.is_empty());
        ledger.apply(&mut machine);
        assert_eq!(machine.stats().injected_overhead_cycles, 0);
        let mut charged = ChargeLedger::for_cores(machine.num_cores());
        charged.charge(CoreId(0), 1);
        assert!(!charged.is_empty());
        let mut uniform = ChargeLedger::default();
        uniform.charge_all(1);
        assert!(!uniform.is_empty());
    }

    #[test]
    fn lagging_consumer_drops_are_recorded() {
        let image = contended_image(10);
        let machine = Machine::new(MachineConfig::default(), &image);
        let mut driver = driver_for(&machine, 19);
        assert_eq!(driver.stats().records_dropped, 0);
        driver.note_lagging_drops(17);
        driver.note_lagging_drops(3);
        assert_eq!(driver.stats().records_dropped, 20);
    }

    #[test]
    fn empty_poll_is_free() {
        let image = contended_image(10);
        let mut machine = Machine::new(MachineConfig::default(), &image);
        let mut driver = driver_for(&machine, 19);
        driver.poll(&mut machine); // nothing ran yet
        assert_eq!(driver.stats().events_observed, 0);
        assert_eq!(machine.stats().injected_overhead_cycles, 0);
    }
}
