//! Survey the whole benchmark suite: run every workload natively and under
//! LASER (detection only) at a reduced scale and print a one-line summary per
//! workload — HITM intensity, overhead, and what was reported. A quick way to
//! see the Table 1 / Figure 10 landscape without the full experiment harness.

use laser::workloads::{registry, BuildOptions};
use laser::{Laser, LaserConfig};

fn main() {
    let scale = std::env::args()
        .nth(1)
        .and_then(|s| s.parse::<f64>().ok())
        .unwrap_or(0.15);
    let opts = BuildOptions::scaled(scale);
    println!(
        "{:<20} {:>6} {:>10} {:>9} {:>8}  top report",
        "workload", "bugs", "HITMs", "overhead", "lines"
    );
    for spec in registry() {
        let image = spec.build(&opts);
        let native = Laser::run_native(&image).expect("native run");
        let outcome = Laser::new(LaserConfig::detection_only())
            .run(&image)
            .expect("LASER run");
        let overhead = outcome.run.cycles as f64 / native.cycles.max(1) as f64;
        let top = outcome
            .report
            .lines
            .first()
            .map(|l| format!("{} ({})", l.location, l.kind))
            .unwrap_or_else(|| "-".to_string());
        println!(
            "{:<20} {:>6} {:>10} {:>8.2}x {:>8}  {}",
            spec.name,
            spec.known_bugs.len(),
            native.stats.hitm_events,
            overhead,
            outcome.report.lines.len(),
            top
        );
    }
}
