//! Bad fixture: iterating a hash-ordered container in library code.
//! Expected findings: `hash-iter` (several), plus `default-hasher` for the
//! default-hashed constructions.

use std::collections::{HashMap, HashSet};

pub fn totals(counts: &mut HashMap<u64, u64>) -> u64 {
    let mut total = 0;
    for (_pc, n) in counts.iter() {
        total += n;
    }
    counts.retain(|_, n| *n > 0);
    total
}

pub fn first_line(lines: HashSet<u64>) -> Vec<u64> {
    let lines: HashSet<u64> = lines;
    lines.into_iter().collect()
}

// The deterministic-hash and insertion-order aliases are hash-ordered too:
// their iteration order depends on insertion history, which must not reach
// any output either.
pub fn alias_orders(fast: &FxHashMap<u64, u64>, index: &IndexMap<u64, u64>) -> u64 {
    let mut total = 0;
    for (_k, v) in fast.iter() {
        total += v;
    }
    for v in index.values() {
        total += v;
    }
    total
}
