//! Integration tests of the detection pipeline across crates: ground-truth
//! coherence events → PEBS sampling and imprecision → driver → detector →
//! report, with both perfect and realistic hardware.

use laser::core::detect::Detector;
use laser::core::{ContentionKind, Laser, LaserConfig};
use laser::pebs::imprecision::ImprecisionParams;
use laser::pebs::HitmRecord;
use laser::workloads::{characterization_cases, find, BuildOptions, SharingPattern, WriteMode};
use laser::{Machine, MachineConfig};

/// With a perfect (noise-free) PMU, the detector's classification matches the
/// constructed sharing pattern for every category in which the records carry
/// enough information. The one exception is FSRW: the reading thread is the
/// only one whose accesses hit a remotely-Modified line, so its records alone
/// cannot reveal *which* bytes the writer touches — which is exactly why the
/// paper leans on the observation that real contention is symmetric.
#[test]
fn perfect_records_classify_every_characterization_category_correctly() {
    for case in characterization_cases()
        .into_iter()
        .filter(|c| c.filler_ops == 0 && c.label() != "FSRW")
        .take(8)
    {
        let built = case.build();
        let mut machine = Machine::new(MachineConfig::default(), &built.image);
        machine.run_to_completion().unwrap();
        let events = machine.take_hitm_events();
        assert!(!events.is_empty(), "case {} generated no HITMs", case.id);

        let config = LaserConfig {
            imprecision: ImprecisionParams::perfect(),
            ..LaserConfig::default()
        };
        let mut detector = Detector::new(&config, built.image.program(), built.image.memory_map());
        let records: Vec<HitmRecord> = events
            .iter()
            .map(|e| HitmRecord {
                pc: e.pc,
                data_addr: e.addr,
                core: e.core,
                cycle: e.cycle,
            })
            .collect();
        detector.process(&records);
        let report = detector.report(&format!("case{}", case.id), 1.0, 0.0, false);
        let top = &report.lines[0];
        let expected = match case.pattern {
            SharingPattern::TrueSharing => ContentionKind::TrueSharing,
            SharingPattern::FalseSharing => ContentionKind::FalseSharing,
        };
        assert_eq!(
            top.kind,
            expected,
            "case {} ({}, {:?}): {}",
            case.id,
            case.label(),
            case.mode,
            report.render()
        );
        // Both the writer's and the peer's PCs contribute records.
        if case.mode == WriteMode::WriteWrite {
            assert!(report
                .lines
                .iter()
                .any(|l| l.false_sharing_events + l.true_sharing_events > 0));
        }
    }
}

/// The detector's offline threshold adjustment never resurrects filtered
/// lines with higher thresholds and never drops lines with lower ones.
#[test]
fn report_lines_are_monotone_in_the_rate_threshold() {
    let spec = find("kmeans").unwrap();
    let image = spec.build(&BuildOptions::scaled(0.2));
    let outcome = Laser::new(LaserConfig::detection_only().with_rate_threshold(0.0))
        .run(&image)
        .unwrap();
    let all = &outcome.report.lines;
    assert!(!all.is_empty());
    let mut previous = usize::MAX;
    for threshold in [0.0, 100.0, 1_000.0, 100_000.0, 1e12] {
        let kept = all.iter().filter(|l| l.rate_per_sec >= threshold).count();
        assert!(
            kept <= previous,
            "threshold {threshold} kept {kept} > {previous}"
        );
        previous = kept;
    }
}

/// Records from outside the application (spurious PCs) and records whose data
/// address points into a stack never reach the report, whatever their volume.
#[test]
fn spurious_records_never_produce_report_lines() {
    let spec = find("swaptions").unwrap();
    let image = spec.build(&BuildOptions::scaled(0.05));
    let config = LaserConfig::default();
    let mut detector = Detector::new(&config, image.program(), image.memory_map());
    let stack_addr = image.stack_top(0) - 128;
    let records: Vec<HitmRecord> = (0..5_000u64)
        .map(|i| {
            if i % 2 == 0 {
                // PC far outside any code mapping.
                HitmRecord {
                    pc: 0xdead_0000_0000 + i,
                    data_addr: 0x1000_0000 + i,
                    core: laser::machine::CoreId((i % 4) as usize),
                    cycle: i,
                }
            } else {
                // Valid PC but stack data address.
                HitmRecord {
                    pc: image.program().base_pc(),
                    data_addr: stack_addr,
                    core: laser::machine::CoreId((i % 4) as usize),
                    cycle: i,
                }
            }
        })
        .collect();
    let kept = detector.process(&records);
    assert_eq!(kept, 0);
    let report = detector.report("swaptions", 0.001, 0.0, false);
    assert!(report.lines.is_empty(), "{}", report.render());
    assert_eq!(report.dropped_non_code, 2_500);
    assert_eq!(report.dropped_stack, 2_500);
}

/// Running the same workload at the same seed twice produces byte-identical
/// reports; changing the seed may change sampling noise but not whether the
/// known bug is found.
#[test]
fn detection_is_reproducible_and_robust_to_the_sampling_seed() {
    let spec = find("histogram'").unwrap();
    let image = spec.build(&BuildOptions::scaled(0.2));
    let a = Laser::new(LaserConfig::detection_only().with_seed(1))
        .run(&image)
        .unwrap();
    let b = Laser::new(LaserConfig::detection_only().with_seed(1))
        .run(&image)
        .unwrap();
    assert_eq!(a.report, b.report);
    for seed in [2, 3, 4, 5] {
        let c = Laser::new(LaserConfig::detection_only().with_seed(seed))
            .run(&image)
            .unwrap();
        let found = spec.known_bugs.iter().any(|bug| {
            bug.lines
                .iter()
                .any(|&l| c.report.line(&bug.file, l).is_some())
        });
        assert!(found, "seed {seed}: {}", c.report.render());
    }
}

/// The SAV knob trades overhead for record volume but not correctness: the
/// histogram' bug is found across a wide range of sampling rates.
#[test]
fn detection_works_across_sampling_rates() {
    let spec = find("histogram'").unwrap();
    let image = spec.build(&BuildOptions::scaled(0.25));
    let mut overheads = Vec::new();
    let native = Laser::run_native(&image).unwrap();
    for sav in [1u32, 7, 19, 31] {
        let outcome = Laser::new(LaserConfig::detection_only().with_sav(sav))
            .run(&image)
            .unwrap();
        let found = spec.known_bugs.iter().any(|bug| {
            bug.lines
                .iter()
                .any(|&l| outcome.report.line(&bug.file, l).is_some())
        });
        assert!(found, "SAV {sav}: bug missed");
        overheads.push(outcome.run.cycles as f64 / native.cycles as f64);
    }
    // SAV=1 must not be cheaper than SAV=31.
    assert!(overheads[0] >= overheads[3] * 0.999, "{overheads:?}");
}
