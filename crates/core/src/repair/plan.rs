//! LASERREPAIR's static analysis: which instructions get the SSB treatment
//! and where flushes go (paper Sections 5.3 and 5.4).
//!
//! Given the PCs LASERDETECT implicated in false sharing, the analysis:
//!
//! 1. finds the basic blocks containing those PCs;
//! 2. chooses a flush block that **post-dominates** the contending blocks and
//!    lies *outside* the contended loop (Figure 7: a flush at the loop exit
//!    rather than once per iteration);
//! 3. instruments every memory operation in the blocks between the contending
//!    code and the flush (all stores must use the SSB to preserve TSO;
//!    loads may speculatively skip it per the alias analysis);
//! 4. estimates the dynamic stores-per-flush ratio and declines to repair when
//!    it is too low (fences/atomics inside the region force frequent flushes —
//!    "fundamental contention in the program that LASERREPAIR cannot repair")
//!    or when the region is too complex to analyse precisely (the `lu_ncb`
//!    case).

use std::collections::BTreeSet;

use serde::{Deserialize, Serialize};

use laser_isa::alias::AliasSpeculation;
use laser_isa::cfg::Cfg;
use laser_isa::dom::PostDominators;
use laser_isa::program::{BlockId, Pc, Program};

/// Static loop trip-count guess used by the profitability estimate.
const ASSUMED_LOOP_ITERATIONS: f64 = 100.0;

/// The instrumentation plan LASERREPAIR derives for one contention site.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RepairPlan {
    /// Basic blocks whose memory operations are instrumented.
    pub instrumented_blocks: BTreeSet<BlockId>,
    /// Blocks on whose entry the SSB is flushed.
    pub flush_blocks: BTreeSet<BlockId>,
    /// Store PCs redirected into the SSB.
    pub ssb_stores: BTreeSet<Pc>,
    /// Load PCs that must consult the SSB.
    pub ssb_loads: BTreeSet<Pc>,
    /// Load PCs that may skip the SSB after a runtime aliasing check.
    pub speculative_loads: BTreeSet<Pc>,
    /// Fence-like instructions (fences, atomics) inside the region; each one
    /// forces a flush when executed.
    pub fences_in_region: usize,
    /// Estimated dynamic stores buffered per flush.
    pub estimated_stores_per_flush: f64,
    /// Whether the repair is estimated to be profitable and precise enough to
    /// attempt.
    pub profitable: bool,
}

impl RepairPlan {
    /// Analyse `program` around `contending_pcs`. Returns `None` if none of
    /// the PCs can be mapped to a basic block or no valid flush point exists.
    pub fn analyze(
        program: &Program,
        contending_pcs: &[Pc],
        min_stores_per_flush: f64,
        max_plan_blocks: usize,
    ) -> Option<RepairPlan> {
        let mut contending_blocks: Vec<BlockId> = Vec::new();
        for &pc in contending_pcs {
            if let Some(slot) = program.slot_of(pc) {
                if !contending_blocks.contains(&slot.block) {
                    contending_blocks.push(slot.block);
                }
            }
        }
        if contending_blocks.is_empty() {
            return None;
        }
        let cfg = Cfg::build(program);
        let pdom = PostDominators::compute(&cfg);

        // Candidate flush points: blocks that post-dominate every contending
        // block. Prefer one outside the contended loop, i.e. from which no
        // contending block is reachable again.
        let candidates = pdom.common_post_dominators(&contending_blocks);
        let outside: Vec<BlockId> = candidates
            .iter()
            .copied()
            .filter(|c| !contending_blocks.contains(c))
            .filter(|c| {
                let reach = cfg.reachable_from(&[*c]);
                !contending_blocks.iter().any(|b| reach.contains(b))
            })
            .collect();
        let flush_block = pdom.nearest(&outside).or_else(|| {
            let non_contending: Vec<BlockId> = candidates
                .iter()
                .copied()
                .filter(|c| !contending_blocks.contains(c))
                .collect();
            pdom.nearest(&non_contending)
        })?;

        // Region: blocks on a path from the contending blocks to the flush
        // point (exclusive). All their memory operations are instrumented.
        let forward = cfg.reachable_from(&contending_blocks);
        let backward = cfg.reaching(&[flush_block]);
        let mut region: BTreeSet<BlockId> = forward.intersection(&backward).copied().collect();
        region.remove(&flush_block);
        for b in &contending_blocks {
            region.insert(*b);
        }

        // Collect instrumented memory operations and fences.
        let mut ssb_stores = BTreeSet::new();
        let mut fences_in_region = 0usize;
        let mut store_count = 0usize;
        for &bid in &region {
            let block = program.block(bid);
            for (i, inst) in block.insts.iter().enumerate() {
                let pc = program.pc_of(bid, i);
                if inst.is_fence_like() {
                    fences_in_region += 1;
                    continue;
                }
                if inst.is_store() {
                    ssb_stores.insert(pc);
                    store_count += 1;
                }
            }
        }
        let alias = AliasSpeculation::analyze(program, &region);

        let estimated_stores_per_flush = if fences_in_region > 0 {
            store_count as f64 / fences_in_region as f64
        } else {
            store_count as f64 * ASSUMED_LOOP_ITERATIONS
        };
        let profitable = estimated_stores_per_flush >= min_stores_per_flush
            && region.len() <= max_plan_blocks
            && store_count > 0;

        Some(RepairPlan {
            instrumented_blocks: region,
            flush_blocks: [flush_block].into_iter().collect(),
            ssb_stores,
            ssb_loads: alias.ssb_loads,
            speculative_loads: alias.speculative_loads,
            fences_in_region,
            estimated_stores_per_flush,
            profitable,
        })
    }

    /// True if `pc` is instrumented in any way by this plan.
    pub fn instruments_pc(&self, pc: Pc) -> bool {
        self.ssb_stores.contains(&pc)
            || self.ssb_loads.contains(&pc)
            || self.speculative_loads.contains(&pc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use laser_isa::inst::{Operand, Reg};
    use laser_isa::ProgramBuilder;

    /// A classic false-sharing loop: load/increment/store inside a counted
    /// loop, followed by an exit block.
    fn loop_program() -> (Program, Pc, BlockId, BlockId) {
        let mut b = ProgramBuilder::new("loop");
        b.source("loop.c", 10);
        let entry = b.block("entry");
        let body = b.block("body");
        let exit = b.block("exit");
        b.switch_to(entry);
        b.movi(Reg(2), 0);
        b.jump(body);
        b.switch_to(body);
        b.load(Reg(1), Reg(0), 0, 8);
        b.addi(Reg(1), Reg(1), 1);
        b.store(Operand::Reg(Reg(1)), Reg(0), 0, 8);
        b.addi(Reg(2), Reg(2), 1);
        b.cmp_lt(Reg(3), Reg(2), Operand::Imm(1000));
        b.branch(Reg(3), body, exit);
        b.switch_to(exit);
        b.halt();
        let p = b.finish();
        let store_pc = p.pc_of(body, 2);
        (p, store_pc, body, exit)
    }

    #[test]
    fn flush_is_placed_at_the_loop_exit() {
        let (p, store_pc, body, exit) = loop_program();
        let plan = RepairPlan::analyze(&p, &[store_pc], 4.0, 12).unwrap();
        assert!(plan.flush_blocks.contains(&exit));
        assert!(!plan.flush_blocks.contains(&body));
        assert!(plan.instrumented_blocks.contains(&body));
        assert!(!plan.instrumented_blocks.contains(&exit));
        assert!(plan.ssb_stores.contains(&store_pc));
        // The load of the same base register must also use the SSB.
        assert_eq!(plan.ssb_loads.len(), 1);
        assert!(plan.profitable);
        assert!(plan.estimated_stores_per_flush > 10.0);
        assert!(plan.instruments_pc(store_pc));
    }

    #[test]
    fn fences_in_the_region_make_repair_unprofitable() {
        // The contending store sits inside a small critical section: an
        // atomic acquire and release surround it in the same loop body.
        let mut b = ProgramBuilder::new("locked");
        b.source("locked.c", 5);
        let body = b.block("body");
        let exit = b.block("exit");
        b.switch_to(body);
        b.atomic_cas(Reg(4), Reg(5), 0, Operand::Imm(0), Operand::Imm(1), 8);
        b.store(Operand::Imm(1), Reg(0), 0, 8);
        b.atomic_exchange(Reg(4), Reg(5), 0, Operand::Imm(0), 8);
        b.addi(Reg(2), Reg(2), 1);
        b.cmp_lt(Reg(3), Reg(2), Operand::Imm(100));
        b.branch(Reg(3), body, exit);
        b.switch_to(exit);
        b.halt();
        let p = b.finish();
        let store_pc = p.pc_of(body, 1);
        let plan = RepairPlan::analyze(&p, &[store_pc], 4.0, 12).unwrap();
        assert_eq!(plan.fences_in_region, 2);
        assert!(plan.estimated_stores_per_flush < 4.0);
        assert!(!plan.profitable);
    }

    #[test]
    fn oversized_regions_are_declined() {
        let (p, store_pc, ..) = loop_program();
        let plan = RepairPlan::analyze(&p, &[store_pc], 4.0, 0).unwrap();
        assert!(!plan.profitable);
    }

    #[test]
    fn unknown_pcs_yield_no_plan() {
        let (p, ..) = loop_program();
        assert!(RepairPlan::analyze(&p, &[0xdead_beef], 4.0, 12).is_none());
        assert!(RepairPlan::analyze(&p, &[], 4.0, 12).is_none());
    }
}
