//! A fast, deterministic hasher for the simulator's address-keyed maps.
//!
//! The coherence directory and sparse memory key their maps by line address
//! and page number — small integers on the machine's hottest path. The
//! standard library's default SipHash is DoS-resistant but costs tens of
//! cycles per lookup, which the hot loop pays several times per simulated
//! memory access. These maps are never exposed to untrusted keys and are
//! never iterated (only counted), so a cheap multiply-rotate hash is both
//! safe and behavior-preserving: every observable output of the machine is
//! independent of map iteration order.
//!
//! The mixing function is the classic Fx hash (one wrapping multiply by a
//! golden-ratio-derived odd constant per word, with a rotate to spread low
//! bits), seeded identically on every run so simulations stay deterministic.

use std::hash::{BuildHasherDefault, Hasher};

/// Multiplier: 2^64 / phi, forced odd — the classic Fibonacci hashing
/// constant.
const K: u64 = 0x9e37_79b9_7f4a_7c15;

/// A non-cryptographic word-at-a-time hasher (Fx-style).
#[derive(Debug, Default)]
pub struct FastHasher {
    hash: u64,
}

impl FastHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(K);
    }
}

impl Hasher for FastHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.add(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add(v as u64);
    }
}

/// `BuildHasher` for [`FastHasher`]: zero-sized, identical on every run.
pub type FastBuildHasher = BuildHasherDefault<FastHasher>;

/// A `HashMap` keyed through [`FastHasher`]: deterministic hashing, O(1)
/// lookups for the hot per-access paths. Its iteration order still depends
/// on insertion history and capacity, so — like any hash map in this
/// workspace — it must never be *iterated* on a path that reaches simulated
/// state or emitted bytes (the `hash-iter` lint rule enforces this).
pub type FastHashMap<K, V> = std::collections::HashMap<K, V, FastBuildHasher>;

/// A `HashSet` hashed through [`FastHasher`]; same determinism caveats as
/// [`FastHashMap`].
pub type FastHashSet<T> = std::collections::HashSet<T, FastBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;
    use std::hash::BuildHasher;

    #[test]
    fn deterministic_across_builders() {
        let b1 = FastBuildHasher::default();
        let b2 = FastBuildHasher::default();
        for k in [0u64, 1, 64, 4096, u64::MAX] {
            assert_eq!(b1.hash_one(k), b2.hash_one(k));
        }
    }

    #[test]
    fn distinct_keys_rarely_collide() {
        // Line addresses are 64-byte aligned; make sure aligned keys spread.
        let b = FastBuildHasher::default();
        let mut seen = std::collections::HashSet::new();
        for i in 0..10_000u64 {
            seen.insert(b.hash_one(i * 64));
        }
        assert_eq!(seen.len(), 10_000);
    }

    #[test]
    fn usable_as_map_hasher() {
        let mut m: HashMap<u64, u32, FastBuildHasher> = HashMap::default();
        for i in 0..1000 {
            m.insert(i * 4096, i as u32);
        }
        for i in 0..1000 {
            assert_eq!(m.get(&(i * 4096)), Some(&(i as u32)));
        }
    }

    #[test]
    fn byte_writes_match_word_writes_for_aligned_input() {
        // HashMap<u64, _> hashes via write_u64; the generic write() path only
        // needs to be self-consistent, not identical — but check it mixes.
        let mut h = FastHasher::default();
        h.write(&[1, 2, 3]);
        let a = h.finish();
        let mut h = FastHasher::default();
        h.write(&[3, 2, 1]);
        assert_ne!(a, h.finish());
    }
}
