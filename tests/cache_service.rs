//! The cell cache's central guarantee: a warm-cache rerun is **byte-identical**
//! to its cold run in every output format while simulating zero cells.
//!
//! Simulation is deterministic and the cache fingerprint covers a cell's full
//! configuration, so serving a cell from disk must be indistinguishable from
//! recomputing it — on the text table, the JSON document and the CSV table
//! alike. These tests pin that, plus the service layer on top: a scenario
//! rerun against a warm cache streams every cell back as a hit and produces
//! the identical aggregate document.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

use laser_bench::{
    run_scenario, Campaign, CellBudget, CellCache, Emit, LaserTool, NativeTool, Scenario,
    ServiceOptions, Tool, TopologySpec, CACHE_SALT,
};
use laser_core::LaserConfig;
use laser_workloads::{registry, BuildOptions};

fn scratch_dir(tag: &str) -> PathBuf {
    static COUNTER: AtomicU32 = AtomicU32::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("laser-cache-it-{}-{tag}-{n}", std::process::id()))
}

fn tools() -> Vec<Box<dyn Tool>> {
    vec![
        Box::new(NativeTool),
        Box::new(LaserTool::new(LaserConfig::detection_only())),
    ]
}

fn campaign(threads: usize) -> Campaign {
    Campaign::new(registry(), tools())
        .with_workload_names(&["histogram'", "swaptions"])
        .expect("known workload names")
        .with_options(BuildOptions::scaled(0.08))
        .with_threads(threads)
}

/// All three output formats of a campaign result, for byte comparison.
fn formats(result: &laser_bench::CampaignResult) -> (String, String, String) {
    (result.render(), result.to_json().render(), result.to_csv())
}

#[test]
fn warm_cache_rerun_is_byte_identical_in_every_format_and_simulates_nothing() {
    let dir = scratch_dir("formats");

    // Cold run: everything simulates, everything is stored.
    let cold_cache = Arc::new(CellCache::open(&dir).expect("cache dir"));
    let cold = campaign(2).with_cache(Arc::clone(&cold_cache)).run();
    let cells = cold.cells.len() as u64;
    assert_eq!(cold_cache.stats().hits, 0);
    assert_eq!(cold_cache.stats().simulated(), cells);
    assert_eq!(cold_cache.stats().stored, cells);

    // Warm run through a fresh handle (a new process over the same
    // directory): zero cells simulate...
    let warm_cache = Arc::new(CellCache::open(&dir).expect("cache dir"));
    let warm = campaign(2).with_cache(Arc::clone(&warm_cache)).run();
    assert_eq!(warm_cache.stats().hits, cells);
    assert_eq!(warm_cache.stats().simulated(), 0);
    assert_eq!(warm_cache.stats().stored, 0);

    // ...and every output format is byte-identical, cold vs warm vs uncached.
    assert_eq!(cold.cells, warm.cells);
    assert_eq!(formats(&cold), formats(&warm));
    let uncached = campaign(2).run();
    assert_eq!(formats(&uncached), formats(&warm));

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn cache_covers_budgeted_and_multi_socket_cells() {
    let dir = scratch_dir("axes");
    let shape = || {
        campaign(2)
            .with_cell_budget(CellBudget::steps(5_000))
            .with_topology(TopologySpec::OctoSocket)
    };

    let cold_cache = Arc::new(CellCache::open(&dir).expect("cache dir"));
    let cold = shape().with_cache(Arc::clone(&cold_cache)).run();
    // Step-budget trips are deterministic outcomes and cache like successes.
    assert!(cold.cells.iter().any(|c| c.status() == "budget-exceeded"));
    assert!(cold.cells.iter().all(|c| c.tool.ends_with("@8s")));
    assert_eq!(cold_cache.stats().stored, cold.cells.len() as u64);

    let warm_cache = Arc::new(CellCache::open(&dir).expect("cache dir"));
    let warm = shape().with_cache(Arc::clone(&warm_cache)).run();
    assert_eq!(warm_cache.stats().simulated(), 0);
    assert_eq!(formats(&cold), formats(&warm));

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn salt_bump_invalidates_but_never_changes_output() {
    let dir = scratch_dir("salt");
    let first = Arc::new(CellCache::open(&dir).expect("cache dir"));
    let cold = campaign(2).with_cache(Arc::clone(&first)).run();

    // A bumped salt treats every stored cell as stale: the rerun simulates
    // everything again (counted as invalidated, not missed) — and still
    // produces the identical bytes, because simulation is deterministic.
    let bumped = Arc::new(
        CellCache::open(&dir)
            .expect("cache dir")
            .with_salt(CACHE_SALT + 1),
    );
    let rerun = campaign(2).with_cache(Arc::clone(&bumped)).run();
    assert_eq!(bumped.stats().hits, 0);
    assert_eq!(bumped.stats().invalidated, cold.cells.len() as u64);
    assert_eq!(formats(&cold), formats(&rerun));

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn scenario_service_reruns_from_the_cache_with_identical_aggregate() {
    let dir = scratch_dir("service");
    let scenario = Scenario::parse(
        r#"{
          "name": "it",
          "scale": 0.08,
          "threads": 2,
          "format": "json",
          "cells": [
            {"workload": "histogram'", "tool": "native"},
            {"workload": "histogram'", "tool": "laser-detect"},
            {"workload": "swaptions", "tool": "native", "topology": "2s"}
          ]
        }"#,
    )
    .expect("valid scenario");

    let serve = |dir: &PathBuf, out: &mut Vec<u8>| {
        let options = ServiceOptions {
            threads: None,
            cache: Some(Arc::new(CellCache::open(dir).expect("cache dir"))),
        };
        run_scenario(&scenario, &options, out).expect("scenario runs")
    };

    let mut cold_out = Vec::new();
    let cold = serve(&dir, &mut cold_out);
    assert_eq!(cold.simulated, 3);
    assert_eq!(cold.cached, 0);

    let mut warm_out = Vec::new();
    let warm = serve(&dir, &mut warm_out);
    assert_eq!(warm.simulated, 0);
    assert_eq!(warm.cached, 3);
    assert_eq!(warm.ok, cold.ok);

    // The aggregate JSON document inside the summary line is byte-identical.
    let aggregate = |bytes: &[u8]| {
        let text = std::str::from_utf8(bytes).expect("utf8 stream");
        let last = text.lines().last().expect("summary line");
        let value = serde::json::Value::parse(last).expect("valid JSON line");
        value
            .get("aggregate")
            .and_then(|a| a.get("content"))
            .cloned()
            .expect("aggregate content")
    };
    assert_eq!(aggregate(&cold_out), aggregate(&warm_out));

    let _ = std::fs::remove_dir_all(&dir);
}
