//! # laser-bench
//!
//! The experiment harness that regenerates every table and figure of the
//! LASER paper's evaluation (Section 7) from the simulated system:
//!
//! | Paper artifact | Function | Binary sub-command | Criterion bench |
//! |---|---|---|---|
//! | Figure 2 | [`characterization::fig2_layout`] | `experiments fig2` | — |
//! | Figure 3 | [`characterization::fig3_characterization`] | `experiments fig3` | `fig3_characterization` |
//! | Table 1 | [`accuracy::table1_accuracy`] | `experiments table1` | `table1_accuracy` |
//! | Table 2 | [`accuracy::table2_types`] | `experiments table2` | `table2_type` |
//! | Figure 9 | [`accuracy::fig9_threshold_sweep`] | `experiments fig9` | `fig9_threshold` |
//! | Figure 10 | [`performance::fig10_overhead`] | `experiments fig10` | `fig10_overhead` |
//! | Figure 11 | [`performance::fig11_speedups`] | `experiments fig11` | `fig11_speedup` |
//! | Figure 12 | [`performance::fig12_breakdown`] | `experiments fig12` | `fig12_breakdown` |
//! | Figure 13 | [`performance::fig13_sav_sweep`] | `experiments fig13` | `fig13_sav` |
//! | Figure 14 | [`performance::fig14_sheriff`] | `experiments fig14` | `fig14_sheriff` |
//!
//! Every table and figure is a *view over one campaign result*: a planner
//! (`plan_fig10`, `plan_table1`, …) registers the `(workload, tool)` cells
//! the experiment needs on a shared [`Grid`], the grid runs each unique cell
//! exactly once on the parallel [`Campaign`] runner, and the figure derives
//! its rows from the cached cells (`fig10_from_grid`, …). The `experiments`
//! binary plans every selected experiment into one grid, streams per-cell
//! progress to stderr while the grid is hot, and emits the aggregated results
//! as text, JSON or CSV (`--format`, see [`emit::Emit`]).
//!
//! Absolute numbers are simulated cycles, not the paper's wall-clock seconds;
//! what is expected to match is the *shape* of each result: who wins, by
//! roughly what factor, and where the crossovers fall. `EXPERIMENTS.md` at the
//! repository root records paper-reported versus measured values side by side.

#![forbid(unsafe_code)]

pub mod accuracy;
pub mod cache;
pub mod campaign;
pub mod characterization;
pub mod emit;
pub mod grid;
pub mod performance;
pub mod runner;
pub mod scenario;
pub mod service;
pub mod tool;
pub mod topofile;
pub mod xsocket;

pub use cache::{fingerprint, CacheError, CacheStats, CellCache, CellConfig, CACHE_SALT};
pub use campaign::{
    ordered_parallel, validate_workload_names, Campaign, CampaignProgress, CampaignResult,
    CellResult, UnknownWorkload,
};
pub use emit::Emit;
pub use grid::{ExperimentError, Grid, GridResult};
pub use laser_core::{CellBudget, PipelineConfig, ShardRouting, StopReason, TopologySpec};
pub use runner::{geomean, ExperimentScale};
pub use scenario::{AggregateFormat, Scenario, ScenarioCell, ScenarioError, Sweep};
pub use service::{run_scenario, ServiceError, ServiceOptions, ServiceSummary};
pub use tool::{
    cell_key, default_tools, FixedNativeTool, LaserTool, NativeTool, ReportedLine, SheriffTool,
    Tool, ToolFailure, ToolRun, ToolSpec, VtuneTool,
};
pub use topofile::{CustomTopology, Deployment};
pub use xsocket::{plan_xsocket, xsocket_from_grid, xsocket_sweep, XsocketReport, XsocketRow};
