//! Criterion bench regenerating Table 2 at reduced scale.
use criterion::{criterion_group, criterion_main, Criterion};
use laser_bench::accuracy::table2_types;
use laser_bench::ExperimentScale;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("table2_type");
    group.sample_size(10);
    group.bench_function("table2_type", |b| {
        b.iter(|| table2_types(&ExperimentScale::bench()).unwrap())
    });
    group.finish();
}
criterion_group!(benches, bench);
criterion_main!(benches);
