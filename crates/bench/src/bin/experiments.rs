//! The experiment driver: regenerates every table and figure of the paper.
//!
//! ```text
//! experiments [all|campaign|fig2|fig3|table1|table2|fig9|fig10|fig11|fig12|fig13|fig14]
//!             [--scale S] [--threads N] [--only w1,w2,...]
//! ```
//!
//! `--scale` multiplies every workload's input size (default 0.4); the paper's
//! qualitative results hold across scales, larger values just take longer.
//! `campaign` runs the full `workload × tool` grid on a thread pool
//! (`--threads`, default: all cores); its aggregated output is byte-identical
//! whatever the thread count.

use std::env;
use std::process::ExitCode;

use laser_bench::accuracy::{fig9_threshold_sweep, fig9_thresholds, table1_accuracy, table2_types};
use laser_bench::characterization::{fig2_layout, fig3_characterization};
use laser_bench::performance::{
    fig10_overhead, fig11_speedups, fig12_breakdown, fig13_sav_sweep, fig13_savs, fig14_sheriff,
};
use laser_bench::{Campaign, ExperimentScale};

fn usage() -> ExitCode {
    eprintln!(
        "usage: experiments [all|campaign|fig2|fig3|table1|table2|fig9|fig10|fig11|fig12|fig13|\
         fig14] [--scale S] [--threads N] [--only w1,w2,...]"
    );
    ExitCode::from(2)
}

fn run_campaign(
    scale: &ExperimentScale,
    threads: Option<usize>,
    only: &Option<Vec<String>>,
) -> Result<(), String> {
    let mut campaign = Campaign::default().with_options(scale.options());
    if let Some(names) = only {
        let registry = laser_workloads::registry();
        for name in names {
            if !registry.iter().any(|w| w.name == name) {
                return Err(format!(
                    "unknown workload '{name}' in --only (names are case-sensitive; \
                     the alternative-input histogram is \"histogram'\")"
                ));
            }
        }
        let names: Vec<&str> = names.iter().map(String::as_str).collect();
        campaign = campaign.with_workload_names(&names);
    }
    if let Some(n) = threads {
        campaign = campaign.with_threads(n);
    }
    eprintln!(
        "running {} cells on {} worker threads...",
        campaign.cells(),
        campaign.threads()
    );
    print!("{}", campaign.run().render());
    Ok(())
}

fn run_one(which: &str, scale: &ExperimentScale) -> Result<(), laser_core::LaserError> {
    match which {
        "fig2" => print!("{}", fig2_layout()),
        "fig3" => {
            let per_category = if scale.workload_scale < 0.2 { 5 } else { 40 };
            print!("{}", fig3_characterization(per_category).render());
        }
        "table1" => print!("{}", table1_accuracy(scale)?.render()),
        "table2" => print!("{}", table2_types(scale)?.render()),
        "fig9" => print!(
            "{}",
            fig9_threshold_sweep(scale, &fig9_thresholds())?.render()
        ),
        "fig10" => print!("{}", fig10_overhead(scale)?.render()),
        "fig11" => print!("{}", fig11_speedups(scale)?.render()),
        "fig12" => print!("{}", fig12_breakdown(scale, 0.10)?.render()),
        "fig13" => print!("{}", fig13_sav_sweep(scale, &fig13_savs())?.render()),
        "fig14" => print!("{}", fig14_sheriff(scale)?.render()),
        other => {
            eprintln!("unknown experiment '{other}'");
        }
    }
    println!();
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = env::args().skip(1).collect();
    let mut which = "all".to_string();
    let mut scale = ExperimentScale::default();
    let mut threads: Option<usize> = None;
    let mut only: Option<Vec<String>> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                let Some(v) = args.get(i + 1).and_then(|s| s.parse::<f64>().ok()) else {
                    return usage();
                };
                scale.workload_scale = v;
                i += 2;
            }
            "--threads" => {
                let Some(v) = args.get(i + 1).and_then(|s| s.parse::<usize>().ok()) else {
                    return usage();
                };
                threads = Some(v);
                i += 2;
            }
            "--only" => {
                let Some(v) = args.get(i + 1) else {
                    return usage();
                };
                only = Some(v.split(',').map(str::to_string).collect());
                i += 2;
            }
            "--help" | "-h" => return usage(),
            name => {
                which = name.to_string();
                i += 1;
            }
        }
    }

    if which == "campaign" {
        return match run_campaign(&scale, threads, &only) {
            Ok(()) => ExitCode::SUCCESS,
            Err(msg) => {
                eprintln!("{msg}");
                ExitCode::from(2)
            }
        };
    }
    if threads.is_some() || only.is_some() {
        eprintln!("--threads and --only only apply to the campaign subcommand");
        return usage();
    }

    let all = [
        "fig2", "fig3", "table1", "table2", "fig9", "fig10", "fig11", "fig12", "fig13", "fig14",
    ];
    let selected: Vec<&str> = if which == "all" {
        all.to_vec()
    } else {
        vec![which.as_str()]
    };
    if selected.iter().any(|s| !all.contains(s)) {
        return usage();
    }
    for name in selected {
        println!("==================== {name} ====================");
        if let Err(e) = run_one(name, &scale) {
            eprintln!("experiment {name} failed: {e}");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
