//! # laser-core
//!
//! The paper's contribution: **LASERDETECT**, an online cache-contention
//! detector fed by sampled HITM records, and **LASERREPAIR**, an online
//! false-sharing repair tool based on a software store buffer, plus the
//! end-to-end [`system::Laser`] runner that ties the driver, detector and
//! repair together exactly as the paper's Figure 8 does.
//!
//! ## LASERDETECT (Section 4)
//!
//! HITM records arrive from the driver and flow through a pipeline
//! ([`detect::Detector`]):
//!
//! 1. records whose PC is outside the application and its libraries are
//!    dropped (they are spurious);
//! 2. records whose data address falls in a thread stack are dropped;
//! 3. surviving records are aggregated by PC and by source line, and lines
//!    whose HITM rate is below a threshold (default 1 000 HITMs/second) are
//!    filtered from the report;
//! 4. a small cache-line model ([`detect::linemodel`]) replays each record's
//!    access (size and read/write-ness recovered from the binary's load/store
//!    sets) against the last recorded access to that line, classifying the
//!    contention as true or false sharing.
//!
//! ## LASERREPAIR (Section 5)
//!
//! When the false-sharing rate crosses a threshold, [`repair::RepairPlan`]
//! analyses the control-flow graph around the contending PCs, selects the
//! basic blocks whose memory operations must be redirected through the
//! [`repair::SoftwareStoreBuffer`], places flushes at post-dominating blocks,
//! and [`repair::SsbHook`] attaches the instrumentation to the running
//! machine through the Pin-like hook interface. Flushes execute inside a
//! hardware transaction so the coalesced stores become visible atomically,
//! preserving TSO.
//!
//! ## Quick start
//!
//! Runs are built with [`Laser::builder`] — the single construction path —
//! which wires the LASER configuration, the machine configuration and an
//! optional [`Observer`] into a [`LaserSession`]:
//!
//! ```no_run
//! use laser_core::{Laser, LaserConfig};
//! # fn image() -> laser_machine::WorkloadImage { unimplemented!() }
//!
//! let outcome = Laser::builder()
//!     .config(LaserConfig::default())
//!     .build(&image())
//!     .run()
//!     .unwrap();
//! for line in &outcome.report.lines {
//!     println!("{} {:?} {} HITMs/s", line.location, line.kind, line.rate_per_sec);
//! }
//! ```
//!
//! LASER is an *online* tool, and the session exposes that: an [`Observer`]
//! attached through the builder receives typed [`LaserEvent`]s while the run
//! advances — completed quanta, record batches (with PMU drop counts), live
//! per-line HITM rates, the repair attachment — and can cancel the run
//! mid-flight by returning `ControlFlow::Break` with a [`StopReason`]:
//!
//! ```no_run
//! use std::ops::ControlFlow;
//! use laser_core::{BudgetObserver, CellBudget, Laser, LaserError, StopReason};
//! # fn image() -> laser_machine::WorkloadImage { unimplemented!() }
//!
//! // Cancel the run once it retires more than a million instructions.
//! let result = Laser::builder()
//!     .observer(BudgetObserver::new(CellBudget::steps(1_000_000)))
//!     .build(&image())
//!     .run();
//! if let Err(LaserError::Stopped(StopReason::StepBudget { used, .. })) = result {
//!     eprintln!("over budget at {used} steps");
//! }
//! ```
//!
//! The legacy entry points ([`Laser::run`], [`Laser::session_on`],
//! [`LaserSession::new`], …) remain as thin wrappers over the builder.

#![forbid(unsafe_code)]

pub mod config;
pub mod detect;
pub mod observe;
pub mod repair;
pub mod report;
pub mod session;
pub mod system;

pub use config::LaserConfig;
pub use detect::Detector;
pub use laser_machine::{ThreadPlacement, Topology, TopologySpec};
pub use observe::{
    BudgetObserver, CellBudget, EventLog, LaserEvent, LineRate, NullObserver, Observer, StopReason,
};
pub use repair::{RepairPlan, SoftwareStoreBuffer, SsbHook, SsbStats};
pub use report::{ContentionKind, ContentionReport, LineReport};
pub use session::{
    LaserSession, PipelineConfig, SessionBuilder, SessionStatus, ShardRouting, StageOccupancy,
};
pub use system::{Laser, LaserError, LaserOutcome, RepairSummary};
