//! # laser-lint
//!
//! A workspace-wide determinism & concurrency static analyzer for the LASER
//! reproduction.
//!
//! Every layer of this workspace stakes its correctness on one invariant:
//! **simulation output is byte-identical across thread counts, pipelining and
//! topologies**. The tier-1 suites (`campaign_determinism`,
//! `figure_equivalence`, `topology_pin`) enforce that *dynamically*; this
//! crate enforces the hazard classes *statically*, per commit, before a
//! violation ever reaches a determinism test:
//!
//! | rule id          | hazard                                                   |
//! |------------------|----------------------------------------------------------|
//! | `default-hasher` | `HashMap`/`HashSet` with the randomly-seeded default hasher |
//! | `hash-iter`      | iteration over a hash-ordered map/set                    |
//! | `fs-iter`        | raw `read_dir` enumeration in library code (platform-ordered) |
//! | `wall-clock`     | `Instant::now` / `SystemTime::now` / `thread::current` in engine code |
//! | `float-accum`    | order-sensitive float reduction (`sum::<f64>`, float `fold`) |
//! | `panic`          | `unwrap`/`expect`/`panic!` in library code               |
//! | `unsafe-code`    | `unsafe` / `static mut` anywhere                         |
//!
//! The analysis is a hand-rolled lexer ([`lexer`]) plus an item-context
//! tracker ([`context`]) that strips test code (`#[cfg(test)]`, `#[test]`,
//! `mod tests`), classifies each file's role (engine library vs binary vs
//! bench/test vs shim) and honors the inline escape hatch:
//!
//! ```text
//! // lint:allow(wall-clock) — opt-in wall-time budget, not on any emit path
//! ```
//!
//! An allow annotation **must** carry a written reason after the rule list;
//! a bare `lint:allow(rule)` is itself reported (`bad-allow`), so every
//! suppression in the tree documents why it is safe.
//!
//! Run it as `cargo run -p laser-lint -- --check` (exits 2 on findings), or
//! with `--format json` for the machine-readable report CI archives.

#![forbid(unsafe_code)]

pub mod context;
pub mod lexer;
pub mod rules;

use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use context::FileCtx;

/// One lint finding: a rule violation at a source span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Stable rule id (see [`rules::RULES`]), or `bad-allow` for a malformed
    /// allow annotation.
    pub rule: &'static str,
    /// Workspace-relative path, `/`-separated.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Human explanation of the hazard.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}:{}: [{}] {}",
            self.path, self.line, self.col, self.rule, self.message
        )
    }
}

/// Result of linting a set of files.
#[derive(Debug, Default)]
pub struct LintReport {
    /// All findings, sorted by (path, line, col, rule).
    pub findings: Vec<Finding>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
}

impl LintReport {
    /// Render the machine-readable JSON document (hand-rolled: this crate is
    /// dependency-free by design).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str("  \"version\": 1,\n");
        out.push_str(&format!("  \"files_scanned\": {},\n", self.files_scanned));
        out.push_str(&format!("  \"finding_count\": {},\n", self.findings.len()));
        out.push_str("  \"findings\": [");
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {");
            out.push_str(&format!("\"rule\": \"{}\", ", json_escape(f.rule)));
            out.push_str(&format!("\"path\": \"{}\", ", json_escape(&f.path)));
            out.push_str(&format!("\"line\": {}, ", f.line));
            out.push_str(&format!("\"col\": {}, ", f.col));
            out.push_str(&format!("\"message\": \"{}\"", json_escape(&f.message)));
            out.push('}');
        }
        if !self.findings.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]\n}\n");
        out
    }

    /// Render the human-readable report.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            out.push_str(&f.to_string());
            out.push('\n');
        }
        out.push_str(&format!(
            "{} finding(s) in {} file(s) scanned\n",
            self.findings.len(),
            self.files_scanned
        ));
        out
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Lint a single file's source text. `rel_path` decides the file's role.
pub fn lint_source(rel_path: &str, source: &str) -> Vec<Finding> {
    let ctx = FileCtx::new(rel_path, source);
    rules::run_rules(&ctx)
}

/// Directories never descended into during a tree walk. `fixtures` holds the
/// deliberately-bad rule corpora; pass a fixture path explicitly to lint one.
const SKIP_DIRS: &[&str] = &["target", ".git", "fixtures", "node_modules"];

fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    // lint:allow(fs-iter) — entries are collected and sorted two lines below
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    // Sorted walk: findings order (and JSON bytes) are independent of
    // filesystem enumeration order.
    entries.sort();
    for path in entries {
        let name = path
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or_default();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name) || name.starts_with('.') {
                continue;
            }
            walk(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

fn rel_to(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    // Normalize to '/' so role detection and reports are OS-independent.
    rel.to_string_lossy().replace('\\', "/")
}

/// Lint every `.rs` file under `root` (skipping `target/`, `.git/` and
/// `fixtures/`), or — when `paths` is non-empty — exactly the named files
/// and directories (which may include fixtures).
pub fn lint_tree(root: &Path, paths: &[PathBuf]) -> io::Result<LintReport> {
    let mut files = Vec::new();
    if paths.is_empty() {
        walk(root, &mut files)?;
    } else {
        for p in paths {
            let abs = if p.is_absolute() {
                p.clone()
            } else {
                root.join(p)
            };
            if abs.is_dir() {
                // An explicitly named directory is walked as-is, including a
                // fixtures directory named on purpose.
                walk_all(&abs, &mut files)?;
            } else {
                files.push(abs);
            }
        }
    }
    let mut report = LintReport::default();
    for file in &files {
        let source = fs::read_to_string(file)?;
        let rel = rel_to(root, file);
        report.findings.extend(lint_source(&rel, &source));
        report.files_scanned += 1;
    }
    report
        .findings
        .sort_by(|a, b| (&a.path, a.line, a.col, a.rule).cmp(&(&b.path, b.line, b.col, b.rule)));
    Ok(report)
}

/// Like [`walk`] but only skips VCS/build dirs, not `fixtures/` — used for
/// explicitly named directories.
fn walk_all(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    // lint:allow(fs-iter) — entries are collected and sorted two lines below
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for path in entries {
        let name = path
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or_default();
        if path.is_dir() {
            if name == "target" || name == ".git" {
                continue;
            }
            walk_all(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finding_display_is_clickable() {
        let f = Finding {
            rule: "panic",
            path: "crates/x/src/lib.rs".to_string(),
            line: 3,
            col: 7,
            message: "boom".to_string(),
        };
        assert_eq!(f.to_string(), "crates/x/src/lib.rs:3:7: [panic] boom");
    }

    #[test]
    fn json_escapes_quotes_and_newlines() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }

    #[test]
    fn empty_report_renders_valid_json() {
        let r = LintReport::default();
        let j = r.to_json();
        assert!(j.contains("\"findings\": []"));
        assert!(j.contains("\"finding_count\": 0"));
    }

    #[test]
    fn report_json_contains_findings() {
        let mut r = LintReport::default();
        r.findings.push(Finding {
            rule: "unsafe-code",
            path: "a.rs".to_string(),
            line: 1,
            col: 1,
            message: "no".to_string(),
        });
        r.files_scanned = 1;
        let j = r.to_json();
        assert!(j.contains("\"rule\": \"unsafe-code\""));
        assert!(j.contains("\"files_scanned\": 1"));
    }
}
