//! Thread state and the deterministic scheduler.
//!
//! The machine always runs the runnable thread whose core has the smallest
//! local clock; ties break by thread index. This yields deterministic
//! interleavings that naturally model the ping-pong timing of contended cache
//! lines: a core stalled on a 90-cycle HITM transfer falls behind and the
//! other cores run ahead.
//!
//! [`CoreSched`] makes that decision in O(1) with O(log cores) maintenance
//! per step, instead of the naive O(threads) min-scan per instruction:
//!
//! * All threads on a core share that core's clock, so the per-thread minimum
//!   of `(clock, thread index)` equals the per-*core* minimum of
//!   `(clock, lowest runnable thread index on the core)`. Cores live in an
//!   indexed binary min-heap keyed by that pair.
//! * Keys only ever increase: clocks are monotone, and the front thread index
//!   of a core only moves forward (the scheduled thread is always its core's
//!   front, so threads halt strictly in front-to-back order per core). Every
//!   heap fix-up is therefore a sift-*down*.
//! * Uniform charges to all cores ([`crate::machine::Machine::charge_all_cores`])
//!   shift every key equally and need no heap maintenance at all.
//!
//! The heap's keys are always distinct (front thread indices partition across
//! cores), so the schedule it produces is exactly the naive scan's — the
//! `identical_to_naive_min_scan` property test below drives both through
//! randomized charge/halt sequences to pin that equivalence.

use laser_isa::inst::{Reg, NUM_REGS};
use laser_isa::program::BlockId;

use crate::machine::Machine;

/// Execution state of one simulated thread.
pub(crate) struct ThreadCtx {
    pub(crate) name: String,
    pub(crate) core: usize,
    pub(crate) block: BlockId,
    pub(crate) idx: usize,
    pub(crate) regs: [u64; NUM_REGS],
    pub(crate) halted: bool,
}

/// `pos` marker for a core that is not in the heap (no runnable threads).
const ABSENT: u32 = u32::MAX;

/// The incremental scheduling structure: an indexed binary min-heap of cores
/// keyed by `(core clock, lowest runnable thread index on the core)`.
///
/// Core clocks stay owned by the machine (`core_cycles`); every operation
/// that depends on them takes the clock slice as a parameter, so the heap
/// never holds stale key copies.
pub(crate) struct CoreSched {
    /// Core ids in binary min-heap order.
    heap: Vec<u32>,
    /// `pos[core]` is the core's index in `heap`, or [`ABSENT`].
    pos: Vec<u32>,
    /// Thread ids placed on each core, ascending.
    threads_on: Vec<Vec<u32>>,
    /// `cursor[core]` indexes the first runnable thread in
    /// `threads_on[core]`; everything before it has halted.
    cursor: Vec<u32>,
    /// Number of threads that have not halted.
    live: usize,
}

impl CoreSched {
    /// Build the scheduler for threads placed on `thread_cores[i]`.
    pub(crate) fn new(thread_cores: &[usize], num_cores: usize) -> Self {
        let mut threads_on: Vec<Vec<u32>> = vec![Vec::new(); num_cores];
        for (ti, &core) in thread_cores.iter().enumerate() {
            threads_on[core].push(ti as u32);
        }
        let heap: Vec<u32> = (0..num_cores as u32)
            .filter(|&c| !threads_on[c as usize].is_empty())
            .collect();
        let mut sched = CoreSched {
            pos: vec![ABSENT; num_cores],
            cursor: vec![0; num_cores],
            live: thread_cores.len(),
            threads_on,
            heap,
        };
        for (i, &c) in sched.heap.iter().enumerate() {
            sched.pos[c as usize] = i as u32;
        }
        // Heapify. All clocks are zero at construction, so only the front
        // thread indices order the cores.
        let zeros = vec![0u64; num_cores];
        for i in (0..sched.heap.len() / 2).rev() {
            sched.sift_down(&zeros, i);
        }
        sched
    }

    /// Number of threads that have not halted.
    pub(crate) fn live(&self) -> usize {
        self.live
    }

    /// The scheduling decision: the front runnable thread of the heap's root
    /// core. O(1).
    pub(crate) fn pick(&self) -> Option<usize> {
        let core = *self.heap.first()? as usize;
        Some(self.threads_on[core][self.cursor[core] as usize] as usize)
    }

    fn key(&self, clocks: &[u64], core: u32) -> (u64, u32) {
        let c = core as usize;
        (clocks[c], self.threads_on[c][self.cursor[c] as usize])
    }

    fn sift_down(&mut self, clocks: &[u64], mut i: usize) {
        loop {
            let left = 2 * i + 1;
            if left >= self.heap.len() {
                return;
            }
            let right = left + 1;
            let mut min = left;
            if right < self.heap.len()
                && self.key(clocks, self.heap[right]) < self.key(clocks, self.heap[left])
            {
                min = right;
            }
            if self.key(clocks, self.heap[min]) >= self.key(clocks, self.heap[i]) {
                return;
            }
            self.heap.swap(i, min);
            self.pos[self.heap[i] as usize] = i as u32;
            self.pos[self.heap[min] as usize] = min as u32;
            i = min;
        }
    }

    /// Restore heap order after `core`'s clock increased (instruction cost or
    /// externally charged cycles). Keys only ever increase, so one sift-down
    /// suffices; cores with no runnable threads are not tracked and need no
    /// fix-up.
    pub(crate) fn reposition(&mut self, clocks: &[u64], core: usize) {
        let p = self.pos[core];
        if p != ABSENT {
            self.sift_down(clocks, p as usize);
        }
    }

    /// Record that the scheduled thread halted. The scheduled thread is
    /// always the front runnable thread of the root core, so this advances
    /// `core`'s cursor and re-sinks (or removes) the root.
    pub(crate) fn on_halt(&mut self, clocks: &[u64], core: usize) {
        debug_assert_eq!(
            self.pos[core], 0,
            "only the scheduled core's thread can halt"
        );
        self.live -= 1;
        self.cursor[core] += 1;
        if (self.cursor[core] as usize) == self.threads_on[core].len() {
            // Core exhausted: remove it from the heap (pop the root).
            let last = self.heap.len() - 1;
            self.heap.swap(0, last);
            self.pos[self.heap[0] as usize] = 0;
            self.heap.pop();
            self.pos[core] = ABSENT;
            if !self.heap.is_empty() {
                self.sift_down(clocks, 0);
            }
        } else {
            self.sift_down(clocks, 0);
        }
    }
}

impl Machine {
    /// True if every thread has halted. O(1): the scheduler counts live
    /// threads.
    pub fn is_done(&self) -> bool {
        self.sched.live() == 0
    }

    /// Names of the threads, in spawn order (for reports and tests).
    pub fn thread_names(&self) -> Vec<&str> {
        self.threads.iter().map(|t| t.name.as_str()).collect()
    }

    /// Register value of a thread (for tests).
    pub fn thread_reg(&self, thread: usize, reg: Reg) -> u64 {
        self.threads[thread].regs[reg.0 as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The naive reference scheduler: a linear min-scan over all runnable
    /// threads keyed by `(core clock, thread index)` — exactly what
    /// `Machine::pick_thread` did before the heap.
    struct NaiveSched {
        thread_cores: Vec<usize>,
        halted: Vec<bool>,
    }

    impl NaiveSched {
        fn pick(&self, clocks: &[u64]) -> Option<usize> {
            self.thread_cores
                .iter()
                .enumerate()
                .filter(|(i, _)| !self.halted[*i])
                .min_by_key(|(i, &core)| (clocks[core], *i))
                .map(|(i, _)| i)
        }
    }

    /// A tiny deterministic xorshift PRNG so the property test needs no
    /// external randomness source.
    struct XorShift(u64);

    impl XorShift {
        fn next(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            self.0 = x;
            x
        }

        fn below(&mut self, n: u64) -> u64 {
            self.next() % n
        }
    }

    /// Drive the heap and the naive scan through randomized charge/halt
    /// sequences and assert they schedule the identical thread at every step.
    /// Zero-cost charges keep clocks tied across cores, exercising the
    /// `(clock, index)` tie-break.
    #[test]
    fn identical_to_naive_min_scan() {
        for seed in 1..=50u64 {
            let mut rng = XorShift(seed.wrapping_mul(0x9e37_79b9_7f4a_7c15));
            let num_cores = 1 + rng.below(8) as usize;
            let num_threads = 1 + rng.below(24) as usize;
            let thread_cores: Vec<usize> = (0..num_threads)
                .map(|_| rng.below(num_cores as u64) as usize)
                .collect();

            let mut clocks = vec![0u64; num_cores];
            let mut sched = CoreSched::new(&thread_cores, num_cores);
            let mut naive = NaiveSched {
                thread_cores: thread_cores.clone(),
                halted: vec![false; num_threads],
            };

            let mut halts = 0usize;
            loop {
                let a = sched.pick();
                let b = naive.pick(&clocks);
                assert_eq!(a, b, "seed {seed}: heap and naive scan disagree");
                let Some(ti) = a else { break };
                let core = thread_cores[ti];

                match rng.below(10) {
                    // Halt the scheduled thread (the only thread that can
                    // halt in the real machine).
                    0 | 1 => {
                        clocks[core] += rng.below(4);
                        naive.halted[ti] = true;
                        sched.on_halt(&clocks, core);
                        halts += 1;
                    }
                    // Externally charge some other core, like
                    // Machine::charge_cycles does.
                    2 => {
                        let victim = rng.below(num_cores as u64) as usize;
                        clocks[victim] += rng.below(50);
                        sched.reposition(&clocks, victim);
                        clocks[core] += 1 + rng.below(90);
                        sched.reposition(&clocks, core);
                    }
                    // Uniform charge to every core: order-preserving, no
                    // heap maintenance required.
                    3 => {
                        for c in clocks.iter_mut() {
                            *c += 17;
                        }
                        clocks[core] += rng.below(5);
                        sched.reposition(&clocks, core);
                    }
                    // Plain instruction charge — zero cost is common (a
                    // hook-handled op) and keeps clocks tied.
                    _ => {
                        clocks[core] += rng.below(91);
                        sched.reposition(&clocks, core);
                    }
                }
            }
            assert_eq!(sched.live(), 0);
            assert_eq!(halts, num_threads, "every thread halts exactly once");
        }
    }

    /// The tie-break alone: many threads, all clocks pinned equal, must
    /// schedule strictly by thread index.
    #[test]
    fn equal_clocks_schedule_by_thread_index() {
        let thread_cores = vec![3, 1, 0, 2, 1, 3, 0, 2, 0, 1];
        let clocks = vec![0u64; 4];
        let mut sched = CoreSched::new(&thread_cores, 4);
        for (expect, &core) in thread_cores.iter().enumerate() {
            assert_eq!(sched.pick(), Some(expect));
            sched.on_halt(&clocks, core);
        }
        assert_eq!(sched.pick(), None);
    }

    /// Cores with no threads at all never appear in the schedule and the
    /// heap survives them.
    #[test]
    fn empty_cores_are_skipped() {
        let thread_cores = vec![5, 5, 2];
        let mut clocks = vec![0u64; 8];
        let mut sched = CoreSched::new(&thread_cores, 8);
        assert_eq!(sched.pick(), Some(0));
        clocks[5] += 100;
        sched.reposition(&clocks, 5);
        assert_eq!(sched.pick(), Some(2), "core 2 is now earliest");
        sched.on_halt(&clocks, 2);
        assert_eq!(sched.pick(), Some(0));
        sched.on_halt(&clocks, 5);
        assert_eq!(sched.pick(), Some(1));
        sched.on_halt(&clocks, 5);
        assert_eq!(sched.pick(), None);
        assert_eq!(sched.live(), 0);
    }
}
