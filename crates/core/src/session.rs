//! A self-contained, movable, observable LASER run.
//!
//! [`LaserSession`] owns every piece of the deployment of the paper's
//! Figure 8 — the simulated machine, the kernel driver + PMU, the user-space
//! detector and (once triggered) the repair instrumentation. Nothing inside
//! is shared behind `Rc`/`RefCell`, so a session is `Send`: it can be built
//! on one thread, moved to a worker, and driven to completion there. That is
//! the property `laser-bench`'s campaign runner relies on to fan whole
//! `workload × tool` experiment grids across a thread pool.
//!
//! Sessions are built with [`SessionBuilder`] (obtained from
//! [`Laser::builder`](crate::system::Laser::builder)), the single
//! construction path behind every legacy constructor:
//!
//! ```no_run
//! use laser_core::{Laser, LaserConfig};
//! # fn image() -> laser_machine::WorkloadImage { unimplemented!() }
//!
//! let outcome = Laser::builder()
//!     .config(LaserConfig::detection_only())
//!     .build(&image())
//!     .run()
//!     .unwrap();
//! ```
//!
//! The session advances in *poll quanta*: the application runs
//! `poll_interval_steps` instructions, then the driver services the PMU and
//! the detector consumes the new records — exactly the cadence of the
//! monolithic loop this type was extracted from. Each quantum is reported to
//! the session's [`Observer`] as a stream of typed
//! [`LaserEvent`]s, and the observer can cancel
//! the run mid-flight by returning `ControlFlow::Break` (see
//! [`crate::observe`]).

use std::fmt;
use std::ops::ControlFlow;

use laser_machine::machine::MachineError;
use laser_machine::{CoreId, Machine, MachineConfig, RunStatus, WorkloadImage};
use laser_pebs::driver::Driver;
use laser_pebs::imprecision::ImprecisionModel;
use laser_pebs::pmu::{Pmu, PmuConfig};

use crate::config::LaserConfig;
use crate::detect::Detector;
use crate::observe::{LaserEvent, NullObserver, Observer, StopReason};
use crate::repair::{RepairPlan, SsbHook};
use crate::system::{LaserError, LaserOutcome, RepairSummary};

/// What one call to [`LaserSession::advance`] left the session in.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SessionStatus {
    /// The application has more work; call [`LaserSession::advance`] again.
    Running,
    /// The application halted; call [`LaserSession::finish`] for the outcome.
    Done,
    /// The session's [`Observer`] cancelled the run. The partial state is
    /// still inspectable, but there is no complete outcome to produce.
    Stopped(StopReason),
}

/// Fluent construction of a [`LaserSession`]: LASER configuration, machine
/// configuration and an optional [`Observer`], in any order, then
/// [`SessionBuilder::build`].
///
/// ```no_run
/// use std::ops::ControlFlow;
/// use laser_core::{Laser, LaserConfig, LaserEvent};
/// # fn image() -> laser_machine::WorkloadImage { unimplemented!() }
///
/// let session = Laser::builder()
///     .config(LaserConfig::default().with_seed(7))
///     .machine(laser_machine::MachineConfig::default())
///     .observer(|event: &LaserEvent| {
///         if let LaserEvent::RepairAttached { at_cycle, .. } = event {
///             eprintln!("repair attached at cycle {at_cycle}");
///         }
///         ControlFlow::Continue(())
///     })
///     .build(&image());
/// ```
#[derive(Default)]
pub struct SessionBuilder {
    config: LaserConfig,
    machine: MachineConfig,
    observer: Option<Box<dyn Observer>>,
}

impl fmt::Debug for SessionBuilder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SessionBuilder")
            .field("config", &self.config)
            .field("machine", &self.machine)
            .field("observer", &self.observer.is_some())
            .finish()
    }
}

impl SessionBuilder {
    /// A builder with the default LASER and machine configurations and no
    /// observer. Equivalent to [`Laser::builder`](crate::system::Laser::builder).
    pub fn new() -> Self {
        SessionBuilder::default()
    }

    /// Set the LASER configuration (default: [`LaserConfig::default`]).
    pub fn config(mut self, config: LaserConfig) -> Self {
        self.config = config;
        self
    }

    /// Set the machine configuration (default: [`MachineConfig::default`]).
    pub fn machine(mut self, machine: MachineConfig) -> Self {
        self.machine = machine;
        self
    }

    /// Attach an [`Observer`] that receives the run's
    /// [`LaserEvent`] stream and may cancel the
    /// run. Without one, events go to a [`NullObserver`].
    pub fn observer(self, observer: impl Observer + 'static) -> Self {
        self.boxed_observer(Box::new(observer))
    }

    /// Like [`SessionBuilder::observer`], for an observer that is already
    /// boxed (e.g. one threaded through `dyn`-typed plumbing).
    pub fn boxed_observer(mut self, observer: Box<dyn Observer>) -> Self {
        self.observer = Some(observer);
        self
    }

    /// Construct the session for `image`. Pure setup: nothing runs until
    /// [`LaserSession::advance`] or [`LaserSession::run`].
    pub fn build(self, image: &WorkloadImage) -> LaserSession {
        let SessionBuilder {
            config,
            machine: machine_config,
            observer,
        } = self;
        let max_steps = machine_config.max_steps;
        let num_cores = machine_config.num_cores;
        let machine = Machine::new(machine_config, image);

        let program = image.program();
        let code_range = (program.base_pc(), program.end_pc());
        let model = ImprecisionModel::new(
            config.imprecision,
            image.memory_map(),
            code_range,
            config.seed,
        );
        let pmu = Pmu::new(
            PmuConfig {
                sav: config.sav,
                num_cores,
                ..Default::default()
            },
            model,
        );
        let driver = Driver::new(pmu, config.driver);
        let detector = Detector::new(&config, program, image.memory_map());

        LaserSession {
            config,
            machine,
            driver,
            detector,
            observed: observer.is_some(),
            observer: observer.unwrap_or_else(|| Box::new(NullObserver)),
            workload: image.name().to_string(),
            num_cores,
            max_steps,
            detector_cycles: 0,
            reported_dropped: 0,
            repair: None,
        }
    }
}

/// An in-flight LASER run: application, driver, detector, observer and
/// (optionally) repair, as one owned value.
pub struct LaserSession {
    config: LaserConfig,
    machine: Machine,
    driver: Driver,
    detector: Detector,
    /// Whether an observer was attached at build time. Events are not even
    /// constructed when this is false, so unobserved runs (every legacy entry
    /// point) pay nothing for the event stream.
    observed: bool,
    observer: Box<dyn Observer>,
    workload: String,
    num_cores: usize,
    max_steps: u64,
    detector_cycles: u64,
    /// PMU drop count already reported through `RecordBatch` events.
    reported_dropped: u64,
    repair: Option<RepairSummary>,
}

impl fmt::Debug for LaserSession {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("LaserSession")
            .field("config", &self.config)
            .field("machine", &self.machine)
            .field("driver", &self.driver)
            .field("detector", &self.detector)
            .field("workload", &self.workload)
            .field("num_cores", &self.num_cores)
            .field("max_steps", &self.max_steps)
            .field("detector_cycles", &self.detector_cycles)
            .field("repair", &self.repair)
            .finish_non_exhaustive()
    }
}

impl LaserSession {
    /// Set up a run of `image` under LASER on a machine with `machine_config`.
    ///
    /// Legacy entry point: delegates to [`SessionBuilder`], which also takes
    /// an [`Observer`].
    pub fn new(config: LaserConfig, image: &WorkloadImage, machine_config: MachineConfig) -> Self {
        SessionBuilder::new()
            .config(config)
            .machine(machine_config)
            .build(image)
    }

    /// The machine being monitored.
    pub fn machine(&self) -> &Machine {
        &self.machine
    }

    /// The detector's live state.
    pub fn detector(&self) -> &Detector {
        &self.detector
    }

    /// Cycles the detector process has consumed so far.
    pub fn detector_cycles(&self) -> u64 {
        self.detector_cycles
    }

    /// Whether LASERREPAIR has been attached.
    pub fn repair_triggered(&self) -> bool {
        self.repair.is_some()
    }

    /// Send one event to the observer.
    fn emit(&mut self, event: LaserEvent) -> ControlFlow<StopReason> {
        self.observer.on_event(&event)
    }

    /// Charge `cycles` of detector work to the machine, spread over the
    /// cores. Integer division would silently drop `cycles % num_cores` — on
    /// small batches that rounds the whole charge down to zero — so the
    /// remainder is distributed one cycle each to the first cores, keeping
    /// the total charged exactly `cycles` (the same policy as the driver's
    /// record-copy charging).
    fn charge_detector_cycles(&mut self, cycles: u64) {
        self.detector_cycles += cycles;
        let per_core = cycles / self.num_cores as u64;
        if per_core > 0 {
            self.machine.charge_all_cores(per_core);
        }
        let remainder = (cycles % self.num_cores as u64) as usize;
        for core in 0..remainder {
            self.machine.charge_cycles(CoreId(core), 1);
        }
    }

    /// Run one poll quantum: `poll_interval_steps` application instructions,
    /// one driver poll, one detector batch, and — when the false-sharing rate
    /// crosses the threshold — the repair attachment decision. The quantum is
    /// reported to the session's [`Observer`] as [`LaserEvent`]s; if the
    /// observer breaks, the quantum's remaining events are skipped and the
    /// session reports [`SessionStatus::Stopped`]. Every event is emitted
    /// *after* the work it describes, so a stopped session is always in a
    /// consistent state (a later [`LaserSession::finish`] never undercounts).
    ///
    /// # Errors
    /// Returns an error if the machine exhausts its step budget.
    pub fn advance(&mut self) -> Result<SessionStatus, LaserError> {
        let steps_before = self.machine.steps();
        let status = self.machine.run_steps(self.config.poll_interval_steps);
        if self.observed {
            let quantum = LaserEvent::QuantumCompleted {
                steps: self.machine.steps() - steps_before,
                cycles: self.machine.cycles(),
            };
            if let ControlFlow::Break(reason) = self.emit(quantum) {
                return Ok(SessionStatus::Stopped(reason));
            }
        }

        self.driver.poll(&mut self.machine);
        let records = self.driver.read_records();
        if !records.is_empty() {
            self.detector.process(&records);
            let cycles = self.detector.processing_cycles(records.len());
            self.charge_detector_cycles(cycles);

            if self.observed {
                let dropped_total = self.driver.stats().events_dropped;
                let batch = LaserEvent::RecordBatch {
                    n: records.len(),
                    dropped: dropped_total - self.reported_dropped,
                };
                self.reported_dropped = dropped_total;
                if let ControlFlow::Break(reason) = self.emit(batch) {
                    return Ok(SessionStatus::Stopped(reason));
                }

                let update = LaserEvent::DetectionUpdate {
                    lines: self
                        .detector
                        .line_rates(self.machine.elapsed_benchmark_seconds()),
                };
                if let ControlFlow::Break(reason) = self.emit(update) {
                    return Ok(SessionStatus::Stopped(reason));
                }
            }
        }

        if self.config.enable_repair && self.repair.is_none() {
            if let Some(attached) = self.maybe_attach_repair() {
                if self.observed {
                    if let ControlFlow::Break(reason) = self.emit(attached) {
                        return Ok(SessionStatus::Stopped(reason));
                    }
                }
            }
        }

        if status == RunStatus::Running && self.machine.steps() >= self.max_steps {
            return Err(LaserError::Machine(MachineError::MaxStepsExceeded {
                steps: self.max_steps,
            }));
        }
        Ok(match status {
            RunStatus::Running => SessionStatus::Running,
            RunStatus::Done => SessionStatus::Done,
        })
    }

    /// Check the repair trigger and attach the SSB instrumentation when a
    /// profitable plan exists. Returns the event to report on attachment.
    fn maybe_attach_repair(&mut self) -> Option<LaserEvent> {
        let elapsed = self.machine.elapsed_benchmark_seconds();
        let pcs = self
            .detector
            .repair_trigger_pcs(elapsed, self.config.repair_rate_threshold);
        if pcs.is_empty() {
            return None;
        }
        let plan = RepairPlan::analyze(
            self.machine.program(),
            &pcs,
            self.config.min_stores_per_flush,
            self.config.max_plan_blocks,
        )?;
        if !plan.profitable {
            return None;
        }
        let hook = SsbHook::new(plan.clone(), self.num_cores);
        let event = LaserEvent::RepairAttached {
            at_cycle: self.machine.cycles(),
            instrumented_blocks: plan.instrumented_blocks.len(),
            flush_blocks: plan.flush_blocks.len(),
            ssb_stores: plan.ssb_stores.len(),
            estimated_stores_per_flush: plan.estimated_stores_per_flush,
        };
        self.repair = Some(RepairSummary {
            triggered_at_cycle: self.machine.cycles(),
            plan,
            stats: hook.stats(),
        });
        self.machine.attach_hook(Box::new(hook));
        Some(event)
    }

    /// Drive the session to completion.
    ///
    /// # Errors
    /// Returns [`LaserError::Machine`] if the machine exhausts its step
    /// budget, and [`LaserError::Stopped`] if the session's [`Observer`]
    /// cancelled the run.
    pub fn run(mut self) -> Result<LaserOutcome, LaserError> {
        loop {
            match self.advance()? {
                SessionStatus::Running => {}
                SessionStatus::Done => return Ok(self.finish()),
                SessionStatus::Stopped(reason) => return Err(LaserError::Stopped(reason)),
            }
        }
    }

    /// Flush what is still buffered in the PEBS hardware, fold the repair
    /// hook's final counters into the summary, and produce the outcome.
    ///
    /// The final flush batch is charged to the machine exactly like an
    /// [`advance`](LaserSession::advance) batch — the detector is still
    /// sharing the chip while it drains the device — so the outcome's cycle
    /// count accounts for every record the detector processed.
    pub fn finish(mut self) -> LaserOutcome {
        self.driver.poll(&mut self.machine);
        self.driver.flush();
        let records = self.driver.read_records();
        if !records.is_empty() {
            self.detector.process(&records);
            let cycles = self.detector.processing_cycles(records.len());
            self.charge_detector_cycles(cycles);

            if self.observed {
                let dropped_total = self.driver.stats().events_dropped;
                let batch = LaserEvent::RecordBatch {
                    n: records.len(),
                    dropped: dropped_total - self.reported_dropped,
                };
                self.reported_dropped = dropped_total;
                // The run is complete: a Break here has nothing left to cancel.
                let _ = self.emit(batch);
            }
        }

        if let Some(summary) = self.repair.as_mut() {
            // The hook owns its statistics; read them back out of the machine.
            if let Some(ssb) = self
                .machine
                .hook()
                .and_then(|h| h.as_any())
                .and_then(|a| a.downcast_ref::<SsbHook>())
            {
                summary.stats = ssb.stats();
            }
        }

        if self.observed {
            let finished = LaserEvent::Finished {
                steps: self.machine.steps(),
                cycles: self.machine.cycles(),
            };
            let _ = self.emit(finished);
        }

        let elapsed = self.machine.elapsed_benchmark_seconds();
        let report = self.detector.report(
            &self.workload,
            elapsed,
            self.config.rate_threshold_hitm_per_sec,
            self.repair.is_some(),
        );
        LaserOutcome {
            report,
            run: self.machine.result(),
            driver_stats: self.driver.stats(),
            detector_cycles: self.detector_cycles,
            repair: self.repair,
            elapsed_benchmark_seconds: elapsed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observe::{BudgetObserver, CellBudget, EventLog};
    use crate::system::Laser;
    use laser_isa::inst::{Operand, Reg};
    use laser_isa::ProgramBuilder;
    use laser_machine::ThreadSpec;

    /// Two threads false-sharing adjacent counters in one cache line, using
    /// the memory-destination increment compilers emit for `counter[i]++`.
    fn contended_image(name: &str, iters: u64) -> WorkloadImage {
        let mut b = ProgramBuilder::new(name);
        b.source("xthread.c", 12);
        let entry = b.block("entry");
        let body = b.block("body");
        let exit = b.block("exit");
        b.switch_to(entry);
        b.movi(Reg(2), 0);
        b.jump(body);
        b.switch_to(body);
        b.mem_add(Reg(0), 0, Operand::Imm(1), 8);
        b.source("xthread.c", 13);
        b.addi(Reg(2), Reg(2), 1);
        b.cmp_lt(Reg(3), Reg(2), Operand::Imm(iters));
        b.branch(Reg(3), body, exit);
        b.switch_to(exit);
        b.halt();
        let program = b.finish();
        let mut image = laser_machine::WorkloadImage::new(name, program);
        let base = image.layout_mut().heap_alloc(64, 64).unwrap();
        image.push_thread(ThreadSpec::new("t0", "entry").with_reg(Reg(0), base));
        image.push_thread(ThreadSpec::new("t1", "entry").with_reg(Reg(0), base + 8));
        image
    }

    /// The whole point of the session refactor: a full LASER run is one owned
    /// value that can move across threads.
    #[test]
    fn session_and_its_pieces_are_send() {
        fn assert_send<T: Send>() {}
        assert_send::<LaserSession>();
        assert_send::<Machine>();
        assert_send::<Driver>();
        assert_send::<Detector>();
        assert_send::<LaserOutcome>();
    }

    #[test]
    fn session_run_on_a_worker_thread_matches_inline_run() {
        let image = contended_image("xthread", 1500);

        let config = LaserConfig::default();
        let inline = LaserSession::new(config.clone(), &image, MachineConfig::default())
            .run()
            .unwrap();

        let session = LaserSession::new(config, &image, MachineConfig::default());
        let moved = std::thread::spawn(move || session.run().unwrap())
            .join()
            .unwrap();

        assert_eq!(inline.cycles(), moved.cycles());
        assert_eq!(inline.report, moved.report);
        assert_eq!(inline.detector_cycles, moved.detector_cycles);
    }

    /// Regression test for two charging bugs: `advance` used to drop the
    /// `cycles % num_cores` remainder when spreading detector overhead (the
    /// same bug class as the driver's record-copy charging), and `finish`
    /// accumulated the final flush batch's detector cycles without charging
    /// the cores at all. Every injected cycle must now be accounted for:
    /// driver overhead plus detector cycles, exactly.
    #[test]
    fn detector_overhead_is_charged_exactly_including_the_final_flush() {
        let image = contended_image("exact", 3000);
        // A per-record cost that is odd and coprime with the core count so
        // batch charges almost always leave a remainder.
        let config = LaserConfig {
            detector_cycles_per_record: 37,
            ..LaserConfig::detection_only()
        };
        let outcome = Laser::builder().config(config).build(&image).run().unwrap();
        assert!(outcome.detector_cycles > 0);
        // The final flush processed records too: the detector's total must be
        // per-record cost times *all* sampled records, not just the polled
        // batches.
        assert_eq!(
            outcome.detector_cycles,
            outcome.driver_stats.records_sampled * 37
        );
        assert_eq!(
            outcome.run.stats.injected_overhead_cycles,
            outcome.driver_stats.overhead_cycles + outcome.detector_cycles,
            "total charged must equal driver overhead + detector cycles"
        );
    }

    // Builder/legacy-constructor outcome equivalence is pinned by the broader
    // integration test in `tests/end_to_end.rs`, which covers all four entry
    // points under both configurations on a real workload.

    #[test]
    fn stopped_session_can_still_finish_without_undercounting() {
        // An observer that breaks on the first RecordBatch: the batch must
        // already be processed and charged when the stop surfaces, so a
        // subsequent finish() yields an outcome whose detector accounting
        // still balances.
        let image = contended_image("stopfin", 6000);
        let config = LaserConfig {
            detector_cycles_per_record: 37,
            ..LaserConfig::detection_only()
        };
        let mut session = Laser::builder()
            .config(config)
            .observer(|event: &LaserEvent| {
                if let LaserEvent::RecordBatch { .. } = event {
                    return ControlFlow::Break(StopReason::Cancelled("first batch".into()));
                }
                ControlFlow::Continue(())
            })
            .build(&image);
        loop {
            match session.advance().unwrap() {
                SessionStatus::Running => {}
                SessionStatus::Done => panic!("observer should stop before completion"),
                SessionStatus::Stopped(reason) => {
                    assert_eq!(reason, StopReason::Cancelled("first batch".into()));
                    break;
                }
            }
        }
        let outcome = session.finish();
        assert!(outcome.driver_stats.records_sampled > 0);
        assert_eq!(
            outcome.detector_cycles,
            outcome.driver_stats.records_sampled * 37,
            "every sampled record must be processed and charged exactly once"
        );
        assert_eq!(
            outcome.run.stats.injected_overhead_cycles,
            outcome.driver_stats.overhead_cycles + outcome.detector_cycles
        );
    }

    #[test]
    fn observer_stream_narrates_the_run_and_does_not_perturb_it() {
        let image = contended_image("events", 6000);
        let baseline = Laser::builder().build(&image).run().unwrap();

        let log = EventLog::new();
        let observed = Laser::builder()
            .observer(log.clone())
            .build(&image)
            .run()
            .unwrap();
        // Observation is read-only: the outcome is identical.
        assert_eq!(baseline.cycles(), observed.cycles());
        assert_eq!(baseline.report, observed.report);

        let events = log.events();
        assert!(matches!(events.last(), Some(LaserEvent::Finished { .. })));
        let total_steps: u64 = events
            .iter()
            .filter_map(|e| match e {
                LaserEvent::QuantumCompleted { steps, .. } => Some(*steps),
                _ => None,
            })
            .sum();
        assert_eq!(total_steps, observed.run.steps);
        let batched: u64 = events
            .iter()
            .filter_map(|e| match e {
                LaserEvent::RecordBatch { n, .. } => Some(*n as u64),
                _ => None,
            })
            .sum();
        assert_eq!(batched, observed.driver_stats.records_sampled);
        // This workload contends: the detector's live view reported it before
        // the run ended, and repair attached exactly once.
        assert!(events.iter().any(|e| matches!(
            e,
            LaserEvent::DetectionUpdate { lines } if !lines.is_empty()
        )));
        assert!(observed.repair.is_some(), "repair should trigger");
        assert_eq!(
            events
                .iter()
                .filter(|e| matches!(e, LaserEvent::RepairAttached { .. }))
                .count(),
            1
        );
    }

    #[test]
    fn observer_break_cancels_the_run_mid_flight() {
        let image = contended_image("cancel", 50_000);
        let mut quanta = 0u32;
        let err = Laser::builder()
            .observer(move |event: &LaserEvent| {
                if let LaserEvent::QuantumCompleted { .. } = event {
                    quanta += 1;
                    if quanta >= 2 {
                        return ControlFlow::Break(StopReason::Cancelled("test".into()));
                    }
                }
                ControlFlow::Continue(())
            })
            .build(&image)
            .run()
            .unwrap_err();
        assert_eq!(
            err,
            LaserError::Stopped(StopReason::Cancelled("test".into()))
        );
    }

    #[test]
    fn budget_observer_stops_a_session_at_its_step_budget() {
        let image = contended_image("budget", 50_000);
        let config = LaserConfig::detection_only();
        let limit = config.poll_interval_steps * 3;
        let err = Laser::builder()
            .config(config)
            .observer(BudgetObserver::new(CellBudget::steps(limit)))
            .build(&image)
            .run()
            .unwrap_err();
        match err {
            LaserError::Stopped(StopReason::StepBudget { limit: l, used }) => {
                assert_eq!(l, limit);
                assert!(used > limit);
            }
            other => panic!("expected a step-budget stop, got {other:?}"),
        }
    }

    #[test]
    fn advance_reports_stopped_and_leaves_state_inspectable() {
        let image = contended_image("stopped", 50_000);
        let mut session = Laser::builder()
            .observer(|_: &LaserEvent| {
                ControlFlow::Break(StopReason::Cancelled("immediately".into()))
            })
            .build(&image);
        let status = session.advance().unwrap();
        assert_eq!(
            status,
            SessionStatus::Stopped(StopReason::Cancelled("immediately".into()))
        );
        // The partial run is still inspectable.
        assert!(session.machine().steps() > 0);
        assert!(!session.repair_triggered());
    }
}
