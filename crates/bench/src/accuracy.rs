//! Detection-accuracy experiments: Table 1, Table 2 and Figure 9.
//!
//! Like the performance figures, each table is a *planner* over a [`Grid`]
//! plus a *view* over the cached [`GridResult`] — the accuracy experiments
//! share their `laser-detect` and `sheriff-detect` cells with each other (and
//! the campaign's native cells with every overhead figure) instead of
//! re-simulating them.

use laser_baselines::SheriffFailure;
use laser_core::ContentionKind;
use laser_workloads::{BugKind, WorkloadSpec};

use crate::grid::{ExperimentError, Grid, GridResult};
use crate::runner::{score_locations, score_reported, ExperimentScale};
use crate::tool::ToolSpec;

/// One row of Table 1.
#[derive(Debug, Clone)]
pub struct Table1Row {
    /// Workload name.
    pub name: &'static str,
    /// Number of known performance bugs.
    pub bugs: usize,
    /// LASER false negatives / false positives.
    pub laser: (usize, usize),
    /// VTune false negatives / false positives.
    pub vtune: (usize, usize),
    /// Sheriff-Detect result: FN/FP, or the failure that prevented the run.
    pub sheriff: Result<(usize, usize), SheriffFailure>,
}

/// Table 1: detection accuracy of LASER, VTune and Sheriff-Detect.
#[derive(Debug, Clone, Default)]
pub struct Table1Report {
    /// Per-workload rows.
    pub rows: Vec<Table1Row>,
}

impl Table1Report {
    /// Sum of (bugs, LASER FN, LASER FP, VTune FN, VTune FP, Sheriff FN,
    /// Sheriff FP) across all rows.
    pub fn totals(&self) -> (usize, usize, usize, usize, usize, usize, usize) {
        let mut t = (0, 0, 0, 0, 0, 0, 0);
        for r in &self.rows {
            t.0 += r.bugs;
            t.1 += r.laser.0;
            t.2 += r.laser.1;
            t.3 += r.vtune.0;
            t.4 += r.vtune.1;
            if let Ok((f, p)) = r.sheriff {
                t.5 += f;
                t.6 += p;
            } else {
                // A tool that cannot run the workload misses all of its bugs.
                t.5 += r.bugs;
            }
        }
        t
    }

    /// Render as the paper's table.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "Table 1: {:<20} {:>4} | {:>8} {:>8} | {:>8} {:>8} | {:>16}",
            "benchmark", "bugs", "laserFN", "laserFP", "vtuneFN", "vtuneFP", "sheriffDet FN/FP"
        );
        for r in &self.rows {
            let sheriff = match r.sheriff {
                Ok((f, p)) => format!("{f}/{p}"),
                Err(SheriffFailure::Crash) => "x".to_string(),
                Err(SheriffFailure::Incompatible) => "i".to_string(),
            };
            let _ = writeln!(
                out,
                "         {:<20} {:>4} | {:>8} {:>8} | {:>8} {:>8} | {:>16}",
                r.name, r.bugs, r.laser.0, r.laser.1, r.vtune.0, r.vtune.1, sheriff
            );
        }
        let t = self.totals();
        let _ = writeln!(
            out,
            "         {:<20} {:>4} | {:>8} {:>8} | {:>8} {:>8} | {:>13}/{}",
            "TOTAL", t.0, t.1, t.2, t.3, t.4, t.5, t.6
        );
        out
    }
}

fn sheriff_score(spec: &WorkloadSpec, reported_lines: usize) -> (usize, usize) {
    // Sheriff reports falsely-shared objects (allocation sites). A false-
    // sharing bug counts as found when Sheriff reported at least one object;
    // true-sharing bugs are outside its scope. Reports beyond the number of
    // false-sharing bugs count as false positives.
    let fs_bugs = spec
        .known_bugs
        .iter()
        .filter(|b| b.kind == BugKind::FalseSharing)
        .count();
    let ts_bugs = spec.known_bugs.len() - fs_bugs;
    let found = fs_bugs.min(if reported_lines > 0 { fs_bugs } else { 0 });
    let false_negatives = (fs_bugs - found) + ts_bugs;
    let false_positives = reported_lines.saturating_sub(found);
    (false_negatives, false_positives)
}

/// Plan the cells Table 1 needs.
pub fn plan_table1(grid: &mut Grid) {
    for spec in grid.scale().workloads() {
        grid.request(&spec, ToolSpec::LaserDetect);
        grid.request(&spec, ToolSpec::Vtune);
        grid.request(&spec, ToolSpec::SheriffDetect);
    }
}

/// Derive Table 1 from cached cells.
///
/// # Errors
/// Propagates missing or failed cells.
pub fn table1_from_grid(grid: &GridResult) -> Result<Table1Report, ExperimentError> {
    let mut rows = Vec::new();
    for spec in grid.scale().workloads() {
        let laser = score_reported(
            &spec,
            &grid.tool_run(spec.name, ToolSpec::LaserDetect)?.reported,
        );
        let vtune = score_reported(&spec, &grid.tool_run(spec.name, ToolSpec::Vtune)?.reported);
        let sheriff = grid
            .sheriff_run(spec.name, ToolSpec::SheriffDetect)?
            .map(|run| sheriff_score(&spec, run.reported.len()));
        rows.push(Table1Row {
            name: spec.name,
            bugs: spec.known_bugs.len(),
            laser,
            vtune,
            sheriff,
        });
    }
    Ok(Table1Report { rows })
}

/// Run the Table 1 experiment on a single-table grid.
///
/// # Errors
/// Propagates simulator errors.
pub fn table1_accuracy(scale: &ExperimentScale) -> Result<Table1Report, ExperimentError> {
    let mut grid = Grid::new(*scale);
    plan_table1(&mut grid);
    table1_from_grid(&grid.run())
}

/// One row of Table 2: the contention type of a known bug versus what the
/// tools reported.
#[derive(Debug, Clone)]
pub struct Table2Row {
    /// Workload name.
    pub name: &'static str,
    /// The bug's actual contention type.
    pub actual: BugKind,
    /// What LASERDETECT reported for the bug's location (None if unreported).
    pub laser: Option<ContentionKind>,
    /// Whether Sheriff-Detect reported the bug (it can only ever say "false
    /// sharing"), or why it could not run.
    pub sheriff: Result<bool, SheriffFailure>,
}

/// Table 2: contention-type identification for the buggy workloads.
#[derive(Debug, Clone, Default)]
pub struct Table2Report {
    /// Per-workload rows.
    pub rows: Vec<Table2Row>,
}

impl Table2Report {
    /// Number of rows where LASER reported the correct type.
    pub fn laser_correct(&self) -> usize {
        self.rows
            .iter()
            .filter(|r| {
                matches!(
                    (r.actual, r.laser),
                    (BugKind::FalseSharing, Some(ContentionKind::FalseSharing))
                        | (BugKind::TrueSharing, Some(ContentionKind::TrueSharing))
                )
            })
            .count()
    }

    /// Render as the paper's table.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "Table 2: {:<20} {:>10} {:>16} {:>16}",
            "benchmark", "contention", "LaserDetect", "Sheriff-Detect"
        );
        for r in &self.rows {
            let actual = match r.actual {
                BugKind::FalseSharing => "FS",
                BugKind::TrueSharing => "TS",
            };
            let laser = match r.laser {
                Some(ContentionKind::FalseSharing) => "FS",
                Some(ContentionKind::TrueSharing) => "TS",
                Some(ContentionKind::Unknown) => "unknown",
                None => "-",
            };
            let sheriff = match r.sheriff {
                Ok(true) => "FS",
                Ok(false) => "-",
                Err(SheriffFailure::Crash) => "x",
                Err(SheriffFailure::Incompatible) => "i",
            };
            let _ = writeln!(
                out,
                "         {:<20} {:>10} {:>16} {:>16}",
                r.name, actual, laser, sheriff
            );
        }
        let _ = writeln!(
            out,
            "         LASER correct for {} of {} bugs",
            self.laser_correct(),
            self.rows.len()
        );
        out
    }
}

/// Plan the cells Table 2 needs.
pub fn plan_table2(grid: &mut Grid) {
    for spec in grid.scale().workloads() {
        if !spec.has_bugs() {
            continue;
        }
        grid.request(&spec, ToolSpec::LaserDetect);
        grid.request(&spec, ToolSpec::SheriffDetect);
    }
}

/// Derive Table 2 from cached cells.
///
/// # Errors
/// Propagates missing or failed cells.
pub fn table2_from_grid(grid: &GridResult) -> Result<Table2Report, ExperimentError> {
    let mut rows = Vec::new();
    for spec in grid.scale().workloads() {
        if !spec.has_bugs() {
            continue;
        }
        let bug = &spec.known_bugs[0];
        // The report line for the bug with the most records determines the
        // reported type.
        let laser = grid
            .tool_run(spec.name, ToolSpec::LaserDetect)?
            .reported
            .iter()
            .filter(|l| {
                l.location()
                    .is_some_and(|(f, line)| spec.is_known_bug_location(f, line))
            })
            .max_by_key(|l| l.hitm_records)
            .and_then(|l| l.kind);
        let sheriff = grid
            .sheriff_run(spec.name, ToolSpec::SheriffDetect)?
            .map(|run| !run.reported.is_empty());
        rows.push(Table2Row {
            name: spec.name,
            actual: bug.kind,
            laser,
            sheriff,
        });
    }
    Ok(Table2Report { rows })
}

/// Run the Table 2 experiment on a single-table grid.
///
/// # Errors
/// Propagates simulator errors.
pub fn table2_types(scale: &ExperimentScale) -> Result<Table2Report, ExperimentError> {
    let mut grid = Grid::new(*scale);
    plan_table2(&mut grid);
    table2_from_grid(&grid.run())
}

/// One point of Figure 9: total false negatives and false positives across
/// the suite at one rate threshold.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig9Point {
    /// Rate threshold in HITM records per second.
    pub threshold: f64,
    /// Total false negatives across all workloads.
    pub false_negatives: usize,
    /// Total false positives across all workloads.
    pub false_positives: usize,
}

/// Figure 9: sensitivity of LASER's accuracy to the rate threshold.
#[derive(Debug, Clone, Default)]
pub struct Fig9Report {
    /// One point per threshold.
    pub points: Vec<Fig9Point>,
}

impl Fig9Report {
    /// Render the sweep.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "Figure 9: {:>12} {:>8} {:>8}", "HITM/s", "FN", "FP");
        for p in &self.points {
            let _ = writeln!(
                out,
                "          {:>12.0} {:>8} {:>8}",
                p.threshold, p.false_negatives, p.false_positives
            );
        }
        out
    }
}

/// Plan the cells the Figure 9 threshold sweep needs: one unfiltered
/// (`laser-detect-raw`) detection run per workload; every candidate threshold
/// is applied offline to the cached report, just as the paper's detector
/// allows.
pub fn plan_fig9(grid: &mut Grid) {
    for spec in grid.scale().workloads() {
        grid.request(&spec, ToolSpec::LaserDetectRaw);
    }
}

/// Derive Figure 9 from cached cells by applying each threshold offline.
///
/// # Errors
/// Propagates missing or failed cells.
pub fn fig9_from_grid(
    grid: &GridResult,
    thresholds: &[f64],
) -> Result<Fig9Report, ExperimentError> {
    let mut reports = Vec::new();
    for spec in grid.scale().workloads() {
        let run = grid.tool_run(spec.name, ToolSpec::LaserDetectRaw)?;
        reports.push((spec, run.reported.clone()));
    }
    let mut points = Vec::new();
    for &threshold in thresholds {
        let mut false_negatives = 0;
        let mut false_positives = 0;
        for (spec, reported) in &reports {
            let kept: Vec<(String, u32)> = reported
                .iter()
                .filter(|l| l.rate_per_sec >= threshold)
                .filter_map(|l| l.location().map(|(f, line)| (f.to_string(), line)))
                .collect();
            let (fneg, fpos) = score_locations(spec, &kept);
            false_negatives += fneg;
            false_positives += fpos;
        }
        points.push(Fig9Point {
            threshold,
            false_negatives,
            false_positives,
        });
    }
    Ok(Fig9Report { points })
}

/// Run the Figure 9 threshold sweep on a single-figure grid.
///
/// # Errors
/// Propagates simulator errors.
pub fn fig9_threshold_sweep(
    scale: &ExperimentScale,
    thresholds: &[f64],
) -> Result<Fig9Report, ExperimentError> {
    let mut grid = Grid::new(*scale);
    plan_fig9(&mut grid);
    fig9_from_grid(&grid.run(), thresholds)
}

/// The thresholds of the paper's Figure 9 (32 HITM/s to 64K HITM/s, log scale).
pub fn fig9_thresholds() -> Vec<f64> {
    (5..=16).map(|p| (1u64 << p) as f64).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ExperimentScale {
        // 0.10 is the smallest scale at which enough HITM records survive
        // sampling + imprecision for the type classification to be stable.
        ExperimentScale {
            workload_scale: 0.10,
            only: Some(&["histogram'", "kmeans", "swaptions", "linear_regression"]),
        }
    }

    #[test]
    fn table1_finds_bugs_with_no_false_negatives_on_subset() {
        let report = table1_accuracy(&tiny()).unwrap();
        assert_eq!(report.rows.len(), 4);
        let totals = report.totals();
        assert_eq!(
            totals.1,
            0,
            "LASER should miss no bugs: {}",
            report.render()
        );
        // VTune reports at least as many false positives as LASER.
        assert!(totals.4 >= totals.2, "{}", report.render());
    }

    #[test]
    fn table2_reports_types_for_buggy_workloads() {
        let report = table2_types(&tiny()).unwrap();
        assert_eq!(report.rows.len(), 3); // histogram', kmeans, linear_regression
        let hist = report.rows.iter().find(|r| r.name == "histogram'").unwrap();
        assert_eq!(
            hist.laser,
            Some(ContentionKind::FalseSharing),
            "{}",
            report.render()
        );
        assert!(!report.render().is_empty());
    }

    #[test]
    fn fig9_higher_thresholds_trade_fp_for_fn() {
        let report = fig9_threshold_sweep(&tiny(), &[1.0, 1_000.0, 10_000_000.0]).unwrap();
        assert_eq!(report.points.len(), 3);
        let loosest = report.points[0];
        let strictest = report.points[2];
        assert!(loosest.false_positives >= strictest.false_positives);
        assert!(strictest.false_negatives >= loosest.false_negatives);
        // An absurdly high threshold filters everything => every bug missed.
        assert!(strictest.false_negatives >= 3);
        assert_eq!(strictest.false_positives, 0);
    }

    #[test]
    fn fig9_threshold_grid_matches_paper_range() {
        let t = fig9_thresholds();
        assert_eq!(t.first().copied(), Some(32.0));
        assert_eq!(t.last().copied(), Some(65536.0));
    }

    #[test]
    fn accuracy_tables_share_detection_cells_in_one_grid() {
        let mut grid = Grid::new(tiny());
        plan_table1(&mut grid);
        plan_table2(&mut grid);
        // Table 2's laser-detect/sheriff-detect cells are a subset of
        // Table 1's: the union costs exactly Table 1's 3 cells per workload.
        assert_eq!(grid.cells(), 3 * 4);
        let result = grid.run();
        assert_eq!(table1_from_grid(&result).unwrap().rows.len(), 4);
        assert_eq!(table2_from_grid(&result).unwrap().rows.len(), 3);
    }
}
