//! Bad fixture: unsafe code and mutable statics.
//! Expected findings: `unsafe-code` — this rule applies even in test code.

static mut COUNTER: u64 = 0;

pub fn bump() -> u64 {
    unsafe {
        COUNTER += 1;
        COUNTER
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn even_tests_may_not_use_unsafe() {
        let x = [1u8, 2, 3];
        let _first = unsafe { *x.as_ptr() };
    }
}
