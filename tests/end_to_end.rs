//! End-to-end integration tests spanning the whole stack: workloads →
//! machine → PEBS → detector → repair, exercised through the public API of
//! the umbrella crate.

use laser::workloads::{find, BugKind, BuildOptions};
use laser::{ContentionKind, Laser, LaserConfig, LaserSession, MachineConfig};

fn opts() -> BuildOptions {
    BuildOptions::scaled(0.2)
}

#[test]
fn laser_finds_every_headline_bug() {
    // The three bugs the paper discusses most: intense false sharing in
    // histogram' and linear_regression, and the novel true sharing in dedup.
    for name in [
        "histogram'",
        "linear_regression",
        "dedup",
        "bodytrack",
        "volrend",
    ] {
        let spec = find(name).unwrap();
        let outcome = Laser::new(LaserConfig::detection_only())
            .run(&spec.build(&opts()))
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        let found = spec.known_bugs.iter().any(|bug| {
            bug.lines
                .iter()
                .any(|&l| outcome.report.line(&bug.file, l).is_some())
        });
        assert!(
            found,
            "{name}: bug not reported.\n{}",
            outcome.report.render()
        );
    }
}

#[test]
fn builder_and_legacy_constructors_produce_identical_outcomes() {
    // The fluent builder is the single construction path; the legacy entry
    // points are thin wrappers over it and must agree with it exactly, on a
    // representative contending workload under both LASER configurations.
    for config in [LaserConfig::default(), LaserConfig::detection_only()] {
        let spec = find("histogram'").unwrap();
        let image = spec.build(&opts());

        let via_builder = Laser::builder()
            .config(config.clone())
            .machine(MachineConfig::default())
            .build(&image)
            .run()
            .unwrap();
        let via_laser_run = Laser::new(config.clone()).run(&image).unwrap();
        let via_session_new = LaserSession::new(config.clone(), &image, MachineConfig::default())
            .run()
            .unwrap();
        let via_session_on = Laser::new(config)
            .session_on(&image, MachineConfig::default())
            .run()
            .unwrap();

        for other in [&via_laser_run, &via_session_new, &via_session_on] {
            assert_eq!(via_builder.cycles(), other.cycles());
            assert_eq!(via_builder.report, other.report);
            assert_eq!(via_builder.detector_cycles, other.detector_cycles);
            assert_eq!(via_builder.driver_stats, other.driver_stats);
            assert_eq!(
                via_builder.repair.is_some(),
                other.repair.is_some(),
                "repair decision must not depend on the construction path"
            );
        }
    }
}

#[test]
fn contention_free_workloads_stay_quiet_and_cheap() {
    for name in ["blackscholes", "swaptions", "string_match", "histogram"] {
        let spec = find(name).unwrap();
        let image = spec.build(&opts());
        let native = Laser::run_native(&image).unwrap();
        assert_eq!(
            native.stats.hitm_events, 0,
            "{name} should have no contention"
        );
        let outcome = Laser::new(LaserConfig::default()).run(&image).unwrap();
        assert!(
            outcome.report.lines.is_empty(),
            "{name}: {}",
            outcome.report.render()
        );
        assert!(outcome.repair.is_none());
        let overhead = outcome.run.cycles as f64 / native.cycles as f64;
        assert!(overhead < 1.03, "{name} overhead {overhead}");
    }
}

#[test]
fn true_sharing_bugs_are_classified_as_true_sharing() {
    for name in ["dedup", "bodytrack", "volrend"] {
        let spec = find(name).unwrap();
        let bug = &spec.known_bugs[0];
        assert_eq!(bug.kind, BugKind::TrueSharing);
        let outcome = Laser::new(LaserConfig::detection_only())
            .run(&spec.build(&opts()))
            .unwrap();
        let reported = outcome
            .report
            .lines
            .iter()
            .filter(|l| spec.is_known_bug_location(&l.location.file, l.location.line))
            .max_by_key(|l| l.hitm_records)
            .unwrap_or_else(|| panic!("{name}: bug line missing\n{}", outcome.report.render()));
        assert_eq!(
            reported.kind,
            ContentionKind::TrueSharing,
            "{name} reported as {:?}\n{}",
            reported.kind,
            outcome.report.render()
        );
    }
}

#[test]
fn false_sharing_bugs_are_not_classified_as_true_sharing() {
    // histogram' and lu_ncb are read-write false sharing: LASER should call
    // them false sharing. linear_regression is write-write: the paper reports
    // LASER cannot conclusively type it (it must not be called true sharing).
    for (name, allow_unknown) in [
        ("histogram'", false),
        ("lu_ncb", false),
        ("linear_regression", true),
    ] {
        let spec = find(name).unwrap();
        let outcome = Laser::new(LaserConfig::detection_only())
            .run(&spec.build(&opts()))
            .unwrap();
        let reported = outcome
            .report
            .lines
            .iter()
            .filter(|l| spec.is_known_bug_location(&l.location.file, l.location.line))
            .max_by_key(|l| l.hitm_records)
            .unwrap_or_else(|| panic!("{name}: bug line missing\n{}", outcome.report.render()));
        match reported.kind {
            ContentionKind::FalseSharing => {}
            ContentionKind::Unknown if allow_unknown => {}
            other => panic!(
                "{name} classified as {other:?}\n{}",
                outcome.report.render()
            ),
        }
    }
}

#[test]
fn online_repair_speeds_up_intense_false_sharing() {
    for name in ["histogram'", "linear_regression"] {
        let spec = find(name).unwrap();
        // Native-style (full-scale) input: online repair needs enough of the
        // run left after detection for the SSB to pay off.
        let image = spec.build(&BuildOptions::default());
        let native = Laser::run_native(&image).unwrap();
        let outcome = Laser::new(LaserConfig::default()).run(&image).unwrap();
        assert!(outcome.repair.is_some(), "{name}: repair should trigger");
        assert!(
            outcome.run.cycles < native.cycles,
            "{name}: repaired run ({}) should beat native ({})",
            outcome.run.cycles,
            native.cycles
        );
    }
}

#[test]
fn repair_is_not_attempted_for_true_sharing_or_mild_contention() {
    for name in ["bodytrack", "reverse_index", "volrend"] {
        let spec = find(name).unwrap();
        let outcome = Laser::new(LaserConfig::default())
            .run(&spec.build(&opts()))
            .unwrap();
        assert!(
            outcome.repair.is_none(),
            "{name}: repair should not trigger ({:?})",
            outcome.repair.as_ref().map(|r| &r.plan)
        );
    }
}

#[test]
fn overhead_across_the_whole_suite_is_low_on_geometric_mean() {
    let mut ratios = Vec::new();
    for spec in laser::workloads::registry() {
        let image = spec.build(&BuildOptions::scaled(0.1));
        let native = Laser::run_native(&image).unwrap();
        let outcome = Laser::new(LaserConfig::detection_only())
            .run(&image)
            .unwrap();
        ratios.push(outcome.run.cycles as f64 / native.cycles.max(1) as f64);
    }
    let geomean = (ratios.iter().map(|v| v.ln()).sum::<f64>() / ratios.len() as f64).exp();
    assert!(geomean < 1.06, "suite geomean overhead {geomean}");
    assert!(
        ratios.iter().all(|&r| r < 1.35),
        "worst case too high: {ratios:?}"
    );
}

#[test]
fn manual_fixes_recover_native_performance() {
    // The fix guided by the detector's report removes (nearly) all HITM
    // traffic for the false-sharing bugs.
    for name in ["histogram'", "linear_regression", "lu_ncb"] {
        let spec = find(name).unwrap();
        let buggy = Laser::run_native(&spec.build(&opts())).unwrap();
        let fixed = Laser::run_native(&spec.build(&BuildOptions {
            fixed: true,
            ..opts()
        }))
        .unwrap();
        assert!(
            fixed.stats.hitm_events * 10 <= buggy.stats.hitm_events.max(10),
            "{name}: fix should remove HITM traffic"
        );
        assert!(
            fixed.cycles < buggy.cycles,
            "{name}: fix should not slow the program down"
        );
    }
}
