//! Hook attachment and dispatch — the machine side of the Pin substitute.
//!
//! The hook is temporarily taken out of the machine while it runs so it can
//! be handed a [`HookCtx`] borrowing the machine's inner state without
//! aliasing; every dispatch helper restores it afterwards.

use laser_isa::program::{BlockId, Pc};

use crate::hook::{ExecHook, HookAction, HookCtx, MemOp};
use crate::machine::Machine;

impl Machine {
    /// Attach a dynamic-instrumentation hook (the Pin substitute). Replaces
    /// any previously attached hook.
    pub fn attach_hook(&mut self, hook: Box<dyn ExecHook>) {
        self.hook = Some(hook);
    }

    /// Detach and return the current hook, if any.
    pub fn detach_hook(&mut self) -> Option<Box<dyn ExecHook>> {
        self.hook.take()
    }

    /// The currently attached hook, if any (e.g. to read tool statistics via
    /// [`ExecHook::as_any`] while the machine still owns the hook).
    pub fn hook(&self) -> Option<&dyn ExecHook> {
        self.hook.as_deref()
    }

    /// True if a hook is currently attached.
    pub fn has_hook(&self) -> bool {
        self.hook.is_some()
    }

    pub(crate) fn hook_mem_op(&mut self, ti: usize, op: &MemOp) -> Option<HookAction> {
        let mut hook = self.hook.take()?;
        let core = self.threads[ti].core;
        let now = self.core_cycles[core];
        let action = {
            let mut ctx = HookCtx {
                inner: &mut self.inner,
                core,
                now,
            };
            hook.on_mem_op(&mut ctx, op)
        };
        self.hook = Some(hook);
        Some(action)
    }

    pub(crate) fn hook_fence(&mut self, ti: usize, pc: Pc) -> u64 {
        let Some(mut hook) = self.hook.take() else {
            return 0;
        };
        let core = self.threads[ti].core;
        let now = self.core_cycles[core];
        let cycles = {
            let mut ctx = HookCtx {
                inner: &mut self.inner,
                core,
                now,
            };
            hook.on_fence(&mut ctx, pc)
        };
        self.hook = Some(hook);
        cycles
    }

    pub(crate) fn hook_block_entry(&mut self, ti: usize, block: BlockId) -> u64 {
        let Some(mut hook) = self.hook.take() else {
            return 0;
        };
        let core = self.threads[ti].core;
        let now = self.core_cycles[core];
        let cycles = {
            let mut ctx = HookCtx {
                inner: &mut self.inner,
                core,
                now,
            };
            hook.on_block_entry(&mut ctx, block)
        };
        self.hook = Some(hook);
        cycles
    }

    pub(crate) fn hook_thread_exit(&mut self, ti: usize) -> u64 {
        let Some(mut hook) = self.hook.take() else {
            return 0;
        };
        let core = self.threads[ti].core;
        let now = self.core_cycles[core];
        let cycles = {
            let mut ctx = HookCtx {
                inner: &mut self.inner,
                core,
                now,
            };
            hook.on_thread_exit(&mut ctx)
        };
        self.hook = Some(hook);
        cycles
    }
}
