//! The cycle cost model.
//!
//! The absolute values are loosely calibrated to a Haswell-class part (L1 hit
//! ≈ 4 cycles, LLC hit ≈ 40, cross-core HITM transfer ≈ 90, DRAM ≈ 200); what
//! matters for reproducing the paper's figures is the *ratio* between a local
//! hit and a HITM transfer, because that ratio is what contention repair
//! recovers.

use serde::{Deserialize, Serialize};

/// Latencies (in cycles) charged by the simulator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LatencyModel {
    /// Non-memory instruction (ALU, move, compare, nop).
    pub alu: u64,
    /// Branch or jump.
    pub branch: u64,
    /// Load/store hitting in the local L1.
    pub l1_hit: u64,
    /// Load/store hitting in the shared LLC (line not present locally, not
    /// modified remotely).
    pub llc_hit: u64,
    /// Access to a line that is Modified in a remote core's cache — the HITM
    /// case. This is the expensive coherence transition LASER removes.
    pub hitm: u64,
    /// Cold / capacity miss to DRAM.
    pub dram: u64,
    /// Explicit memory fence (store-buffer drain).
    pub fence: u64,
    /// Extra cost of an atomic read-modify-write on top of the line access.
    pub atomic_extra: u64,
    /// Starting a hardware transaction.
    pub htm_begin: u64,
    /// Committing a hardware transaction.
    pub htm_commit: u64,
    /// Pause (spin hint).
    pub pause: u64,
    /// Core clock frequency in Hz, used to convert cycles to seconds for the
    /// detector's HITM-rate thresholds (the paper's machine runs at 3.4 GHz).
    pub freq_hz: u64,
}

impl Default for LatencyModel {
    fn default() -> Self {
        LatencyModel {
            alu: 1,
            branch: 1,
            l1_hit: 4,
            llc_hit: 40,
            hitm: 90,
            dram: 200,
            fence: 20,
            atomic_extra: 15,
            htm_begin: 30,
            htm_commit: 30,
            pause: 2,
            freq_hz: 3_400_000_000,
        }
    }
}

impl LatencyModel {
    /// Convert a cycle count to seconds at this model's clock frequency.
    pub fn cycles_to_seconds(&self, cycles: u64) -> f64 {
        cycles as f64 / self.freq_hz as f64
    }

    /// The ratio between a HITM transfer and a local L1 hit; the headroom that
    /// contention repair can recover per access.
    pub fn hitm_penalty_ratio(&self) -> f64 {
        self.hitm as f64 / self.l1_hit as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_model_is_ordered_sensibly() {
        let m = LatencyModel::default();
        assert!(m.l1_hit < m.llc_hit);
        assert!(m.llc_hit < m.hitm);
        assert!(m.hitm < m.dram);
        assert!(m.hitm_penalty_ratio() > 10.0);
    }

    #[test]
    fn cycle_second_conversion() {
        let m = LatencyModel::default();
        let s = m.cycles_to_seconds(3_400_000_000);
        assert!((s - 1.0).abs() < 1e-9);
    }
}
