//! Machine-readable emission: every campaign and figure report renders to
//! JSON (via the [`serde::json`] shim) and CSV in addition to its text table.
//!
//! The [`Emit`] trait is what `experiments --format json|csv` calls. JSON
//! documents are single objects with a `"kind"` discriminator; CSV output is
//! one header line plus one row per entry. Both derive from the same
//! aggregated results as the text tables, so they inherit the campaign
//! runner's determinism: identical for any thread count.

use serde::json::Value;

use laser_baselines::SheriffFailure;

use crate::accuracy::{Fig9Report, Table1Report, Table2Report};
use crate::campaign::CampaignResult;
use crate::characterization::Fig3Report;
use crate::performance::{Fig10Report, Fig11Report, Fig12Report, Fig13Report, Fig14Report};
use crate::xsocket::XsocketReport;

/// A result that can be emitted in machine-readable formats.
pub trait Emit {
    /// The JSON document for this result.
    fn to_json(&self) -> Value;

    /// The CSV table for this result (header line + rows, `\n`-terminated).
    fn to_csv(&self) -> String;
}

/// Quote a CSV field when it contains a delimiter, quote or newline.
fn csv_field(s: &str) -> String {
    if s.contains([',', '"', '\n', '\r']) {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

/// Join fields into one CSV row.
fn csv_row(fields: &[String]) -> String {
    fields
        .iter()
        .map(|f| csv_field(f))
        .collect::<Vec<_>>()
        .join(",")
}

fn sheriff_status(f: SheriffFailure) -> &'static str {
    match f {
        SheriffFailure::Crash => "crash",
        SheriffFailure::Incompatible => "incompatible",
    }
}

impl Emit for CampaignResult {
    fn to_json(&self) -> Value {
        let cells = self
            .cells
            .iter()
            .map(|c| {
                let mut v = Value::object()
                    .set("workload", c.workload.as_str())
                    .set("tool", c.tool.as_str())
                    .set("status", c.status());
                match &c.outcome {
                    Ok(run) => {
                        v = v
                            .set("cycles", run.cycles)
                            .set("normalized", self.normalized(&c.workload, &c.tool))
                            .set("repair_invoked", run.repair_invoked)
                            .set(
                                "reported",
                                Value::Array(
                                    run.reported_labels().iter().map(|&l| l.into()).collect(),
                                ),
                            )
                            .set("failure", Value::Null);
                    }
                    Err(failure) => {
                        v = v
                            .set("cycles", Value::Null)
                            .set("normalized", Value::Null)
                            .set("repair_invoked", Value::Null)
                            .set("reported", Value::Array(Vec::new()))
                            .set("failure", failure.to_string());
                    }
                }
                v
            })
            .collect();
        Value::object()
            .set("kind", "campaign")
            .set("cells", Value::Array(cells))
    }

    fn to_csv(&self) -> String {
        let mut out = String::from(
            "workload,tool,status,cycles,normalized,repair_invoked,reported,failure\n",
        );
        for c in &self.cells {
            let row = match &c.outcome {
                Ok(run) => csv_row(&[
                    c.workload.clone(),
                    c.tool.clone(),
                    c.status().to_string(),
                    run.cycles.to_string(),
                    self.normalized(&c.workload, &c.tool)
                        .map(|n| format!("{n:.6}"))
                        .unwrap_or_default(),
                    run.repair_invoked.to_string(),
                    run.reported_labels().join("; "),
                    String::new(),
                ]),
                Err(failure) => csv_row(&[
                    c.workload.clone(),
                    c.tool.clone(),
                    c.status().to_string(),
                    String::new(),
                    String::new(),
                    String::new(),
                    String::new(),
                    failure.to_string(),
                ]),
            };
            out.push_str(&row);
            out.push('\n');
        }
        out
    }
}

impl Emit for Fig3Report {
    fn to_json(&self) -> Value {
        let cases = self
            .cases
            .iter()
            .map(|c| {
                Value::object()
                    .set("id", c.id)
                    .set("category", c.label)
                    .set("addr_correct", c.addr_correct)
                    .set("pc_exact", c.pc_exact)
                    .set("pc_adjacent", c.pc_adjacent)
                    .set("events", c.events)
            })
            .collect();
        let averages = ["TSRW", "FSRW", "TSWW", "FSWW"]
            .iter()
            .map(|&label| {
                Value::object()
                    .set("category", label)
                    .set(
                        "addr_correct",
                        self.category_mean(label, |c| c.addr_correct),
                    )
                    .set("pc_exact", self.category_mean(label, |c| c.pc_exact))
                    .set("pc_adjacent", self.category_mean(label, |c| c.pc_adjacent))
            })
            .collect();
        Value::object()
            .set("kind", "fig3")
            .set("cases", Value::Array(cases))
            .set("category_averages", Value::Array(averages))
    }

    fn to_csv(&self) -> String {
        let mut out = String::from("case,category,addr_correct,pc_exact,pc_adjacent,events\n");
        for c in &self.cases {
            out.push_str(&csv_row(&[
                c.id.to_string(),
                c.label.to_string(),
                format!("{:.6}", c.addr_correct),
                format!("{:.6}", c.pc_exact),
                format!("{:.6}", c.pc_adjacent),
                c.events.to_string(),
            ]));
            out.push('\n');
        }
        out
    }
}

impl Emit for Fig9Report {
    fn to_json(&self) -> Value {
        let points = self
            .points
            .iter()
            .map(|p| {
                Value::object()
                    .set("threshold_hitm_per_sec", p.threshold)
                    .set("false_negatives", p.false_negatives)
                    .set("false_positives", p.false_positives)
            })
            .collect();
        Value::object()
            .set("kind", "fig9")
            .set("points", Value::Array(points))
    }

    fn to_csv(&self) -> String {
        let mut out = String::from("threshold_hitm_per_sec,false_negatives,false_positives\n");
        for p in &self.points {
            out.push_str(&csv_row(&[
                format!("{:.0}", p.threshold),
                p.false_negatives.to_string(),
                p.false_positives.to_string(),
            ]));
            out.push('\n');
        }
        out
    }
}

impl Emit for Fig10Report {
    fn to_json(&self) -> Value {
        let rows = self
            .rows
            .iter()
            .map(|r| {
                Value::object()
                    .set("workload", r.name)
                    .set("laser", r.laser)
                    .set("vtune", r.vtune)
            })
            .collect();
        let (laser, vtune) = self.geomeans();
        Value::object()
            .set("kind", "fig10")
            .set("rows", Value::Array(rows))
            .set(
                "geomean",
                Value::object().set("laser", laser).set("vtune", vtune),
            )
    }

    fn to_csv(&self) -> String {
        let mut out = String::from("workload,laser,vtune\n");
        for r in &self.rows {
            out.push_str(&csv_row(&[
                r.name.to_string(),
                format!("{:.6}", r.laser),
                format!("{:.6}", r.vtune),
            ]));
            out.push('\n');
        }
        let (laser, vtune) = self.geomeans();
        out.push_str(&csv_row(&[
            "geomean".to_string(),
            format!("{laser:.6}"),
            format!("{vtune:.6}"),
        ]));
        out.push('\n');
        out
    }
}

impl Emit for Fig11Report {
    fn to_json(&self) -> Value {
        let rows = self
            .rows
            .iter()
            .map(|r| {
                Value::object()
                    .set("workload", r.name)
                    .set("automatic", r.automatic)
                    .set("manual", r.manual)
            })
            .collect();
        Value::object()
            .set("kind", "fig11")
            .set("rows", Value::Array(rows))
    }

    fn to_csv(&self) -> String {
        let fmt = |v: Option<f64>| v.map(|s| format!("{s:.6}")).unwrap_or_default();
        let mut out = String::from("workload,automatic,manual\n");
        for r in &self.rows {
            out.push_str(&csv_row(&[
                r.name.to_string(),
                fmt(r.automatic),
                fmt(r.manual),
            ]));
            out.push('\n');
        }
        out
    }
}

impl Emit for Fig12Report {
    fn to_json(&self) -> Value {
        let rows = self
            .rows
            .iter()
            .map(|r| {
                Value::object()
                    .set("workload", r.name)
                    .set("slowdown", r.slowdown)
                    .set("driver_fraction", r.driver_fraction)
                    .set("detector_fraction", r.detector_fraction)
            })
            .collect();
        Value::object()
            .set("kind", "fig12")
            .set("rows", Value::Array(rows))
    }

    fn to_csv(&self) -> String {
        let mut out = String::from("workload,slowdown,driver_fraction,detector_fraction\n");
        for r in &self.rows {
            out.push_str(&csv_row(&[
                r.name.to_string(),
                format!("{:.6}", r.slowdown),
                format!("{:.6}", r.driver_fraction),
                format!("{:.6}", r.detector_fraction),
            ]));
            out.push('\n');
        }
        out
    }
}

impl Emit for Fig13Report {
    fn to_json(&self) -> Value {
        let points = self
            .points
            .iter()
            .map(|p| {
                Value::object()
                    .set("sav", p.sav)
                    .set("normalized_runtime", p.normalized_runtime)
            })
            .collect();
        Value::object()
            .set("kind", "fig13")
            .set("points", Value::Array(points))
    }

    fn to_csv(&self) -> String {
        let mut out = String::from("sav,normalized_runtime\n");
        for p in &self.points {
            out.push_str(&csv_row(&[
                p.sav.to_string(),
                format!("{:.6}", p.normalized_runtime),
            ]));
            out.push('\n');
        }
        out
    }
}

impl Emit for Fig14Report {
    fn to_json(&self) -> Value {
        let sheriff = |v: &Result<f64, SheriffFailure>| match v {
            Ok(x) => (Value::Float(*x), Value::Str("ok".to_string())),
            Err(f) => (Value::Null, Value::Str(sheriff_status(*f).to_string())),
        };
        let rows = self
            .rows
            .iter()
            .map(|r| {
                let (det, det_status) = sheriff(&r.sheriff_detect);
                let (prot, prot_status) = sheriff(&r.sheriff_protect);
                Value::object()
                    .set("workload", r.name)
                    .set("laser", r.laser)
                    .set("manual_fix", r.manual_fix)
                    .set("sheriff_detect", det)
                    .set("sheriff_detect_status", det_status)
                    .set("sheriff_protect", prot)
                    .set("sheriff_protect_status", prot_status)
            })
            .collect();
        Value::object()
            .set("kind", "fig14")
            .set("rows", Value::Array(rows))
    }

    fn to_csv(&self) -> String {
        let fmt = |v: &Result<f64, SheriffFailure>| match v {
            Ok(x) => format!("{x:.6}"),
            Err(SheriffFailure::Crash) => "x".to_string(),
            Err(SheriffFailure::Incompatible) => "i".to_string(),
        };
        let mut out = String::from("workload,laser,manual_fix,sheriff_detect,sheriff_protect\n");
        for r in &self.rows {
            out.push_str(&csv_row(&[
                r.name.to_string(),
                format!("{:.6}", r.laser),
                r.manual_fix.map(|v| format!("{v:.6}")).unwrap_or_default(),
                fmt(&r.sheriff_detect),
                fmt(&r.sheriff_protect),
            ]));
            out.push('\n');
        }
        out
    }
}

impl Emit for Table1Report {
    fn to_json(&self) -> Value {
        let rows = self
            .rows
            .iter()
            .map(|r| {
                let (sheriff, status) = match r.sheriff {
                    Ok((fneg, fpos)) => (
                        Value::object()
                            .set("false_negatives", fneg)
                            .set("false_positives", fpos),
                        "ok",
                    ),
                    Err(f) => (Value::Null, sheriff_status(f)),
                };
                Value::object()
                    .set("workload", r.name)
                    .set("bugs", r.bugs)
                    .set(
                        "laser",
                        Value::object()
                            .set("false_negatives", r.laser.0)
                            .set("false_positives", r.laser.1),
                    )
                    .set(
                        "vtune",
                        Value::object()
                            .set("false_negatives", r.vtune.0)
                            .set("false_positives", r.vtune.1),
                    )
                    .set("sheriff_detect", sheriff)
                    .set("sheriff_detect_status", status)
            })
            .collect();
        let t = self.totals();
        Value::object()
            .set("kind", "table1")
            .set("rows", Value::Array(rows))
            .set(
                "totals",
                Value::object()
                    .set("bugs", t.0)
                    .set("laser_fn", t.1)
                    .set("laser_fp", t.2)
                    .set("vtune_fn", t.3)
                    .set("vtune_fp", t.4)
                    .set("sheriff_fn", t.5)
                    .set("sheriff_fp", t.6),
            )
    }

    fn to_csv(&self) -> String {
        let mut out = String::from(
            "workload,bugs,laser_fn,laser_fp,vtune_fn,vtune_fp,sheriff_fn,sheriff_fp,sheriff_status\n",
        );
        for r in &self.rows {
            let (sfn, sfp, status) = match r.sheriff {
                Ok((fneg, fpos)) => (fneg.to_string(), fpos.to_string(), "ok"),
                Err(f) => (String::new(), String::new(), sheriff_status(f)),
            };
            out.push_str(&csv_row(&[
                r.name.to_string(),
                r.bugs.to_string(),
                r.laser.0.to_string(),
                r.laser.1.to_string(),
                r.vtune.0.to_string(),
                r.vtune.1.to_string(),
                sfn,
                sfp,
                status.to_string(),
            ]));
            out.push('\n');
        }
        out
    }
}

impl Emit for Table2Report {
    fn to_json(&self) -> Value {
        let rows = self
            .rows
            .iter()
            .map(|r| {
                let actual = match r.actual {
                    laser_workloads::BugKind::FalseSharing => "false-sharing",
                    laser_workloads::BugKind::TrueSharing => "true-sharing",
                };
                let laser = match r.laser {
                    Some(laser_core::ContentionKind::FalseSharing) => "false-sharing".into(),
                    Some(laser_core::ContentionKind::TrueSharing) => "true-sharing".into(),
                    Some(laser_core::ContentionKind::Unknown) => "unknown".into(),
                    None => Value::Null,
                };
                let (sheriff, status) = match r.sheriff {
                    Ok(found) => (Value::Bool(found), "ok"),
                    Err(f) => (Value::Null, sheriff_status(f)),
                };
                Value::object()
                    .set("workload", r.name)
                    .set("actual", actual)
                    .set("laser", laser)
                    .set("sheriff_found", sheriff)
                    .set("sheriff_status", status)
            })
            .collect();
        Value::object()
            .set("kind", "table2")
            .set("rows", Value::Array(rows))
            .set("laser_correct", self.laser_correct())
    }

    fn to_csv(&self) -> String {
        let mut out = String::from("workload,actual,laser,sheriff\n");
        for r in &self.rows {
            let actual = match r.actual {
                laser_workloads::BugKind::FalseSharing => "FS",
                laser_workloads::BugKind::TrueSharing => "TS",
            };
            let laser = match r.laser {
                Some(laser_core::ContentionKind::FalseSharing) => "FS",
                Some(laser_core::ContentionKind::TrueSharing) => "TS",
                Some(laser_core::ContentionKind::Unknown) => "unknown",
                None => "",
            };
            let sheriff = match r.sheriff {
                Ok(true) => "FS",
                Ok(false) => "",
                Err(SheriffFailure::Crash) => "x",
                Err(SheriffFailure::Incompatible) => "i",
            };
            out.push_str(&csv_row(&[
                r.name.to_string(),
                actual.to_string(),
                laser.to_string(),
                sheriff.to_string(),
            ]));
            out.push('\n');
        }
        out
    }
}

impl Emit for XsocketReport {
    fn to_json(&self) -> Value {
        let rows = self
            .rows
            .iter()
            .map(|r| {
                Value::object()
                    .set("topology", r.topology.key())
                    .set("sockets", r.topology.sockets() as u64)
                    .set("workload", r.workload)
                    .set("native_cycles", r.native_cycles)
                    .set("native_hitms", r.native_hitms)
                    .set("native_remote_hitms", r.native_remote_hitms)
                    .set("native_remote_share", r.native_remote_share())
                    .set("detect_norm", r.detect_norm)
                    .set("repair_norm", r.repair_norm)
                    .set("repair_invoked", r.repair_invoked)
                    .set("repair_remote_hitms", r.repair_remote_hitms)
            })
            .collect();
        Value::object()
            .set("kind", "xsocket")
            .set("rows", Value::Array(rows))
    }

    fn to_csv(&self) -> String {
        let mut out = String::from(
            "topology,sockets,workload,native_cycles,native_hitms,native_remote_hitms,\
             detect_norm,repair_norm,repair_invoked,repair_remote_hitms\n",
        );
        for r in &self.rows {
            out.push_str(&csv_row(&[
                r.topology.key().to_string(),
                r.topology.sockets().to_string(),
                r.workload.to_string(),
                r.native_cycles.to_string(),
                r.native_hitms.to_string(),
                r.native_remote_hitms.to_string(),
                format!("{:.6}", r.detect_norm),
                format!("{:.6}", r.repair_norm),
                r.repair_invoked.to_string(),
                r.repair_remote_hitms.to_string(),
            ]));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::accuracy::{Fig9Point, Table1Row};
    use crate::campaign::CellResult;
    use crate::performance::{Fig10Row, Fig14Row};
    use crate::tool::{ReportedLine, ToolFailure, ToolRun};

    fn sample_campaign() -> CampaignResult {
        CampaignResult {
            cells: vec![
                CellResult {
                    workload: "histogram'".into(),
                    tool: "native".into(),
                    outcome: Ok(ToolRun {
                        cycles: 1000,
                        ..ToolRun::default()
                    }),
                },
                CellResult {
                    workload: "histogram'".into(),
                    tool: "laser".into(),
                    outcome: Ok(ToolRun {
                        cycles: 1100,
                        reported: vec![ReportedLine {
                            label: "a.c:3 (false sharing), with \"quotes\"".into(),
                            file: Some("a.c".into()),
                            line: Some(3),
                            kind: None,
                            hitm_records: 5,
                            rate_per_sec: 100.0,
                        }],
                        repair_invoked: true,
                        ..ToolRun::default()
                    }),
                },
                CellResult {
                    workload: "histogram'".into(),
                    tool: "panicky".into(),
                    outcome: Err(ToolFailure::Panicked {
                        message: "boom".into(),
                    }),
                },
                CellResult {
                    workload: "histogram'".into(),
                    tool: "laser-detect".into(),
                    outcome: Err(ToolFailure::BudgetExceeded {
                        reason: laser_core::StopReason::StepBudget {
                            limit: 100,
                            used: 150,
                        },
                    }),
                },
            ],
        }
    }

    #[test]
    fn campaign_json_parses_and_carries_cells() {
        let text = sample_campaign().to_json().render();
        let doc = Value::parse(&text).unwrap();
        assert_eq!(doc.get("kind"), Some(&Value::Str("campaign".into())));
        let Some(Value::Array(cells)) = doc.get("cells") else {
            panic!("no cells in {text}");
        };
        assert_eq!(cells.len(), 4);
        assert_eq!(cells[1].get("normalized"), Some(&Value::Float(1.1)));
        assert_eq!(
            cells[2].get("failure"),
            Some(&Value::Str("panicked: boom".into()))
        );
        assert_eq!(
            cells[3].get("status"),
            Some(&Value::Str("budget-exceeded".into()))
        );
        assert_eq!(
            cells[3].get("failure"),
            Some(&Value::Str(
                "budget exceeded: step budget exceeded (150 steps > limit 100)".into()
            ))
        );
    }

    #[test]
    fn campaign_csv_quotes_embedded_commas() {
        let csv = sample_campaign().to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 5);
        assert!(lines[0].starts_with("workload,tool,status"));
        assert!(lines[2].contains("\"a.c:3 (false sharing), with \"\"quotes\"\"\""));
        assert!(lines[3].ends_with("panicked: boom"));
        assert!(lines[4].contains("budget-exceeded"));
    }

    #[test]
    fn figure_reports_emit_valid_json() {
        let fig10 = Fig10Report {
            rows: vec![Fig10Row {
                name: "swaptions",
                laser: 1.01,
                vtune: 1.25,
            }],
        };
        let doc = Value::parse(&fig10.to_json().render()).unwrap();
        assert_eq!(doc.get("kind"), Some(&Value::Str("fig10".into())));

        let fig14 = Fig14Report {
            rows: vec![Fig14Row {
                name: "swaptions",
                laser: 1.0,
                manual_fix: None,
                sheriff_detect: Err(SheriffFailure::Crash),
                sheriff_protect: Ok(4.5),
            }],
        };
        let doc = Value::parse(&fig14.to_json().render()).unwrap();
        let Some(Value::Array(rows)) = doc.get("rows") else {
            panic!()
        };
        assert_eq!(
            rows[0].get("sheriff_detect_status"),
            Some(&Value::Str("crash".into()))
        );
        assert_eq!(rows[0].get("sheriff_detect"), Some(&Value::Null));

        let table1 = Table1Report {
            rows: vec![Table1Row {
                name: "kmeans",
                bugs: 1,
                laser: (0, 0),
                vtune: (0, 2),
                sheriff: Err(SheriffFailure::Incompatible),
            }],
        };
        let doc = Value::parse(&table1.to_json().render()).unwrap();
        assert!(doc.get("totals").is_some());

        let fig9 = Fig9Report {
            points: vec![Fig9Point {
                threshold: 32.0,
                false_negatives: 1,
                false_positives: 2,
            }],
        };
        assert!(Value::parse(&fig9.to_json().render()).is_ok());
    }

    #[test]
    fn figure_csv_has_header_and_rows() {
        let fig14 = Fig14Report {
            rows: vec![Fig14Row {
                name: "swaptions",
                laser: 1.0,
                manual_fix: Some(0.5),
                sheriff_detect: Err(SheriffFailure::Incompatible),
                sheriff_protect: Ok(4.5),
            }],
        };
        let csv = fig14.to_csv();
        assert_eq!(
            csv,
            "workload,laser,manual_fix,sheriff_detect,sheriff_protect\n\
             swaptions,1.000000,0.500000,i,4.500000\n"
        );
    }
}
