//! Bad fixture: iterating a raw directory listing in library code.
//! Expected findings: `fs-iter` (two call forms). The enumeration order of
//! `read_dir` depends on the platform and filesystem, so a cache scan or
//! merge path built on it would emit different bytes on different hosts.

use std::fs;
use std::path::{Path, PathBuf};

pub fn cache_entries(dir: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    if let Ok(entries) = fs::read_dir(dir) {
        for entry in entries.flatten() {
            out.push(entry.path());
        }
    }
    out
}

pub fn count_entries(dir: &Path) -> std::io::Result<usize> {
    let mut count = 0;
    for entry in dir.read_dir()? {
        let _ = entry?;
        count += 1;
    }
    Ok(count)
}
