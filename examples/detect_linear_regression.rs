//! Detection deep-dive: run LASERDETECT (no repair) on a workload given on
//! the command line (default `linear_regression`) and dump everything the
//! detector saw — driver statistics, per-line rates and the TS/FS
//! classification evidence.

use laser::workloads::{find, registry, BuildOptions};
use laser::{Laser, LaserConfig};

fn main() {
    let name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "linear_regression".to_string());
    let Some(spec) = find(&name) else {
        eprintln!("unknown workload '{name}'. Available:");
        for s in registry() {
            eprintln!("  {}", s.name);
        }
        std::process::exit(2);
    };
    let image = spec.build(&BuildOptions::scaled(0.3));
    let outcome = Laser::new(LaserConfig::detection_only())
        .run(&image)
        .expect("detection run succeeds");

    println!("workload: {name}");
    println!(
        "driver: {} HITM events observed, {} records sampled, {} interrupts, {} overhead cycles",
        outcome.driver_stats.events_observed,
        outcome.driver_stats.records_sampled,
        outcome.driver_stats.interrupts,
        outcome.driver_stats.overhead_cycles
    );
    println!(
        "detector: {} cycles of processing\n",
        outcome.detector_cycles
    );
    println!("{}", outcome.report.render());

    println!("known bugs in the database:");
    if spec.known_bugs.is_empty() {
        println!("  (none)");
    }
    for bug in &spec.known_bugs {
        let found = bug
            .lines
            .iter()
            .any(|&l| outcome.report.line(&bug.file, l).is_some());
        println!(
            "  {:?} at {}:{:?} -- {}",
            bug.kind,
            bug.file,
            bug.lines,
            if found { "FOUND" } else { "MISSED" }
        );
    }
}
