//! Shared building blocks for the synthetic workloads: scaling, thread-runtime
//! primitives (spin locks, barriers) and the benign kernel templates used by
//! the workloads that have no contention bugs.

use laser_isa::inst::{CmpOp, Operand, Reg};
use laser_isa::program::BlockId;
use laser_isa::ProgramBuilder;
use laser_machine::{ThreadSpec, WorkloadImage};

use crate::spec::BuildOptions;

/// Register conventions used by every workload kernel.
pub mod regs {
    use laser_isa::inst::Reg;

    /// Primary (usually thread-private) data pointer.
    pub const DATA: Reg = Reg(0);
    /// Loop induction variable.
    pub const IV: Reg = Reg(2);
    /// Scratch for loop conditions.
    pub const COND: Reg = Reg(3);
    /// Pointer to shared structures (locks, barriers, global flags).
    pub const SHARED: Reg = Reg(4);
    /// Secondary data pointer.
    pub const DATA2: Reg = Reg(5);
    /// Thread id.
    pub const TID: Reg = Reg(6);
    /// Scratch registers used by the runtime helpers.
    pub const SCRATCH_A: Reg = Reg(7);
    /// Second runtime scratch register.
    pub const SCRATCH_B: Reg = Reg(8);
    /// General value scratch.
    pub const VAL: Reg = Reg(1);
}

/// Scale an iteration count by the build options, with a small floor so the
/// kernel always does *some* work.
pub fn scaled_iters(base: u64, opts: &BuildOptions) -> u64 {
    ((base as f64 * opts.scale) as u64).max(8)
}

/// Default time-dilation factor for benign (uncontended) workloads: the
/// synthetic kernel stands in for a benchmark that runs several orders of
/// magnitude longer, so incidental synchronization HITMs fall below the
/// detector's 1 000 HITM/s reporting threshold, as they do in the real runs.
pub const BENIGN_DILATION: f64 = 300.0;

/// Time dilation for the workloads whose contention is intense (the paper's
/// headline bugs): hot lines stay far above the reporting and repair
/// thresholds.
pub const INTENSE_DILATION: f64 = 30.0;

/// Time dilation for workloads with mild contention (detectable, but not worth
/// automatic repair).
pub const MILD_DILATION: f64 = 60.0;

/// Emit a spin-lock acquisition of the 8-byte lock at `[lock_base + lock_off]`.
///
/// The current block is sealed with a jump into the lock loop; on return the
/// builder is positioned in the block that owns the lock. `naive` selects a
/// plain compare-and-swap loop (the poorly-scaling lock the paper's Section 2
/// describes); otherwise a test-and-test-and-set lock is emitted.
pub fn emit_lock_acquire(
    b: &mut ProgramBuilder,
    prefix: &str,
    lock_base: Reg,
    lock_off: i64,
    naive: bool,
) -> BlockId {
    let try_blk = b.block(&format!("{prefix}_try"));
    let spin_blk = b.block(&format!("{prefix}_spin"));
    let got_blk = b.block(&format!("{prefix}_got"));
    b.jump(try_blk);
    b.switch_to(try_blk);
    b.atomic_cas(
        regs::SCRATCH_A,
        lock_base,
        lock_off,
        Operand::Imm(0),
        Operand::Imm(1),
        8,
    );
    b.cmp_eq(regs::SCRATCH_B, regs::SCRATCH_A, Operand::Imm(0));
    let retry = if naive { try_blk } else { spin_blk };
    b.branch(regs::SCRATCH_B, got_blk, retry);
    b.switch_to(spin_blk);
    b.pause();
    b.load(regs::SCRATCH_A, lock_base, lock_off, 8);
    b.cmp_eq(regs::SCRATCH_B, regs::SCRATCH_A, Operand::Imm(0));
    b.branch(regs::SCRATCH_B, try_blk, spin_blk);
    b.switch_to(got_blk);
    got_blk
}

/// Emit a spin-lock release of the lock at `[lock_base + lock_off]` into the
/// current block (a plain store, which is a legal release under TSO).
pub fn emit_lock_release(b: &mut ProgramBuilder, lock_base: Reg, lock_off: i64) {
    b.store(Operand::Imm(0), lock_base, lock_off, 8);
}

/// Emit a one-shot centralized barrier over the counter at
/// `[ctr_base + ctr_off]`. The current block is sealed; on return the builder
/// is positioned in the block that runs once all `nthreads` threads arrived.
pub fn emit_barrier(
    b: &mut ProgramBuilder,
    prefix: &str,
    ctr_base: Reg,
    ctr_off: i64,
    nthreads: u64,
) -> BlockId {
    let wait_blk = b.block(&format!("{prefix}_wait"));
    let done_blk = b.block(&format!("{prefix}_done"));
    b.atomic_fetch_add(regs::SCRATCH_A, ctr_base, ctr_off, Operand::Imm(1), 8);
    b.jump(wait_blk);
    b.switch_to(wait_blk);
    b.pause();
    b.load(regs::SCRATCH_A, ctr_base, ctr_off, 8);
    b.cmp(
        CmpOp::Ge,
        regs::SCRATCH_B,
        regs::SCRATCH_A,
        Operand::Imm(nthreads),
    );
    b.branch(regs::SCRATCH_B, done_blk, wait_blk);
    b.switch_to(done_blk);
    done_blk
}

/// Emit a counted loop skeleton: creates `head`/`body`/`exit` blocks, seals
/// the current block into the head, initialises the induction variable and
/// positions the builder at the start of the body. The caller emits the body
/// and must finish it with [`close_loop`].
pub fn open_loop(b: &mut ProgramBuilder, prefix: &str) -> (BlockId, BlockId) {
    let body = b.block(&format!("{prefix}_body"));
    let exit = b.block(&format!("{prefix}_exit"));
    b.movi(regs::IV, 0);
    b.jump(body);
    b.switch_to(body);
    (body, exit)
}

/// Close a loop opened with [`open_loop`]: increments the induction variable,
/// tests it against `iters` and branches back to `body` or on to `exit`,
/// leaving the builder positioned at `exit`.
pub fn close_loop(b: &mut ProgramBuilder, body: BlockId, exit: BlockId, iters: u64) {
    b.addi(regs::IV, regs::IV, 1);
    b.cmp_lt(regs::COND, regs::IV, Operand::Imm(iters));
    b.branch(regs::COND, body, exit);
    b.switch_to(exit);
}

/// A benign data-parallel kernel: each thread iterates over a private,
/// cache-line-aligned working set, with `compute_ops` arithmetic filler per
/// iteration. Produces no inter-thread sharing at all. Used for blackscholes,
/// swaptions, string_match and friends.
pub fn private_compute(
    name: &str,
    file: &str,
    opts: &BuildOptions,
    base_iters: u64,
    compute_ops: usize,
    private_slots: u64,
) -> WorkloadImage {
    let iters = scaled_iters(base_iters, opts);
    let mut b = ProgramBuilder::new(name);
    b.source(file, 10);
    let entry = b.block("entry");
    b.switch_to(entry);
    let (body, exit) = open_loop(&mut b, "main");
    b.source(file, 20);
    // Touch a rotating private slot: load, update, store.
    b.alu(
        laser_isa::AluOp::Rem,
        regs::SCRATCH_A,
        regs::IV,
        Operand::Imm(private_slots.max(1)),
    );
    b.alu(
        laser_isa::AluOp::Mul,
        regs::SCRATCH_A,
        regs::SCRATCH_A,
        Operand::Imm(8),
    );
    b.add(regs::SCRATCH_A, regs::SCRATCH_A, Operand::Reg(regs::DATA));
    b.load(regs::VAL, regs::SCRATCH_A, 0, 8);
    b.addi(regs::VAL, regs::VAL, 1);
    b.store(Operand::Reg(regs::VAL), regs::SCRATCH_A, 0, 8);
    b.source(file, 21);
    b.nops(compute_ops);
    close_loop(&mut b, body, exit, iters);
    b.halt();
    let program = b.finish();

    let mut image = WorkloadImage::new(name, program);
    image.set_time_dilation(BENIGN_DILATION);
    if opts.layout_perturbation > 0 {
        image.layout_mut().perturb_heap(opts.layout_perturbation);
    }
    for t in 0..opts.threads {
        let buf = image
            .layout_mut()
            .heap_alloc(8 * private_slots.max(1), 64)
            .expect("heap space for private buffers"); // lint:allow(panic) — workload images size their heaps to fit; allocation failure is a builder bug
        image.push_thread(
            ThreadSpec::new(format!("worker{t}"), "entry")
                .with_reg(regs::DATA, buf)
                .with_reg(regs::TID, t as u64),
        );
    }
    image
}

/// A benign phase-parallel kernel: `phases` rounds of private work separated
/// by centralized barriers. The barrier counters are the only shared state, so
/// the workload has a little benign true sharing per phase — far below the
/// detector's reporting threshold, as in the real barrier-based Splash2x
/// codes.
pub fn barrier_phased(
    name: &str,
    file: &str,
    opts: &BuildOptions,
    phases: usize,
    base_iters_per_phase: u64,
    compute_ops: usize,
) -> WorkloadImage {
    let iters = scaled_iters(base_iters_per_phase, opts);
    let nthreads = opts.threads as u64;
    let mut b = ProgramBuilder::new(name);
    b.source(file, 5);
    let entry = b.block("entry");
    b.switch_to(entry);
    for p in 0..phases {
        b.source(file, 30 + p as u32 * 10);
        let (body, exit) = open_loop(&mut b, &format!("phase{p}"));
        b.load(regs::VAL, regs::DATA, 0, 8);
        b.addi(regs::VAL, regs::VAL, 1);
        b.store(Operand::Reg(regs::VAL), regs::DATA, 0, 8);
        b.nops(compute_ops);
        close_loop(&mut b, body, exit, iters);
        b.source(file, 31 + p as u32 * 10);
        emit_barrier(
            &mut b,
            &format!("bar{p}"),
            regs::SHARED,
            (p as i64) * 64,
            nthreads,
        );
    }
    b.halt();
    let program = b.finish();

    let mut image = WorkloadImage::new(name, program);
    image.set_time_dilation(BENIGN_DILATION);
    if opts.layout_perturbation > 0 {
        image.layout_mut().perturb_heap(opts.layout_perturbation);
    }
    let barrier_area = image
        .layout_mut()
        .global_alloc(64 * phases.max(1) as u64, 64);
    for t in 0..opts.threads {
        let buf = image.layout_mut().heap_alloc(64, 64).expect("heap space"); // lint:allow(panic) — workload images size their heaps to fit; allocation failure is a builder bug
        image.push_thread(
            ThreadSpec::new(format!("worker{t}"), "entry")
                .with_reg(regs::DATA, buf)
                .with_reg(regs::SHARED, barrier_area)
                .with_reg(regs::TID, t as u64),
        );
    }
    image
}

/// A benign task-parallel kernel: mostly private work, with a shared
/// accumulator protected by a test-and-test-and-set lock taken once every
/// `lock_period` iterations. Models the light, correctly-synchronized sharing
/// of ferret/canneal-style codes.
pub fn locked_accumulator(
    name: &str,
    file: &str,
    opts: &BuildOptions,
    base_iters: u64,
    lock_period: u64,
    compute_ops: usize,
) -> WorkloadImage {
    let iters = scaled_iters(base_iters, opts);
    let mut b = ProgramBuilder::new(name);
    b.source(file, 8);
    let entry = b.block("entry");
    b.switch_to(entry);
    let (body, exit) = open_loop(&mut b, "main");
    b.source(file, 40);
    b.load(regs::VAL, regs::DATA, 0, 8);
    b.addi(regs::VAL, regs::VAL, 1);
    b.store(Operand::Reg(regs::VAL), regs::DATA, 0, 8);
    b.nops(compute_ops);
    // if (iv % lock_period == 0) { lock; shared_sum += 1; unlock; }
    b.alu(
        laser_isa::AluOp::Rem,
        regs::SCRATCH_A,
        regs::IV,
        Operand::Imm(lock_period.max(1)),
    );
    b.cmp_eq(regs::COND, regs::SCRATCH_A, Operand::Imm(0));
    let lock_path = b.block("lock_path");
    let join = b.block("join");
    b.branch(regs::COND, lock_path, join);
    b.switch_to(lock_path);
    b.source(file, 50);
    emit_lock_acquire(&mut b, "acc", regs::SHARED, 0, false);
    b.load(regs::VAL, regs::SHARED, 64, 8);
    b.addi(regs::VAL, regs::VAL, 1);
    b.store(Operand::Reg(regs::VAL), regs::SHARED, 64, 8);
    emit_lock_release(&mut b, regs::SHARED, 0);
    b.jump(join);
    b.switch_to(join);
    close_loop(&mut b, body, exit, iters);
    b.halt();
    let program = b.finish();

    let mut image = WorkloadImage::new(name, program);
    image.set_time_dilation(BENIGN_DILATION);
    if opts.layout_perturbation > 0 {
        image.layout_mut().perturb_heap(opts.layout_perturbation);
    }
    // Lock on its own line at +0, accumulator on the next line at +64.
    let shared = image.layout_mut().global_alloc(128, 64);
    for t in 0..opts.threads {
        let buf = image.layout_mut().heap_alloc(64, 64).expect("heap space"); // lint:allow(panic) — workload images size their heaps to fit; allocation failure is a builder bug
        image.push_thread(
            ThreadSpec::new(format!("worker{t}"), "entry")
                .with_reg(regs::DATA, buf)
                .with_reg(regs::SHARED, shared)
                .with_reg(regs::TID, t as u64),
        );
    }
    image
}

#[cfg(test)]
mod tests {
    use super::*;
    use laser_machine::{Machine, MachineConfig};

    fn opts() -> BuildOptions {
        BuildOptions {
            scale: 0.2,
            ..Default::default()
        }
    }

    #[test]
    fn scaled_iters_has_floor() {
        assert_eq!(scaled_iters(1000, &BuildOptions::default()), 1000);
        assert_eq!(scaled_iters(1000, &BuildOptions::scaled(0.5)), 500);
        assert_eq!(scaled_iters(10, &BuildOptions::scaled(0.0001)), 8);
    }

    #[test]
    fn private_compute_runs_without_hitms() {
        let image = private_compute("pc", "pc.c", &opts(), 500, 4, 4);
        let mut m = Machine::new(MachineConfig::default(), &image);
        let r = m.run_to_completion().unwrap();
        assert_eq!(r.stats.hitm_events, 0);
        assert!(r.stats.instructions > 1000);
    }

    #[test]
    fn barrier_phased_synchronizes_all_threads() {
        let image = barrier_phased("bp", "bp.c", &opts(), 3, 200, 2);
        let mut m = Machine::new(MachineConfig::default(), &image);
        let r = m.run_to_completion().unwrap();
        // Some benign true sharing on the barrier counters, but little.
        assert!(r.stats.atomics >= 3 * 4);
        assert!(r.stats.hitm_events < r.stats.instructions / 20);
    }

    #[test]
    fn locked_accumulator_is_mutually_exclusive() {
        let image = locked_accumulator("la", "la.c", &opts(), 400, 16, 2);
        let mut m = Machine::new(MachineConfig::default(), &image);
        m.run_to_completion().unwrap();
        // The shared accumulator (at shared+64) holds exactly the number of
        // lock-protected increments: ceil(iters / 16) per thread.
        let iters = scaled_iters(400, &opts());
        let expected: u64 = 4 * iters.div_ceil(16);
        let shared_base = laser_machine::image::GLOBALS_START;
        assert_eq!(m.read_u64(shared_base + 64), expected);
    }
}
