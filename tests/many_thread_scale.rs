//! Many-thread scale pin: a 16-thread workload on the quad-socket preset
//! completes through `run_to_completion` with exact cycle counts.
//!
//! The scheduler rework replaced the per-instruction linear min-scan with an
//! incrementally maintained core heap. Small flat runs barely exercise its
//! maintenance paths (one thread per core, no cursor movement); a 4-socket /
//! 16-core / 16-thread run drives core removal, cursor advance and deep
//! sift-downs at the scale the structure exists for. The pinned counts were
//! captured from the naive-scan scheduler, so they also pin schedule
//! equivalence end to end: any divergence in pick order changes the
//! interleaving and with it every cycle number below.

use laser_bench::TopologySpec;
use laser_machine::{Machine, MachineConfig};
use laser_workloads::{find, BuildOptions};

/// `(workload, steps, cycles)` at scale 0.08 on the quad-socket preset
/// (16 threads, round-robin placement). Captured when the heap scheduler
/// landed, after verifying its full `experiments` output byte-matches the
/// naive-scan tree; the `identical_to_naive_min_scan` property test in
/// `laser-machine` pins the pick-order equivalence these counts rest on.
const PINNED_4S: &[(&str, u64, u64)] = &[
    ("histogram'", 32_304, 87_441),
    ("linear_regression", 32_048, 112_651),
];

fn machine_at_4s(workload: &str) -> Machine {
    let spec = find(workload).expect("known workload");
    let opts = BuildOptions::scaled(0.08).for_topology(TopologySpec::QuadSocket);
    let image = spec.build(&opts);
    Machine::new(
        MachineConfig::for_topology(TopologySpec::QuadSocket),
        &image,
    )
}

#[test]
fn sixteen_thread_quad_socket_runs_complete_with_pinned_counts() {
    for &(workload, steps, cycles) in PINNED_4S {
        let mut m = machine_at_4s(workload);
        assert!(
            m.thread_names().len() >= 16,
            "{workload}: expected a 16+ thread run, got {}",
            m.thread_names().len()
        );
        assert_eq!(m.num_cores(), 16);
        let result = m.run_to_completion().expect("run completes within budget");
        assert!(m.is_done());
        assert_eq!(result.steps, steps, "{workload}: step count drifted");
        assert_eq!(result.cycles, cycles, "{workload}: cycle count drifted");
        assert_eq!(result.per_core_cycles.len(), 16);
        assert!(
            result.per_core_cycles.iter().all(|&c| c > 0),
            "{workload}: every core should have executed work"
        );
    }
}

#[test]
fn quad_socket_run_is_deterministic_across_repeats() {
    let mut a = machine_at_4s("histogram'");
    let mut b = machine_at_4s("histogram'");
    let ra = a.run_to_completion().unwrap();
    let rb = b.run_to_completion().unwrap();
    assert_eq!(ra.steps, rb.steps);
    assert_eq!(ra.cycles, rb.cycles);
    assert_eq!(ra.per_core_cycles, rb.per_core_cycles);
}
