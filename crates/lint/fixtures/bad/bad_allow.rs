//! Bad fixture: malformed allow annotations.
//! Expected findings: `bad-allow` (two) — one missing reason, one unknown
//! rule id. A reason-less allow still suppresses its rule (the annotation is
//! itself the finding); an unknown rule id suppresses nothing, so the second
//! `unwrap` additionally surfaces as `panic`.

pub fn missing_reason(v: Option<u64>) -> u64 {
    v.unwrap() // lint:allow(panic)
}

pub fn unknown_rule(v: Option<u64>) -> u64 {
    v.unwrap() // lint:allow(no-such-rule) — the id above does not exist
}
