//! The Haswell HITM-record imprecision model (paper Section 3.1, Figure 3).
//!
//! The paper characterizes Haswell's HITM PEBS records with 160 assembly test
//! cases and finds:
//!
//! * for **load-triggered** events (read-write sharing), roughly 75 % of
//!   records carry the correct data address and roughly 40 % the exact PC,
//!   with another ≈30 % pointing at an adjacent instruction;
//! * for **store-triggered** events (write-write sharing), records are highly
//!   inaccurate for both fields (the precise event is defined for load uops;
//!   stores complete late out of the store buffer);
//! * over 99 % of incorrect PCs still point somewhere inside the program's
//!   binary;
//! * 95 % of incorrect data addresses point at unmapped parts of the address
//!   space, the rest at the stack or kernel.
//!
//! [`ImprecisionModel`] reproduces those distributions so that LASERDETECT's
//! filtering pipeline has the same noise to contend with as on real hardware.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use laser_machine::memmap::RegionKind;
use laser_machine::{Addr, HitmEvent, MemAccessKind, MemoryMap};

use crate::record::HitmRecord;

/// Probabilities governing record accuracy, separately for load-triggered and
/// store-triggered HITM events.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ImprecisionParams {
    /// P(correct data address) for load-triggered events.
    pub load_addr_correct: f64,
    /// P(exact PC) for load-triggered events.
    pub load_pc_exact: f64,
    /// P(adjacent PC | not exact) contribution for load-triggered events,
    /// expressed as an absolute probability.
    pub load_pc_adjacent: f64,
    /// P(correct data address) for store-triggered events.
    pub store_addr_correct: f64,
    /// P(exact PC) for store-triggered events.
    pub store_pc_exact: f64,
    /// P(adjacent PC) for store-triggered events (absolute).
    pub store_pc_adjacent: f64,
    /// Of the wrong PCs, the fraction that still lies inside the binary.
    pub wrong_pc_in_binary: f64,
    /// Of the wrong data addresses, the fraction that points at unmapped
    /// memory (the remainder is split between stack and kernel addresses).
    pub wrong_addr_unmapped: f64,
}

impl Default for ImprecisionParams {
    /// Values calibrated to the averages reported in the paper's Figure 3.
    fn default() -> Self {
        ImprecisionParams {
            load_addr_correct: 0.75,
            load_pc_exact: 0.40,
            load_pc_adjacent: 0.30,
            store_addr_correct: 0.08,
            store_pc_exact: 0.10,
            store_pc_adjacent: 0.24,
            wrong_pc_in_binary: 0.99,
            wrong_addr_unmapped: 0.95,
        }
    }
}

impl ImprecisionParams {
    /// A model with no imprecision at all; useful for unit tests and for
    /// isolating pipeline behaviour from hardware noise.
    pub fn perfect() -> Self {
        ImprecisionParams {
            load_addr_correct: 1.0,
            load_pc_exact: 1.0,
            load_pc_adjacent: 0.0,
            store_addr_correct: 1.0,
            store_pc_exact: 1.0,
            store_pc_adjacent: 0.0,
            wrong_pc_in_binary: 1.0,
            wrong_addr_unmapped: 1.0,
        }
    }
}

/// Applies Haswell's record imprecision to ground-truth HITM events.
#[derive(Debug)]
pub struct ImprecisionModel {
    params: ImprecisionParams,
    rng: StdRng,
    code_range: (Addr, Addr),
    stack_ranges: Vec<(Addr, Addr)>,
    mapped_ranges: Vec<(Addr, Addr)>,
}

impl ImprecisionModel {
    /// Build a model. `code_range` is the application text segment (used to
    /// generate plausible wrong-but-in-binary PCs); stack and mapped ranges are
    /// taken from `map` to generate wrong data addresses with the measured
    /// distribution.
    pub fn new(
        params: ImprecisionParams,
        map: &MemoryMap,
        code_range: (Addr, Addr),
        seed: u64,
    ) -> Self {
        let stack_ranges = map
            .regions()
            .iter()
            .filter(|r| matches!(r.kind, RegionKind::Stack(_)))
            .map(|r| (r.start, r.end))
            .collect();
        let mapped_ranges = map.regions().iter().map(|r| (r.start, r.end)).collect();
        ImprecisionModel {
            params,
            rng: StdRng::seed_from_u64(seed),
            code_range,
            stack_ranges,
            mapped_ranges,
        }
    }

    /// The parameters in effect.
    pub fn params(&self) -> &ImprecisionParams {
        &self.params
    }

    fn random_in_binary_pc(&mut self, exclude: Addr) -> Addr {
        let (lo, hi) = self.code_range;
        loop {
            let pc = lo + self.rng.gen_range(0..(hi - lo) / 4) * 4;
            if pc != exclude {
                return pc;
            }
        }
    }

    fn random_unmapped_addr(&mut self) -> Addr {
        // Draw until we find an address outside every mapped region; the vast
        // majority of the 48-bit space is unmapped so this terminates quickly.
        loop {
            let a: u64 = self.rng.gen_range(0x1_0000..0x7fff_ffff_f000u64);
            if !self.mapped_ranges.iter().any(|&(lo, hi)| a >= lo && a < hi) {
                return a;
            }
        }
    }

    fn random_stack_addr(&mut self) -> Addr {
        if self.stack_ranges.is_empty() {
            return self.random_unmapped_addr();
        }
        let idx = self.rng.gen_range(0..self.stack_ranges.len());
        let (lo, hi) = self.stack_ranges[idx];
        self.rng.gen_range(lo..hi)
    }

    fn random_kernel_addr(&mut self) -> Addr {
        0xffff_8000_0000_0000 | self.rng.gen_range(0..0x1_0000_0000u64)
    }

    fn distort_pc(&mut self, pc: Addr, exact_p: f64, adjacent_p: f64) -> Addr {
        let roll: f64 = self.rng.gen();
        if roll < exact_p {
            pc
        } else if roll < exact_p + adjacent_p {
            // Adjacent instruction: the next (or previous) PC.
            if self.rng.gen_bool(0.5) {
                pc + laser_isa::program::INST_BYTES
            } else {
                pc.saturating_sub(laser_isa::program::INST_BYTES)
            }
        } else if self.rng.gen_bool(self.params.wrong_pc_in_binary) {
            self.random_in_binary_pc(pc)
        } else {
            self.random_unmapped_addr()
        }
    }

    fn distort_addr(&mut self, addr: Addr, correct_p: f64) -> Addr {
        if self.rng.gen_bool(correct_p) {
            return addr;
        }
        if self.rng.gen_bool(self.params.wrong_addr_unmapped) {
            self.random_unmapped_addr()
        } else if self.rng.gen_bool(0.5) {
            self.random_stack_addr()
        } else {
            self.random_kernel_addr()
        }
    }

    /// Convert a ground-truth HITM event into the (possibly imprecise) record
    /// the hardware would deliver.
    pub fn distort(&mut self, event: &HitmEvent) -> HitmRecord {
        let (addr_p, pc_exact, pc_adj) = match event.kind {
            MemAccessKind::Load => (
                self.params.load_addr_correct,
                self.params.load_pc_exact,
                self.params.load_pc_adjacent,
            ),
            MemAccessKind::Store => (
                self.params.store_addr_correct,
                self.params.store_pc_exact,
                self.params.store_pc_adjacent,
            ),
        };
        HitmRecord {
            pc: self.distort_pc(event.pc, pc_exact, pc_adj),
            data_addr: self.distort_addr(event.addr, addr_p),
            core: event.core,
            cycle: event.cycle,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use laser_machine::memmap::Region;
    use laser_machine::CoreId;

    fn test_map() -> MemoryMap {
        let mut m = MemoryMap::new();
        m.add(Region::new(
            0x40_0000,
            0x50_0000,
            RegionKind::AppCode,
            "app",
        ));
        m.add(Region::new(
            0x1000_0000,
            0x2000_0000,
            RegionKind::Heap,
            "[heap]",
        ));
        m.add(Region::new(
            0x7f00_0000,
            0x7f10_0000,
            RegionKind::Stack(0),
            "[stack:0]",
        ));
        m
    }

    fn event(kind: MemAccessKind) -> HitmEvent {
        HitmEvent {
            core: CoreId(1),
            pc: 0x40_0100,
            addr: 0x1000_0040,
            size: 8,
            kind,
            cycle: 7,
        }
    }

    #[test]
    fn perfect_model_preserves_fields() {
        let map = test_map();
        let mut m = ImprecisionModel::new(
            ImprecisionParams::perfect(),
            &map,
            (0x40_0000, 0x50_0000),
            1,
        );
        for _ in 0..100 {
            let r = m.distort(&event(MemAccessKind::Load));
            assert_eq!(r.pc, 0x40_0100);
            assert_eq!(r.data_addr, 0x1000_0040);
            let r = m.distort(&event(MemAccessKind::Store));
            assert_eq!(r.pc, 0x40_0100);
            assert_eq!(r.data_addr, 0x1000_0040);
        }
    }

    #[test]
    fn load_records_match_paper_accuracy_averages() {
        let map = test_map();
        let mut m = ImprecisionModel::new(
            ImprecisionParams::default(),
            &map,
            (0x40_0000, 0x50_0000),
            2,
        );
        let n = 20_000;
        let mut addr_ok = 0;
        let mut pc_exact = 0;
        let mut pc_adjacent = 0;
        for _ in 0..n {
            let r = m.distort(&event(MemAccessKind::Load));
            if r.data_addr == 0x1000_0040 {
                addr_ok += 1;
            }
            if r.pc == 0x40_0100 {
                pc_exact += 1;
            }
            if (r.pc as i64 - 0x40_0100i64).unsigned_abs() <= 4 {
                pc_adjacent += 1;
            }
        }
        let addr_frac = addr_ok as f64 / n as f64;
        let pc_exact_frac = pc_exact as f64 / n as f64;
        let pc_adj_frac = pc_adjacent as f64 / n as f64;
        assert!((addr_frac - 0.75).abs() < 0.03, "addr accuracy {addr_frac}");
        assert!(
            (pc_exact_frac - 0.40).abs() < 0.03,
            "pc exact {pc_exact_frac}"
        );
        assert!(
            (pc_adj_frac - 0.70).abs() < 0.03,
            "pc adjacent {pc_adj_frac}"
        );
    }

    #[test]
    fn store_records_are_much_less_accurate_than_loads() {
        let map = test_map();
        let mut m = ImprecisionModel::new(
            ImprecisionParams::default(),
            &map,
            (0x40_0000, 0x50_0000),
            3,
        );
        let n = 10_000;
        let mut load_addr_ok = 0;
        let mut store_addr_ok = 0;
        for _ in 0..n {
            if m.distort(&event(MemAccessKind::Load)).data_addr == 0x1000_0040 {
                load_addr_ok += 1;
            }
            if m.distort(&event(MemAccessKind::Store)).data_addr == 0x1000_0040 {
                store_addr_ok += 1;
            }
        }
        assert!(load_addr_ok > store_addr_ok * 4);
    }

    #[test]
    fn wrong_addresses_are_mostly_unmapped() {
        let map = test_map();
        let mut m = ImprecisionModel::new(
            ImprecisionParams::default(),
            &map,
            (0x40_0000, 0x50_0000),
            4,
        );
        let mut wrong = 0;
        let mut unmapped = 0;
        for _ in 0..20_000 {
            let r = m.distort(&event(MemAccessKind::Store));
            if r.data_addr != 0x1000_0040 {
                wrong += 1;
                if !map.is_mapped(r.data_addr) {
                    unmapped += 1;
                }
            }
        }
        assert!(wrong > 0);
        let frac = unmapped as f64 / wrong as f64;
        assert!(
            frac > 0.90,
            "unmapped fraction of wrong addresses was {frac}"
        );
    }

    #[test]
    fn wrong_pcs_stay_inside_the_binary() {
        let map = test_map();
        let mut m = ImprecisionModel::new(
            ImprecisionParams::default(),
            &map,
            (0x40_0000, 0x50_0000),
            5,
        );
        let mut wrong = 0;
        let mut in_binary = 0;
        for _ in 0..20_000 {
            let r = m.distort(&event(MemAccessKind::Store));
            if (r.pc as i64 - 0x40_0100i64).unsigned_abs() > 4 {
                wrong += 1;
                if r.pc >= 0x40_0000 && r.pc < 0x50_0000 {
                    in_binary += 1;
                }
            }
        }
        assert!(wrong > 0);
        assert!(in_binary as f64 / wrong as f64 > 0.95);
    }

    #[test]
    fn deterministic_given_seed() {
        let map = test_map();
        let mut a = ImprecisionModel::new(
            ImprecisionParams::default(),
            &map,
            (0x40_0000, 0x50_0000),
            42,
        );
        let mut b = ImprecisionModel::new(
            ImprecisionParams::default(),
            &map,
            (0x40_0000, 0x50_0000),
            42,
        );
        for _ in 0..100 {
            assert_eq!(
                a.distort(&event(MemAccessKind::Load)),
                b.distort(&event(MemAccessKind::Load))
            );
        }
    }
}
