//! The determinism & concurrency rules.
//!
//! Every rule is a pure function over a [`FileCtx`]'s code-token stream.
//! They are deliberately lexical: no type information, no name resolution.
//! That makes each check a heuristic — the `// lint:allow(<rule>) — <reason>`
//! escape hatch exists exactly for the sites where the heuristic is wrong
//! and a human has written down why.

use std::collections::BTreeSet;

use crate::context::{FileCtx, FileRole};
use crate::lexer::{Token, TokenKind};
use crate::Finding;

/// Static description of one rule, for `--list` output and docs.
pub struct RuleInfo {
    pub id: &'static str,
    pub summary: &'static str,
}

/// All rule ids, in reporting order.
pub const RULES: &[RuleInfo] = &[
    RuleInfo {
        id: "default-hasher",
        summary: "HashMap/HashSet built with the randomly-seeded default hasher \
                  (use fasthash::FastHashMap, a BTreeMap, or name a deterministic hasher)",
    },
    RuleInfo {
        id: "hash-iter",
        summary: "iteration over a hash-ordered map/set: order varies run-to-run \
                  (or with insertion history), so it must not reach any output",
    },
    RuleInfo {
        id: "fs-iter",
        summary: "directory enumeration (read_dir) in library code: entry order is \
                  platform/filesystem-dependent, so cache and merge paths must \
                  collect and sort before iterating",
    },
    RuleInfo {
        id: "wall-clock",
        summary: "wall-clock or thread-identity read (Instant::now, SystemTime::now, \
                  thread::current) reachable from simulation or emit paths",
    },
    RuleInfo {
        id: "float-accum",
        summary: "order-sensitive float accumulation (sum::<f64>, float fold) — \
                  float addition does not commute, so reduction order must be pinned",
    },
    RuleInfo {
        id: "panic",
        summary: "unwrap/expect/panic! in library code — panics must stay inside \
                  the campaign's per-cell catch_unwind isolation, and library paths \
                  should return errors",
    },
    RuleInfo {
        id: "unsafe-code",
        summary: "unsafe block/fn or static mut (denied everywhere; crate roots \
                  carry #![forbid(unsafe_code)] as the compiler-level backstop)",
    },
    RuleInfo {
        id: "shard-merge",
        summary: "merge/absorb/combine function touching shard state with no visible \
                  ordering step (sort call or BTree collection) — merged output must \
                  be byte-identical to the single-worker path regardless of shard \
                  arrival order",
    },
];

/// Run every applicable rule over `ctx`, honoring test masks and allows.
pub fn run_rules(ctx: &FileCtx) -> Vec<Finding> {
    let mut findings = Vec::new();
    findings.extend(ctx.allow_findings.iter().cloned());
    default_hasher(ctx, &mut findings);
    hash_iter(ctx, &mut findings);
    fs_iter(ctx, &mut findings);
    wall_clock(ctx, &mut findings);
    float_accum(ctx, &mut findings);
    panic_rule(ctx, &mut findings);
    unsafe_rule(ctx, &mut findings);
    shard_merge(ctx, &mut findings);
    findings
}

/// Push a finding unless the line carries a matching allow annotation.
fn push(ctx: &FileCtx, findings: &mut Vec<Finding>, rule: &'static str, t: &Token, msg: String) {
    if ctx.is_allowed(rule, t.line) {
        return;
    }
    findings.push(Finding {
        rule,
        path: ctx.path.clone(),
        line: t.line,
        col: t.col,
        message: msg,
    });
}

/// Is the code token at `i` the start of a `::` path separator?
fn is_path_sep(code: &[Token], i: usize) -> bool {
    i + 1 < code.len() && code[i].is_punct(':') && code[i + 1].is_punct(':')
}

/// Count top-level generic parameters of the angle-bracketed list opening at
/// `lt` (which must hold `<`). Returns `(param_count, index_of_closing_gt)`,
/// or `None` when this is not a well-formed generic list (e.g. a comparison).
fn generic_params(code: &[Token], lt: usize) -> Option<(usize, usize)> {
    let mut depth = 0i64;
    let mut paren = 0i64;
    let mut commas = 0usize;
    let mut saw_param_token = false;
    for (j, t) in code.iter().enumerate().skip(lt) {
        if j > lt + 256 {
            return None;
        }
        if t.is_punct('<') {
            depth += 1;
        } else if t.is_punct('>') {
            // `->` return arrows inside Fn(...) -> T types do not close the
            // list.
            if j > 0 && code[j - 1].is_punct('-') {
                continue;
            }
            depth -= 1;
            if depth == 0 {
                let params = if saw_param_token { commas + 1 } else { 0 };
                return Some((params, j));
            }
        } else if t.is_punct('(') || t.is_punct('[') {
            paren += 1;
        } else if t.is_punct(')') || t.is_punct(']') {
            paren -= 1;
            if paren < 0 {
                return None;
            }
        } else if t.is_punct(',') && depth == 1 && paren == 0 {
            // Ignore a trailing comma right before `>`.
            if code.get(j + 1).is_some_and(|n| n.is_punct('>')) {
                continue;
            }
            commas += 1;
        } else if t.is_punct(';') || t.is_punct('{') || t.is_punct('}') {
            return None;
        } else if depth >= 1 {
            saw_param_token = true;
        }
    }
    None
}

/// How many generic parameters a std hash collection has when the hasher is
/// left to default: `HashMap<K, V>` (2 of 3), `HashSet<T>` (1 of 2).
fn default_hasher_arity(name: &str) -> usize {
    if name == "HashMap" {
        2
    } else {
        1
    }
}

/// Rule `default-hasher`: flag construction or type mention of a std hash
/// collection that leaves the hasher parameter defaulted (RandomState — a
/// per-process random seed, so iteration order and bucket layout vary
/// between runs).
fn default_hasher(ctx: &FileCtx, findings: &mut Vec<Finding>) {
    if ctx.role == FileRole::TestLike {
        return;
    }
    let code = &ctx.code;
    for i in 0..code.len() {
        if ctx.in_test[i] {
            continue;
        }
        let t = &code[i];
        if !(t.is_ident("HashMap") || t.is_ident("HashSet")) {
            continue;
        }
        let arity = default_hasher_arity(&t.text);
        // `HashMap::new(...)` / `HashMap::with_capacity(...)`: always the
        // default hasher (custom hashers go through `default`/`with_hasher`).
        if is_path_sep(code, i + 1) {
            match code.get(i + 3) {
                Some(m) if m.is_ident("new") || m.is_ident("with_capacity") => {
                    push(
                        ctx,
                        findings,
                        "default-hasher",
                        t,
                        format!(
                            "{}::{} builds a randomly-seeded RandomState table; use \
                             fasthash::FastHash{}, a BTree{}, or an explicit deterministic hasher",
                            t.text,
                            m.text,
                            &t.text[4..],
                            &t.text[4..],
                        ),
                    );
                }
                // Turbofish `HashMap::<K, V>::…`: the hasher is pinned to
                // RandomState when only key/value params are given.
                Some(m) if m.is_punct('<') => {
                    if let Some((params, _)) = generic_params(code, i + 3) {
                        if params > 0 && params <= arity {
                            push(
                                ctx,
                                findings,
                                "default-hasher",
                                t,
                                format!(
                                    "{}::<…> with {} parameter(s) defaults the hasher to \
                                     RandomState",
                                    t.text, params
                                ),
                            );
                        }
                    }
                }
                _ => {}
            }
            continue;
        }
        // Type mention `HashMap<K, V>` without a hasher parameter.
        if code.get(i + 1).is_some_and(|n| n.is_punct('<')) {
            if let Some((params, _)) = generic_params(code, i + 1) {
                if params > 0 && params <= arity {
                    push(
                        ctx,
                        findings,
                        "default-hasher",
                        t,
                        format!(
                            "{}<…> with {} parameter(s) defaults the hasher to RandomState",
                            t.text, params
                        ),
                    );
                }
            }
        }
    }
}

/// Methods whose call on a hash-ordered container exposes its ordering.
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "into_keys",
    "values",
    "values_mut",
    "into_values",
    "into_iter",
    "drain",
    "retain",
    "extract_if",
];

/// Type names that mark a binding as hash-ordered. Includes the workspace's
/// own deterministic-hash aliases: a FastHashMap hashes deterministically,
/// but its iteration order still depends on insertion history and capacity,
/// which is exactly what must not reach an output. The common third-party
/// aliases (`FxHashMap`, and `IndexMap`'s insertion-history order) are listed
/// too so a future vendored shim does not reopen the hole.
const HASH_TYPES: &[&str] = &[
    "HashMap",
    "HashSet",
    "FastHashMap",
    "FastHashSet",
    "FxHashMap",
    "FxHashSet",
    "IndexMap",
    "IndexSet",
];

fn is_hash_type_name(t: &Token) -> bool {
    t.kind == TokenKind::Ident && HASH_TYPES.iter().any(|h| t.text == *h)
}

/// Collect names bound to hash-ordered containers in this file: `let` /
/// field / parameter declarations whose type names a hash collection, and
/// `let name = HashMap::new()`-style initializers.
fn hash_bindings(ctx: &FileCtx) -> BTreeSet<String> {
    let code = &ctx.code;
    let mut names = BTreeSet::new();
    for i in 0..code.len() {
        let t = &code[i];
        if t.kind != TokenKind::Ident {
            continue;
        }
        // `name : … Hash… <` within the next few tokens — covers struct
        // fields, fn parameters and let ascriptions. A single `:` only (a
        // `::` would be a path segment).
        let colon = i + 1;
        if !is_keyword(&t.text)
            && code.get(colon).is_some_and(|c| c.is_punct(':'))
            && !is_path_sep(code, colon)
            && !code.get(i.wrapping_sub(1)).is_some_and(|p| p.is_punct(':'))
        {
            let mut j = colon + 1;
            let mut budget = 24usize;
            while let Some(ty) = code.get(j) {
                if budget == 0
                    || ty.is_punct(';')
                    || ty.is_punct('=')
                    || ty.is_punct('{')
                    || ty.is_punct('}')
                    || ty.is_punct(')')
                    || ty.is_punct(',')
                {
                    break;
                }
                if is_hash_type_name(ty) && code.get(j + 1).is_some_and(|n| n.is_punct('<')) {
                    names.insert(t.text.clone());
                    break;
                }
                j += 1;
                budget -= 1;
            }
        }
        // `let [mut] name = [path::]Hash…::…` initializer form.
        if t.is_ident("let") {
            let mut j = i + 1;
            if code.get(j).is_some_and(|m| m.is_ident("mut")) {
                j += 1;
            }
            let Some(name) = code.get(j) else { continue };
            if name.kind != TokenKind::Ident {
                continue;
            }
            // Skip an optional `: Type` ascription (handled above) to find
            // `=`.
            let mut k = j + 1;
            let mut budget = 32usize;
            while let Some(tk) = code.get(k) {
                if budget == 0 || tk.is_punct(';') || tk.is_punct('=') {
                    break;
                }
                k += 1;
                budget -= 1;
            }
            if !code.get(k).is_some_and(|e| e.is_punct('=')) {
                continue;
            }
            // Initializer head: `path::path::HashMap::…`.
            let mut h = k + 1;
            while let Some(head) = code.get(h) {
                if head.kind != TokenKind::Ident {
                    break;
                }
                if is_hash_type_name(head) {
                    names.insert(name.text.clone());
                    break;
                }
                if is_path_sep(code, h + 1) {
                    h += 3;
                } else {
                    break;
                }
            }
        }
    }
    names
}

fn is_keyword(s: &str) -> bool {
    matches!(
        s,
        "let" | "mut" | "fn" | "pub" | "ref" | "if" | "else" | "match" | "for" | "while" | "in"
    )
}

/// Rule `hash-iter`: flag iteration over any binding this file declares with
/// a hash-ordered type — `map.iter()`, `for k in &map`, `map.retain(…)`, ….
fn hash_iter(ctx: &FileCtx, findings: &mut Vec<Finding>) {
    if ctx.role == FileRole::TestLike {
        return;
    }
    let names = hash_bindings(ctx);
    if names.is_empty() {
        return;
    }
    let code = &ctx.code;
    for i in 0..code.len() {
        if ctx.in_test[i] {
            continue;
        }
        let t = &code[i];
        // `name.iter()` / `self.name.keys()` …
        if t.kind == TokenKind::Ident && names.contains(&t.text) {
            if let (Some(dot), Some(m), Some(paren)) =
                (code.get(i + 1), code.get(i + 2), code.get(i + 3))
            {
                if dot.is_punct('.')
                    && m.kind == TokenKind::Ident
                    && ITER_METHODS.iter().any(|im| m.text == *im)
                    && paren.is_punct('(')
                {
                    push(
                        ctx,
                        findings,
                        "hash-iter",
                        t,
                        format!(
                            "`{}.{}()` iterates a hash-ordered container; iteration order \
                             depends on hasher seed/insertion history — sort first or use a \
                             BTree collection",
                            t.text, m.text
                        ),
                    );
                }
            }
        }
        // `for pat in [&][mut] name {`
        if t.is_ident("for") {
            // Find the `in` at this statement, shallowly.
            let mut j = i + 1;
            let mut budget = 48usize;
            while let Some(tk) = code.get(j) {
                if budget == 0 || tk.is_punct('{') || tk.is_punct(';') {
                    break;
                }
                if tk.is_ident("in") {
                    let mut h = j + 1;
                    while code
                        .get(h)
                        .is_some_and(|a| a.is_punct('&') || a.is_ident("mut"))
                    {
                        h += 1;
                    }
                    if let (Some(src), Some(open)) = (code.get(h), code.get(h + 1)) {
                        if src.kind == TokenKind::Ident
                            && names.contains(&src.text)
                            && open.is_punct('{')
                        {
                            push(
                                ctx,
                                findings,
                                "hash-iter",
                                src,
                                format!(
                                    "`for … in {}` iterates a hash-ordered container; order \
                                     depends on hasher seed/insertion history",
                                    src.text
                                ),
                            );
                        }
                    }
                    break;
                }
                j += 1;
                budget -= 1;
            }
        }
    }
}

/// Rule `fs-iter`: library code must not iterate raw directory listings.
/// `read_dir` yields entries in whatever order the filesystem reports them —
/// which differs across platforms, filesystems and even reruns — so any
/// cache-store scan or merge path built on it must collect and sort first
/// (and annotate the call site saying so).
fn fs_iter(ctx: &FileCtx, findings: &mut Vec<Finding>) {
    if ctx.role != FileRole::Lib {
        return;
    }
    let code = &ctx.code;
    for i in 0..code.len() {
        if ctx.in_test[i] {
            continue;
        }
        let t = &code[i];
        // `fs::read_dir(dir)` / `path.read_dir()` — but not a local
        // `fn read_dir(…)` definition.
        if t.is_ident("read_dir")
            && code.get(i + 1).is_some_and(|p| p.is_punct('('))
            && !code
                .get(i.wrapping_sub(1))
                .is_some_and(|p| p.is_ident("fn"))
        {
            push(
                ctx,
                findings,
                "fs-iter",
                t,
                "`read_dir` enumerates entries in a platform/filesystem-dependent order; \
                 collect the paths and sort before iterating, then annotate this site"
                    .to_string(),
            );
        }
    }
}

/// Rule `wall-clock`: engine library code must not read wall time or thread
/// identity — both vary run-to-run and would leak into simulated state or
/// emitted bytes.
fn wall_clock(ctx: &FileCtx, findings: &mut Vec<Finding>) {
    if ctx.role != FileRole::Lib {
        return;
    }
    let code = &ctx.code;
    for i in 0..code.len() {
        if ctx.in_test[i] {
            continue;
        }
        let t = &code[i];
        let wanted = if t.is_ident("Instant") || t.is_ident("SystemTime") {
            "now"
        } else if t.is_ident("thread") {
            "current"
        } else {
            continue;
        };
        if is_path_sep(code, i + 1) && code.get(i + 3).is_some_and(|m| m.is_ident(wanted)) {
            push(
                ctx,
                findings,
                "wall-clock",
                t,
                format!(
                    "`{}::{}` reads host state that differs between runs; simulation and emit \
                     paths must derive everything from simulated time",
                    t.text, wanted
                ),
            );
        }
    }
}

/// Rule `float-accum`: float reductions whose result depends on evaluation
/// order. `x.sum::<f64>()` and float-seeded `fold`s are flagged; integer
/// sums commute and are ignored.
fn float_accum(ctx: &FileCtx, findings: &mut Vec<Finding>) {
    if ctx.role != FileRole::Lib {
        return;
    }
    let code = &ctx.code;
    for i in 0..code.len() {
        if ctx.in_test[i] || !code[i].is_punct('.') {
            continue;
        }
        let Some(m) = code.get(i + 1) else { continue };
        // `.sum::<f64>()` / `.product::<f32>()`
        if (m.is_ident("sum") || m.is_ident("product"))
            && is_path_sep(code, i + 2)
            && code.get(i + 4).is_some_and(|lt| lt.is_punct('<'))
            && code
                .get(i + 5)
                .is_some_and(|f| f.is_ident("f64") || f.is_ident("f32"))
        {
            push(
                ctx,
                findings,
                "float-accum",
                m,
                format!(
                    "float `{}` reduction: addition order changes the result in the last ulp; \
                     pin the iteration order (sorted/indexed) and annotate, or accumulate \
                     integers",
                    m.text
                ),
            );
        }
        // `.fold(0.0, …)` — float seed.
        if m.is_ident("fold") && code.get(i + 2).is_some_and(|p| p.is_punct('(')) {
            let mut j = i + 3;
            if code.get(j).is_some_and(|s| s.is_punct('-')) {
                j += 1;
            }
            if let Some(seed) = code.get(j) {
                let floaty = seed.kind == TokenKind::Number
                    && (seed.text.contains('.')
                        || seed.text.ends_with("f64")
                        || seed.text.ends_with("f32"));
                if floaty {
                    push(
                        ctx,
                        findings,
                        "float-accum",
                        m,
                        "float-seeded `fold`: addition order changes the result; pin the \
                         iteration order (sorted/indexed) and annotate, or accumulate integers"
                            .to_string(),
                    );
                }
            }
        }
    }
}

/// Rule `panic`: `unwrap`/`expect`/`panic!` family in engine library code.
fn panic_rule(ctx: &FileCtx, findings: &mut Vec<Finding>) {
    if ctx.role != FileRole::Lib {
        return;
    }
    let code = &ctx.code;
    for i in 0..code.len() {
        if ctx.in_test[i] {
            continue;
        }
        let t = &code[i];
        if t.kind != TokenKind::Ident {
            continue;
        }
        let is_macro = matches!(
            t.text.as_str(),
            "panic" | "unreachable" | "todo" | "unimplemented"
        ) && code.get(i + 1).is_some_and(|b| b.is_punct('!'));
        if is_macro {
            push(
                ctx,
                findings,
                "panic",
                t,
                format!(
                    "`{}!` in library code; return an error, or annotate why this invariant \
                     cannot fire (panics are only tolerated inside the campaign's per-cell \
                     catch_unwind)",
                    t.text
                ),
            );
            continue;
        }
        let is_method = matches!(
            t.text.as_str(),
            "unwrap" | "expect" | "unwrap_err" | "expect_err"
        ) && code.get(i.wrapping_sub(1)).is_some_and(|d| d.is_punct('.'))
            && code.get(i + 1).is_some_and(|p| p.is_punct('('));
        if is_method && i > 0 {
            push(
                ctx,
                findings,
                "panic",
                t,
                format!(
                    "`.{}()` in library code; return an error, or annotate why this invariant \
                     cannot fire (panics are only tolerated inside the campaign's per-cell \
                     catch_unwind)",
                    t.text
                ),
            );
        }
    }
}

/// Rule `unsafe-code`: `unsafe` or `static mut` anywhere — tests included.
/// The crate roots' `#![forbid(unsafe_code)]` is the compiler-level backstop;
/// this rule keeps the gate even for files outside any crate root's reach.
fn unsafe_rule(ctx: &FileCtx, findings: &mut Vec<Finding>) {
    let code = &ctx.code;
    for i in 0..code.len() {
        let t = &code[i];
        if t.is_ident("unsafe") {
            // `#![forbid(unsafe_code)]` mentions the *ident* unsafe_code, not
            // the keyword, so no special case is needed.
            push(
                ctx,
                findings,
                "unsafe-code",
                t,
                "`unsafe` is denied across the workspace (#![forbid(unsafe_code)] backs this \
                 at the compiler level)"
                    .to_string(),
            );
        }
        if t.is_ident("static") && code.get(i + 1).is_some_and(|m| m.is_ident("mut")) {
            push(
                ctx,
                findings,
                "unsafe-code",
                t,
                "`static mut` is denied across the workspace — shared mutable state breaks \
                 thread-count determinism"
                    .to_string(),
            );
        }
    }
}

/// Function-name stems that mark a combiner in the shard-merge sense.
const MERGE_STEMS: &[&str] = &["merge", "absorb", "combine"];

/// Rule `shard-merge`: a library function that merges, absorbs or combines
/// shard state must show its ordering step. Per-shard results arrive in an
/// order that depends on routing and shard count, so a combiner that just
/// folds them as they come would only be byte-identical to the single-worker
/// path by accident. The rule is lexical: the function's body must mention a
/// `sort*` call or a `BTree*` collection (both impose a total order) — any
/// other ordering strategy needs a `lint:allow(shard-merge)` annotation
/// explaining itself.
// lint:allow(shard-merge) — the rule's own lexical heuristic matches its own implementation
fn shard_merge(ctx: &FileCtx, findings: &mut Vec<Finding>) {
    if ctx.role != FileRole::Lib {
        return;
    }
    let code = &ctx.code;
    for i in 0..code.len() {
        if ctx.in_test[i] || !code[i].is_ident("fn") {
            continue;
        }
        let Some(name) = code.get(i + 1) else {
            continue;
        };
        if name.kind != TokenKind::Ident {
            continue;
        }
        let lower = name.text.to_lowercase();
        if !MERGE_STEMS.iter().any(|stem| lower.contains(stem)) {
            continue;
        }
        // Locate the body: the first `{` after the signature. A `;` first
        // means a bodiless trait declaration — nothing to check there.
        let mut j = i + 2;
        let open = loop {
            match code.get(j) {
                Some(t) if t.is_punct(';') => break None,
                Some(t) if t.is_punct('{') => break Some(j),
                Some(_) => j += 1,
                None => break None,
            }
        };
        let Some(open) = open else { continue };
        let mut depth = 0i64;
        let mut close = open;
        for (k, t) in code.iter().enumerate().skip(open) {
            if t.is_punct('{') {
                depth += 1;
            } else if t.is_punct('}') {
                depth -= 1;
                if depth == 0 {
                    close = k;
                    break;
                }
            }
        }
        // Only combiners that actually touch shard state are in scope.
        let touches_shards = code[i..=close]
            .iter()
            .any(|t| t.kind == TokenKind::Ident && t.text.to_lowercase().contains("shard"));
        if !touches_shards {
            continue;
        }
        let shows_ordering = code[open..=close].iter().any(|t| {
            t.kind == TokenKind::Ident
                && (t.text.starts_with("sort") || t.text.starts_with("BTree"))
        });
        if !shows_ordering {
            push(
                ctx,
                findings,
                "shard-merge",
                name,
                format!(
                    "`fn {}` combines shard state without a visible ordering step; merge \
                     through a BTree collection or sort before folding so the result is \
                     byte-identical to the single-worker path, then keep that token in \
                     this body (or annotate why order cannot matter here)",
                    name.text
                ),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint_lib(src: &str) -> Vec<Finding> {
        run_rules(&FileCtx::new("crates/x/src/lib.rs", src))
    }

    fn rule_ids(findings: &[Finding]) -> Vec<&'static str> {
        findings.iter().map(|f| f.rule).collect()
    }

    #[test]
    fn default_hasher_construction_flagged() {
        let f = lint_lib("fn f() { let m = HashMap::new(); }");
        assert_eq!(rule_ids(&f), ["default-hasher"]);
        let f = lint_lib("fn f() { let s = HashSet::with_capacity(8); }");
        assert_eq!(rule_ids(&f), ["default-hasher"]);
    }

    #[test]
    fn default_hasher_type_mention_flagged() {
        let f = lint_lib("struct S { m: HashMap<u64, u32> }");
        assert_eq!(rule_ids(&f), ["default-hasher"]);
    }

    #[test]
    fn hasher_parameter_silences_rule_one() {
        // Three-parameter map: hasher explicitly named. (Iterating it is
        // still rule 2's business.)
        let f = lint_lib("struct S { m: HashMap<u64, u32, FastBuildHasher> }");
        assert!(rule_ids(&f).is_empty(), "{f:?}");
    }

    #[test]
    fn nested_generics_counted_at_top_level_only() {
        let f = lint_lib("struct S { m: HashMap<u64, Vec<(u32, u8)>> }");
        assert_eq!(rule_ids(&f), ["default-hasher"]);
        let f = lint_lib("struct S { m: HashMap<u64, Box<dyn Fn() -> u64>, H> }");
        assert!(rule_ids(&f).is_empty(), "{f:?}");
    }

    #[test]
    fn import_alone_is_not_flagged() {
        let f = lint_lib("use std::collections::HashMap;");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn turbofish_default_hasher_flagged() {
        let f = lint_lib("fn f() { let m = HashMap::<u64, u32>::default(); }");
        assert_eq!(rule_ids(&f), ["default-hasher"]);
    }

    #[test]
    fn comparison_with_less_than_is_not_a_generic_list() {
        let f = lint_lib("fn f(a: usize) { if HashMap < a {} }");
        // Nonsense code, but the arity parser must bail instead of flagging.
        assert!(f.iter().all(|x| x.rule != "default-hasher"), "{f:?}");
    }

    #[test]
    fn hash_iteration_on_declared_binding_flagged() {
        let src = "struct S { m: HashMap<u64, u32, H> }\n\
                   impl S { fn f(&self) { for v in self.m.values() { use_(v); } } }";
        let f = lint_lib(src);
        assert_eq!(rule_ids(&f), ["hash-iter"]);
    }

    #[test]
    fn for_loop_over_hash_param_flagged() {
        let f = lint_lib("fn f(region: &HashSet<u32, H>) { for b in region { g(b); } }");
        assert_eq!(rule_ids(&f), ["hash-iter"]);
    }

    #[test]
    fn fasthash_alias_iteration_flagged() {
        let f = lint_lib(
            "fn f() { let m = FastHashMap::default(); m.insert(1, 2); for k in m.keys() { g(k); } }",
        );
        assert_eq!(rule_ids(&f), ["hash-iter"]);
    }

    #[test]
    fn btree_iteration_is_clean() {
        let f = lint_lib("fn f(m: &BTreeMap<u64, u32>) { for v in m.values() { g(v); } }");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn lookup_on_hash_binding_is_clean() {
        let f = lint_lib(
            "struct S { m: HashMap<u64, u32, H> }\n\
                          impl S { fn g(&self) -> Option<&u32> { self.m.get(&1) } }",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn fx_and_index_aliases_iteration_flagged() {
        let f = lint_lib(
            "fn f() { let m = FxHashMap::default(); m.insert(1, 2); for k in m.keys() { g(k); } }",
        );
        assert_eq!(rule_ids(&f), ["hash-iter"]);
        let f = lint_lib("fn f(s: &IndexSet<u32>) { for b in s { g(b); } }");
        assert_eq!(rule_ids(&f), ["hash-iter"]);
        let f = lint_lib(
            "struct S { m: IndexMap<u64, u32> }\n\
                          impl S { fn f(&self) { for v in self.m.values() { g(v); } } }",
        );
        assert_eq!(rule_ids(&f), ["hash-iter"]);
    }

    #[test]
    fn read_dir_in_lib_flagged_but_bin_exempt() {
        let src = "fn f(d: &Path) { for e in fs::read_dir(d).unwrap() { g(e); } }";
        let ids = rule_ids(&lint_lib(src));
        assert!(ids.contains(&"fs-iter"), "{ids:?}");
        let f = run_rules(&FileCtx::new("crates/x/src/bin/tool.rs", src));
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn read_dir_method_form_flagged() {
        let f = lint_lib("fn f(d: &Path) -> io::Result<ReadDir> { d.read_dir() }");
        assert_eq!(rule_ids(&f), ["fs-iter"]);
    }

    #[test]
    fn read_dir_fn_definition_is_clean() {
        let f = lint_lib("fn read_dir(d: &Path) -> Vec<PathBuf> { Vec::new() }");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn allowed_read_dir_is_clean() {
        let f = lint_lib(
            "fn f(d: &Path) {\n    let e = fs::read_dir(d); // lint:allow(fs-iter) — sorted below\n}",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn wall_clock_in_lib_flagged_but_bin_exempt() {
        let src = "fn f() { let t = Instant::now(); }";
        assert_eq!(rule_ids(&lint_lib(src)), ["wall-clock"]);
        let f = run_rules(&FileCtx::new("crates/x/src/bin/tool.rs", src));
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn system_time_and_thread_current_flagged() {
        let f = lint_lib("fn f() { let t = SystemTime::now(); let id = thread::current().id(); }");
        assert_eq!(rule_ids(&f), ["wall-clock", "wall-clock"]);
    }

    #[test]
    fn thread_spawn_is_not_wall_clock() {
        let f = lint_lib("fn f() { thread::spawn(|| {}); }");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn float_sum_flagged_integer_sum_clean() {
        assert_eq!(
            rule_ids(&lint_lib(
                "fn f(v: &[f64]) -> f64 { v.iter().sum::<f64>() }"
            )),
            ["float-accum"]
        );
        let f = lint_lib("fn f(v: &[u64]) -> u64 { v.iter().sum::<u64>() }");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn float_fold_flagged() {
        let f = lint_lib("fn f(v: &[f64]) -> f64 { v.iter().fold(0.0, |a, b| a + b) }");
        assert_eq!(rule_ids(&f), ["float-accum"]);
        let f = lint_lib("fn f(v: &[u64]) -> u64 { v.iter().fold(0, |a, b| a + b) }");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn panics_in_lib_flagged() {
        let f = lint_lib("fn f(x: Option<u32>) -> u32 { x.unwrap() }");
        assert_eq!(rule_ids(&f), ["panic"]);
        let f = lint_lib("fn f() { panic!(\"boom\"); }");
        assert_eq!(rule_ids(&f), ["panic"]);
        let f = lint_lib("fn f(x: Option<u32>) -> u32 { x.expect(\"set\") }");
        assert_eq!(rule_ids(&f), ["panic"]);
    }

    #[test]
    fn unwrap_or_variants_are_clean() {
        let f = lint_lib(
            "fn f(x: Option<u32>) -> u32 { x.unwrap_or(0) + x.unwrap_or_else(|| 1) + \
             x.unwrap_or_default() }",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn panics_in_tests_and_bins_are_clean() {
        let f = lint_lib("#[cfg(test)]\nmod tests { fn t() { x.unwrap(); panic!(); } }");
        assert!(f.is_empty(), "{f:?}");
        let f = run_rules(&FileCtx::new(
            "crates/x/src/bin/tool.rs",
            "fn main() { x.unwrap(); }",
        ));
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn unsafe_flagged_even_in_tests() {
        let f = run_rules(&FileCtx::new(
            "tests/e2e.rs",
            "fn t() { unsafe { core::hint::unreachable_unchecked() } }",
        ));
        assert_eq!(rule_ids(&f), ["unsafe-code"]);
    }

    #[test]
    fn static_mut_flagged_static_const_clean() {
        let f = lint_lib("static mut COUNTER: u64 = 0;");
        assert_eq!(rule_ids(&f), ["unsafe-code"]);
        let f = lint_lib("static NAME: &str = \"x\";");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn forbid_attribute_is_not_flagged() {
        let f = lint_lib("#![forbid(unsafe_code)]\nfn f() {}");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn allow_annotation_suppresses_with_reason() {
        let f = lint_lib(
            "fn f() { let t = Instant::now(); // lint:allow(wall-clock) — opt-in budget\n }",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn allow_for_other_rule_does_not_suppress() {
        let f = lint_lib("fn f() { let t = Instant::now(); // lint:allow(panic) — wrong rule\n }");
        assert_eq!(rule_ids(&f), ["wall-clock"]);
    }

    #[test]
    fn shard_merge_without_ordering_flagged() {
        let f = lint_lib(
            "fn merge_shards(shards: Vec<Vec<u64>>) -> Vec<u64> {\n\
                 let mut out = Vec::new();\n\
                 for shard in shards { out.extend(shard); }\n\
                 out\n\
             }",
        );
        assert_eq!(rule_ids(&f), ["shard-merge"]);
        let f =
            lint_lib("impl S { fn absorb(&mut self, shard: ShardState) { self.n += shard.n; } }");
        assert_eq!(rule_ids(&f), ["shard-merge"]);
    }

    #[test]
    fn shard_merge_with_sort_or_btree_is_clean() {
        let f = lint_lib(
            "fn merge_shards(shards: Vec<Vec<u64>>) -> Vec<u64> {\n\
                 let mut out: Vec<u64> = shards.into_iter().flatten().collect();\n\
                 out.sort_unstable();\n\
                 out\n\
             }",
        );
        assert!(f.is_empty(), "{f:?}");
        let f = lint_lib(
            "fn merge_shards(shards: Vec<Vec<(u64, u64)>>) -> Vec<(u64, u64)> {\n\
                 let mut merged = BTreeMap::new();\n\
                 for shard in shards { for (k, v) in shard { merged.insert(k, v); } }\n\
                 merged.into_iter().collect()\n\
             }",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn merge_without_shard_state_is_out_of_scope() {
        let f = lint_lib("fn merge(a: Vec<u64>, b: Vec<u64>) -> Vec<u64> { concat(a, b) }");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn shard_merge_trait_declaration_and_tests_are_clean() {
        let f = lint_lib("trait Combine { fn merge_shards(&mut self, shard: ShardState); }");
        assert!(f.is_empty(), "{f:?}");
        let f = lint_lib(
            "#[cfg(test)]\nmod tests {\n    fn merge_shards(shards: Vec<u64>) {\n        fold(shards);\n    }\n}",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn shard_merge_allow_suppresses_with_reason() {
        let f = lint_lib(
            "fn merge_shards(shards: Vec<u64>) -> u64 { // lint:allow(shard-merge) — commutative sum\n\
                 shards.into_iter().fold(0, |a, b| a + b)\n\
             }",
        );
        assert!(f.is_empty(), "{f:?}");
    }
}
