//! The cross-socket scenario sweep: how LASER's repair benefit grows with
//! socket count.
//!
//! The paper evaluates on a single-socket Haswell, where every HITM costs the
//! same. Its premise — HITM transfers are the dominant, repairable cost of
//! sharing — gets *stronger* on multi-socket parts, where a cross-socket
//! HITM costs 2–3× a local one. This sweep runs the headline false-sharing
//! workloads on every topology preset (`flat`, `2s`, `4s`, `8s`), threads placed
//! round-robin across sockets so the contended lines actually cross the
//! interconnect, and reports per topology:
//!
//! * the ground-truth remote-HITM counts under native execution and under
//!   LASER with repair (repair buffering the contended stores removes the
//!   cross-socket transfers);
//! * LASERDETECT's overhead and LASER's repaired runtime, both normalized to
//!   the same topology's native run.
//!
//! Like every figure, the sweep is a planner ([`plan_xsocket`]) plus a pure
//! view ([`xsocket_from_grid`]) over the shared [`Grid`] cell cache, so
//! `experiments xsocket` shares its native cells with nothing but pays for
//! each `(workload, tool, topology)` cell exactly once.

use laser_core::TopologySpec;

use crate::grid::{ExperimentError, Grid, GridResult};
use crate::runner::ExperimentScale;
use crate::tool::ToolSpec;

/// The false-sharing workloads the sweep runs: the paper's headline
/// repairable bugs.
pub const XSOCKET_WORKLOADS: &[&str] = &["histogram'", "linear_regression", "reverse_index"];

/// One `(topology, workload)` row of the sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct XsocketRow {
    /// The topology preset the row ran on.
    pub topology: TopologySpec,
    /// Workload name.
    pub workload: &'static str,
    /// Native cycles on this topology (the row's normalization base).
    pub native_cycles: u64,
    /// Ground-truth HITM events of the native run.
    pub native_hitms: u64,
    /// ... of which crossed a socket boundary (0 on `flat`).
    pub native_remote_hitms: u64,
    /// LASERDETECT runtime normalized to this topology's native run.
    pub detect_norm: f64,
    /// LASER (with repair) runtime normalized to this topology's native run.
    pub repair_norm: f64,
    /// Whether LASERREPAIR attached during the LASER run.
    pub repair_invoked: bool,
    /// Cross-socket HITM events remaining under LASER with repair.
    pub repair_remote_hitms: u64,
}

impl XsocketRow {
    /// Fraction of the native run's HITM traffic that crossed sockets.
    pub fn native_remote_share(&self) -> f64 {
        if self.native_hitms == 0 {
            0.0
        } else {
            self.native_remote_hitms as f64 / self.native_hitms as f64
        }
    }
}

/// The sweep: rows grouped by topology (sweep order), workloads in registry
/// order within each.
#[derive(Debug, Clone, Default)]
pub struct XsocketReport {
    /// One row per `(topology, workload)`.
    pub rows: Vec<XsocketRow>,
}

impl XsocketReport {
    /// The rows of one topology.
    pub fn topology_rows(&self, topo: TopologySpec) -> Vec<&XsocketRow> {
        self.rows.iter().filter(|r| r.topology == topo).collect()
    }

    /// Render the sweep as a table.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "Cross-socket sweep: {:<20} {:>6} {:>12} {:>14} {:>14} {:>8} {:>8} {:>7}",
            "workload",
            "topo",
            "native_cyc",
            "remote_hitms",
            "post_repair",
            "detect",
            "laser",
            "repair"
        );
        for r in &self.rows {
            let _ = writeln!(
                out,
                "                    {:<20} {:>6} {:>12} {:>14} {:>14} {:>8.3} {:>8.3} {:>7}",
                r.workload,
                r.topology.key(),
                r.native_cycles,
                r.native_remote_hitms,
                r.repair_remote_hitms,
                r.detect_norm,
                r.repair_norm,
                if r.repair_invoked { "yes" } else { "-" }
            );
        }
        out
    }
}

/// Plan the sweep's cells: every preset topology × every headline
/// false-sharing workload the scale selects, under native, LASERDETECT and
/// LASER.
pub fn plan_xsocket(grid: &mut Grid) {
    for topo in TopologySpec::ALL {
        for spec in grid.scale().workloads() {
            if !XSOCKET_WORKLOADS.contains(&spec.name) {
                continue;
            }
            grid.request_at(&spec, ToolSpec::Native, topo);
            grid.request_at(&spec, ToolSpec::LaserDetect, topo);
            grid.request_at(&spec, ToolSpec::Laser, topo);
        }
    }
}

/// Derive the sweep from cached cells.
///
/// # Errors
/// Propagates missing or failed cells.
pub fn xsocket_from_grid(grid: &GridResult) -> Result<XsocketReport, ExperimentError> {
    let mut rows = Vec::new();
    for topo in TopologySpec::ALL {
        for spec in grid.scale().workloads() {
            if !XSOCKET_WORKLOADS.contains(&spec.name) {
                continue;
            }
            let native = grid.tool_run_at(spec.name, ToolSpec::Native, topo)?;
            let detect = grid.tool_run_at(spec.name, ToolSpec::LaserDetect, topo)?;
            let laser = grid.tool_run_at(spec.name, ToolSpec::Laser, topo)?;
            let base = native.cycles.max(1) as f64;
            rows.push(XsocketRow {
                topology: topo,
                workload: spec.name,
                native_cycles: native.cycles,
                native_hitms: native.hitm_events,
                native_remote_hitms: native.hitm_remote,
                detect_norm: detect.cycles as f64 / base,
                repair_norm: laser.cycles as f64 / base,
                repair_invoked: laser.repair_invoked,
                repair_remote_hitms: laser.hitm_remote,
            });
        }
    }
    Ok(XsocketReport { rows })
}

/// Run the sweep on a single-purpose grid.
///
/// # Errors
/// Propagates simulator errors.
pub fn xsocket_sweep(scale: &ExperimentScale) -> Result<XsocketReport, ExperimentError> {
    let mut grid = Grid::new(*scale);
    plan_xsocket(&mut grid);
    xsocket_from_grid(&grid.run())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scale() -> ExperimentScale {
        // Full scale (the xsocket default): the repair trigger needs a
        // full-length contended phase to fire early enough to matter.
        ExperimentScale {
            workload_scale: 1.0,
            only: Some(&["histogram'"]),
        }
    }

    #[test]
    fn sweep_shows_remote_hitms_and_repair_reducing_them() {
        let report = xsocket_sweep(&scale()).unwrap();
        // One workload on every preset topology.
        assert_eq!(report.rows.len(), TopologySpec::ALL.len());
        let flat = &report.topology_rows(TopologySpec::Flat)[0];
        assert_eq!(flat.native_remote_hitms, 0, "one socket: nothing remote");
        assert!(flat.native_hitms > 0, "histogram' contends");

        let dual = &report.topology_rows(TopologySpec::DualSocket)[0];
        assert!(
            dual.native_remote_hitms > 0,
            "round-robin placement drives contention across sockets"
        );
        assert!(dual.native_remote_share() > 0.0);
        assert!(dual.repair_invoked, "repair should trigger: {dual:?}");
        assert!(
            dual.repair_remote_hitms < dual.native_remote_hitms,
            "repair removes cross-socket HITM traffic ({} -> {})",
            dual.native_remote_hitms,
            dual.repair_remote_hitms
        );
        assert!(
            dual.repair_norm < dual.detect_norm,
            "repair beats detection-only overhead on a contended workload"
        );

        // The sweep's headline: the repair benefit *grows* with the socket
        // count, because each removed HITM is dearer off-socket.
        let quad = &report.topology_rows(TopologySpec::QuadSocket)[0];
        assert!(quad.repair_invoked);
        assert!(
            dual.repair_norm < flat.repair_norm && quad.repair_norm < dual.repair_norm,
            "repair benefit should grow with sockets: flat {:.3} > 2s {:.3} > 4s {:.3}",
            flat.repair_norm,
            dual.repair_norm,
            quad.repair_norm
        );
        let octo = &report.topology_rows(TopologySpec::OctoSocket)[0];
        assert!(octo.repair_invoked);
        assert!(
            octo.native_remote_share() >= quad.native_remote_share(),
            "more sockets leave a larger share of HITMs remote: 4s {:.3} vs 8s {:.3}",
            quad.native_remote_share(),
            octo.native_remote_share()
        );
    }

    #[test]
    fn sweep_respects_the_scale_selection() {
        let report = xsocket_sweep(&ExperimentScale {
            workload_scale: 0.1,
            only: Some(&["swaptions"]), // not a sweep workload
        })
        .unwrap();
        assert!(report.rows.is_empty());
    }
}
