//! Criterion bench regenerating Figure 9 at reduced scale.
use criterion::{criterion_group, criterion_main, Criterion};
use laser_bench::accuracy::{fig9_threshold_sweep, fig9_thresholds};
use laser_bench::ExperimentScale;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig9_threshold");
    group.sample_size(10);
    group.bench_function("fig9_threshold", |b| {
        b.iter(|| fig9_threshold_sweep(&ExperimentScale::bench(), &fig9_thresholds()).unwrap())
    });
    group.finish();
}
criterion_group!(benches, bench);
criterion_main!(benches);
