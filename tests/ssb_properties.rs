//! Property-based tests of the core data structures and invariants:
//! the software store buffer must be equivalent to writing through to memory,
//! the coalescing buffer must never exceed its footprint bound between
//! flushes, and the simulator must be deterministic.

use std::collections::HashMap;

use proptest::prelude::*;

use laser::core::repair::ssb::{SoftwareStoreBuffer, SsbLookup};
use laser::isa::inst::{Operand, Reg};
use laser::isa::ProgramBuilder;
use laser::machine::{Machine, MachineConfig, ThreadSpec, WorkloadImage};

/// A reference "memory" for the SSB equivalence property.
#[derive(Default)]
struct RefMem {
    bytes: HashMap<u64, u8>,
}

impl RefMem {
    fn write(&mut self, addr: u64, size: u8, value: u64) {
        for i in 0..size as u64 {
            self.bytes.insert(addr + i, (value >> (8 * i)) as u8);
        }
    }
    fn read(&self, addr: u64, size: u8) -> u64 {
        let mut v = 0u64;
        for i in 0..size as u64 {
            v |= (*self.bytes.get(&(addr + i)).unwrap_or(&0) as u64) << (8 * i);
        }
        v
    }
}

fn store_op() -> impl Strategy<Value = (u64, u8, u64)> {
    // Addresses within a few cache lines, sizes 1..=8, arbitrary values.
    (0x1000u64..0x1100, 1u8..=8, any::<u64>())
}

proptest! {
    /// Buffering stores in the SSB and flushing them produces exactly the
    /// same memory image as writing them straight through, regardless of
    /// aliasing, overlap or access size — the single-threaded-semantics
    /// invariant of Section 5.2.
    #[test]
    fn ssb_flush_is_equivalent_to_write_through(ops in prop::collection::vec(store_op(), 1..60)) {
        let mut ssb = SoftwareStoreBuffer::new();
        let mut direct = RefMem::default();
        let mut backing = RefMem::default();
        for (addr, size, value) in &ops {
            let value = if *size >= 8 { *value } else { *value & ((1u64 << (8 * size)) - 1) };
            direct.write(*addr, *size, value);
            ssb.put(*addr, *size, value);
        }
        for (addr, size, value) in ssb.drain_writes() {
            backing.write(addr, size, value);
        }
        prop_assert!(ssb.is_empty());
        for addr in 0x1000u64..0x1110 {
            prop_assert_eq!(direct.read(addr, 1), backing.read(addr, 1), "byte at {:#x}", addr);
        }
    }

    /// Loads served from the SSB always see the latest buffered value, and
    /// lookups never invent data: a miss means no byte of the range was
    /// buffered.
    #[test]
    fn ssb_lookup_agrees_with_write_through(ops in prop::collection::vec(store_op(), 1..40)) {
        let mut ssb = SoftwareStoreBuffer::new();
        let mut direct = RefMem::default();
        for (addr, size, value) in &ops {
            let value = if *size >= 8 { *value } else { *value & ((1u64 << (8 * size)) - 1) };
            direct.write(*addr, *size, value);
            ssb.put(*addr, *size, value);
        }
        for (addr, size, _) in &ops {
            match ssb.lookup(*addr, *size) {
                SsbLookup::Hit(v) => prop_assert_eq!(v, direct.read(*addr, *size)),
                SsbLookup::Partial => {
                    let merged = ssb.merge(*addr, *size, 0);
                    // Merging over zeros must agree on the buffered bytes.
                    let reference = direct.read(*addr, *size);
                    prop_assert_eq!(merged & reference, merged & merged & reference);
                }
                SsbLookup::Miss => {
                    prop_assert!(!ssb.overlaps(*addr, *size));
                }
            }
        }
    }

    /// The machine is deterministic: the same image run twice produces the
    /// same cycle count, statistics and memory contents.
    #[test]
    fn machine_execution_is_deterministic(
        iters in 1u64..200,
        offsets in prop::collection::vec(0u64..8, 2..4),
    ) {
        let mut b = ProgramBuilder::new("prop");
        b.source("prop.c", 1);
        let entry = b.block("entry");
        let body = b.block("body");
        let exit = b.block("exit");
        b.switch_to(entry);
        b.movi(Reg(2), 0);
        b.jump(body);
        b.switch_to(body);
        b.mem_add(Reg(0), 0, Operand::Imm(1), 8);
        b.addi(Reg(2), Reg(2), 1);
        b.cmp_lt(Reg(3), Reg(2), Operand::Imm(iters));
        b.branch(Reg(3), body, exit);
        b.switch_to(exit);
        b.halt();
        let program = b.finish();
        let mut image = WorkloadImage::new("prop", program);
        let base = image.layout_mut().heap_alloc(64, 64).unwrap();
        for (t, off) in offsets.iter().enumerate() {
            image.push_thread(
                ThreadSpec::new(format!("t{t}"), "entry").with_reg(Reg(0), base + off * 8),
            );
        }
        let mut a = Machine::new(MachineConfig::default(), &image);
        let mut c = Machine::new(MachineConfig::default(), &image);
        let ra = a.run_to_completion().unwrap();
        let rc = c.run_to_completion().unwrap();
        prop_assert_eq!(ra.cycles, rc.cycles);
        prop_assert_eq!(ra.stats, rc.stats);
        for off in &offsets {
            prop_assert_eq!(a.read_u64(base + off * 8), c.read_u64(base + off * 8));
        }
    }

    /// Coherence bookkeeping: every access is counted exactly once, so the
    /// outcome classes partition the memory accesses.
    #[test]
    fn access_classes_partition_memory_accesses(iters in 1u64..150, threads in 1usize..4) {
        let mut b = ProgramBuilder::new("partition");
        let entry = b.block("entry");
        let body = b.block("body");
        let exit = b.block("exit");
        b.switch_to(entry);
        b.movi(Reg(2), 0);
        b.jump(body);
        b.switch_to(body);
        b.load(Reg(1), Reg(0), 0, 8);
        b.store(Operand::Reg(Reg(1)), Reg(0), 8, 8);
        b.addi(Reg(2), Reg(2), 1);
        b.cmp_lt(Reg(3), Reg(2), Operand::Imm(iters));
        b.branch(Reg(3), body, exit);
        b.switch_to(exit);
        b.halt();
        let program = b.finish();
        let mut image = WorkloadImage::new("partition", program);
        let base = image.layout_mut().heap_alloc(64, 64).unwrap();
        for t in 0..threads {
            image.push_thread(ThreadSpec::new(format!("t{t}"), "entry").with_reg(Reg(0), base));
        }
        let mut m = Machine::new(MachineConfig::default(), &image);
        let r = m.run_to_completion().unwrap();
        let accesses = r.stats.loads + r.stats.stores + r.stats.atomics;
        let classified =
            r.stats.l1_hits + r.stats.llc_hits + r.stats.hitm_events + r.stats.dram_accesses;
        prop_assert_eq!(accesses, classified);
        prop_assert_eq!(r.stats.hitm_events, r.stats.hitm_loads + r.stats.hitm_stores);
    }
}
