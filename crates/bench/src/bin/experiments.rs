//! The experiment driver: regenerates every table and figure of the paper.
//!
//! ```text
//! experiments [all|fig2|fig3|table1|table2|fig9|fig10|fig11|fig12|fig13|fig14] [--scale S]
//! ```
//!
//! `--scale` multiplies every workload's input size (default 0.4); the paper's
//! qualitative results hold across scales, larger values just take longer.

use std::env;
use std::process::ExitCode;

use laser_bench::accuracy::{fig9_threshold_sweep, fig9_thresholds, table1_accuracy, table2_types};
use laser_bench::characterization::{fig2_layout, fig3_characterization};
use laser_bench::performance::{
    fig10_overhead, fig11_speedups, fig12_breakdown, fig13_sav_sweep, fig13_savs, fig14_sheriff,
};
use laser_bench::ExperimentScale;

fn usage() -> ExitCode {
    eprintln!(
        "usage: experiments [all|fig2|fig3|table1|table2|fig9|fig10|fig11|fig12|fig13|fig14] \
         [--scale S]"
    );
    ExitCode::from(2)
}

fn run_one(which: &str, scale: &ExperimentScale) -> Result<(), laser_core::LaserError> {
    match which {
        "fig2" => print!("{}", fig2_layout()),
        "fig3" => {
            let per_category = if scale.workload_scale < 0.2 { 5 } else { 40 };
            print!("{}", fig3_characterization(per_category).render());
        }
        "table1" => print!("{}", table1_accuracy(scale)?.render()),
        "table2" => print!("{}", table2_types(scale)?.render()),
        "fig9" => print!("{}", fig9_threshold_sweep(scale, &fig9_thresholds())?.render()),
        "fig10" => print!("{}", fig10_overhead(scale)?.render()),
        "fig11" => print!("{}", fig11_speedups(scale)?.render()),
        "fig12" => print!("{}", fig12_breakdown(scale, 0.10)?.render()),
        "fig13" => print!("{}", fig13_sav_sweep(scale, &fig13_savs())?.render()),
        "fig14" => print!("{}", fig14_sheriff(scale)?.render()),
        other => {
            eprintln!("unknown experiment '{other}'");
        }
    }
    println!();
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = env::args().skip(1).collect();
    let mut which = "all".to_string();
    let mut scale = ExperimentScale::default();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                let Some(v) = args.get(i + 1).and_then(|s| s.parse::<f64>().ok()) else {
                    return usage();
                };
                scale.workload_scale = v;
                i += 2;
            }
            "--help" | "-h" => return usage(),
            name => {
                which = name.to_string();
                i += 1;
            }
        }
    }

    let all = [
        "fig2", "fig3", "table1", "table2", "fig9", "fig10", "fig11", "fig12", "fig13", "fig14",
    ];
    let selected: Vec<&str> =
        if which == "all" { all.to_vec() } else { vec![which.as_str()] };
    if selected.iter().any(|s| !all.contains(s)) {
        return usage();
    }
    for name in selected {
        println!("==================== {name} ====================");
        if let Err(e) = run_one(name, &scale) {
            eprintln!("experiment {name} failed: {e}");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
