use super::*;
use crate::hook::{ExecHook, HookAction, HookCtx, MemOp};
use crate::image::ThreadSpec;
use laser_isa::inst::{Operand, Reg};
use laser_isa::ProgramBuilder;

/// A single thread storing 1..=n into consecutive u64 slots.
fn store_loop_image(n: u64) -> (WorkloadImage, Addr) {
    let mut b = ProgramBuilder::new("store_loop");
    b.source("store_loop.c", 1);
    let body = b.block("body");
    let done = b.block("done");
    b.switch_to(body);
    // r0 = base, r1 = i
    b.store(Operand::Reg(Reg(1)), Reg(0), 0, 8);
    b.addi(Reg(0), Reg(0), 8);
    b.addi(Reg(1), Reg(1), 1);
    b.cmp_lt(Reg(2), Reg(1), Operand::Imm(n));
    b.branch(Reg(2), body, done);
    b.switch_to(done);
    b.halt();
    let program = b.finish();
    let mut image = WorkloadImage::new("store_loop", program);
    let base = image.layout_mut().heap_alloc(8 * n, 64).unwrap();
    image.push_thread(ThreadSpec::new("t0", "body").with_reg(Reg(0), base));
    (image, base)
}

/// Two threads hammering the same (or adjacent) 8-byte slots.
fn sharing_image(offset1: i64, iters: u64) -> WorkloadImage {
    let mut b = ProgramBuilder::new("sharing");
    b.source("sharing.c", 10);
    let body = b.block("body");
    let done = b.block("done");
    b.switch_to(body);
    b.load(Reg(1), Reg(0), 0, 8);
    b.addi(Reg(1), Reg(1), 1);
    b.store(Operand::Reg(Reg(1)), Reg(0), 0, 8);
    b.addi(Reg(2), Reg(2), 1);
    b.cmp_lt(Reg(3), Reg(2), Operand::Imm(iters));
    b.branch(Reg(3), body, done);
    b.switch_to(done);
    b.halt();
    let program = b.finish();
    let mut image = WorkloadImage::new("sharing", program);
    let base = image.layout_mut().heap_alloc(64, 64).unwrap();
    image.push_thread(ThreadSpec::new("t0", "body").with_reg(Reg(0), base));
    image.push_thread(ThreadSpec::new("t1", "body").with_reg(Reg(0), base + offset1 as u64));
    image
}

#[test]
fn single_thread_executes_and_writes_memory() {
    let (image, base) = store_loop_image(16);
    let mut m = Machine::new(MachineConfig::default(), &image);
    let result = m.run_to_completion().unwrap();
    assert!(result.steps > 16 * 5);
    assert_eq!(result.stats.hitm_events, 0);
    for i in 0..16u64 {
        assert_eq!(m.read_u64(base + i * 8), i);
    }
    assert!(m.is_done());
    assert_eq!(m.thread_names(), vec!["t0"]);
}

#[test]
fn false_sharing_generates_hitm_events() {
    // Both threads write distinct words of the same cache line.
    let mut m = Machine::new(MachineConfig::default(), &sharing_image(8, 2000));
    let result = m.run_to_completion().unwrap();
    assert!(
        result.stats.hitm_events > 500,
        "expected many HITMs, got {}",
        result.stats.hitm_events
    );
    let events = m.take_hitm_events();
    assert_eq!(events.len() as u64, result.stats.hitm_events);
    // Events carry exact PCs within the program and data addresses on the
    // allocated line.
    for e in &events {
        assert!(m.program().contains_pc(e.pc));
    }
    // Draining again yields nothing.
    assert!(m.take_hitm_events().is_empty());
}

#[test]
fn separated_lines_generate_no_hitms() {
    // Second thread works 2 cache lines away: no sharing at all. Offset
    // must stay within the 64-byte allocation? Allocate separately: use
    // offset of 128 within a 192-byte object.
    let mut b = ProgramBuilder::new("no_share");
    let body = b.block("body");
    let done = b.block("done");
    b.switch_to(body);
    b.load(Reg(1), Reg(0), 0, 8);
    b.addi(Reg(1), Reg(1), 1);
    b.store(Operand::Reg(Reg(1)), Reg(0), 0, 8);
    b.addi(Reg(2), Reg(2), 1);
    b.cmp_lt(Reg(3), Reg(2), Operand::Imm(1000));
    b.branch(Reg(3), body, done);
    b.switch_to(done);
    b.halt();
    let program = b.finish();
    let mut image = WorkloadImage::new("no_share", program);
    let base = image.layout_mut().heap_alloc(192, 64).unwrap();
    image.push_thread(ThreadSpec::new("t0", "body").with_reg(Reg(0), base));
    image.push_thread(ThreadSpec::new("t1", "body").with_reg(Reg(0), base + 128));
    let mut m = Machine::new(MachineConfig::default(), &image);
    let result = m.run_to_completion().unwrap();
    assert_eq!(result.stats.hitm_events, 0);
}

#[test]
fn contended_run_is_slower_than_uncontended() {
    let mut contended = Machine::new(MachineConfig::default(), &sharing_image(8, 2000));
    let c = contended.run_to_completion().unwrap();
    // Same program, but second thread's data is on its own line far away.
    let mut b = ProgramBuilder::new("sharing");
    b.source("sharing.c", 10);
    let body = b.block("body");
    let done = b.block("done");
    b.switch_to(body);
    b.load(Reg(1), Reg(0), 0, 8);
    b.addi(Reg(1), Reg(1), 1);
    b.store(Operand::Reg(Reg(1)), Reg(0), 0, 8);
    b.addi(Reg(2), Reg(2), 1);
    b.cmp_lt(Reg(3), Reg(2), Operand::Imm(2000));
    b.branch(Reg(3), body, done);
    b.switch_to(done);
    b.halt();
    let program = b.finish();
    let mut image = WorkloadImage::new("sharing_fixed", program);
    let a0 = image.layout_mut().heap_alloc(64, 64).unwrap();
    let a1 = image.layout_mut().heap_alloc(64, 64).unwrap();
    image.push_thread(ThreadSpec::new("t0", "body").with_reg(Reg(0), a0));
    image.push_thread(ThreadSpec::new("t1", "body").with_reg(Reg(0), a1));
    let mut fixed = Machine::new(MachineConfig::default(), &image);
    let f = fixed.run_to_completion().unwrap();
    assert!(
        c.cycles > f.cycles * 2,
        "contended {} should be much slower than fixed {}",
        c.cycles,
        f.cycles
    );
}

#[test]
fn atomic_fetch_add_is_atomic_across_threads() {
    let mut b = ProgramBuilder::new("atomic_inc");
    let body = b.block("body");
    let done = b.block("done");
    b.switch_to(body);
    b.atomic_fetch_add(Reg(1), Reg(0), 0, Operand::Imm(1), 8);
    b.addi(Reg(2), Reg(2), 1);
    b.cmp_lt(Reg(3), Reg(2), Operand::Imm(500));
    b.branch(Reg(3), body, done);
    b.switch_to(done);
    b.halt();
    let program = b.finish();
    let mut image = WorkloadImage::new("atomic_inc", program);
    let counter = image.layout_mut().heap_alloc(8, 64).unwrap();
    for t in 0..4 {
        image.push_thread(ThreadSpec::new(format!("t{t}"), "body").with_reg(Reg(0), counter));
    }
    let mut m = Machine::new(MachineConfig::default(), &image);
    let result = m.run_to_completion().unwrap();
    assert_eq!(m.read_u64(counter), 4 * 500);
    assert!(result.stats.atomics >= 2000);
    // True sharing on the counter produces HITMs too.
    assert!(result.stats.hitm_events > 100);
}

#[test]
fn max_steps_guard_trips_on_infinite_loop() {
    let mut b = ProgramBuilder::new("spin");
    let body = b.block("body");
    b.switch_to(body);
    b.pause();
    b.jump(body);
    let program = b.finish();
    let mut image = WorkloadImage::new("spin", program);
    image.push_thread(ThreadSpec::new("t0", "body"));
    let config = MachineConfig {
        max_steps: 10_000,
        ..Default::default()
    };
    let mut m = Machine::new(config, &image);
    let err = m.run_to_completion().unwrap_err();
    assert!(matches!(err, MachineError::MaxStepsExceeded { .. }));
    assert!(!err.to_string().is_empty());
}

#[test]
fn charge_cycles_adds_overhead() {
    let (image, _) = store_loop_image(4);
    let mut m = Machine::new(MachineConfig::default(), &image);
    let before = m.cycles();
    m.charge_cycles(CoreId(0), 1000);
    assert_eq!(m.cycles(), before + 1000);
    m.charge_all_cores(10);
    assert_eq!(m.stats().injected_overhead_cycles, 1000 + 10 * 4);
}

#[test]
fn incremental_execution_reaches_same_end_state() {
    let (image, base) = store_loop_image(32);
    let mut m = Machine::new(MachineConfig::default(), &image);
    while m.run_steps(7) == RunStatus::Running {}
    assert!(m.is_done());
    for i in 0..32u64 {
        assert_eq!(m.read_u64(base + i * 8), i);
    }
}

#[test]
fn stack_pointer_register_is_initialised() {
    let (image, _) = store_loop_image(1);
    let m = Machine::new(MachineConfig::default(), &image);
    let sp = m.thread_reg(0, crate::image::STACK_POINTER_REG);
    assert!(m.memory_map().is_stack(sp));
}

#[test]
fn machine_is_send() {
    fn assert_send<T: Send>() {}
    assert_send::<Machine>();
}

#[test]
fn hook_can_intercept_and_service_ops() {
    use std::collections::HashMap;

    use crate::event::MemAccessKind;

    /// Buffers every store to the watched line and serves loads from it.
    struct TinySsb {
        watched_line: Addr,
        buffer: HashMap<Addr, u64>,
        intercepted: usize,
    }
    impl ExecHook for TinySsb {
        fn on_mem_op(&mut self, _ctx: &mut HookCtx<'_>, op: &MemOp) -> HookAction {
            if crate::addr::line_of(op.addr) != self.watched_line {
                return HookAction::Passthrough;
            }
            self.intercepted += 1;
            match op.kind {
                MemAccessKind::Store => {
                    self.buffer.insert(op.addr, op.store_value.unwrap_or(0));
                    HookAction::Handled {
                        load_value: None,
                        extra_cycles: 6,
                    }
                }
                MemAccessKind::Load => match self.buffer.get(&op.addr) {
                    Some(&v) => HookAction::Handled {
                        load_value: Some(v),
                        extra_cycles: 6,
                    },
                    None => HookAction::Passthrough,
                },
            }
        }
    }

    let image = sharing_image(8, 500);
    let watched = {
        // The shared allocation is the first heap allocation; recompute it.
        let mut probe = WorkloadImage::new("probe", {
            let mut b = ProgramBuilder::new("p");
            let blk = b.block("main");
            b.switch_to(blk);
            b.halt();
            b.finish()
        });
        probe.layout_mut().heap_alloc(64, 64).unwrap()
    };
    let mut m = Machine::new(MachineConfig::default(), &image);
    m.attach_hook(Box::new(TinySsb {
        watched_line: crate::addr::line_of(watched),
        buffer: HashMap::new(),
        intercepted: 0,
    }));
    assert!(m.has_hook());
    let result = m.run_to_completion().unwrap();
    // With every store to the contended line buffered, HITM traffic on it
    // disappears (only cold misses remain possible).
    assert!(result.stats.hook_handled_ops > 0);
    assert!(result.stats.hitm_events < 10);
    let hook = m.detach_hook();
    assert!(hook.is_some());
    assert!(!m.has_hook());
}

// ---------------------------------------------------------------------------
// Socket topology
// ---------------------------------------------------------------------------

#[test]
fn default_topology_splits_no_hitms_off_socket() {
    let image = sharing_image(0, 400);
    let mut m = Machine::new(MachineConfig::default(), &image);
    let r = m.run_to_completion().unwrap();
    assert!(r.stats.hitm_events > 0);
    assert_eq!(r.stats.hitm_remote, 0, "one socket: every HITM is local");
    assert_eq!(r.stats.hitm_local, r.stats.hitm_events);
    assert_eq!(r.stats.llc_remote_hits, 0);
    assert_eq!(r.stats.dram_remote_accesses, 0);
}

#[test]
fn dual_socket_round_robin_placement_makes_contention_cross_socket() {
    use crate::topology::{ThreadPlacement, TopologySpec};
    // Two threads hammer one line. Packed placement puts them on cores 0 and
    // 1 (same socket); round-robin puts them on cores 0 and 4 (different
    // sockets), so the same HITMs become remote and the run gets slower.
    let config = MachineConfig::for_topology(TopologySpec::DualSocket);

    let packed = {
        let image = sharing_image(0, 400);
        let mut m = Machine::new(config.clone(), &image);
        m.run_to_completion().unwrap()
    };
    assert!(packed.stats.hitm_events > 0);
    assert_eq!(packed.stats.hitm_remote, 0, "same socket: local HITMs");

    let spread = {
        let mut image = sharing_image(0, 400);
        image.set_thread_placement(ThreadPlacement::RoundRobin);
        let mut m = Machine::new(config, &image);
        m.run_to_completion().unwrap()
    };
    // Dearer transfers re-time the interleaving, so the two runs see
    // different HITM *counts* — what is pinned is where they are serviced.
    assert!(spread.stats.hitm_events > 0);
    assert_eq!(
        spread.stats.hitm_remote, spread.stats.hitm_events,
        "different sockets: every HITM crosses the interconnect"
    );
    assert!((spread.stats.remote_hitm_share() - 1.0).abs() < 1e-12);
    assert!(
        spread.cycles > packed.cycles,
        "remote HITMs are dearer: {} vs {}",
        spread.cycles,
        packed.cycles
    );
}

#[test]
fn dual_socket_dram_interleaves_homes() {
    use crate::topology::TopologySpec;
    // A single thread streaming over many lines: about half the cold misses
    // land on the remote socket's DRAM.
    let (image, _) = store_loop_image(64);
    let config = MachineConfig::for_topology(TopologySpec::DualSocket);
    let mut m = Machine::new(config, &image);
    let r = m.run_to_completion().unwrap();
    assert!(r.stats.dram_accesses >= 8);
    assert!(
        r.stats.dram_remote_accesses > 0 && r.stats.dram_remote_accesses < r.stats.dram_accesses,
        "line-interleaved homes: some local, some remote ({}/{})",
        r.stats.dram_remote_accesses,
        r.stats.dram_accesses
    );
}

#[test]
#[should_panic(expected = "invalid machine configuration")]
fn invalid_latency_model_is_rejected_at_construction() {
    let (image, _) = store_loop_image(4);
    let config = MachineConfig {
        latency: crate::timing::LatencyModel {
            freq_hz: 0,
            ..Default::default()
        },
        ..Default::default()
    };
    Machine::new(config, &image);
}
