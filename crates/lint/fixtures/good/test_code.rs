//! Good fixture: test-only code is exempt from every rule but `unsafe-code`.
//! Expected findings: none.

pub fn library_code() -> u64 {
    7
}

#[cfg(test)]
mod tests {
    use std::collections::HashMap;

    #[test]
    fn tests_may_use_default_hashers_and_unwrap() {
        let mut m = HashMap::new();
        m.insert(1u64, 2u64);
        for (k, v) in m.iter() {
            assert!(*k < *v);
        }
        let v: Option<u64> = Some(3);
        assert_eq!(v.unwrap(), 3);
        let t0 = std::time::Instant::now();
        assert!(t0.elapsed().as_secs() < 60);
    }
}
