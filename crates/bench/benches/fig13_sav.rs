//! Criterion bench regenerating Figure 13 at reduced scale.
use criterion::{criterion_group, criterion_main, Criterion};
use laser_bench::performance::fig13_sav_sweep;
use laser_bench::ExperimentScale;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig13_sav");
    group.sample_size(10);
    group.bench_function("fig13_sav", |b| {
        b.iter(|| fig13_sav_sweep(&ExperimentScale::bench(), &[1, 7, 19, 31]).unwrap())
    });
    group.finish();
}
criterion_group!(benches, bench);
criterion_main!(benches);
