//! The campaign service front-end: accept scenario files, fan their cells
//! over the campaign thread pool, and stream per-cell JSON results.
//!
//! ```text
//! laser-serve [scenario.json ...] [--stdin] [--watch DIR] [--once]
//!             [--poll-ms N] [--threads N] [--cache DIR] [--cache-stats FILE]
//! ```
//!
//! Scenarios arrive three ways, combinable in one invocation:
//!
//! - **positional files** run in the order given,
//! - **`--stdin`** reads one scenario document from standard input,
//! - **`--watch DIR`** polls a directory for `*.json` scenario files and runs
//!   each new one as it appears (sorted by name within a scan, every
//!   `--poll-ms` milliseconds, default 500). `--once` performs a single scan
//!   and exits — the CI-friendly drain mode.
//!
//! Every finished cell is written to stdout as one JSON line the moment a
//! worker lands it, followed by a `scenario-summary` line per scenario (see
//! `laser_bench::service`); all diagnostics go to stderr, so the stream
//! stays machine-readable. With `--cache DIR` the persistent cell cache is
//! consulted before simulating and fed afterwards, and its statistics are
//! reported on stderr (and to `--cache-stats FILE` as JSON) after every
//! scenario — rerunning a scenario against a warm cache streams every cell
//! back with `"cached": true` and simulates nothing.
//!
//! An invalid scenario given explicitly (a file argument or `--stdin`) is a
//! fail-fast error: the message and usage go to stderr and the exit code is
//! 2, before anything simulates — the `Cli::parse` convention. In watch
//! mode a bad file is noted on stderr and skipped, so one malformed drop-in
//! cannot wedge the service. Stream, cache or stats-file write failures exit
//! with a clean nonzero status, never a panic.

use std::collections::BTreeSet;
use std::env;
use std::io::Read;
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

use laser_bench::{run_scenario, CellCache, Scenario, ServiceOptions};

const USAGE: &str = "usage: laser-serve [scenario.json ...] [--stdin] [--watch DIR] [--once] \
                     [--poll-ms N] [--threads N] [--cache DIR] [--cache-stats FILE]\n\
                     \n\
                     scenario.json ...  run these scenario files, in order\n\
                     --stdin            read one scenario document from standard input\n\
                     --watch DIR        poll DIR for *.json scenarios and run new ones\n\
                     \x20                 as they appear (bad files are skipped with a note)\n\
                     --once             with --watch: drain the directory once and exit\n\
                     --poll-ms N        with --watch: poll interval in milliseconds\n\
                     \x20                 (default 500)\n\
                     --threads N        default worker threads for scenarios that do not\n\
                     \x20                 pin their own (default: all cores)\n\
                     --cache DIR        persistent cell cache: consult before simulating,\n\
                     \x20                 write back after\n\
                     --cache-stats FILE write cache statistics as JSON to FILE after\n\
                     \x20                 every scenario (requires --cache)";

fn usage() -> ExitCode {
    eprintln!("{USAGE}");
    ExitCode::from(2)
}

/// The parsed command line.
#[derive(Debug, PartialEq)]
struct Cli {
    files: Vec<String>,
    stdin: bool,
    watch: Option<String>,
    once: bool,
    poll_ms: u64,
    threads: Option<usize>,
    cache: Option<String>,
    cache_stats: Option<String>,
}

/// Why the command line was rejected.
#[derive(Debug, PartialEq)]
enum CliError {
    /// Malformed flags (or an explicit `--help`): print usage, exit 2.
    Usage,
    /// A well-formed but invalid request: print the message, then usage,
    /// exit 2.
    Invalid(String),
}

impl Cli {
    /// Parse and validate `args` (the command line without the program name).
    /// Flag combinations are checked up front, before anything is read or
    /// simulated.
    fn parse(args: &[String]) -> Result<Cli, CliError> {
        let mut cli = Cli {
            files: Vec::new(),
            stdin: false,
            watch: None,
            once: false,
            poll_ms: 500,
            threads: None,
            cache: None,
            cache_stats: None,
        };
        let mut i = 0;
        while i < args.len() {
            match args[i].as_str() {
                "--stdin" => {
                    cli.stdin = true;
                    i += 1;
                }
                "--watch" => {
                    let Some(v) = args.get(i + 1) else {
                        return Err(CliError::Usage);
                    };
                    cli.watch = Some(v.clone());
                    i += 2;
                }
                "--once" => {
                    cli.once = true;
                    i += 1;
                }
                "--poll-ms" => {
                    let Some(v) = args.get(i + 1).and_then(|s| s.parse::<u64>().ok()) else {
                        return Err(CliError::Usage);
                    };
                    cli.poll_ms = v;
                    i += 2;
                }
                "--threads" => {
                    let Some(v) = args.get(i + 1).and_then(|s| s.parse::<usize>().ok()) else {
                        return Err(CliError::Usage);
                    };
                    cli.threads = Some(v);
                    i += 2;
                }
                "--cache" => {
                    let Some(v) = args.get(i + 1) else {
                        return Err(CliError::Usage);
                    };
                    cli.cache = Some(v.clone());
                    i += 2;
                }
                "--cache-stats" => {
                    let Some(v) = args.get(i + 1) else {
                        return Err(CliError::Usage);
                    };
                    cli.cache_stats = Some(v.clone());
                    i += 2;
                }
                "--help" | "-h" => return Err(CliError::Usage),
                flag if flag.starts_with('-') => {
                    return Err(CliError::Invalid(format!("unknown flag '{flag}'")));
                }
                file => {
                    cli.files.push(file.to_string());
                    i += 1;
                }
            }
        }
        if cli.files.is_empty() && !cli.stdin && cli.watch.is_none() {
            return Err(CliError::Invalid(
                "nothing to serve: give scenario files, --stdin or --watch DIR".to_string(),
            ));
        }
        if (cli.once || cli.poll_ms != 500) && cli.watch.is_none() {
            return Err(CliError::Invalid(
                "--once and --poll-ms only apply with --watch".to_string(),
            ));
        }
        if cli.cache_stats.is_some() && cli.cache.is_none() {
            return Err(CliError::Invalid(
                "--cache-stats requires --cache".to_string(),
            ));
        }
        Ok(cli)
    }
}

/// Run one scenario document: parse, fan over the campaign pool, stream to
/// stdout, then report cache statistics. `source` names the document in
/// diagnostics.
///
/// Returns `Err((exit_code, message))` — exit 2 for an invalid scenario,
/// exit 1 for a runtime (stream/cache/stats-file) failure.
fn serve_text(
    text: &str,
    source: &str,
    options: &ServiceOptions,
    stats_file: &Option<String>,
) -> Result<(), (u8, String)> {
    let scenario = Scenario::parse(text).map_err(|e| (2, format!("{source}: {e}")))?;
    eprintln!(
        "serving scenario '{}' from {source}: {} cells",
        scenario.name,
        scenario.plan().len()
    );
    let summary = run_scenario(&scenario, options, std::io::stdout())
        .map_err(|e| (1, format!("{source}: {e}")))?;
    eprintln!(
        "scenario '{}' done: {} cells, {} ok, {} failed, {} cached, {} simulated",
        summary.scenario,
        summary.cells,
        summary.ok,
        summary.failed,
        summary.cached,
        summary.simulated
    );
    if let Some(cache) = &options.cache {
        eprintln!("{}", cache.stats().render());
        if let Some(path) = stats_file {
            std::fs::write(path, format!("{}\n", cache.stats().to_json().render()))
                .map_err(|e| (1, format!("failed to write cache stats to {path}: {e}")))?;
        }
    }
    Ok(())
}

fn read_scenario_file(path: &Path) -> Result<String, String> {
    std::fs::read_to_string(path).map_err(|e| format!("failed to read {}: {e}", path.display()))
}

/// One sorted scan of the watch directory for `*.json` files.
fn scan_watch_dir(dir: &Path) -> Result<Vec<PathBuf>, String> {
    let entries = std::fs::read_dir(dir)
        .map_err(|e| format!("failed to read watch directory {}: {e}", dir.display()))?;
    let mut files: Vec<PathBuf> = entries
        .filter_map(|entry| entry.ok())
        .map(|entry| entry.path())
        .filter(|path| path.extension().is_some_and(|ext| ext == "json"))
        .collect();
    // Directory-entry order is platform-dependent; sorting keeps the serve
    // order of a batch of drop-ins deterministic.
    files.sort();
    Ok(files)
}

fn main() -> ExitCode {
    let args: Vec<String> = env::args().skip(1).collect();
    let cli = match Cli::parse(&args) {
        Ok(cli) => cli,
        Err(CliError::Usage) => return usage(),
        Err(CliError::Invalid(msg)) => {
            eprintln!("{msg}");
            return usage();
        }
    };

    let cache = match &cli.cache {
        Some(dir) => match CellCache::open(dir) {
            Ok(cache) => Some(Arc::new(cache)),
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::from(2);
            }
        },
        None => None,
    };
    let options = ServiceOptions {
        threads: cli.threads,
        cache,
    };

    let fail = |(code, message): (u8, String)| {
        eprintln!("{message}");
        if code == 2 {
            eprintln!("{USAGE}");
        }
        ExitCode::from(code)
    };

    // Explicit sources first: files in argument order, then stdin. A bad
    // explicit scenario is a hard error — the caller named it on purpose.
    for file in &cli.files {
        let text = match read_scenario_file(Path::new(file)) {
            Ok(text) => text,
            Err(message) => return fail((1, message)),
        };
        if let Err(failure) = serve_text(&text, file, &options, &cli.cache_stats) {
            return fail(failure);
        }
    }
    if cli.stdin {
        let mut text = String::new();
        if let Err(e) = std::io::stdin().read_to_string(&mut text) {
            return fail((1, format!("failed to read stdin: {e}")));
        }
        if let Err(failure) = serve_text(&text, "stdin", &options, &cli.cache_stats) {
            return fail(failure);
        }
    }

    // Watch mode: poll for new *.json drop-ins. Malformed files are noted
    // and skipped (never re-tried: a broken file would otherwise be
    // re-reported every poll), so one bad drop-in cannot wedge the service.
    if let Some(dir) = &cli.watch {
        let dir = PathBuf::from(dir);
        let mut seen: BTreeSet<PathBuf> = BTreeSet::new();
        loop {
            let files = match scan_watch_dir(&dir) {
                Ok(files) => files,
                Err(message) => return fail((1, message)),
            };
            for path in files {
                if !seen.insert(path.clone()) {
                    continue;
                }
                let text = match read_scenario_file(&path) {
                    Ok(text) => text,
                    Err(message) => {
                        eprintln!("skipping {}: {message}", path.display());
                        continue;
                    }
                };
                let source = path.display().to_string();
                match serve_text(&text, &source, &options, &cli.cache_stats) {
                    Ok(()) => {}
                    // Validation failures skip the file; runtime failures
                    // (stream/cache writes) are fatal even in watch mode.
                    Err((2, message)) => eprintln!("skipping {source}: {message}"),
                    Err(failure) => return fail(failure),
                }
            }
            if cli.once {
                break;
            }
            std::thread::sleep(Duration::from_millis(cli.poll_ms.max(1)));
        }
    }
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn files_stdin_and_watch_sources_parse() {
        let cli = Cli::parse(&args(&["a.json", "b.json"])).unwrap();
        assert_eq!(cli.files, vec!["a.json", "b.json"]);
        assert!(!cli.stdin);
        assert_eq!(cli.watch, None);

        let cli = Cli::parse(&args(&["--stdin"])).unwrap();
        assert!(cli.stdin);

        let cli = Cli::parse(&args(&[
            "--watch",
            "inbox",
            "--once",
            "--poll-ms",
            "50",
            "--threads",
            "2",
        ]))
        .unwrap();
        assert_eq!(cli.watch, Some("inbox".to_string()));
        assert!(cli.once);
        assert_eq!(cli.poll_ms, 50);
        assert_eq!(cli.threads, Some(2));
    }

    #[test]
    fn no_source_is_rejected_up_front() {
        let err = Cli::parse(&[]).unwrap_err();
        assert!(
            matches!(&err, CliError::Invalid(m) if m.contains("nothing to serve")),
            "{err:?}"
        );
        let err = Cli::parse(&args(&["--cache", "dir"])).unwrap_err();
        assert!(
            matches!(&err, CliError::Invalid(m) if m.contains("nothing to serve")),
            "{err:?}"
        );
    }

    #[test]
    fn flag_combinations_are_validated() {
        let err = Cli::parse(&args(&["a.json", "--once"])).unwrap_err();
        assert!(
            matches!(&err, CliError::Invalid(m) if m.contains("--once") && m.contains("--watch")),
            "{err:?}"
        );
        let err = Cli::parse(&args(&["a.json", "--poll-ms", "50"])).unwrap_err();
        assert!(
            matches!(&err, CliError::Invalid(m) if m.contains("--watch")),
            "{err:?}"
        );
        let err = Cli::parse(&args(&["a.json", "--cache-stats", "s.json"])).unwrap_err();
        assert!(
            matches!(&err, CliError::Invalid(m) if m.contains("requires --cache")),
            "{err:?}"
        );
        let cli = Cli::parse(&args(&[
            "a.json",
            "--cache",
            "dir",
            "--cache-stats",
            "s.json",
        ]))
        .unwrap();
        assert_eq!(cli.cache, Some("dir".to_string()));
        assert_eq!(cli.cache_stats, Some("s.json".to_string()));
    }

    #[test]
    fn malformed_flags_are_usage_errors() {
        assert_eq!(Cli::parse(&args(&["--help"])).unwrap_err(), CliError::Usage);
        assert_eq!(
            Cli::parse(&args(&["--watch"])).unwrap_err(),
            CliError::Usage
        );
        assert_eq!(
            Cli::parse(&args(&["--poll-ms", "soon"])).unwrap_err(),
            CliError::Usage
        );
        let err = Cli::parse(&args(&["--verbose"])).unwrap_err();
        assert!(
            matches!(&err, CliError::Invalid(m) if m.contains("unknown flag '--verbose'")),
            "{err:?}"
        );
    }
}
