//! Pre-decoded programs for the dispatch hot loop.
//!
//! [`Program`] is the canonical, analysis-friendly
//! representation: blocks own `Vec<Inst>`, PCs are computed on demand from the
//! block-start table, and lookups go through two indirections. That is fine
//! for the static analyses but wasteful in a simulator that fetches hundreds
//! of millions of instructions: every fetch re-derives a PC it could have
//! known at load time.
//!
//! [`DecodedProgram`] is the execution-friendly form: one flat `(Inst, Pc)`
//! array per block, PCs precomputed once, terminators paired with their PCs.
//! Instructions are `Copy`, so a fetch is a single bounds-checked indexed copy
//! out of a flat slice — no PC arithmetic, no second indirection, and no
//! borrow held into the program while the instruction executes.

use crate::inst::{Inst, Terminator};
use crate::program::{BlockId, Pc, Program};

/// One pre-decoded instruction: the instruction and its precomputed PC.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecodedInst {
    /// The instruction.
    pub inst: Inst,
    /// Its program counter.
    pub pc: Pc,
}

/// A basic block in execution form: flat instruction array plus terminator,
/// all PCs precomputed.
#[derive(Debug, Clone)]
pub struct DecodedBlock {
    insts: Box<[DecodedInst]>,
    term: Terminator,
    term_pc: Pc,
}

impl DecodedBlock {
    /// Number of non-terminator instructions.
    pub fn num_insts(&self) -> usize {
        self.insts.len()
    }

    /// The pre-decoded instructions, in block order.
    pub fn insts(&self) -> &[DecodedInst] {
        &self.insts
    }

    /// The block's terminator.
    pub fn term(&self) -> Terminator {
        self.term
    }

    /// The terminator's PC.
    pub fn term_pc(&self) -> Pc {
        self.term_pc
    }
}

/// A program pre-decoded into per-block flat instruction arrays.
///
/// Built once per machine (see `DecodedProgram::decode`); the simulator keeps
/// it next to the [`Program`] it was decoded from and fetches exclusively
/// from this form.
#[derive(Debug, Clone)]
pub struct DecodedProgram {
    blocks: Box<[DecodedBlock]>,
}

impl DecodedProgram {
    /// Decode `program` into execution form.
    pub fn decode(program: &Program) -> Self {
        let blocks = program
            .blocks()
            .iter()
            .map(|b| {
                let insts = b
                    .insts
                    .iter()
                    .enumerate()
                    .map(|(i, inst)| DecodedInst {
                        inst: *inst,
                        pc: program.pc_of(b.id, i),
                    })
                    .collect();
                DecodedBlock {
                    insts,
                    term: b.term,
                    term_pc: program.pc_of(b.id, b.insts.len()),
                }
            })
            .collect();
        DecodedProgram { blocks }
    }

    /// Number of blocks.
    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// The decoded block for `id`.
    ///
    /// # Panics
    /// Panics if the id does not belong to the decoded program.
    pub fn block(&self, id: BlockId) -> &DecodedBlock {
        &self.blocks[id.0 as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::inst::{Operand, Reg};

    fn two_block_program() -> Program {
        let mut b = ProgramBuilder::new("decoded-test");
        let entry = b.block("entry");
        let exit = b.block("exit");
        b.switch_to(entry);
        b.load(Reg(1), Reg(0), 0, 8);
        b.addi(Reg(1), Reg(1), 1);
        b.store(Operand::Reg(Reg(1)), Reg(0), 0, 8);
        b.jump(exit);
        b.switch_to(exit);
        b.halt();
        b.finish()
    }

    #[test]
    fn decode_matches_program_layout() {
        let p = two_block_program();
        let d = DecodedProgram::decode(&p);
        assert_eq!(d.num_blocks(), p.blocks().len());
        for block in p.blocks() {
            let db = d.block(block.id);
            assert_eq!(db.num_insts(), block.insts.len());
            for (i, di) in db.insts().iter().enumerate() {
                assert_eq!(di.inst, block.insts[i]);
                assert_eq!(di.pc, p.pc_of(block.id, i));
            }
            assert_eq!(db.term(), block.term);
            assert_eq!(db.term_pc(), p.pc_of(block.id, block.insts.len()));
        }
    }

    #[test]
    fn decoded_pcs_agree_with_iter_pcs() {
        let p = two_block_program();
        let d = DecodedProgram::decode(&p);
        for (pc, slot) in p.iter_pcs() {
            let db = d.block(slot.block);
            let got = if slot.inst_index == db.num_insts() {
                db.term_pc()
            } else {
                db.insts()[slot.inst_index].pc
            };
            assert_eq!(got, pc);
        }
    }
}
