//! Workload specifications, the known-performance-bug database, and the
//! registry of all 35 evaluated configurations.

use laser_machine::{ThreadPlacement, TopologySpec, WorkloadImage};

/// Benchmark suite a workload belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Suite {
    /// Phoenix 1.0 (map-reduce kernels).
    Phoenix,
    /// PARSEC 3.0.
    Parsec,
    /// Splash2x.
    Splash2x,
}

/// The actual kind of a known contention bug.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BugKind {
    /// Distinct data co-located in one cache line.
    FalseSharing,
    /// The same data contended by multiple threads.
    TrueSharing,
}

/// A known performance bug, from the database the paper assembled out of
/// prior work plus the new bugs LASER found (Section 7.1).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KnownBug {
    /// Synthetic source file of the contending code.
    pub file: String,
    /// Synthetic source lines of the contending code; a detector report that
    /// names any of these lines counts as finding the bug.
    pub lines: Vec<u32>,
    /// Whether the contention is true or false sharing.
    pub kind: BugKind,
    /// Human-readable description.
    pub description: String,
}

impl KnownBug {
    /// Construct a bug record.
    pub fn new(file: &str, lines: &[u32], kind: BugKind, description: &str) -> Self {
        KnownBug {
            file: file.to_string(),
            lines: lines.to_vec(),
            kind,
            description: description.to_string(),
        }
    }

    /// True if a reported `file:line` location falls on this bug.
    pub fn matches(&self, file: &str, line: u32) -> bool {
        self.file == file && self.lines.contains(&line)
    }
}

/// How a workload behaves under Sheriff (paper Table 1: most of the suite
/// either crashes or uses constructs Sheriff does not support).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SheriffCompat {
    /// Runs under both Sheriff-Detect and Sheriff-Protect.
    Works,
    /// Encounters a runtime error ("x" in Table 1).
    Crash,
    /// Uses unsupported constructs such as spin locks or OpenMP ("i").
    Incompatible,
}

/// Options controlling how a workload image is built.
#[derive(Debug, Clone, PartialEq)]
pub struct BuildOptions {
    /// Number of worker threads (the paper's machine runs 4).
    pub threads: usize,
    /// Input-scale multiplier applied to iteration counts (1.0 = default).
    pub scale: f64,
    /// Build the manually-fixed variant (padding / alignment / restructuring)
    /// instead of the buggy one.
    pub fixed: bool,
    /// Extra bytes added before every heap allocation, modelling the
    /// incidental layout shift some tools cause (the paper's `lu_ncb` case).
    pub layout_perturbation: u64,
    /// How the machine lays the workload's threads out over the sockets
    /// (default: packed, the pre-topology mapping; irrelevant on a
    /// single-socket topology).
    pub placement: ThreadPlacement,
}

impl Default for BuildOptions {
    fn default() -> Self {
        BuildOptions {
            threads: 4,
            scale: 1.0,
            fixed: false,
            layout_perturbation: 0,
            placement: ThreadPlacement::default(),
        }
    }
}

impl BuildOptions {
    /// Options for the manually-fixed variant at default scale.
    pub fn fixed() -> Self {
        BuildOptions {
            fixed: true,
            ..Default::default()
        }
    }

    /// Options at a reduced input scale (Sheriff's `simlarge`-style inputs,
    /// also used by the Criterion benches to stay fast).
    pub fn scaled(scale: f64) -> Self {
        BuildOptions {
            scale,
            ..Default::default()
        }
    }

    /// Override the worker-thread count (builder-style).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Override the thread placement (builder-style).
    pub fn with_placement(mut self, placement: ThreadPlacement) -> Self {
        self.placement = placement;
        self
    }

    /// The options a topology preset runs at: the thread count scales with
    /// the socket count (4 threads/socket, matching the preset's 4
    /// cores/socket) and multi-socket presets place threads round-robin
    /// across sockets so contended lines actually cross the interconnect.
    /// The flat preset returns the options unchanged — byte-identical to the
    /// pre-topology behaviour.
    pub fn for_topology(self, spec: TopologySpec) -> Self {
        if spec == TopologySpec::Flat {
            return self;
        }
        BuildOptions {
            threads: self.threads * spec.sockets(),
            placement: ThreadPlacement::RoundRobin,
            ..self
        }
    }
}

/// A workload: its metadata, known bugs and image builder.
#[derive(Clone)]
pub struct WorkloadSpec {
    /// Workload name as the paper spells it (e.g. `raytrace.parsec`).
    pub name: &'static str,
    /// The suite it comes from.
    pub suite: Suite,
    /// Known performance bugs (empty for the benign workloads).
    pub known_bugs: Vec<KnownBug>,
    /// Whether Sheriff can run it.
    pub sheriff: SheriffCompat,
    /// True if a manually-fixed variant exists (Figures 11/14).
    pub has_fix: bool,
    pub(crate) build_fn: fn(&BuildOptions) -> WorkloadImage,
}

impl std::fmt::Debug for WorkloadSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkloadSpec")
            .field("name", &self.name)
            .field("suite", &self.suite)
            .field("known_bugs", &self.known_bugs.len())
            .field("sheriff", &self.sheriff)
            .finish()
    }
}

impl WorkloadSpec {
    /// Build the workload image with the given options. The options'
    /// thread placement is stamped onto the image here, so every workload
    /// honours it without each builder having to thread it through.
    pub fn build(&self, opts: &BuildOptions) -> WorkloadImage {
        let mut image = (self.build_fn)(opts);
        image.set_thread_placement(opts.placement);
        image
    }

    /// Build with default options (4 threads, native-style input, unfixed).
    pub fn build_default(&self) -> WorkloadImage {
        self.build(&BuildOptions::default())
    }

    /// True if this workload has at least one known performance bug.
    pub fn has_bugs(&self) -> bool {
        !self.known_bugs.is_empty()
    }

    /// True if a reported location matches any known bug of this workload.
    pub fn is_known_bug_location(&self, file: &str, line: u32) -> bool {
        self.known_bugs.iter().any(|b| b.matches(file, line))
    }
}

/// The full registry: all 35 workload configurations of the paper's Table 1,
/// in the table's (alphabetical) order.
pub fn registry() -> Vec<WorkloadSpec> {
    let mut v = Vec::new();
    v.extend(crate::phoenix::all());
    v.extend(crate::parsec::all());
    v.extend(crate::splash2x::all());
    // Present in the paper's alphabetical order for familiarity.
    v.sort_by_key(|s| s.name);
    v
}

/// Find a workload by name.
pub fn find(name: &str) -> Option<WorkloadSpec> {
    registry().into_iter().find(|s| s.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_has_all_35_workloads() {
        let r = registry();
        assert_eq!(
            r.len(),
            35,
            "{:?}",
            r.iter().map(|s| s.name).collect::<Vec<_>>()
        );
        // No duplicate names.
        let mut names: Vec<_> = r.iter().map(|s| s.name).collect();
        names.dedup();
        assert_eq!(names.len(), 35);
    }

    #[test]
    fn nine_workloads_have_known_bugs() {
        let buggy: Vec<_> = registry().into_iter().filter(|s| s.has_bugs()).collect();
        let names: Vec<_> = buggy.iter().map(|s| s.name).collect();
        assert_eq!(
            names,
            vec![
                "bodytrack",
                "dedup",
                "histogram'",
                "kmeans",
                "linear_regression",
                "lu_ncb",
                "reverse_index",
                "streamcluster",
                "volrend",
            ]
        );
    }

    #[test]
    fn every_workload_builds_at_small_scale() {
        for spec in registry() {
            let image = spec.build(&BuildOptions::scaled(0.05));
            assert!(!image.threads().is_empty(), "{} has no threads", spec.name);
            assert!(image.program().num_insts() > 0, "{} has no code", spec.name);
        }
    }

    #[test]
    fn bug_matching() {
        let bug = KnownBug::new("a.c", &[10, 11], BugKind::FalseSharing, "demo");
        assert!(bug.matches("a.c", 10));
        assert!(!bug.matches("a.c", 12));
        assert!(!bug.matches("b.c", 10));
    }

    #[test]
    fn find_by_name() {
        assert!(find("kmeans").is_some());
        assert!(find("histogram'").is_some());
        assert!(find("does_not_exist").is_none());
    }

    #[test]
    fn topology_options_scale_threads_and_spread_placement() {
        let base = BuildOptions::scaled(0.1);
        let flat = base.clone().for_topology(TopologySpec::Flat);
        assert_eq!(flat, base, "flat preset leaves the options untouched");
        let dual = base.clone().for_topology(TopologySpec::DualSocket);
        assert_eq!(dual.threads, 8);
        assert_eq!(dual.placement, ThreadPlacement::RoundRobin);
        assert_eq!(dual.scale, base.scale);
        let quad = base.clone().for_topology(TopologySpec::QuadSocket);
        assert_eq!(quad.threads, 16);
        let octo = base.clone().for_topology(TopologySpec::OctoSocket);
        assert_eq!(octo.threads, 32);
        assert_eq!(octo.placement, ThreadPlacement::RoundRobin);
        let many = base.clone().for_topology(TopologySpec::ThirtyTwoSocket);
        assert_eq!(many.threads, 128, "the 32s preset reaches 128 threads");
        assert_eq!(many.placement, ThreadPlacement::RoundRobin);
        // Builder helpers.
        let o = BuildOptions::default()
            .with_threads(0)
            .with_placement(ThreadPlacement::RoundRobin);
        assert_eq!(o.threads, 1, "thread count clamps to at least one");
        assert_eq!(o.placement, ThreadPlacement::RoundRobin);
    }

    #[test]
    fn build_stamps_the_placement_onto_the_image() {
        let spec = find("histogram'").unwrap();
        let image =
            spec.build(&BuildOptions::scaled(0.05).with_placement(ThreadPlacement::RoundRobin));
        assert_eq!(image.thread_placement(), ThreadPlacement::RoundRobin);
        let image = spec.build(&BuildOptions::scaled(0.05));
        assert_eq!(image.thread_placement(), ThreadPlacement::Packed);
    }

    #[test]
    fn fixed_variants_exist_where_claimed() {
        for spec in registry() {
            if spec.has_fix {
                let fixed = spec.build(&BuildOptions {
                    fixed: true,
                    scale: 0.05,
                    ..Default::default()
                });
                assert!(
                    !fixed.threads().is_empty(),
                    "{} fixed variant broken",
                    spec.name
                );
            }
        }
    }
}
