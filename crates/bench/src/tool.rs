//! The [`Tool`] abstraction: LASER, VTune, Sheriff and native execution
//! behind one interface.
//!
//! The paper's evaluation repeatedly runs the same 35 workloads under
//! different tools (Figures 10–14, Tables 1–2). A `Tool` encapsulates "run
//! this workload under me and tell me what you saw" so the
//! [`crate::campaign::Campaign`] runner can fan arbitrary `workload × tool`
//! grids across a thread pool. Implementations are `Send + Sync` values whose
//! `run` takes `&self`, and every underlying simulation is deterministic, so
//! a cell's result is independent of which worker thread computes it.
//!
//! A [`ToolRun`] carries everything any figure or table derives from a cell —
//! cycles, structured reported lines, repair activity and the driver/detector
//! overhead split — which is what lets the [`crate::grid::Grid`] cache run
//! each unique `(workload, tool)` cell exactly once and serve every consumer
//! from the cached result.

use std::ops::ControlFlow;

use laser_baselines::{Sheriff, SheriffConfig, SheriffFailure, SheriffMode, Vtune, VtuneConfig};
use laser_core::{
    ContentionKind, LaserConfig, LaserError, LaserEvent, NullObserver, Observer, PipelineConfig,
    StopReason, TopologySpec,
};
use laser_workloads::{BuildOptions, WorkloadSpec};

use crate::runner::{
    build_under_tool, run_laser_observed_deployed, run_laser_piped_deployed, run_native_deployed,
};
use crate::topofile::Deployment;

/// One contention site a tool reported, in a tool-neutral shape.
///
/// LASER and VTune report source lines (`file`/`line` present); Sheriff
/// reports falsely-shared allocation-site cache lines (`file`/`line` absent,
/// only the `label`). The extra per-line metrics are what the accuracy
/// experiments (Tables 1–2, Figure 9) consume from cached campaign cells.
#[derive(Debug, Clone, PartialEq)]
pub struct ReportedLine {
    /// Human-readable label as it appears in text output.
    pub label: String,
    /// Source file, for tools that attribute to source lines.
    pub file: Option<String>,
    /// 1-based source line, for tools that attribute to source lines.
    pub line: Option<u32>,
    /// Contention classification (LASER only).
    pub kind: Option<ContentionKind>,
    /// HITM records attributed to this site (0 where not applicable).
    pub hitm_records: u64,
    /// HITM records per second of dilated benchmark time (0 where not
    /// applicable).
    pub rate_per_sec: f64,
}

impl ReportedLine {
    /// A reported source location, if this tool attributes to source lines.
    pub fn location(&self) -> Option<(&str, u32)> {
        Some((self.file.as_deref()?, self.line?))
    }
}

/// What one tool observed on one workload.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ToolRun {
    /// End-to-end cycles of the run, all tool overhead included.
    pub cycles: u64,
    /// The contention sites the tool reported.
    pub reported: Vec<ReportedLine>,
    /// Whether online repair was invoked during the run (LASER only).
    pub repair_invoked: bool,
    /// Cycles of driver overhead charged to the run (LASER only).
    pub driver_overhead_cycles: u64,
    /// Cycles the detector process consumed (LASER only).
    pub detector_cycles: u64,
    /// Ground-truth HITM events of the monitored run (0 where the tool's
    /// model exposes no machine statistics, i.e. Sheriff).
    pub hitm_events: u64,
    /// Ground-truth HITM events serviced across a socket boundary; always 0
    /// on the flat topology. The cross-socket sweep derives its
    /// repair-reduces-remote-HITMs claim from this.
    pub hitm_remote: u64,
}

impl ToolRun {
    /// Labels of the reported sites, for display.
    pub fn reported_labels(&self) -> Vec<&str> {
        self.reported.iter().map(|l| l.label.as_str()).collect()
    }
}

/// Why a tool produced no run for a cell.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ToolFailure {
    /// The tool cannot run this workload at all (Sheriff's compatibility
    /// matrix: crashes and unsupported constructs).
    Unsupported(SheriffFailure),
    /// The underlying simulation failed (e.g. step-budget exhaustion).
    Error(String),
    /// The tool panicked while running the cell; the campaign runner isolates
    /// the panic to this cell instead of aborting the grid.
    Panicked {
        /// The panic payload, if it was a string.
        message: String,
    },
    /// The cell exceeded its per-cell budget: the observer threaded through
    /// [`Tool::run_observed`] stopped the run. LASER runs are cancelled
    /// mid-flight; tools that report only a final event are marked after
    /// completion.
    BudgetExceeded {
        /// Which budget tripped, and by how much.
        reason: StopReason,
    },
}

impl std::fmt::Display for ToolFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ToolFailure::Unsupported(SheriffFailure::Crash) => {
                write!(f, "unsupported: crashes under Sheriff")
            }
            ToolFailure::Unsupported(SheriffFailure::Incompatible) => {
                write!(f, "unsupported: uses constructs Sheriff does not support")
            }
            ToolFailure::Error(why) => write!(f, "error: {why}"),
            ToolFailure::Panicked { message } => write!(f, "panicked: {message}"),
            ToolFailure::BudgetExceeded { reason } => write!(f, "budget exceeded: {reason}"),
        }
    }
}

/// The cell key of a tool deployed on a topology: the bare tool name on the
/// flat (default) topology, `name@2s` / `name@4s` on the multi-socket
/// presets. Keeping flat keys bare preserves the pre-topology cell naming
/// byte-for-byte.
pub fn cell_key(tool_name: &str, topo: TopologySpec) -> String {
    if topo == TopologySpec::Flat {
        tool_name.to_string()
    } else {
        format!("{tool_name}@{topo}")
    }
}

/// A contention tool (or the absence of one) that can run a workload.
///
/// The primary entry point is [`Tool::run_observed_deployed`], which takes
/// the [`Deployment`] the cell runs on — a socket-topology preset, or a
/// custom layout loaded from a topology file; the `_at` methods are preset
/// conveniences and the topology-less methods run on the flat
/// (single-socket) preset. A tool is responsible for adapting the build
/// options to the deployment ([`Deployment::adapt`]: threads scale with the
/// socket count, multi-socket placement goes round-robin) and for deploying
/// its machine on it — so a caller never has to keep options and machine
/// configuration in sync by hand.
pub trait Tool: Send + Sync {
    /// Stable display name, used (suffixed with the deployment via
    /// [`cell_key`] / [`Deployment::cell_key`]) as the cell key in campaign
    /// results.
    fn name(&self) -> &str;

    /// Build and run `spec` at `opts` on `deploy` under this tool,
    /// streaming the run to `observer`. An observer that breaks cancels the
    /// run (where the tool supports it) and the cell fails with
    /// [`ToolFailure::BudgetExceeded`].
    ///
    /// LASER runs stream their full [`LaserEvent`] sequence and stop
    /// mid-quantum;
    /// the native and baseline tools report a single
    /// [`LaserEvent::Finished`] after the simulation, so a budget can mark
    /// them over-budget but not shorten them. (The Sheriff model exposes no
    /// step counter; its `Finished` events carry `steps: 0`, so only
    /// wall-clock budgets can catch Sheriff cells.)
    ///
    /// # Errors
    /// Returns [`ToolFailure::Unsupported`] when the tool cannot run the
    /// workload, [`ToolFailure::Error`] when the simulation fails and
    /// [`ToolFailure::BudgetExceeded`] when `observer` stopped the run.
    fn run_observed_deployed(
        &self,
        spec: &WorkloadSpec,
        opts: &BuildOptions,
        deploy: &Deployment,
        observer: Box<dyn Observer>,
    ) -> Result<ToolRun, ToolFailure>;

    /// Build and run `spec` at `opts` on the preset `topo`, streaming the
    /// run to `observer`.
    ///
    /// # Errors
    /// As for [`Tool::run_observed_deployed`].
    fn run_observed_at(
        &self,
        spec: &WorkloadSpec,
        opts: &BuildOptions,
        topo: TopologySpec,
        observer: Box<dyn Observer>,
    ) -> Result<ToolRun, ToolFailure> {
        self.run_observed_deployed(spec, opts, &Deployment::Preset(topo), observer)
    }

    /// Build and run `spec` at `opts` on `deploy`, unobserved.
    ///
    /// # Errors
    /// Returns [`ToolFailure::Unsupported`] when the tool cannot run the
    /// workload and [`ToolFailure::Error`] when the simulation fails.
    fn run_deployed(
        &self,
        spec: &WorkloadSpec,
        opts: &BuildOptions,
        deploy: &Deployment,
    ) -> Result<ToolRun, ToolFailure> {
        self.run_observed_deployed(spec, opts, deploy, Box::new(NullObserver))
    }

    /// Build and run `spec` at `opts` on the preset `topo`, unobserved.
    ///
    /// # Errors
    /// As for [`Tool::run_deployed`].
    fn run_at(
        &self,
        spec: &WorkloadSpec,
        opts: &BuildOptions,
        topo: TopologySpec,
    ) -> Result<ToolRun, ToolFailure> {
        self.run_deployed(spec, opts, &Deployment::Preset(topo))
    }

    /// Build and run `spec` at `opts` under this tool on the flat topology,
    /// streaming the run to `observer`.
    ///
    /// # Errors
    /// As for [`Tool::run_observed_at`].
    fn run_observed(
        &self,
        spec: &WorkloadSpec,
        opts: &BuildOptions,
        observer: Box<dyn Observer>,
    ) -> Result<ToolRun, ToolFailure> {
        self.run_observed_at(spec, opts, TopologySpec::Flat, observer)
    }

    /// Build and run `spec` at `opts` on the flat topology, unobserved.
    ///
    /// # Errors
    /// As for [`Tool::run_at`].
    fn run(&self, spec: &WorkloadSpec, opts: &BuildOptions) -> Result<ToolRun, ToolFailure> {
        self.run_at(spec, opts, TopologySpec::Flat)
    }

    /// Deploy this tool's runs with the given session pipeline (see
    /// [`laser_core::PipelineConfig`]): the detector stage moves to a worker
    /// thread so record processing overlaps application execution.
    ///
    /// Pipelining is an *execution strategy*, not a measurement change — a
    /// pipelined cell is byte-identical to its inline equivalent — so tools
    /// it does not apply to (native, the baselines) ignore it; only
    /// [`LaserTool`] runs a session with a detector stage to move.
    fn set_pipeline(&mut self, _pipeline: PipelineConfig) {}
}

/// Deliver the post-run [`LaserEvent::Finished`] event for a tool that cannot
/// stream intermediate events, translating an observer break into the
/// budget-exceeded cell failure.
fn finish_observed(
    mut observer: Box<dyn Observer>,
    steps: u64,
    cycles: u64,
) -> Result<(), ToolFailure> {
    match observer.on_event(&LaserEvent::Finished { steps, cycles }) {
        ControlFlow::Continue(()) => Ok(()),
        ControlFlow::Break(reason) => Err(ToolFailure::BudgetExceeded { reason }),
    }
}

/// Native execution: no tool attached; the baseline every overhead figure is
/// normalized against.
#[derive(Debug, Clone, Copy, Default)]
pub struct NativeTool;

impl Tool for NativeTool {
    fn name(&self) -> &str {
        "native"
    }

    fn run_observed_deployed(
        &self,
        spec: &WorkloadSpec,
        opts: &BuildOptions,
        deploy: &Deployment,
        observer: Box<dyn Observer>,
    ) -> Result<ToolRun, ToolFailure> {
        let result = run_native_deployed(spec, opts, deploy)
            .map_err(|e| ToolFailure::Error(e.to_string()))?;
        finish_observed(observer, result.steps, result.cycles)?;
        Ok(ToolRun {
            cycles: result.cycles,
            hitm_events: result.stats.hitm_events,
            hitm_remote: result.stats.hitm_remote,
            ..ToolRun::default()
        })
    }
}

/// Native execution of the manually-fixed binary variant (padding/alignment/
/// restructuring applied by hand, as in Figures 11 and 14). Only meaningful
/// for workloads with `has_fix`.
#[derive(Debug, Clone, Copy, Default)]
pub struct FixedNativeTool;

impl Tool for FixedNativeTool {
    fn name(&self) -> &str {
        "native-fixed"
    }

    fn run_observed_deployed(
        &self,
        spec: &WorkloadSpec,
        opts: &BuildOptions,
        deploy: &Deployment,
        observer: Box<dyn Observer>,
    ) -> Result<ToolRun, ToolFailure> {
        let opts = BuildOptions {
            fixed: true,
            ..opts.clone()
        };
        let result = run_native_deployed(spec, &opts, deploy)
            .map_err(|e| ToolFailure::Error(e.to_string()))?;
        finish_observed(observer, result.steps, result.cycles)?;
        Ok(ToolRun {
            cycles: result.cycles,
            hitm_events: result.stats.hitm_events,
            hitm_remote: result.stats.hitm_remote,
            ..ToolRun::default()
        })
    }
}

/// The LASER system (detection, and repair when the configuration allows it).
#[derive(Debug, Clone)]
pub struct LaserTool {
    config: LaserConfig,
    name: String,
    pipeline: PipelineConfig,
}

impl Default for LaserTool {
    fn default() -> Self {
        LaserTool::new(LaserConfig::default())
    }
}

impl LaserTool {
    /// Run LASER with `config` (e.g. [`LaserConfig::detection_only`]). The
    /// tool is named `laser` when repair is enabled, `laser-detect` otherwise.
    pub fn new(config: LaserConfig) -> Self {
        let name = if config.enable_repair {
            "laser"
        } else {
            "laser-detect"
        };
        LaserTool::named(config, name)
    }

    /// Run LASER with `config` under an explicit cell-key name. Campaign cells
    /// are keyed by tool name, so variant configurations sharing a grid (the
    /// Figure 13 SAV sweep, Figure 9's unfiltered detector) need distinct
    /// names.
    pub fn named(config: LaserConfig, name: impl Into<String>) -> Self {
        LaserTool {
            config,
            name: name.into(),
            pipeline: PipelineConfig::default(),
        }
    }

    /// Deploy this tool's sessions with `pipeline` (builder-style); see
    /// [`Tool::set_pipeline`].
    pub fn with_pipeline(mut self, pipeline: PipelineConfig) -> Self {
        self.pipeline = pipeline;
        self
    }
}

impl Tool for LaserTool {
    fn name(&self) -> &str {
        &self.name
    }

    fn set_pipeline(&mut self, pipeline: PipelineConfig) {
        self.pipeline = pipeline;
    }

    /// Unobserved runs skip the boxed [`NullObserver`] of the default
    /// implementation so the session stays genuinely *unobserved*: no events
    /// are constructed, and a pipelined session's worker never owes a reply
    /// (the machine stage streams without per-batch round-trips). This is
    /// the path ordinary (unbudgeted) campaign and figure cells take.
    fn run_deployed(
        &self,
        spec: &WorkloadSpec,
        opts: &BuildOptions,
        deploy: &Deployment,
    ) -> Result<ToolRun, ToolFailure> {
        let outcome =
            run_laser_piped_deployed(spec, opts, self.config.clone(), self.pipeline, deploy)
                .map_err(|e| ToolFailure::Error(e.to_string()))?;
        Ok(laser_outcome_to_tool_run(outcome))
    }

    fn run_observed_deployed(
        &self,
        spec: &WorkloadSpec,
        opts: &BuildOptions,
        deploy: &Deployment,
        observer: Box<dyn Observer>,
    ) -> Result<ToolRun, ToolFailure> {
        let outcome = run_laser_observed_deployed(
            spec,
            opts,
            self.config.clone(),
            self.pipeline,
            deploy,
            observer,
        )
        .map_err(|e| match e {
            LaserError::Stopped(reason) => ToolFailure::BudgetExceeded { reason },
            other => ToolFailure::Error(other.to_string()),
        })?;
        Ok(laser_outcome_to_tool_run(outcome))
    }
}

/// Project a finished LASER run onto the tool-neutral [`ToolRun`] shape.
fn laser_outcome_to_tool_run(outcome: laser_core::LaserOutcome) -> ToolRun {
    ToolRun {
        cycles: outcome.cycles(),
        reported: outcome
            .report
            .lines
            .iter()
            .map(|l| ReportedLine {
                label: format!("{} ({})", l.location.label(), l.kind),
                file: Some(l.location.file.clone()),
                line: Some(l.location.line),
                kind: Some(l.kind),
                hitm_records: l.hitm_records,
                rate_per_sec: l.rate_per_sec,
            })
            .collect(),
        repair_invoked: outcome.repair.is_some(),
        driver_overhead_cycles: outcome.driver_stats.overhead_cycles,
        detector_cycles: outcome.detector_cycles,
        hitm_events: outcome.run.stats.hitm_events,
        hitm_remote: outcome.run.stats.hitm_remote,
    }
}

/// The VTune profiler model.
#[derive(Debug, Clone, Default)]
pub struct VtuneTool {
    config: VtuneConfig,
}

impl VtuneTool {
    /// Run VTune with an explicit configuration.
    pub fn new(config: VtuneConfig) -> Self {
        VtuneTool { config }
    }
}

impl Tool for VtuneTool {
    fn name(&self) -> &str {
        "vtune"
    }

    fn run_observed_deployed(
        &self,
        spec: &WorkloadSpec,
        opts: &BuildOptions,
        deploy: &Deployment,
        observer: Box<dyn Observer>,
    ) -> Result<ToolRun, ToolFailure> {
        let opts = deploy.adapt(opts);
        let image = build_under_tool(spec, &opts);
        let outcome = Vtune::new(self.config.clone())
            .run_on(&image, deploy.machine_config())
            .map_err(|e| ToolFailure::Error(e.to_string()))?;
        finish_observed(observer, outcome.run.steps, outcome.run.cycles)?;
        Ok(ToolRun {
            cycles: outcome.run.cycles,
            reported: outcome
                .reported_lines
                .iter()
                .map(|l| ReportedLine {
                    label: l.location.label(),
                    file: Some(l.location.file.clone()),
                    line: Some(l.location.line),
                    kind: None,
                    hitm_records: l.records,
                    rate_per_sec: l.rate_per_sec,
                })
                .collect(),
            hitm_events: outcome.run.stats.hitm_events,
            hitm_remote: outcome.run.stats.hitm_remote,
            ..ToolRun::default()
        })
    }
}

/// The Sheriff baseline in either mode.
#[derive(Debug, Clone)]
pub struct SheriffTool {
    config: SheriffConfig,
    mode: SheriffMode,
}

impl SheriffTool {
    /// Sheriff with the default cost model in `mode`.
    pub fn new(mode: SheriffMode) -> Self {
        SheriffTool {
            config: SheriffConfig::default(),
            mode,
        }
    }

    /// Sheriff with an explicit cost model.
    pub fn with_config(config: SheriffConfig, mode: SheriffMode) -> Self {
        SheriffTool { config, mode }
    }
}

impl Tool for SheriffTool {
    fn name(&self) -> &str {
        match self.mode {
            SheriffMode::Detect => "sheriff-detect",
            SheriffMode::Protect => "sheriff-protect",
        }
    }

    fn run_observed_deployed(
        &self,
        spec: &WorkloadSpec,
        opts: &BuildOptions,
        deploy: &Deployment,
        observer: Box<dyn Observer>,
    ) -> Result<ToolRun, ToolFailure> {
        let opts = deploy.adapt(opts);
        let outcome = Sheriff::new(self.config)
            .run_on(spec, &opts, self.mode, deploy.machine_config())
            .map_err(|e| ToolFailure::Error(e.to_string()))?;
        match outcome.result {
            Ok(run) => {
                // The Sheriff model reports no instruction count.
                finish_observed(observer, 0, run.cycles)?;
                Ok(ToolRun {
                    cycles: run.cycles,
                    reported: run
                        .reported_lines
                        .iter()
                        .map(|line| ReportedLine {
                            label: format!("line@{line:#x}"),
                            file: None,
                            line: None,
                            kind: None,
                            hitm_records: 0,
                            rate_per_sec: 0.0,
                        })
                        .collect(),
                    ..ToolRun::default()
                })
            }
            Err(failure) => Err(ToolFailure::Unsupported(failure)),
        }
    }
}

/// Machine-readable identity of a tool configuration: the key under which a
/// [`crate::grid::Grid`] caches cells, and a factory for the corresponding
/// [`Tool`] instance. `key()` always equals `build().name()`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ToolSpec {
    /// Un-instrumented baseline.
    Native,
    /// Un-instrumented manually-fixed binary.
    NativeFixed,
    /// LASER with online repair enabled (the paper's default deployment).
    Laser,
    /// LASERDETECT: detection only, paper-default thresholds.
    LaserDetect,
    /// LASERDETECT with the rate threshold at zero, so every line survives
    /// filtering and Figure 9 can apply candidate thresholds offline.
    LaserDetectRaw,
    /// LASERDETECT at an explicit Sample-After-Value (the Figure 13 sweep).
    LaserDetectSav(u32),
    /// The VTune profiler model.
    Vtune,
    /// Sheriff-Detect.
    SheriffDetect,
    /// Sheriff-Protect.
    SheriffProtect,
}

impl ToolSpec {
    /// The cell key of this tool on topology `topo` (see [`cell_key`]).
    pub fn key_at(&self, topo: TopologySpec) -> String {
        cell_key(&self.key(), topo)
    }

    /// The stable cell key: identical to the built tool's `name()`.
    pub fn key(&self) -> String {
        match self {
            ToolSpec::Native => "native".to_string(),
            ToolSpec::NativeFixed => "native-fixed".to_string(),
            ToolSpec::Laser => "laser".to_string(),
            ToolSpec::LaserDetect => "laser-detect".to_string(),
            ToolSpec::LaserDetectRaw => "laser-detect-raw".to_string(),
            ToolSpec::LaserDetectSav(sav) => format!("laser-detect-sav{sav}"),
            ToolSpec::Vtune => "vtune".to_string(),
            ToolSpec::SheriffDetect => "sheriff-detect".to_string(),
            ToolSpec::SheriffProtect => "sheriff-protect".to_string(),
        }
    }

    /// Parse a stable cell key back into its spec — the exact inverse of
    /// [`ToolSpec::key`], including the parameterized
    /// `laser-detect-sav{N}` family. Scenario files name tools with these
    /// keys.
    pub fn parse(key: &str) -> Option<ToolSpec> {
        match key {
            "native" => Some(ToolSpec::Native),
            "native-fixed" => Some(ToolSpec::NativeFixed),
            "laser" => Some(ToolSpec::Laser),
            "laser-detect" => Some(ToolSpec::LaserDetect),
            "laser-detect-raw" => Some(ToolSpec::LaserDetectRaw),
            "vtune" => Some(ToolSpec::Vtune),
            "sheriff-detect" => Some(ToolSpec::SheriffDetect),
            "sheriff-protect" => Some(ToolSpec::SheriffProtect),
            _ => {
                let sav = key.strip_prefix("laser-detect-sav")?;
                // Reject non-canonical spellings ("sav007") so parse(key())
                // round-trips exactly and nothing else is accepted.
                let value: u32 = sav.parse().ok()?;
                if value.to_string() != sav {
                    return None;
                }
                Some(ToolSpec::LaserDetectSav(value))
            }
        }
    }

    /// Instantiate the tool this spec describes.
    pub fn build(&self) -> Box<dyn Tool> {
        match self {
            ToolSpec::Native => Box::new(NativeTool),
            ToolSpec::NativeFixed => Box::new(FixedNativeTool),
            ToolSpec::Laser => Box::new(LaserTool::default()),
            ToolSpec::LaserDetect => Box::new(LaserTool::new(LaserConfig::detection_only())),
            ToolSpec::LaserDetectRaw => Box::new(LaserTool::named(
                LaserConfig::detection_only().with_rate_threshold(0.0),
                self.key(),
            )),
            ToolSpec::LaserDetectSav(sav) => Box::new(LaserTool::named(
                LaserConfig::detection_only().with_sav(*sav),
                self.key(),
            )),
            ToolSpec::Vtune => Box::new(VtuneTool::default()),
            ToolSpec::SheriffDetect => Box::new(SheriffTool::new(SheriffMode::Detect)),
            ToolSpec::SheriffProtect => Box::new(SheriffTool::new(SheriffMode::Protect)),
        }
    }
}

/// The default tool panel: native, LASER, VTune and both Sheriff modes —
/// every column of the paper's comparison tables.
pub fn default_tools() -> Vec<Box<dyn Tool>> {
    vec![
        Box::new(NativeTool),
        Box::new(LaserTool::default()),
        Box::new(VtuneTool::default()),
        Box::new(SheriffTool::new(SheriffMode::Detect)),
        Box::new(SheriffTool::new(SheriffMode::Protect)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use laser_workloads::find;

    fn opts() -> BuildOptions {
        BuildOptions::scaled(0.08)
    }

    #[test]
    fn tool_spec_parse_round_trips_every_key() {
        let specs = [
            ToolSpec::Native,
            ToolSpec::NativeFixed,
            ToolSpec::Laser,
            ToolSpec::LaserDetect,
            ToolSpec::LaserDetectRaw,
            ToolSpec::LaserDetectSav(0),
            ToolSpec::LaserDetectSav(97),
            ToolSpec::LaserDetectSav(20011),
            ToolSpec::Vtune,
            ToolSpec::SheriffDetect,
            ToolSpec::SheriffProtect,
        ];
        for spec in specs {
            assert_eq!(ToolSpec::parse(&spec.key()), Some(spec), "{}", spec.key());
        }
        for bad in [
            "natve",
            "NATIVE",
            "laser-detect-sav",
            "laser-detect-sav007",
            "laser-detect-sav-3",
            "laser-detect-savx",
            "",
            "native@2s",
        ] {
            assert_eq!(ToolSpec::parse(bad), None, "{bad:?} must not parse");
        }
    }

    #[test]
    fn tools_are_share_and_send() {
        fn assert_sync_send<T: Send + Sync>() {}
        assert_sync_send::<NativeTool>();
        assert_sync_send::<FixedNativeTool>();
        assert_sync_send::<LaserTool>();
        assert_sync_send::<VtuneTool>();
        assert_sync_send::<SheriffTool>();
        assert_sync_send::<Box<dyn Tool>>();
    }

    #[test]
    fn native_runs_and_reports_nothing() {
        let spec = find("swaptions").unwrap();
        let run = NativeTool.run(&spec, &opts()).unwrap();
        assert!(run.cycles > 0);
        assert!(run.reported.is_empty());
        assert!(!run.repair_invoked);
        assert_eq!(run.driver_overhead_cycles, 0);
    }

    #[test]
    fn fixed_native_beats_buggy_native_where_a_fix_exists() {
        let spec = find("linear_regression").unwrap();
        assert!(spec.has_fix);
        let buggy = NativeTool.run(&spec, &opts()).unwrap();
        let fixed = FixedNativeTool.run(&spec, &opts()).unwrap();
        assert!(
            fixed.cycles < buggy.cycles,
            "{} vs {}",
            fixed.cycles,
            buggy.cycles
        );
    }

    #[test]
    fn laser_tool_reports_contention_with_overhead() {
        let spec = find("histogram'").unwrap();
        let native = NativeTool.run(&spec, &opts()).unwrap();
        let laser = LaserTool::new(LaserConfig::detection_only())
            .run(&spec, &opts())
            .unwrap();
        assert!(laser.cycles >= native.cycles);
        assert!(!laser.reported.is_empty(), "histogram' contends");
        let first = &laser.reported[0];
        assert!(first.location().is_some());
        assert!(first.kind.is_some());
        assert!(first.hitm_records > 0);
        assert!(laser.driver_overhead_cycles > 0);
        assert!(laser.detector_cycles > 0);
    }

    #[test]
    fn sheriff_tool_surfaces_incompatibility() {
        let spec = find("dedup").unwrap();
        let out = SheriffTool::new(SheriffMode::Detect).run(&spec, &opts());
        assert_eq!(
            out,
            Err(ToolFailure::Unsupported(SheriffFailure::Incompatible))
        );
    }

    #[test]
    fn tool_names_are_distinct() {
        let tools = default_tools();
        let mut names: Vec<&str> = tools.iter().map(|t| t.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), tools.len());
    }

    #[test]
    fn tool_spec_keys_match_built_tool_names() {
        let specs = [
            ToolSpec::Native,
            ToolSpec::NativeFixed,
            ToolSpec::Laser,
            ToolSpec::LaserDetect,
            ToolSpec::LaserDetectRaw,
            ToolSpec::LaserDetectSav(7),
            ToolSpec::Vtune,
            ToolSpec::SheriffDetect,
            ToolSpec::SheriffProtect,
        ];
        for spec in specs {
            assert_eq!(spec.key(), spec.build().name(), "{spec:?}");
        }
    }

    #[test]
    fn failure_display_is_stable() {
        assert_eq!(
            ToolFailure::Unsupported(SheriffFailure::Crash).to_string(),
            "unsupported: crashes under Sheriff"
        );
        assert_eq!(
            ToolFailure::Panicked {
                message: "boom".into()
            }
            .to_string(),
            "panicked: boom"
        );
        assert_eq!(
            ToolFailure::BudgetExceeded {
                reason: StopReason::StepBudget { limit: 5, used: 9 }
            }
            .to_string(),
            "budget exceeded: step budget exceeded (9 steps > limit 5)"
        );
    }

    #[test]
    fn laser_tool_is_cancelled_mid_flight_by_a_step_budget() {
        use laser_core::{BudgetObserver, CellBudget};
        let spec = find("histogram'").unwrap();
        let out = LaserTool::new(LaserConfig::detection_only()).run_observed(
            &spec,
            &opts(),
            Box::new(BudgetObserver::new(CellBudget::steps(5_000))),
        );
        match out {
            Err(ToolFailure::BudgetExceeded {
                reason: StopReason::StepBudget { limit: 5_000, used },
            }) => assert!(used > 5_000),
            other => panic!("expected a step-budget failure, got {other:?}"),
        }
    }

    #[test]
    fn pipelined_laser_cell_is_byte_identical_to_inline() {
        let spec = find("histogram'").unwrap();
        let inline = LaserTool::new(LaserConfig::detection_only())
            .run(&spec, &opts())
            .unwrap();
        let piped = LaserTool::new(LaserConfig::detection_only())
            .with_pipeline(PipelineConfig::pipelined())
            .run(&spec, &opts())
            .unwrap();
        assert_eq!(inline, piped);

        // The trait-object path the campaign runner uses agrees too.
        let mut boxed: Box<dyn Tool> = Box::new(LaserTool::new(LaserConfig::detection_only()));
        boxed.set_pipeline(PipelineConfig::pipelined());
        assert_eq!(boxed.run(&spec, &opts()).unwrap(), inline);

        // Tools without a detector stage accept (and ignore) the deployment.
        let mut native: Box<dyn Tool> = Box::new(NativeTool);
        native.set_pipeline(PipelineConfig::pipelined());
        let native_run = native.run(&spec, &opts()).unwrap();
        assert_eq!(native_run, NativeTool.run(&spec, &opts()).unwrap());
    }

    #[test]
    fn native_tool_is_marked_over_budget_after_completion() {
        use laser_core::{BudgetObserver, CellBudget};
        let spec = find("swaptions").unwrap();
        // Native runs cannot be shortened: the run completes and is then held
        // to the budget via its Finished event.
        let out = NativeTool.run_observed(
            &spec,
            &opts(),
            Box::new(BudgetObserver::new(CellBudget::steps(1))),
        );
        assert!(matches!(
            out,
            Err(ToolFailure::BudgetExceeded {
                reason: StopReason::StepBudget { limit: 1, .. }
            })
        ));
        // A generous budget changes nothing about the run.
        let unbudgeted = NativeTool.run(&spec, &opts()).unwrap();
        let budgeted = NativeTool
            .run_observed(
                &spec,
                &opts(),
                Box::new(BudgetObserver::new(CellBudget::steps(u64::MAX))),
            )
            .unwrap();
        assert_eq!(unbudgeted, budgeted);
    }
}
