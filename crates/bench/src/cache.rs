//! Persistent, content-addressed cell-result cache.
//!
//! `experiments all` recomputes every `(workload, tool, topology)` cell from
//! scratch on every invocation. This module makes campaigns *incremental*: a
//! [`CellCache`] keys each cell by a stable fingerprint of its full
//! configuration — workload name, build options, tool key, topology preset,
//! per-cell budget and pipeline deployment — and stores the finished
//! [`CellResult`] on disk as compact JSON (via the `serde::json` shim). A
//! [`Campaign`](crate::campaign::Campaign) holding a cache consults it before
//! simulating a cell and writes the result back after, so a repeated or
//! incrementally-changed campaign only pays for the cells that changed.
//!
//! Determinism is the load-bearing property. Every cell simulation is
//! deterministic, so a cache hit returns *exactly* the bytes a fresh
//! simulation would have produced, and a warm-cache rerun of any experiment
//! is byte-identical to its cold run in every output format
//! (`tests/cache_service.rs` pins this). To keep that true:
//!
//! * the fingerprint is a hand-rolled FNV-1a over a canonical key/value
//!   rendering of the config — no [`std::collections::HashMap`] iteration,
//!   no pointer hashing, no process-seeded state — so identical configs
//!   fingerprint identically across processes and hosts;
//! * the canonical config string is stored *inside* the cache file and
//!   verified on load, so a fingerprint collision degrades to a miss, never
//!   to a wrong result;
//! * only deterministic outcomes are cached: successful runs, Sheriff
//!   compatibility verdicts and step-budget exhaustion. Errors, panics and
//!   anything involving a wall-clock budget always re-simulate.
//!
//! Simulation-semantics changes are handled by [`CACHE_SALT`]: the salt is
//! written into every cache file and checked on load, so bumping it (one
//! constant, whenever a change makes old cycle counts stale) invalidates
//! every stored cell at once. Salt mismatches are counted separately from
//! plain misses in [`CacheStats`], which campaigns surface on stderr and in
//! the cache-stats JSON report — never on stdout, which must stay
//! byte-identical between cold and warm runs.

use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use laser_baselines::SheriffFailure;
use laser_core::{CellBudget, ContentionKind, PipelineConfig, StopReason, TopologySpec};
use laser_workloads::BuildOptions;
use serde::json::Value;

use crate::topofile::CustomTopology;

use crate::campaign::CellResult;
use crate::tool::{ReportedLine, ToolFailure, ToolRun};

/// Version salt baked into every cache file.
///
/// Bump this whenever a change alters simulation semantics (cost model,
/// scheduler, detector, repair policy, …) so that previously stored cycle
/// counts no longer reflect what a fresh run would produce. Every stored
/// cell carries the salt it was written under; a mismatch on load counts as
/// `invalidated` and the cell is re-simulated and re-stored.
pub const CACHE_SALT: u32 = 1;

/// The full configuration of one campaign cell, as fingerprinted by the
/// cache. Everything that can change a cell's result must appear here.
#[derive(Debug, Clone, Copy)]
pub struct CellConfig<'a> {
    /// Workload name (unique in the registry).
    pub workload: &'a str,
    /// Bare tool key (`ToolSpec::key()` / `Tool::name()`), without any
    /// topology suffix.
    pub tool: &'a str,
    /// Topology preset the cell deploys on (ignored when `custom_topology`
    /// overrides it).
    pub topology: TopologySpec,
    /// Bespoke topology the cell deploys on instead of a preset, if any
    /// (`--topology-file` / a scenario's `"custom_topology"`). Its full
    /// canonical rendering replaces the preset key in the fingerprint, so
    /// cells from different layouts never alias — two custom layouts
    /// collide only if every field (name, core blocks, latency table)
    /// agrees.
    pub custom_topology: Option<&'a CustomTopology>,
    /// Build options before topology adaptation (the tool applies
    /// `BuildOptions::for_topology` itself, deterministically).
    pub opts: &'a BuildOptions,
    /// Per-cell budget.
    pub budget: CellBudget,
    /// Pipeline deployment of the cell's session.
    pub pipeline: PipelineConfig,
}

impl CellConfig<'_> {
    /// The canonical rendering the fingerprint hashes: one `key=value` line
    /// per config field, in a fixed order. Floats render with `{:?}` so the
    /// exact bit pattern round-trips; every other field has one stable
    /// spelling. This string is also stored in the cache file and compared
    /// on load, so a fingerprint collision can never alias two configs.
    pub fn canonical(&self) -> String {
        let steps = match self.budget.max_steps {
            Some(n) => n.to_string(),
            None => "none".to_string(),
        };
        let wall_ms = match self.budget.max_wall {
            Some(d) => d.as_millis().to_string(),
            None => "none".to_string(),
        };
        // A custom layout's full canonical rendering takes the preset key's
        // slot; names cannot shadow preset keys (topofile validation), so
        // the two families never alias and preset-only fingerprints are
        // byte-identical to the pre-topology-file scheme.
        let topology = match self.custom_topology {
            Some(custom) => custom.canonical(),
            None => self.topology.key().to_string(),
        };
        format!(
            "workload={}\ntool={}\ntopology={}\nthreads={}\nscale={:?}\nfixed={}\n\
             layout_perturbation={}\nplacement={}\nbudget_steps={}\nbudget_wall_ms={}\n\
             pipeline={}\npipeline_capacity={}\npipeline_lossy={}\npipeline_shards={}\n\
             pipeline_routing={}\npipeline_driver_lag={}\n",
            self.workload,
            self.tool,
            topology,
            self.opts.threads,
            self.opts.scale,
            self.opts.fixed,
            self.opts.layout_perturbation,
            self.opts.placement,
            steps,
            wall_ms,
            self.pipeline.enabled,
            self.pipeline.capacity,
            self.pipeline.lossy,
            self.pipeline.shards,
            self.pipeline.routing.key(),
            self.pipeline.driver_lag_quanta,
        )
    }

    /// Whether results under this config are deterministic enough to cache
    /// at all: wall-clock budgets depend on real time and machine load, and
    /// lossy pipelining forfeits the byte-identity guarantee, so neither is
    /// ever cached.
    pub fn cacheable(&self) -> bool {
        self.budget.max_wall.is_none() && !self.pipeline.lossy
    }

    /// The cell key a fresh simulation of this config would be labelled
    /// with: the preset decoration ([`crate::tool::cell_key`]) or the custom
    /// layout's `tool@name`.
    pub fn cell_key(&self) -> String {
        match self.custom_topology {
            Some(custom) => format!("{}@{}", self.tool, custom.name()),
            None => crate::tool::cell_key(self.tool, self.topology),
        }
    }
}

/// Compute the cache fingerprint of a cell config: 32 lowercase hex digits
/// from two independent FNV-1a passes over [`CellConfig::canonical`].
///
/// Hand-rolled with fixed constants (no `std` hasher involvement) so the
/// fingerprint is identical across processes, builds and platforms.
pub fn fingerprint(config: &CellConfig) -> String {
    let canonical = config.canonical();
    let a = fnv1a(canonical.as_bytes(), 0xcbf2_9ce4_8422_2325);
    // Second pass from a different basis: 128 bits total makes accidental
    // collisions implausible, and the stored canonical string catches the
    // implausible ones.
    let b = fnv1a(
        canonical.as_bytes(),
        0xcbf2_9ce4_8422_2325 ^ 0x9e37_79b9_7f4a_7c15,
    );
    format!("{a:016x}{b:016x}")
}

fn fnv1a(bytes: &[u8], basis: u64) -> u64 {
    let mut hash = basis;
    for &byte in bytes {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Why a cache directory could not be opened.
#[derive(Debug)]
pub struct CacheError {
    /// The offending directory.
    pub dir: PathBuf,
    /// The underlying I/O error, as text.
    pub message: String,
}

impl std::fmt::Display for CacheError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "cannot open cell cache at {}: {}",
            self.dir.display(),
            self.message
        )
    }
}

impl std::error::Error for CacheError {}

/// Hit/miss accounting for one cache over one process lifetime.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Cells answered from the store (not simulated).
    pub hits: u64,
    /// Cells simulated because no usable entry existed (absent, corrupt, or
    /// fingerprint-collision mismatch).
    pub misses: u64,
    /// Cells simulated because the stored entry carried a stale
    /// [`CACHE_SALT`].
    pub invalidated: u64,
    /// Cells written back to the store after simulating.
    pub stored: u64,
}

impl CacheStats {
    /// Cells that had to be simulated this run.
    pub fn simulated(&self) -> u64 {
        self.misses + self.invalidated
    }

    /// The stats as a JSON object (for `--cache-stats` reports and the
    /// service summary line).
    pub fn to_json(&self) -> Value {
        Value::object()
            .set("hits", self.hits)
            .set("misses", self.misses)
            .set("invalidated", self.invalidated)
            .set("stored", self.stored)
            .set("simulated", self.simulated())
    }

    /// One-line human summary for stderr.
    pub fn render(&self) -> String {
        format!(
            "{} hit{}, {} simulated ({} miss{}, {} invalidated), {} stored",
            self.hits,
            if self.hits == 1 { "" } else { "s" },
            self.simulated(),
            self.misses,
            if self.misses == 1 { "" } else { "es" },
            self.invalidated,
            self.stored,
        )
    }
}

/// A persistent, content-addressed store of finished campaign cells.
///
/// One file per cell under the cache directory, named by the config
/// fingerprint. Shared across campaign worker threads behind an `Arc`;
/// loads and stores are lock-free except for the write-error slot. Write
/// failures never panic: the first failure is recorded and surfaced through
/// [`CellCache::write_error`], which the binaries turn into a clean nonzero
/// exit after the run.
#[derive(Debug)]
pub struct CellCache {
    dir: PathBuf,
    salt: u32,
    hits: AtomicU64,
    misses: AtomicU64,
    invalidated: AtomicU64,
    stored: AtomicU64,
    write_error: Mutex<Option<String>>,
}

impl CellCache {
    /// Open (creating if needed) a cache rooted at `dir`.
    ///
    /// # Errors
    /// [`CacheError`] when the directory cannot be created.
    pub fn open(dir: impl Into<PathBuf>) -> Result<CellCache, CacheError> {
        let dir = dir.into();
        fs::create_dir_all(&dir).map_err(|e| CacheError {
            dir: dir.clone(),
            message: e.to_string(),
        })?;
        Ok(CellCache {
            dir,
            salt: CACHE_SALT,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            invalidated: AtomicU64::new(0),
            stored: AtomicU64::new(0),
            write_error: Mutex::new(None),
        })
    }

    /// Override the version salt (tests use this to prove a bump invalidates
    /// the whole store).
    pub fn with_salt(mut self, salt: u32) -> Self {
        self.salt = salt;
        self
    }

    /// The cache directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn path_of(&self, fp: &str) -> PathBuf {
        self.dir.join(format!("{fp}.json"))
    }

    /// Look up a cell. `Some` is a hit: the returned result is byte-for-byte
    /// what the original simulation produced. `None` bumps the miss (or
    /// `invalidated`, on a salt mismatch) counter and the caller simulates.
    pub fn load(&self, config: &CellConfig) -> Option<CellResult> {
        if !config.cacheable() {
            // Never served from the store, and not a "miss" — the cell was
            // never eligible.
            return None;
        }
        let text = match fs::read_to_string(self.path_of(&fingerprint(config))) {
            Ok(text) => text,
            Err(_) => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                return None;
            }
        };
        match decode_entry(&text, self.salt, config) {
            Ok(cell) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(cell)
            }
            Err(EntryRejected::StaleSalt) => {
                self.invalidated.fetch_add(1, Ordering::Relaxed);
                None
            }
            Err(EntryRejected::Unusable) => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Store a finished cell, if its outcome is deterministic (see module
    /// docs). Failures to write are recorded — first one wins — and surfaced
    /// through [`CellCache::write_error`]; they never panic and never affect
    /// the in-memory result.
    pub fn store(&self, config: &CellConfig, cell: &CellResult) {
        if !config.cacheable() || !outcome_is_cacheable(&cell.outcome) {
            return;
        }
        let entry = encode_entry(self.salt, config, cell).render();
        let fp = fingerprint(config);
        let path = self.path_of(&fp);
        // Write-then-rename so a concurrent reader (or a second service
        // process sharing the directory) never observes a half-written file.
        let tmp = self.dir.join(format!("{fp}.tmp.{}", std::process::id()));
        let result = fs::write(&tmp, entry.as_bytes())
            .and_then(|()| fs::rename(&tmp, &path))
            .map_err(|e| format!("cache write {}: {e}", path.display()));
        match result {
            Ok(()) => {
                self.stored.fetch_add(1, Ordering::Relaxed);
            }
            Err(message) => {
                let _ = fs::remove_file(&tmp);
                let mut slot = self.write_error.lock().unwrap(); // lint:allow(panic) — lock poisoning only follows a panic already unwinding this run
                slot.get_or_insert(message);
            }
        }
    }

    /// The accumulated stats of this process's loads and stores.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            invalidated: self.invalidated.load(Ordering::Relaxed),
            stored: self.stored.load(Ordering::Relaxed),
        }
    }

    /// The first write failure, if any store failed. Binaries check this
    /// after a run and exit nonzero with the message.
    pub fn write_error(&self) -> Option<String> {
        self.write_error.lock().unwrap().clone() // lint:allow(panic) — lock poisoning only follows a panic already unwinding this run
    }
}

/// Outcomes that are deterministic replays of the simulation: successful
/// runs, Sheriff's static compatibility verdicts, and step-budget trips
/// (steps are counted in simulated instructions, not real time). Errors and
/// panics are transient; wall-clock trips depend on machine load.
fn outcome_is_cacheable(outcome: &Result<ToolRun, ToolFailure>) -> bool {
    match outcome {
        Ok(_) => true,
        Err(ToolFailure::Unsupported(_)) => true,
        Err(ToolFailure::BudgetExceeded {
            reason: StopReason::StepBudget { .. },
        }) => true,
        Err(_) => false,
    }
}

/// Why a present cache file was not used.
enum EntryRejected {
    /// Written under a different [`CACHE_SALT`].
    StaleSalt,
    /// Corrupt, truncated, wrong shape, or a config/fingerprint mismatch.
    Unusable,
}

const ENTRY_KIND: &str = "laser-cell";

fn encode_entry(salt: u32, config: &CellConfig, cell: &CellResult) -> Value {
    Value::object()
        .set("kind", ENTRY_KIND)
        .set("salt", salt)
        .set("config", config.canonical())
        .set("cell", encode_cell(cell))
}

fn decode_entry(text: &str, salt: u32, config: &CellConfig) -> Result<CellResult, EntryRejected> {
    let value = Value::parse(text).map_err(|_| EntryRejected::Unusable)?;
    if value.get("kind").and_then(as_str) != Some(ENTRY_KIND) {
        return Err(EntryRejected::Unusable);
    }
    match value.get("salt") {
        Some(Value::Int(stored)) if *stored == i64::from(salt) => {}
        Some(Value::Int(_)) => return Err(EntryRejected::StaleSalt),
        _ => return Err(EntryRejected::Unusable),
    }
    if value.get("config").and_then(as_str) != Some(config.canonical().as_str()) {
        return Err(EntryRejected::Unusable);
    }
    let cell = value.get("cell").ok_or(EntryRejected::Unusable)?;
    let cell = decode_cell(cell).ok_or(EntryRejected::Unusable)?;
    // Belt and braces: the stored identity must match what the campaign
    // would label a fresh simulation of this config.
    if cell.workload != config.workload || cell.tool != config.cell_key() {
        return Err(EntryRejected::Unusable);
    }
    Ok(cell)
}

fn encode_cell(cell: &CellResult) -> Value {
    let (run, failure) = match &cell.outcome {
        Ok(run) => (encode_run(run), Value::Null),
        Err(f) => (Value::Null, encode_failure(f)),
    };
    Value::object()
        .set("workload", cell.workload.as_str())
        .set("tool", cell.tool.as_str())
        .set("run", run)
        .set("failure", failure)
}

fn decode_cell(value: &Value) -> Option<CellResult> {
    let workload = as_str(value.get("workload")?)?.to_string();
    let tool = as_str(value.get("tool")?)?.to_string();
    let outcome = match (value.get("run")?, value.get("failure")?) {
        (run, Value::Null) => Ok(decode_run(run)?),
        (Value::Null, failure) => Err(decode_failure(failure)?),
        _ => return None,
    };
    Some(CellResult {
        workload,
        tool,
        outcome,
    })
}

fn encode_run(run: &ToolRun) -> Value {
    Value::object()
        .set("cycles", run.cycles)
        .set("repair_invoked", run.repair_invoked)
        .set("driver_overhead_cycles", run.driver_overhead_cycles)
        .set("detector_cycles", run.detector_cycles)
        .set("hitm_events", run.hitm_events)
        .set("hitm_remote", run.hitm_remote)
        .set(
            "reported",
            Value::Array(run.reported.iter().map(encode_line).collect()),
        )
}

fn decode_run(value: &Value) -> Option<ToolRun> {
    let reported = match value.get("reported")? {
        Value::Array(items) => items
            .iter()
            .map(decode_line)
            .collect::<Option<Vec<ReportedLine>>>()?,
        _ => return None,
    };
    Some(ToolRun {
        cycles: as_u64(value.get("cycles")?)?,
        reported,
        repair_invoked: as_bool(value.get("repair_invoked")?)?,
        driver_overhead_cycles: as_u64(value.get("driver_overhead_cycles")?)?,
        detector_cycles: as_u64(value.get("detector_cycles")?)?,
        hitm_events: as_u64(value.get("hitm_events")?)?,
        hitm_remote: as_u64(value.get("hitm_remote")?)?,
    })
}

fn encode_line(line: &ReportedLine) -> Value {
    Value::object()
        .set("label", line.label.as_str())
        .set("file", line.file.clone())
        .set("line", line.line)
        .set(
            "kind",
            match line.kind {
                Some(ContentionKind::FalseSharing) => Value::Str("false-sharing".to_string()),
                Some(ContentionKind::TrueSharing) => Value::Str("true-sharing".to_string()),
                Some(ContentionKind::Unknown) => Value::Str("unknown".to_string()),
                None => Value::Null,
            },
        )
        .set("hitm_records", line.hitm_records)
        .set("rate_per_sec", line.rate_per_sec)
}

fn decode_line(value: &Value) -> Option<ReportedLine> {
    let file = match value.get("file")? {
        Value::Null => None,
        Value::Str(s) => Some(s.clone()),
        _ => return None,
    };
    let line = match value.get("line")? {
        Value::Null => None,
        Value::Int(i) => Some(u32::try_from(*i).ok()?),
        _ => return None,
    };
    let kind = match value.get("kind")? {
        Value::Null => None,
        Value::Str(s) => Some(match s.as_str() {
            "false-sharing" => ContentionKind::FalseSharing,
            "true-sharing" => ContentionKind::TrueSharing,
            "unknown" => ContentionKind::Unknown,
            _ => return None,
        }),
        _ => return None,
    };
    let rate_per_sec = match value.get("rate_per_sec")? {
        Value::Float(f) => *f,
        Value::Int(i) => *i as f64,
        _ => return None,
    };
    Some(ReportedLine {
        label: as_str(value.get("label")?)?.to_string(),
        file,
        line,
        kind,
        hitm_records: as_u64(value.get("hitm_records")?)?,
        rate_per_sec,
    })
}

fn encode_failure(failure: &ToolFailure) -> Value {
    match failure {
        ToolFailure::Unsupported(SheriffFailure::Crash) => {
            Value::object().set("unsupported", "crash")
        }
        ToolFailure::Unsupported(SheriffFailure::Incompatible) => {
            Value::object().set("unsupported", "incompatible")
        }
        ToolFailure::BudgetExceeded {
            reason: StopReason::StepBudget { limit, used },
        } => Value::object().set(
            "step_budget",
            Value::object().set("limit", *limit).set("used", *used),
        ),
        // Uncacheable failures never reach the encoder (see
        // `outcome_is_cacheable`); encode to a shape the decoder rejects.
        _ => Value::object(),
    }
}

fn decode_failure(value: &Value) -> Option<ToolFailure> {
    if let Some(which) = value.get("unsupported") {
        return match as_str(which)? {
            "crash" => Some(ToolFailure::Unsupported(SheriffFailure::Crash)),
            "incompatible" => Some(ToolFailure::Unsupported(SheriffFailure::Incompatible)),
            _ => None,
        };
    }
    if let Some(budget) = value.get("step_budget") {
        return Some(ToolFailure::BudgetExceeded {
            reason: StopReason::StepBudget {
                limit: as_u64(budget.get("limit")?)?,
                used: as_u64(budget.get("used")?)?,
            },
        });
    }
    None
}

fn as_str(value: &Value) -> Option<&str> {
    match value {
        Value::Str(s) => Some(s.as_str()),
        _ => None,
    }
}

fn as_u64(value: &Value) -> Option<u64> {
    match value {
        Value::Int(i) => u64::try_from(*i).ok(),
        _ => None,
    }
}

fn as_bool(value: &Value) -> Option<bool> {
    match value {
        Value::Bool(b) => Some(*b),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use laser_core::ShardRouting;
    use laser_machine::ThreadPlacement;
    use std::sync::atomic::AtomicU32;
    use std::time::Duration;

    fn scratch_dir(tag: &str) -> PathBuf {
        static COUNTER: AtomicU32 = AtomicU32::new(0);
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!("laser-cache-test-{}-{tag}-{n}", std::process::id()))
    }

    fn base_opts() -> BuildOptions {
        BuildOptions::default()
    }

    fn config<'a>(opts: &'a BuildOptions) -> CellConfig<'a> {
        CellConfig {
            workload: "histogram'",
            tool: "laser-detect",
            topology: TopologySpec::Flat,
            custom_topology: None,
            opts,
            budget: CellBudget::default(),
            pipeline: PipelineConfig::default(),
        }
    }

    fn sample_run() -> ToolRun {
        ToolRun {
            cycles: 123_456_789,
            reported: vec![
                ReportedLine {
                    label: "histogram.c:hist_update".to_string(),
                    file: Some("histogram.c".to_string()),
                    line: Some(77),
                    kind: Some(ContentionKind::FalseSharing),
                    hitm_records: 4821,
                    rate_per_sec: 1234.5625,
                },
                ReportedLine {
                    label: "anon".to_string(),
                    file: None,
                    line: None,
                    kind: None,
                    hitm_records: 3,
                    rate_per_sec: 0.125,
                },
            ],
            repair_invoked: true,
            driver_overhead_cycles: 4_200,
            detector_cycles: 1_900,
            hitm_events: 5_000,
            hitm_remote: 120,
        }
    }

    fn sample_cell(outcome: Result<ToolRun, ToolFailure>) -> CellResult {
        CellResult {
            workload: "histogram'".to_string(),
            tool: "laser-detect".to_string(),
            outcome,
        }
    }

    #[test]
    fn fingerprint_is_pinned_across_processes_and_builds() {
        // The exact fingerprint of a fixed config is part of the on-disk
        // format: if this literal changes, every existing cache directory
        // silently stops hitting. Bump CACHE_SALT instead of editing this
        // pin unless the canonical rendering itself deliberately changed.
        // (Last deliberate change: `pipeline_driver_lag` joined the
        // canonical rendering when the three-stage charge-back landed.)
        let opts = base_opts();
        let fp = fingerprint(&config(&opts));
        assert_eq!(fp.len(), 32);
        assert!(fp.bytes().all(|b| b.is_ascii_hexdigit()));
        assert_eq!(fp, fingerprint(&config(&opts)), "pure function");
        assert_eq!(fp, "8f5a794020bcd14449ca73c76a42b7bf");
    }

    #[test]
    fn every_config_field_perturbs_the_fingerprint() {
        let opts = base_opts();
        let base = fingerprint(&config(&opts));

        let mut threads = base_opts();
        threads.threads = 8;
        let mut scale = base_opts();
        scale.scale = 0.400_000_000_000_000_1;
        let mut fixed = base_opts();
        fixed.fixed = true;
        let mut layout = base_opts();
        layout.layout_perturbation = 8;
        let mut placement = base_opts();
        placement.placement = ThreadPlacement::RoundRobin;

        let mut variants: Vec<(&str, String)> = vec![
            (
                "threads",
                fingerprint(&CellConfig {
                    opts: &threads,
                    ..config(&threads)
                }),
            ),
            (
                "scale",
                fingerprint(&CellConfig {
                    opts: &scale,
                    ..config(&scale)
                }),
            ),
            (
                "fixed",
                fingerprint(&CellConfig {
                    opts: &fixed,
                    ..config(&fixed)
                }),
            ),
            (
                "layout",
                fingerprint(&CellConfig {
                    opts: &layout,
                    ..config(&layout)
                }),
            ),
            (
                "placement",
                fingerprint(&CellConfig {
                    opts: &placement,
                    ..config(&placement)
                }),
            ),
        ];
        let opts = base_opts();
        variants.extend([
            (
                "workload",
                fingerprint(&CellConfig {
                    workload: "histogram",
                    ..config(&opts)
                }),
            ),
            (
                "tool",
                fingerprint(&CellConfig {
                    tool: "laser",
                    ..config(&opts)
                }),
            ),
            (
                "topology",
                fingerprint(&CellConfig {
                    topology: TopologySpec::OctoSocket,
                    ..config(&opts)
                }),
            ),
            (
                "budget_steps",
                fingerprint(&CellConfig {
                    budget: CellBudget::steps(1_000_000),
                    ..config(&opts)
                }),
            ),
            (
                "budget_wall",
                fingerprint(&CellConfig {
                    budget: CellBudget::wall(Duration::from_millis(500)),
                    ..config(&opts)
                }),
            ),
            (
                "pipeline",
                fingerprint(&CellConfig {
                    pipeline: PipelineConfig::pipelined(),
                    ..config(&opts)
                }),
            ),
            (
                "pipeline_shards",
                fingerprint(&CellConfig {
                    pipeline: PipelineConfig::pipelined().with_shards(4),
                    ..config(&opts)
                }),
            ),
            (
                "pipeline_routing",
                fingerprint(&CellConfig {
                    pipeline: PipelineConfig::pipelined().with_routing(ShardRouting::Socket),
                    ..config(&opts)
                }),
            ),
            (
                "pipeline_driver_lag",
                fingerprint(&CellConfig {
                    pipeline: PipelineConfig::pipelined().with_driver_lag(2),
                    ..config(&opts)
                }),
            ),
        ]);
        let custom = CustomTopology::from_json(
            r#"{"name": "fat-thin", "core_blocks": [6, 2],
                "remote": {"remote_hitm": 220, "remote_llc": 100, "remote_dram": 310}}"#,
        )
        .unwrap();
        variants.push((
            "custom_topology",
            fingerprint(&CellConfig {
                custom_topology: Some(&custom),
                ..config(&opts)
            }),
        ));

        for (field, fp) in &variants {
            assert_ne!(fp, &base, "perturbing {field} must change the fingerprint");
        }
        // And the perturbations are pairwise distinct from each other too.
        let mut all: Vec<&String> = variants.iter().map(|(_, fp)| fp).collect();
        all.sort();
        all.dedup();
        assert_eq!(all.len(), variants.len());
    }

    #[test]
    fn store_and_load_round_trips_through_a_fresh_handle() {
        let dir = scratch_dir("roundtrip");
        let opts = base_opts();
        let cfg = config(&opts);
        let cell = sample_cell(Ok(sample_run()));

        let writer = CellCache::open(&dir).unwrap();
        assert_eq!(writer.load(&cfg), None, "cold store misses");
        writer.store(&cfg, &cell);
        assert_eq!(writer.write_error(), None);
        assert_eq!(
            writer.stats(),
            CacheStats {
                hits: 0,
                misses: 1,
                invalidated: 0,
                stored: 1
            }
        );

        // A different process would open its own handle: same directory,
        // fresh stats — and the loaded cell is exactly what was stored,
        // including the float report rates.
        let reader = CellCache::open(&dir).unwrap();
        assert_eq!(reader.load(&cfg), Some(cell));
        assert_eq!(reader.stats().hits, 1);
        assert_eq!(reader.stats().simulated(), 0);

        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn deterministic_failures_round_trip_too() {
        let dir = scratch_dir("failures");
        let opts = base_opts();
        let cfg = config(&opts);
        for failure in [
            ToolFailure::Unsupported(SheriffFailure::Crash),
            ToolFailure::Unsupported(SheriffFailure::Incompatible),
            ToolFailure::BudgetExceeded {
                reason: StopReason::StepBudget {
                    limit: 1_000,
                    used: 1_001,
                },
            },
        ] {
            let cache = CellCache::open(&dir).unwrap();
            let cell = sample_cell(Err(failure.clone()));
            cache.store(&cfg, &cell);
            assert_eq!(cache.load(&cfg), Some(cell), "{failure:?}");
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn salt_bump_invalidates_every_stored_cell() {
        let dir = scratch_dir("salt");
        let opts = base_opts();
        let cfg = config(&opts);
        let cell = sample_cell(Ok(sample_run()));

        let old = CellCache::open(&dir).unwrap();
        old.store(&cfg, &cell);
        assert_eq!(old.load(&cfg), Some(cell.clone()));

        // The same store under a bumped salt: the entry is stale, counted as
        // invalidated (not a plain miss), and re-storing repairs it.
        let new = CellCache::open(&dir).unwrap().with_salt(CACHE_SALT + 1);
        assert_eq!(new.load(&cfg), None);
        assert_eq!(new.stats().invalidated, 1);
        assert_eq!(new.stats().misses, 0);
        new.store(&cfg, &cell);
        assert_eq!(new.load(&cfg), Some(cell.clone()));

        // And the old-salt handle now sees a stale entry in turn.
        let old = CellCache::open(&dir).unwrap();
        assert_eq!(old.load(&cfg), None);
        assert_eq!(old.stats().invalidated, 1);

        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn nondeterministic_configs_and_outcomes_are_never_cached() {
        let dir = scratch_dir("nondet");
        let cache = CellCache::open(&dir).unwrap();
        let opts = base_opts();

        // A wall-clock budget depends on machine load: not cacheable, and
        // not counted as a miss — the cell was never eligible.
        let walled = CellConfig {
            budget: CellBudget::wall(Duration::from_secs(5)),
            ..config(&opts)
        };
        assert!(!walled.cacheable());
        cache.store(&walled, &sample_cell(Ok(sample_run())));
        assert_eq!(cache.load(&walled), None);
        assert_eq!(cache.stats(), CacheStats::default());

        // Lossy pipelining forfeits byte-identity: same policy.
        let lossy = CellConfig {
            pipeline: PipelineConfig {
                lossy: true,
                ..PipelineConfig::pipelined()
            },
            ..config(&opts)
        };
        assert!(!lossy.cacheable());

        // Transient outcomes (errors, panics, wall-clock trips) are never
        // stored even under a cacheable config.
        let cfg = config(&opts);
        for failure in [
            ToolFailure::Error("io".to_string()),
            ToolFailure::Panicked {
                message: "boom".to_string(),
            },
            ToolFailure::BudgetExceeded {
                reason: StopReason::WallClock {
                    limit_ms: 10,
                    elapsed_ms: 11,
                },
            },
        ] {
            cache.store(&cfg, &sample_cell(Err(failure)));
        }
        assert_eq!(cache.stats().stored, 0);
        assert_eq!(cache.load(&cfg), None, "nothing was written");

        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_and_mismatched_entries_degrade_to_misses() {
        let dir = scratch_dir("corrupt");
        let opts = base_opts();
        let cfg = config(&opts);
        let cache = CellCache::open(&dir).unwrap();

        // Corrupt JSON at the right path: a miss, never an error.
        let path = dir.join(format!("{}.json", fingerprint(&cfg)));
        fs::write(&path, b"{\"kind\": \"laser-cell\", \"salt\":").unwrap();
        assert_eq!(cache.load(&cfg), None);
        assert_eq!(cache.stats().misses, 1);

        // A fingerprint collision (simulated by copying another config's
        // entry into this config's slot) is caught by the stored canonical
        // config string: again a miss, never a wrong result.
        let other_opts = BuildOptions {
            threads: 16,
            ..base_opts()
        };
        let other = CellConfig {
            opts: &other_opts,
            ..config(&other_opts)
        };
        cache.store(&other, &sample_cell(Ok(sample_run())));
        fs::copy(dir.join(format!("{}.json", fingerprint(&other))), &path).unwrap();
        assert_eq!(cache.load(&cfg), None);
        assert_eq!(cache.stats().misses, 2);
        assert!(cache.load(&other).is_some(), "the real entry still hits");

        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn write_failures_are_recorded_not_panicked() {
        let dir = scratch_dir("failwrite");
        let cache = CellCache::open(&dir).unwrap();
        // Remove the directory out from under the cache: the tmp-file write
        // fails, the error lands in the slot, and nothing panics.
        fs::remove_dir_all(&dir).unwrap();
        let opts = base_opts();
        cache.store(&config(&opts), &sample_cell(Ok(sample_run())));
        let error = cache.write_error().expect("the failed write is recorded");
        assert!(error.contains("cache write"), "{error}");
        assert_eq!(cache.stats().stored, 0);
    }

    #[test]
    fn canonical_rendering_is_line_per_field() {
        let opts = base_opts();
        let canonical = config(&opts).canonical();
        for key in [
            "workload=histogram'",
            "tool=laser-detect",
            "topology=flat",
            "threads=4",
            "scale=1.0",
            "fixed=false",
            "layout_perturbation=0",
            "placement=packed",
            "budget_steps=none",
            "budget_wall_ms=none",
            "pipeline=false",
            "pipeline_capacity=2",
            "pipeline_lossy=false",
            "pipeline_shards=1",
            "pipeline_routing=line",
            "pipeline_driver_lag=0",
        ] {
            assert!(
                canonical.lines().any(|l| l == key),
                "canonical rendering misses {key:?}:\n{canonical}"
            );
        }

        // A custom layout's full rendering takes the preset key's slot.
        let custom = CustomTopology::from_json(
            r#"{"name": "fat-thin", "core_blocks": [6, 2],
                "remote": {"remote_hitm": 220, "remote_llc": 100, "remote_dram": 310}}"#,
        )
        .unwrap();
        let canonical = CellConfig {
            custom_topology: Some(&custom),
            ..config(&opts)
        }
        .canonical();
        assert!(
            canonical.lines().any(|l| l
                == "topology=custom:fat-thin;blocks=6,2;remote_hitm=220;remote_llc=100;\
                    remote_dram=310"),
            "custom layout missing from canonical:\n{canonical}"
        );
    }
}
