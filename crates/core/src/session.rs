//! A self-contained, movable, observable LASER run.
//!
//! [`LaserSession`] owns every piece of the deployment of the paper's
//! Figure 8 — the simulated machine, the kernel driver + PMU, the user-space
//! detector and (once triggered) the repair instrumentation. Nothing inside
//! is shared behind `Rc`/`RefCell`, so a session is `Send`: it can be built
//! on one thread, moved to a worker, and driven to completion there. That is
//! the property `laser-bench`'s campaign runner relies on to fan whole
//! `workload × tool` experiment grids across a thread pool.
//!
//! Sessions are built with [`SessionBuilder`] (obtained from
//! [`Laser::builder`](crate::system::Laser::builder)), the single
//! construction path behind every legacy constructor:
//!
//! ```no_run
//! use laser_core::{Laser, LaserConfig};
//! # fn image() -> laser_machine::WorkloadImage { unimplemented!() }
//!
//! let outcome = Laser::builder()
//!     .config(LaserConfig::detection_only())
//!     .build(&image())
//!     .run()
//!     .unwrap();
//! ```
//!
//! The session advances in *poll quanta*: the application runs
//! `poll_interval_steps` instructions, then the driver services the PMU and
//! the detector consumes the new records — exactly the cadence of the
//! monolithic loop this type was extracted from. Each quantum is reported to
//! the session's [`Observer`] as a stream of typed
//! [`LaserEvent`]s, and the observer can cancel
//! the run mid-flight by returning `ControlFlow::Break` (see
//! [`crate::observe`]).
//!
//! # Pipelined execution
//!
//! The paper's central performance claim is that detection runs
//! *concurrently* with the application: the PMU/driver/detector work rides
//! alongside execution instead of interrupting it.
//! [`SessionBuilder::pipeline`] deploys the session as a **three-stage
//! pipeline** — machine | driver | detector shards. The machine thread does
//! nothing but `run_quantum` and enqueue each quantum's raw HITM batch; a
//! dedicated driver-stage thread services the PMU (sampling, imprecision,
//! record copy) and routes the sampled records over the detector shard
//! workers; each shard consumes its sub-batches through a bounded
//! double-buffered channel (`laser_pebs::channel`).
//!
//! The driver's overhead charge-back is latency-tolerant: the driver stage
//! computes each quantum's interrupt/copy charge as a pure function of its
//! batch (a [`laser_pebs::ChargeLedger`]) and sends it back on a second
//! channel, and the machine applies pending ledgers at fixed quantum
//! boundaries — a bounded-lag credit scheme controlled by
//! [`PipelineConfig::driver_lag_quanta`]:
//!
//! * **lag = 0** (the default): the ledger for quantum `k` is applied at
//!   boundary `k`, before quantum `k + 1` runs — the same machine point an
//!   inline run charges at. Charges within a ledger commute (the scheduler's
//!   pick is a pure function of the final per-core clocks), so a lag=0
//!   pipelined run is **byte-identical** to its inline equivalent — outcome
//!   and event stream alike — while routing, record copy and detection still
//!   overlap off the machine thread.
//! * **lag ≥ 1**: the ledger for quantum `k` is applied at boundary
//!   `k + lag`, so the machine runs quantum `k + 1` while the driver stage
//!   is still servicing quantum `k`. Deferring charges moves the cores'
//!   clocks relative to an inline run, which perturbs the interleaving and
//!   hence the HITM stream — like socket routing, lag ≥ 1 is
//!   **deterministic** (byte-for-byte repeatable for a fixed configuration)
//!   but *not* inline-identical.
//!
//! The repair decision is pre-armed off the ledger: while the session is
//! observed or repair is armed, the driver stage mirrors the full record
//! stream through its own [`Detector`] and ships the per-line aggregates
//! inside each ledger, so the machine evaluates the trigger (and the
//! observer's `DetectionUpdate` rates) straight from the ledger — armed
//! quanta no longer round-trip to the shard workers.
//!
//! The one semantic difference at lag = 0 is cancellation latency: deferred
//! `RecordBatch`/`DetectionUpdate` events are delivered at the boundary
//! where their ledger settles, so a `Break` returned against them stops the
//! session at that boundary — the same boundary as inline, with the same
//! stream bytes.
//!
//! # Sharded detection
//!
//! On large multi-socket parts a single detector worker becomes the
//! bottleneck exactly where the paper's always-on claim matters most.
//! [`PipelineConfig::with_shards`] splits the pipelined detector stage into
//! N workers, each fed through its own bounded `laser_pebs::channel` and
//! each holding its own [`Detector`]. Every batch the driver stage samples
//! is routed across the shards by [`ShardRouting`]:
//!
//! * [`ShardRouting::LineHash`] (the default) hashes each record's cache
//!   line, so all records for one line — the unit of every per-line
//!   aggregate and of the cache-line model's state — land in the same
//!   shard. Shard states stay pairwise disjoint, and merging them
//!   reconstructs exactly the state one inline detector would hold: a
//!   line-hash sharded run is **byte-identical** to the inline and
//!   single-worker runs for every shard count.
//! * [`ShardRouting::Socket`] routes by the record's originating socket,
//!   modelling the realistic deployment of one detector core per socket
//!   consuming only its socket's PEBS stream. Routing is a pure function of
//!   the record, so socket-sharded runs are deterministic (repeatable
//!   byte-for-byte), but a line touched from two sockets splits its record
//!   sequence across shards, so the classification may legitimately differ
//!   from the inline path's.
//!
//! Reports never expose the sharding: live rates and trigger decisions come
//! from the driver stage's mirror detector (which sees the full record
//! stream in driver order, exactly as an inline detector would), and at
//! `finish` the shard detectors are folded back into one
//! ([`Detector::absorb`]) before the final flush and report. Ledgers settle
//! in quantum order, so the event stream, too, is independent of the shard
//! count.

use std::collections::VecDeque;
use std::fmt;
use std::ops::ControlFlow;
use std::sync::mpsc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use laser_isa::program::Pc;
use laser_machine::machine::MachineError;
use laser_machine::{
    CoreId, HitmEvent, Machine, MachineConfig, RunStatus, Topology, WorkloadImage,
};
use laser_pebs::channel::{self, OverflowPolicy, SendOutcome};
use laser_pebs::driver::{ChargeLedger, Driver};
use laser_pebs::imprecision::ImprecisionModel;
use laser_pebs::pmu::{Pmu, PmuConfig};
use laser_pebs::record::HitmRecord;

use crate::config::LaserConfig;
use crate::detect::{self, Detector, LineAgg};
use crate::observe::{LaserEvent, NullObserver, Observer, StopReason};
use crate::repair::{RepairPlan, SsbHook};
use crate::system::{LaserError, LaserOutcome, RepairSummary};

/// What one call to [`LaserSession::advance`] left the session in.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SessionStatus {
    /// The application has more work; call [`LaserSession::advance`] again.
    Running,
    /// The application halted; call [`LaserSession::finish`] for the outcome.
    Done,
    /// The session's [`Observer`] cancelled the run. The partial state is
    /// still inspectable, but there is no complete outcome to produce.
    Stopped(StopReason),
}

/// How records are distributed over a sharded detector stage (see the
/// [module docs](self) on sharded detection).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ShardRouting {
    /// Route by a hash of the record's cache line (the default). All records
    /// for one line land in one shard, so shard states are disjoint and the
    /// merged output is byte-identical to the inline path for every shard
    /// count.
    #[default]
    LineHash,
    /// Route by the record's originating socket — the paper-realistic
    /// one-detector-core-per-socket deployment. Deterministic, but a line
    /// touched from several sockets splits across shards, so classification
    /// may differ from the inline path.
    Socket,
}

impl ShardRouting {
    /// The stable CLI/scenario key: `line` or `socket`.
    pub fn key(self) -> &'static str {
        match self {
            ShardRouting::LineHash => "line",
            ShardRouting::Socket => "socket",
        }
    }

    /// Parse a CLI/scenario key (the inverse of [`ShardRouting::key`]).
    pub fn parse(s: &str) -> Option<ShardRouting> {
        match s {
            "line" => Some(ShardRouting::LineHash),
            "socket" => Some(ShardRouting::Socket),
            _ => None,
        }
    }
}

/// How a session's detector stage is deployed (see the
/// [module docs](self) on pipelined execution and sharded detection).
///
/// A worked sharded session — four line-hash shards behind lossless
/// channels, byte-identical to the same run inline:
///
/// ```no_run
/// use laser_core::{Laser, LaserConfig, PipelineConfig, ShardRouting};
/// # fn image() -> laser_machine::WorkloadImage { unimplemented!() }
///
/// let sharded = Laser::builder()
///     .config(LaserConfig::detection_only())
///     .pipeline_config(
///         PipelineConfig::pipelined()
///             .with_shards(4)
///             .with_routing(ShardRouting::LineHash),
///     )
///     .build(&image())
///     .run()
///     .unwrap();
///
/// let inline = Laser::builder()
///     .config(LaserConfig::detection_only())
///     .build(&image())
///     .run()
///     .unwrap();
/// assert_eq!(sharded.report, inline.report);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PipelineConfig {
    /// Run the detector stage on worker threads, overlapping record
    /// processing with the next quantum of application execution.
    pub enabled: bool,
    /// Capacity of each shard's record channel, in batches (clamped to at
    /// least 1). The default of 2 is the classic double buffer: one batch in
    /// flight at the detector, one staged behind it.
    pub capacity: usize,
    /// When a shard lags `capacity` batches behind, drop the offered
    /// sub-batch — modelling a PEBS buffer overflow, surfaced through
    /// `DriverStats::records_dropped` — instead of blocking the driver
    /// stage. Lossy delivery bounds stage latency but forfeits the
    /// byte-identity guarantee; leave it off where determinism matters.
    ///
    /// Lossy mode only has teeth while the driver stage's mirror detector is
    /// retired — i.e. on unobserved sessions once repair has attached or is
    /// disabled. While the mirror is live its aggregates must see every
    /// record the shards see, so delivery stays lossless and
    /// `records_dropped` stays 0.
    pub lossy: bool,
    /// Number of detector worker shards (clamped to at least 1). Each shard
    /// is its own thread with its own channel and [`Detector`]; 1 is the
    /// single-worker pipeline of PR 4.
    pub shards: usize,
    /// How records are distributed over the shards.
    pub routing: ShardRouting,
    /// How many quantum boundaries the driver stage's charge ledger may lag
    /// behind the batch it accounts for (the bounded-lag credit scheme of
    /// the [module docs](self)). At the default of 0 the machine blocks on
    /// each quantum's ledger before running the next quantum, and the run is
    /// byte-identical to inline; at lag ≥ 1 the machine overlaps execution
    /// with the driver stage — deterministic, but not inline-identical.
    pub driver_lag_quanta: usize,
}

impl Default for PipelineConfig {
    /// Pipelining off; capacity 2 (double buffer); lossless; one shard,
    /// line-hash routed; charge-back lag 0 (byte-identical to inline).
    fn default() -> Self {
        PipelineConfig {
            enabled: false,
            capacity: 2,
            lossy: false,
            shards: 1,
            routing: ShardRouting::LineHash,
            driver_lag_quanta: 0,
        }
    }
}

impl PipelineConfig {
    /// The standard pipelined deployment: worker-thread detector stage behind
    /// a lossless double-buffered channel.
    pub fn pipelined() -> Self {
        PipelineConfig {
            enabled: true,
            ..Default::default()
        }
    }

    /// Override the per-shard record-channel capacity (builder-style).
    pub fn with_capacity(mut self, capacity: usize) -> Self {
        self.capacity = capacity.max(1);
        self
    }

    /// Switch between lossless backpressure and lossy overflow
    /// (builder-style).
    pub fn with_lossy(mut self, lossy: bool) -> Self {
        self.lossy = lossy;
        self
    }

    /// Set the detector shard count, clamped to at least 1 (builder-style).
    /// Output is byte-identical across shard counts under the default
    /// line-hash routing.
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards.max(1);
        self
    }

    /// Set the shard routing policy (builder-style).
    pub fn with_routing(mut self, routing: ShardRouting) -> Self {
        self.routing = routing;
        self
    }

    /// Set the charge-back lag in quanta (builder-style). 0 (the default)
    /// keeps the run byte-identical to inline; lag ≥ 1 overlaps the machine
    /// and driver stages, deterministic but not inline-identical (see the
    /// [module docs](self)).
    pub fn with_driver_lag(mut self, lag: usize) -> Self {
        self.driver_lag_quanta = lag;
        self
    }
}

/// Fluent construction of a [`LaserSession`]: LASER configuration, machine
/// configuration, an optional [`Observer`] and the pipeline deployment, in
/// any order, then [`SessionBuilder::build`].
///
/// ```no_run
/// use std::ops::ControlFlow;
/// use laser_core::{Laser, LaserConfig, LaserEvent};
/// # fn image() -> laser_machine::WorkloadImage { unimplemented!() }
///
/// let session = Laser::builder()
///     .config(LaserConfig::default().with_seed(7))
///     .machine(laser_machine::MachineConfig::default())
///     .pipeline(true)
///     .observer(|event: &LaserEvent| {
///         if let LaserEvent::RepairAttached { at_cycle, .. } = event {
///             eprintln!("repair attached at cycle {at_cycle}");
///         }
///         ControlFlow::Continue(())
///     })
///     .build(&image());
/// ```
#[derive(Default)]
pub struct SessionBuilder {
    config: LaserConfig,
    machine: MachineConfig,
    observer: Option<Box<dyn Observer>>,
    pipeline: PipelineConfig,
}

impl fmt::Debug for SessionBuilder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SessionBuilder")
            .field("config", &self.config)
            .field("machine", &self.machine)
            .field("observer", &self.observer.is_some())
            .field("pipeline", &self.pipeline)
            .finish()
    }
}

impl SessionBuilder {
    /// A builder with the default LASER and machine configurations and no
    /// observer. Equivalent to [`Laser::builder`](crate::system::Laser::builder).
    pub fn new() -> Self {
        SessionBuilder::default()
    }

    /// Set the LASER configuration (default: [`LaserConfig::default`]).
    pub fn config(mut self, config: LaserConfig) -> Self {
        self.config = config;
        self
    }

    /// Set the machine configuration (default: [`MachineConfig::default`]).
    pub fn machine(mut self, machine: MachineConfig) -> Self {
        self.machine = machine;
        self
    }

    /// Run the detector stage on a worker thread, overlapped with
    /// application execution (default: off). Shorthand for
    /// [`SessionBuilder::pipeline_config`] with the standard double-buffered
    /// lossless deployment; the results are byte-identical either way, only
    /// the wall-clock changes.
    pub fn pipeline(mut self, enabled: bool) -> Self {
        self.pipeline.enabled = enabled;
        self
    }

    /// Set the full pipeline deployment (capacity, overflow policy).
    pub fn pipeline_config(mut self, pipeline: PipelineConfig) -> Self {
        self.pipeline = pipeline;
        self
    }

    /// Attach an [`Observer`] that receives the run's
    /// [`LaserEvent`] stream and may cancel the
    /// run. Without one, events go to a [`NullObserver`].
    pub fn observer(self, observer: impl Observer + 'static) -> Self {
        self.boxed_observer(Box::new(observer))
    }

    /// Like [`SessionBuilder::observer`], for an observer that is already
    /// boxed (e.g. one threaded through `dyn`-typed plumbing).
    pub fn boxed_observer(mut self, observer: Box<dyn Observer>) -> Self {
        self.observer = Some(observer);
        self
    }

    /// Construct the session for `image`. Pure setup: nothing runs until
    /// [`LaserSession::advance`] or [`LaserSession::run`] (a pipelined
    /// session's worker thread spawns here, but idles on an empty channel).
    ///
    /// A non-flat [`LaserConfig::topology`] deploys the machine on that
    /// preset (its socket topology and 4-cores-per-socket count) unless the
    /// caller supplied a machine configuration with its own non-default
    /// topology, which then wins.
    ///
    /// # Panics
    /// Panics if the machine configuration fails validation — a zero clock
    /// frequency, a non-monotone latency ladder, or cross-socket latencies
    /// cheaper than local ones — so nonsense cost models are rejected here
    /// instead of producing corrupt HITM rates downstream.
    pub fn build(self, image: &WorkloadImage) -> LaserSession {
        let SessionBuilder {
            config,
            machine: mut machine_config,
            observer,
            pipeline,
        } = self;
        if config.topology != laser_machine::TopologySpec::Flat
            && machine_config.topology == laser_machine::Topology::single_socket()
        {
            machine_config.topology = config.topology.topology();
            if machine_config.num_cores == MachineConfig::default().num_cores {
                machine_config.num_cores = config.topology.num_cores();
            }
        }
        let max_steps = machine_config.max_steps;
        let num_cores = machine_config.num_cores;
        let machine = Machine::new(machine_config, image);

        let program = image.program();
        let code_range = (program.base_pc(), program.end_pc());
        let model = ImprecisionModel::new(
            config.imprecision,
            image.memory_map(),
            code_range,
            config.seed,
        );
        let pmu = Pmu::new(
            PmuConfig {
                sav: config.sav,
                num_cores,
                ..Default::default()
            },
            model,
        );
        let driver = Driver::new(pmu, config.driver);
        let observed = observer.is_some();
        let (driver, detector, pipe) = if pipeline.enabled {
            let detectors = (0..pipeline.shards.max(1))
                .map(|_| Detector::new(&config, program, image.memory_map()))
                .collect();
            // The mirror detector feeds the machine-side repair trigger and
            // the observer's DetectionUpdate rates without a shard
            // round-trip; it is only carried while someone needs its
            // aggregates.
            let mirror = (observed || config.enable_repair)
                .then(|| Detector::new(&config, program, image.memory_map()));
            let topology = machine.topology().clone();
            let stage = PipeStage::spawn(driver, mirror, detectors, pipeline, topology, num_cores);
            (None, None, Some(stage))
        } else {
            (
                Some(driver),
                Some(Detector::new(&config, program, image.memory_map())),
                None,
            )
        };

        LaserSession {
            config,
            machine,
            driver,
            detector,
            pipe,
            observed,
            observer: observer.unwrap_or_else(|| Box::new(NullObserver)),
            workload: image.name().to_string(),
            num_cores,
            max_steps,
            detector_cycles: 0,
            reported_dropped: 0,
            repair: None,
            machine_busy: Duration::ZERO,
            occupancy: None,
        }
    }
}

/// Cumulative busy time of each stage of a pipelined session, measured on
/// the stage threads themselves. Only meaningful relative to the run's wall
/// clock: `busy / wall` is the stage's occupancy, and the largest fraction
/// names the pipeline's bottleneck. `detector_busy` is the busiest shard's
/// time (the bottleneck shard), not the sum over shards.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StageOccupancy {
    /// Time the machine thread spent inside `run_quantum`.
    pub machine_busy: Duration,
    /// Time the driver-stage thread spent servicing batches (PMU sampling,
    /// record copy, mirror detection, routing).
    pub driver_busy: Duration,
    /// Time the busiest detector shard spent processing records.
    pub detector_busy: Duration,
}

/// A unit of work for one detector shard: process one routed sub-batch.
struct DetectorJob {
    records: Vec<HitmRecord>,
}

/// A detector shard's worker loop: consume jobs in FIFO order until the
/// channel closes, then hand the detector (and the shard's busy time) back
/// to the session.
fn detector_worker(
    mut detector: Detector,
    jobs: channel::Receiver<DetectorJob>,
) -> (Detector, Duration) {
    let mut busy = Duration::ZERO;
    while let Some(job) = jobs.recv() {
        let start = Instant::now(); // lint:allow(wall-clock) — occupancy accounting only; never feeds back into simulated state
        detector.process(&job.records);
        busy += start.elapsed();
    }
    (detector, busy)
}

/// A unit of work for the driver stage.
enum DriverJob {
    /// One quantum's raw HITM batch, exactly as `run_quantum` yielded it.
    Batch(Vec<HitmEvent>),
    /// Repair attached on the machine thread; an unobserved session no
    /// longer needs the mirror detector's aggregates, so retire it.
    RepairAttached,
    /// End of run: flush the PEBS buffers and reply with the final records.
    Finish,
}

/// What the driver stage sends back for each job, on the second channel.
/// Everything the machine needs at the quantum boundary rides in here, so a
/// boundary is a single `recv` — no per-shard round-trips.
struct QuantumLedger {
    /// The batch's interrupt/copy overhead, computed as a pure function of
    /// the batch by `Driver::ingest_deferred`.
    charges: ChargeLedger,
    /// Sampled records delivered to the detector shards (after any lossy
    /// drops), priced on the machine at the inline per-record cost.
    records: usize,
    /// Cumulative `DriverStats::events_dropped` as of this batch, for the
    /// observer's `RecordBatch` drop watermark.
    events_dropped: u64,
    /// The mirror detector's per-line aggregates after this batch, when the
    /// mirror is live (observed or repair armed).
    aggs: Option<Vec<LineAgg>>,
    /// The final flush's records (the reply to [`DriverJob::Finish`] only).
    flushed: Vec<HitmRecord>,
}

/// The driver stage: owns the [`Driver`] (PMU + imprecision + overhead
/// accounting), the optional mirror [`Detector`], and the shard job senders.
/// Runs on its own thread; for each batch it computes the charge ledger,
/// sends it back to the machine first, then dispatches the routed sub-batches
/// to the shards (so the machine is never blocked on shard backpressure).
struct DriverStageWorker {
    driver: Driver,
    mirror: Option<Detector>,
    shard_jobs: Vec<channel::Sender<DetectorJob>>,
    routing: ShardRouting,
    topology: Topology,
    num_cores: usize,
    lossy: bool,
}

impl DriverStageWorker {
    /// Split a batch into one (possibly empty) sub-batch per shard under the
    /// session's routing policy, preserving the driver's delivery order
    /// within each shard. Line-hash routing keys on the cache line so a
    /// line's whole record sequence stays in one shard; socket routing keys
    /// on the originating core's socket. Both are pure functions of the
    /// record (and the fixed topology), so routing is deterministic.
    fn route(&self, records: Vec<HitmRecord>) -> Vec<Vec<HitmRecord>> {
        let shards = self.shard_jobs.len();
        if shards == 1 {
            return vec![records];
        }
        let mut parts: Vec<Vec<HitmRecord>> = (0..shards).map(|_| Vec::new()).collect();
        for r in records {
            let shard = match self.routing {
                // Fibonacci hashing over the line address: cheap, stable
                // across platforms, and spreads consecutive lines across
                // shards.
                ShardRouting::LineHash => {
                    (((r.data_addr >> 6).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize)
                        % shards
                }
                ShardRouting::Socket => self.topology.socket_of(r.core.0, self.num_cores) % shards,
            };
            parts[shard].push(r);
        }
        parts
    }

    /// The stage's worker loop: consume jobs in FIFO order until the channel
    /// closes, then hand the driver (and the stage's busy time) back.
    fn run(
        mut self,
        jobs: channel::Receiver<DriverJob>,
        ledgers: mpsc::Sender<QuantumLedger>,
    ) -> (Driver, Duration) {
        let mut busy = Duration::ZERO;
        while let Some(job) = jobs.recv() {
            let start = Instant::now(); // lint:allow(wall-clock) — occupancy accounting only; never feeds back into simulated state
            match job {
                DriverJob::Batch(events) => {
                    let charges = self.driver.ingest_deferred(events, self.num_cores);
                    let records = self.driver.read_records();
                    if let Some(mirror) = self.mirror.as_mut() {
                        // The mirror sees the full batch in driver order —
                        // exactly what an inline detector would see — so its
                        // aggregates are the inline aggregates.
                        mirror.process(&records);
                    }
                    let aggs = self.mirror.as_ref().map(|m| m.line_aggregates());
                    let parts = self.route(records);
                    // Decide lossy drops before the ledger goes out, so the
                    // kept count it reports (and the machine prices) is
                    // final. Drops are only allowed while the mirror is
                    // retired: the mirror must see every record the shards
                    // see, or live rates and the final report would diverge.
                    let mut kept_parts: Vec<Option<Vec<HitmRecord>>> =
                        Vec::with_capacity(parts.len());
                    let mut kept = 0usize;
                    let mut dropped = 0u64;
                    for (shard, part) in parts.into_iter().enumerate() {
                        if part.is_empty() {
                            kept_parts.push(None);
                            continue;
                        }
                        if self.lossy && self.mirror.is_none() && self.shard_jobs[shard].is_full() {
                            // The shard has lagged a full channel behind:
                            // model a PEBS overflow. The detector never sees
                            // the sub-batch, so its cost is not charged
                            // either.
                            dropped += part.len() as u64;
                            kept_parts.push(None);
                            continue;
                        }
                        kept += part.len();
                        kept_parts.push(Some(part));
                    }
                    if dropped > 0 {
                        self.driver.note_lagging_drops(dropped);
                    }
                    // Ledger first: the machine can settle the boundary while
                    // this stage is still handing sub-batches to the shards.
                    // A dead ledger channel just means the session was
                    // dropped mid-run; keep draining so the jobs channel
                    // closes cleanly.
                    let _ = ledgers.send(QuantumLedger {
                        charges,
                        records: kept,
                        events_dropped: self.driver.stats().events_dropped,
                        aggs,
                        flushed: Vec::new(),
                    });
                    for (shard, part) in kept_parts.into_iter().enumerate() {
                        if let Some(records) = part {
                            let outcome = self.shard_jobs[shard].send(DetectorJob { records });
                            debug_assert_eq!(
                                outcome,
                                SendOutcome::Sent,
                                "shard worker outlives the driver stage"
                            );
                        }
                    }
                }
                DriverJob::RepairAttached => {
                    self.mirror = None;
                }
                DriverJob::Finish => {
                    self.driver.flush();
                    let flushed = self.driver.read_records();
                    let _ = ledgers.send(QuantumLedger {
                        charges: ChargeLedger::default(),
                        records: 0,
                        events_dropped: self.driver.stats().events_dropped,
                        aggs: None,
                        flushed,
                    });
                    busy += start.elapsed();
                    break;
                }
            }
            busy += start.elapsed();
        }
        (self.driver, busy)
    }
}

/// A settled ledger's observer payload, staged until the boundary's events
/// are emitted (in quantum order, after `QuantumCompleted`).
struct DueEmission {
    records: usize,
    dropped: u64,
    aggs: Option<Vec<LineAgg>>,
}

/// The running half of a pipelined session: the stage threads' endpoints and
/// the bounded-lag settlement bookkeeping.
struct PipeStage {
    jobs: channel::Sender<DriverJob>,
    ledgers: mpsc::Receiver<QuantumLedger>,
    driver_worker: JoinHandle<(Driver, Duration)>,
    shard_workers: Vec<JoinHandle<(Detector, Duration)>>,
    /// The configured `driver_lag_quanta`.
    lag: u64,
    /// The boundary index the next `advance` call will run.
    next_quantum: u64,
    /// Boundary indices of batches whose ledgers have not settled yet, in
    /// send order. The front settles once `front + lag <= current boundary`.
    outstanding: VecDeque<u64>,
    /// The mirror aggregates as of the last settled ledger that carried
    /// them: what the armed repair trigger evaluates between batches.
    last_aggs: Vec<LineAgg>,
}

impl PipeStage {
    fn spawn(
        driver: Driver,
        mirror: Option<Detector>,
        detectors: Vec<Detector>,
        config: PipelineConfig,
        topology: Topology,
        num_cores: usize,
    ) -> Self {
        // Shard channels are always Backpressure: lossy drops are decided by
        // the driver stage's `is_full` probe (it is the only producer, so
        // the probe cannot race), which keeps delivery lossless whenever the
        // mirror detector is live.
        let mut shard_jobs = Vec::with_capacity(detectors.len());
        let mut shard_workers = Vec::with_capacity(detectors.len());
        for (i, detector) in detectors.into_iter().enumerate() {
            let (jobs_tx, jobs_rx) =
                channel::bounded(config.capacity, OverflowPolicy::Backpressure);
            let worker = std::thread::Builder::new()
                .name(format!("laser-detector-{i}"))
                .spawn(move || detector_worker(detector, jobs_rx))
                .expect("spawn detector stage worker"); // lint:allow(panic) — thread spawn fails only on resource exhaustion; there is no graceful fallback
            shard_jobs.push(jobs_tx);
            shard_workers.push(worker);
        }
        // The batch channel must hold at least lag + 1 quanta so a full
        // credit window never blocks the machine on its own backpressure.
        let depth = config.capacity.max(config.driver_lag_quanta + 1);
        let (jobs, jobs_rx) = channel::bounded(depth, OverflowPolicy::Backpressure);
        let (ledgers_tx, ledgers) = mpsc::channel();
        let stage = DriverStageWorker {
            driver,
            mirror,
            shard_jobs,
            routing: config.routing,
            topology,
            num_cores,
            lossy: config.lossy,
        };
        let driver_worker = std::thread::Builder::new()
            .name("laser-driver".into())
            .spawn(move || stage.run(jobs_rx, ledgers_tx))
            .expect("spawn driver stage worker"); // lint:allow(panic) — thread spawn fails only on resource exhaustion; there is no graceful fallback
        PipeStage {
            jobs,
            ledgers,
            driver_worker,
            shard_workers,
            lag: config.driver_lag_quanta as u64,
            next_quantum: 0,
            outstanding: VecDeque::new(),
            last_aggs: Vec::new(),
        }
    }
}

/// An in-flight LASER run: application, driver, detector, observer and
/// (optionally) repair, as one owned value.
pub struct LaserSession {
    config: LaserConfig,
    machine: Machine,
    /// The driver, when it runs inline. `None` while a pipelined session's
    /// driver stage owns it; [`LaserSession::finish`] reclaims it.
    driver: Option<Driver>,
    /// The detector, when it runs inline. `None` while a pipelined session's
    /// worker owns it; [`LaserSession::finish`] reclaims it.
    detector: Option<Detector>,
    /// The worker-thread driver/detector stages of a pipelined session.
    pipe: Option<PipeStage>,
    /// Whether an observer was attached at build time. Events are not even
    /// constructed when this is false, so unobserved runs (every legacy entry
    /// point) pay nothing for the event stream.
    observed: bool,
    observer: Box<dyn Observer>,
    workload: String,
    num_cores: usize,
    max_steps: u64,
    detector_cycles: u64,
    /// PMU drop count already reported through `RecordBatch` events.
    reported_dropped: u64,
    repair: Option<RepairSummary>,
    /// Wall time the machine thread spent inside `run_quantum` (pipelined
    /// sessions only; inline runs skip the measurement entirely).
    machine_busy: Duration,
    /// Per-stage busy times, filled in when a pipelined session winds down.
    occupancy: Option<StageOccupancy>,
}

impl fmt::Debug for LaserSession {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("LaserSession")
            .field("config", &self.config)
            .field("machine", &self.machine)
            .field("driver", &self.driver)
            .field("detector", &self.detector)
            .field("pipelined", &self.pipe.is_some())
            .field("workload", &self.workload)
            .field("num_cores", &self.num_cores)
            .field("max_steps", &self.max_steps)
            .field("detector_cycles", &self.detector_cycles)
            .field("repair", &self.repair)
            .finish_non_exhaustive()
    }
}

impl LaserSession {
    /// Set up a run of `image` under LASER on a machine with `machine_config`.
    ///
    /// Legacy entry point: delegates to [`SessionBuilder`], which also takes
    /// an [`Observer`].
    pub fn new(config: LaserConfig, image: &WorkloadImage, machine_config: MachineConfig) -> Self {
        SessionBuilder::new()
            .config(config)
            .machine(machine_config)
            .build(image)
    }

    /// The machine being monitored.
    pub fn machine(&self) -> &Machine {
        &self.machine
    }

    /// The detector's live state, when the detector runs inline. A pipelined
    /// session's detector lives on its worker thread, so this is `None`
    /// until [`LaserSession::finish`] reclaims it.
    pub fn detector(&self) -> Option<&Detector> {
        self.detector.as_ref()
    }

    /// Whether the detector stage runs pipelined on a worker thread.
    pub fn is_pipelined(&self) -> bool {
        self.pipe.is_some()
    }

    /// Cycles the detector process has consumed so far.
    pub fn detector_cycles(&self) -> u64 {
        self.detector_cycles
    }

    /// Whether LASERREPAIR has been attached.
    pub fn repair_triggered(&self) -> bool {
        self.repair.is_some()
    }

    /// Send one event to the observer.
    fn emit(&mut self, event: LaserEvent) -> ControlFlow<StopReason> {
        self.observer.on_event(&event)
    }

    /// The mean cost of this run's HITM events relative to a local one.
    ///
    /// The paper's repair trigger is a threshold on the false-sharing *event
    /// rate*, calibrated to a single socket where every HITM costs the same.
    /// On a multi-socket part each cross-socket HITM is 2–3× dearer — and
    /// therefore *rarer per second*, because the contended line ping-pongs
    /// more slowly — so a raw event-rate trigger under-fires exactly where
    /// repair pays most. Weighting the trigger by this factor makes it a
    /// threshold on the *cost* of the false sharing, which is what repair
    /// recovers. On a single-socket topology the factor is exactly 1.0, so
    /// flat runs are byte-identical to the pre-topology trigger.
    fn hitm_cost_factor(&self) -> f64 {
        let stats = self.machine.stats();
        let share = stats.remote_hitm_share();
        if share == 0.0 {
            return 1.0;
        }
        let local = self.machine.latency().hitm.max(1) as f64;
        let remote = self.machine.topology().remote_latency().remote_hitm as f64;
        1.0 + share * (remote / local - 1.0)
    }

    /// The repair trigger threshold with the topology cost weighting applied
    /// (see [`LaserSession::hitm_cost_factor`]). Evaluated on the machine
    /// thread at the batch's charge point, so inline and pipelined runs use
    /// the same value.
    fn effective_repair_threshold(&self) -> f64 {
        self.config.repair_rate_threshold / self.hitm_cost_factor()
    }

    /// Charge `cycles` of detector work to the machine, spread over the
    /// cores. Integer division would silently drop `cycles % num_cores` — on
    /// small batches that rounds the whole charge down to zero — so the
    /// remainder is distributed one cycle each to the first cores, keeping
    /// the total charged exactly `cycles` (the same policy as the driver's
    /// record-copy charging).
    fn charge_detector_cycles(&mut self, cycles: u64) {
        self.detector_cycles += cycles;
        let per_core = cycles / self.num_cores as u64;
        if per_core > 0 {
            self.machine.charge_all_cores(per_core);
        }
        let remainder = (cycles % self.num_cores as u64) as usize;
        for core in 0..remainder {
            self.machine.charge_cycles(CoreId(core), 1);
        }
    }

    /// Run one poll quantum: `poll_interval_steps` application instructions,
    /// one driver service pass, one detector batch, and — when the
    /// false-sharing rate crosses the threshold — the repair attachment
    /// decision. The quantum is reported to the session's [`Observer`] as
    /// [`LaserEvent`]s; if the observer breaks, the quantum's remaining
    /// events are skipped and the session reports [`SessionStatus::Stopped`].
    /// Every event is emitted *after* the work it describes, so a stopped
    /// session is always in a consistent state (a later
    /// [`LaserSession::finish`] never undercounts).
    ///
    /// In a pipelined session the driver stage services the batch on its own
    /// thread and the detector shards consume the routed records on theirs;
    /// at `driver_lag_quanta` 0 the event order, payloads and machine
    /// charging are identical to an inline run (see the
    /// [module docs](self)).
    ///
    /// # Errors
    /// Returns an error if the machine exhausts its step budget.
    pub fn advance(&mut self) -> Result<SessionStatus, LaserError> {
        let steps_before = self.machine.steps();
        let piped = self.pipe.is_some();
        let quantum = if piped {
            let start = Instant::now(); // lint:allow(wall-clock) — occupancy accounting only; never feeds back into simulated state
            let quantum = self.machine.run_quantum(self.config.poll_interval_steps);
            self.machine_busy += start.elapsed();
            quantum
        } else {
            self.machine.run_quantum(self.config.poll_interval_steps)
        };
        let status = quantum.status;
        // Capture the quantum event *before* the driver charges interrupt and
        // copy overhead, matching the inline emission point.
        let quantum_event = self.observed.then(|| LaserEvent::QuantumCompleted {
            steps: self.machine.steps() - steps_before,
            cycles: self.machine.cycles(),
        });

        let flow = if piped {
            self.advance_piped(quantum.events, quantum_event)
        } else {
            self.advance_inline(quantum.events, quantum_event)
        };
        if let ControlFlow::Break(reason) = flow {
            return Ok(SessionStatus::Stopped(reason));
        }

        if status == RunStatus::Running && self.machine.steps() >= self.max_steps {
            return Err(LaserError::Machine(MachineError::MaxStepsExceeded {
                steps: self.max_steps,
            }));
        }
        Ok(match status {
            RunStatus::Running => SessionStatus::Running,
            RunStatus::Done => SessionStatus::Done,
        })
    }

    /// The inline quantum boundary: service the PMU synchronously, then run
    /// the detector stage on the calling thread.
    fn advance_inline(
        &mut self,
        events: Vec<HitmEvent>,
        quantum_event: Option<LaserEvent>,
    ) -> ControlFlow<StopReason> {
        let driver = self.driver.as_mut().expect("inline stage owns driver"); // lint:allow(panic) — stage mode is fixed at construction; inline mode always owns the driver
        driver.ingest(events, &mut self.machine);
        if let Some(event) = quantum_event {
            self.emit(event)?;
        }
        let records = self
            .driver
            .as_mut()
            .expect("inline stage owns driver") // lint:allow(panic) — stage mode is fixed at construction; inline mode always owns the driver
            .read_records();
        self.dispatch_inline(records)
    }

    /// The pipelined quantum boundary: enqueue the raw batch for the driver
    /// stage, settle every charge ledger that has come due under the
    /// bounded-lag credit scheme, emit the boundary's events in quantum
    /// order, and run the pre-armed repair trigger off the latest mirror
    /// aggregates.
    fn advance_piped(
        &mut self,
        events: Vec<HitmEvent>,
        quantum_event: Option<LaserEvent>,
    ) -> ControlFlow<StopReason> {
        let boundary = {
            let pipe = self.pipe.as_mut().expect("piped stage"); // lint:allow(panic) — stage mode is fixed at construction; piped mode always has a pipe
            let boundary = pipe.next_quantum;
            pipe.next_quantum += 1;
            boundary
        };
        if !events.is_empty() {
            let pipe = self.pipe.as_mut().expect("piped stage"); // lint:allow(panic) — stage mode is fixed at construction; piped mode always has a pipe
            let outcome = pipe.jobs.send(DriverJob::Batch(events));
            debug_assert_eq!(
                outcome,
                SendOutcome::Sent,
                "driver stage outlives the session"
            );
            pipe.outstanding.push_back(boundary);
        }
        let due = self.settle_due(boundary);

        if let Some(event) = quantum_event {
            self.emit(event)?;
        }
        for emission in due {
            if emission.records > 0 && self.observed {
                self.emit(LaserEvent::RecordBatch {
                    n: emission.records,
                    dropped: emission.dropped,
                })?;
                let lines = detect::line_rates_from(
                    emission.aggs.as_deref().unwrap_or(&[]),
                    self.machine.elapsed_benchmark_seconds(),
                );
                self.emit(LaserEvent::DetectionUpdate {
                    lines,
                    remote_hitm_share: self.machine.stats().remote_hitm_share(),
                })?;
            }
        }

        if self.config.enable_repair && self.repair.is_none() {
            // Pre-armed trigger: evaluated every boundary against the last
            // settled mirror aggregates (rates decay as elapsed time grows),
            // exactly as the inline stage re-evaluates its detector. No
            // round-trip to the workers is involved.
            let elapsed = self.machine.elapsed_benchmark_seconds();
            let threshold = self.effective_repair_threshold();
            let pcs = {
                let pipe = self.pipe.as_ref().expect("piped stage"); // lint:allow(panic) — stage mode is fixed at construction; piped mode always has a pipe
                detect::trigger_pcs_from(&pipe.last_aggs, elapsed, threshold)
            };
            if let Some(attached) = self.attach_repair_from_pcs(&pcs) {
                if self.observed {
                    self.emit(attached)?;
                } else {
                    // Unobserved and attached: nothing needs the mirror's
                    // aggregates any more; let the driver stage retire it.
                    let pipe = self.pipe.as_ref().expect("piped stage"); // lint:allow(panic) — stage mode is fixed at construction; piped mode always has a pipe
                    let outcome = pipe.jobs.send(DriverJob::RepairAttached);
                    debug_assert_eq!(
                        outcome,
                        SendOutcome::Sent,
                        "driver stage outlives the session"
                    );
                }
            }
        }
        ControlFlow::Continue(())
    }

    /// Settle every outstanding ledger that has come due at `boundary`
    /// (front quantum + lag ≤ boundary): apply its charges and detector
    /// pricing to the machine, update the drop watermark and the mirror
    /// aggregates, and stage its observer payload for emission.
    fn settle_due(&mut self, boundary: u64) -> Vec<DueEmission> {
        let mut due = Vec::new();
        loop {
            let ready = {
                let pipe = self.pipe.as_ref().expect("piped stage"); // lint:allow(panic) — stage mode is fixed at construction; piped mode always has a pipe
                matches!(pipe.outstanding.front(), Some(&q) if q + pipe.lag <= boundary)
            };
            if !ready {
                return due;
            }
            let ledger = self.recv_ledger();
            self.pipe
                .as_mut()
                .expect("piped stage") // lint:allow(panic) — stage mode is fixed at construction; piped mode always has a pipe
                .outstanding
                .pop_front();
            due.push(self.settle_ledger(ledger));
        }
    }

    /// Apply one settled ledger to the machine. The ledger's charges commute
    /// (the scheduler's pick depends only on the final per-core clocks), so
    /// applying them here in one shot lands the machine in exactly the state
    /// synchronous per-quantum charging would have produced.
    fn settle_ledger(&mut self, ledger: QuantumLedger) -> DueEmission {
        ledger.charges.apply(&mut self.machine);
        if ledger.records > 0 {
            // The detector's per-record cost is configuration, not state, so
            // the machine prices the batch at the inline charge point while
            // the semantic processing overlaps on the workers. The formula
            // is shared with `Detector::processing_cycles`; the two sites
            // must agree exactly for lag=0 runs to stay byte-identical.
            let cycles = detect::batch_processing_cycles(
                self.config.detector_cycles_per_record,
                ledger.records,
            );
            self.charge_detector_cycles(cycles);
        }
        let dropped = ledger.events_dropped - self.reported_dropped;
        if ledger.records > 0 {
            self.reported_dropped = ledger.events_dropped;
        }
        let emission_aggs = if self.observed {
            ledger.aggs.clone()
        } else {
            None
        };
        if let Some(aggs) = ledger.aggs {
            self.pipe.as_mut().expect("piped stage").last_aggs = aggs; // lint:allow(panic) — stage mode is fixed at construction; piped mode always has a pipe
        }
        DueEmission {
            records: ledger.records,
            dropped,
            aggs: emission_aggs,
        }
    }

    /// Block for the driver stage's next ledger. The stage holds its ledger
    /// sender for as long as the session holds its job sender, so a
    /// disconnect here means a stage worker died mid-run — in that case its
    /// own panic is the real diagnostic, so shut the stages down, join them,
    /// and re-raise the first panic payload rather than masking it with a
    /// channel error (the campaign runner's per-cell `catch_unwind` then
    /// records the true message).
    fn recv_ledger(&mut self) -> QuantumLedger {
        let received = {
            let pipe = self.pipe.as_ref().expect("piped stage"); // lint:allow(panic) — stage mode is fixed at construction; piped mode always has a pipe
                                                                 // Yield-spin before parking: at lag 0 the machine waits for the
                                                                 // driver stage once per quantum, and a bounded yield loop is
                                                                 // much cheaper than a futex park/unpark round-trip — on a
                                                                 // single hardware thread each yield hands the timeslice
                                                                 // straight to the driver stage, and on a multi-core host the
                                                                 // ledger usually lands within a few yields.
            let mut received = None;
            for _ in 0..64 {
                match pipe.ledgers.try_recv() {
                    Ok(ledger) => {
                        received = Some(Ok(ledger));
                        break;
                    }
                    Err(mpsc::TryRecvError::Empty) => std::thread::yield_now(),
                    Err(mpsc::TryRecvError::Disconnected) => {
                        received = Some(Err(()));
                        break;
                    }
                }
            }
            match received {
                Some(Ok(ledger)) => Ok(ledger),
                Some(Err(())) => Err(()),
                None => pipe.ledgers.recv().map_err(|_| ()),
            }
        };
        match received {
            Ok(ledger) => ledger,
            Err(_) => {
                let pipe = self.pipe.take().expect("piped stage"); // lint:allow(panic) — stage mode is fixed at construction; piped mode always has a pipe
                drop(pipe.jobs);
                let mut first_panic = None;
                if let Err(payload) = pipe.driver_worker.join() {
                    first_panic.get_or_insert(payload);
                }
                for worker in pipe.shard_workers {
                    if let Err(payload) = worker.join() {
                        first_panic.get_or_insert(payload);
                    }
                }
                match first_panic {
                    Some(payload) => std::panic::resume_unwind(payload),
                    None => panic!("pipeline stage worker exited before its channel closed"), // lint:allow(panic) — a worker exiting with its channel open is a protocol bug worth crashing the cell
                }
            }
        }
    }

    /// The inline detector stage: process the batch, charge its cost, report
    /// it, and run the repair trigger — all on the calling thread.
    fn dispatch_inline(&mut self, records: Vec<HitmRecord>) -> ControlFlow<StopReason> {
        if !records.is_empty() {
            let detector = self.detector.as_mut().expect("inline stage owns detector"); // lint:allow(panic) — stage mode is fixed at construction; inline mode always owns the detector
            detector.process(&records);
            let cycles = detector.processing_cycles(records.len());
            self.charge_detector_cycles(cycles);

            if self.observed {
                let batch = self.record_batch_event(records.len());
                self.emit(batch)?;

                let update = LaserEvent::DetectionUpdate {
                    lines: self
                        .detector
                        .as_ref()
                        .expect("inline stage owns detector") // lint:allow(panic) — stage mode is fixed at construction; inline mode always owns the detector
                        .line_rates(self.machine.elapsed_benchmark_seconds()),
                    remote_hitm_share: self.machine.stats().remote_hitm_share(),
                };
                self.emit(update)?;
            }
        }

        if self.config.enable_repair && self.repair.is_none() {
            let elapsed = self.machine.elapsed_benchmark_seconds();
            let threshold = self.effective_repair_threshold();
            let pcs = self
                .detector
                .as_ref()
                .expect("inline stage owns detector") // lint:allow(panic) — stage mode is fixed at construction; inline mode always owns the detector
                .repair_trigger_pcs(elapsed, threshold);
            if let Some(attached) = self.attach_repair_from_pcs(&pcs) {
                if self.observed {
                    self.emit(attached)?;
                }
            }
        }
        ControlFlow::Continue(())
    }

    /// Build the `RecordBatch` event for a batch of `n` records, advancing
    /// the reported-drop watermark. Inline-stage only (the pipelined stage's
    /// drop counts ride in the ledgers).
    fn record_batch_event(&mut self, n: usize) -> LaserEvent {
        let dropped_total = self
            .driver
            .as_ref()
            .expect("inline stage owns driver") // lint:allow(panic) — only inline dispatch and post-reclaim finish build this event, and both own the driver
            .stats()
            .events_dropped;
        let event = LaserEvent::RecordBatch {
            n,
            dropped: dropped_total - self.reported_dropped,
        };
        self.reported_dropped = dropped_total;
        event
    }

    /// Attach the SSB instrumentation if `pcs` (the lines over the repair
    /// trigger threshold) yields a profitable plan. Returns the event to
    /// report on attachment.
    fn attach_repair_from_pcs(&mut self, pcs: &[Pc]) -> Option<LaserEvent> {
        if pcs.is_empty() {
            return None;
        }
        let plan = RepairPlan::analyze(
            self.machine.program(),
            pcs,
            self.config.min_stores_per_flush,
            self.config.max_plan_blocks,
        )?;
        if !plan.profitable {
            return None;
        }
        let hook = SsbHook::new(plan.clone(), self.num_cores);
        let event = LaserEvent::RepairAttached {
            at_cycle: self.machine.cycles(),
            instrumented_blocks: plan.instrumented_blocks.len(),
            flush_blocks: plan.flush_blocks.len(),
            ssb_stores: plan.ssb_stores.len(),
            estimated_stores_per_flush: plan.estimated_stores_per_flush,
        };
        self.repair = Some(RepairSummary {
            triggered_at_cycle: self.machine.cycles(),
            plan,
            stats: hook.stats(),
        });
        self.machine.attach_hook(Box::new(hook));
        Some(event)
    }

    /// Drive the session to completion.
    ///
    /// # Errors
    /// Returns [`LaserError::Machine`] if the machine exhausts its step
    /// budget, and [`LaserError::Stopped`] if the session's [`Observer`]
    /// cancelled the run.
    pub fn run(mut self) -> Result<LaserOutcome, LaserError> {
        loop {
            match self.advance()? {
                SessionStatus::Running => {}
                SessionStatus::Done => return Ok(self.finish()),
                SessionStatus::Stopped(reason) => return Err(LaserError::Stopped(reason)),
            }
        }
    }

    /// Wind down the pipelined stages: settle every outstanding ledger
    /// (emitting its deferred events), ask the driver stage to flush, close
    /// the channels so every worker drains its queue in FIFO order and
    /// exits, then reclaim the driver and fold the shard detectors back into
    /// one ([`Detector::absorb`], shard order) for the final inline flush.
    /// Under line-hash routing the shards' state is disjoint, so the merged
    /// detector is exactly the one an inline run would hold here. Returns
    /// the final flush's records, still unprocessed.
    fn wind_down_pipeline(&mut self) -> Vec<HitmRecord> {
        // Settle everything still outstanding, lag or no lag. The run is
        // over; a Break during settlement has nothing to cancel.
        let mut due = Vec::new();
        while self
            .pipe
            .as_ref()
            .expect("piped stage") // lint:allow(panic) — stage mode is fixed at construction; piped mode always has a pipe
            .outstanding
            .front()
            .is_some()
        {
            let ledger = self.recv_ledger();
            self.pipe
                .as_mut()
                .expect("piped stage") // lint:allow(panic) — stage mode is fixed at construction; piped mode always has a pipe
                .outstanding
                .pop_front();
            due.push(self.settle_ledger(ledger));
        }
        for emission in due {
            if emission.records > 0 && self.observed {
                let _ = self.emit(LaserEvent::RecordBatch {
                    n: emission.records,
                    dropped: emission.dropped,
                });
                let lines = detect::line_rates_from(
                    emission.aggs.as_deref().unwrap_or(&[]),
                    self.machine.elapsed_benchmark_seconds(),
                );
                let _ = self.emit(LaserEvent::DetectionUpdate {
                    lines,
                    remote_hitm_share: self.machine.stats().remote_hitm_share(),
                });
            }
        }

        // Ask the driver stage for its final flush, then close the channels.
        let outcome = self
            .pipe
            .as_ref()
            .expect("piped stage") // lint:allow(panic) — stage mode is fixed at construction; piped mode always has a pipe
            .jobs
            .send(DriverJob::Finish);
        debug_assert_eq!(
            outcome,
            SendOutcome::Sent,
            "driver stage outlives the session"
        );
        let flushed = self.recv_ledger().flushed;

        let pipe = self.pipe.take().expect("piped stage"); // lint:allow(panic) — stage mode is fixed at construction; piped mode always has a pipe
        drop(pipe.jobs);
        let mut first_panic = None;
        let mut driver_busy = Duration::ZERO;
        match pipe.driver_worker.join() {
            Ok((driver, busy)) => {
                self.driver = Some(driver);
                driver_busy = busy;
            }
            // Re-raise the worker's own panic payload: it is the real
            // diagnostic, and per-cell panic isolation depends on it.
            Err(payload) => {
                first_panic.get_or_insert(payload);
            }
        }
        let mut detectors: Vec<Detector> = Vec::with_capacity(pipe.shard_workers.len());
        let mut detector_busy = Duration::ZERO;
        for worker in pipe.shard_workers {
            match worker.join() {
                Ok((detector, busy)) => {
                    detectors.push(detector);
                    detector_busy = detector_busy.max(busy);
                }
                Err(payload) => {
                    first_panic.get_or_insert(payload);
                }
            }
        }
        if let Some(payload) = first_panic {
            std::panic::resume_unwind(payload);
        }
        let mut merged = detectors.remove(0);
        for shard in detectors {
            merged.absorb(shard);
        }
        self.detector = Some(merged);
        self.occupancy = Some(StageOccupancy {
            machine_busy: self.machine_busy,
            driver_busy,
            detector_busy,
        });
        flushed
    }

    /// Flush what is still buffered in the PEBS hardware, fold the repair
    /// hook's final counters into the summary, and produce the outcome.
    ///
    /// The final flush batch is charged to the machine exactly like an
    /// [`advance`](LaserSession::advance) batch — the detector is still
    /// sharing the chip while it drains the device — so the outcome's cycle
    /// count accounts for every record the detector processed. A pipelined
    /// session settles its outstanding ledgers and reclaims the driver and
    /// detector from the worker stages first, so the final flush (and the
    /// report) sees every streamed batch.
    pub fn finish(mut self) -> LaserOutcome {
        let mut records = if self.pipe.is_some() {
            self.wind_down_pipeline()
        } else {
            Vec::new()
        };

        let driver = self.driver.as_mut().expect("driver reclaimed"); // lint:allow(panic) — wind_down_pipeline() reclaims the driver before any caller can reach this point
        driver.poll(&mut self.machine);
        driver.flush();
        records.extend(driver.read_records());
        if !records.is_empty() {
            let detector = self.detector.as_mut().expect("detector reclaimed"); // lint:allow(panic) — shutdown() reclaims the detector before any caller can reach this point
            detector.process(&records);
            let cycles = detector.processing_cycles(records.len());
            self.charge_detector_cycles(cycles);

            if self.observed {
                let batch = self.record_batch_event(records.len());
                // The run is complete: a Break here has nothing left to cancel.
                let _ = self.emit(batch);
            }
        }

        if let Some(summary) = self.repair.as_mut() {
            // The hook owns its statistics; read them back out of the machine.
            if let Some(ssb) = self
                .machine
                .hook()
                .and_then(|h| h.as_any())
                .and_then(|a| a.downcast_ref::<SsbHook>())
            {
                summary.stats = ssb.stats();
            }
        }

        if self.observed {
            let finished = LaserEvent::Finished {
                steps: self.machine.steps(),
                cycles: self.machine.cycles(),
            };
            let _ = self.emit(finished);
        }

        let elapsed = self.machine.elapsed_benchmark_seconds();
        // lint:allow(panic) — shutdown() reclaims the detector before any caller can reach this point
        let mut report = self.detector.as_ref().expect("detector reclaimed").report(
            &self.workload,
            elapsed,
            self.config.rate_threshold_hitm_per_sec,
            self.repair.is_some(),
        );
        // The detector only sees sampled records; the ground-truth socket
        // split comes from the machine.
        report.remote_hitm_share = self.machine.stats().remote_hitm_share();
        LaserOutcome {
            report,
            run: self.machine.result(),
            // lint:allow(panic) — wind_down_pipeline() reclaims the driver before any caller can reach this point
            driver_stats: self.driver.as_ref().expect("driver reclaimed").stats(),
            detector_cycles: self.detector_cycles,
            repair: self.repair,
            elapsed_benchmark_seconds: elapsed,
            stage_occupancy: self.occupancy,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observe::{BudgetObserver, CellBudget, EventLog};
    use crate::system::Laser;
    use laser_isa::inst::{Operand, Reg};
    use laser_isa::ProgramBuilder;
    use laser_machine::ThreadSpec;

    /// Two threads false-sharing adjacent counters in one cache line, using
    /// the memory-destination increment compilers emit for `counter[i]++`.
    fn contended_image(name: &str, iters: u64) -> WorkloadImage {
        let mut b = ProgramBuilder::new(name);
        b.source("xthread.c", 12);
        let entry = b.block("entry");
        let body = b.block("body");
        let exit = b.block("exit");
        b.switch_to(entry);
        b.movi(Reg(2), 0);
        b.jump(body);
        b.switch_to(body);
        b.mem_add(Reg(0), 0, Operand::Imm(1), 8);
        b.source("xthread.c", 13);
        b.addi(Reg(2), Reg(2), 1);
        b.cmp_lt(Reg(3), Reg(2), Operand::Imm(iters));
        b.branch(Reg(3), body, exit);
        b.switch_to(exit);
        b.halt();
        let program = b.finish();
        let mut image = laser_machine::WorkloadImage::new(name, program);
        let base = image.layout_mut().heap_alloc(64, 64).unwrap();
        image.push_thread(ThreadSpec::new("t0", "entry").with_reg(Reg(0), base));
        image.push_thread(ThreadSpec::new("t1", "entry").with_reg(Reg(0), base + 8));
        image
    }

    /// The whole point of the session refactor: a full LASER run is one owned
    /// value that can move across threads.
    #[test]
    fn session_and_its_pieces_are_send() {
        fn assert_send<T: Send>() {}
        assert_send::<LaserSession>();
        assert_send::<Machine>();
        assert_send::<Driver>();
        assert_send::<Detector>();
        assert_send::<LaserOutcome>();
    }

    #[test]
    fn session_run_on_a_worker_thread_matches_inline_run() {
        let image = contended_image("xthread", 1500);

        let config = LaserConfig::default();
        let inline = LaserSession::new(config.clone(), &image, MachineConfig::default())
            .run()
            .unwrap();

        let session = LaserSession::new(config, &image, MachineConfig::default());
        let moved = std::thread::spawn(move || session.run().unwrap())
            .join()
            .unwrap();

        assert_eq!(inline.cycles(), moved.cycles());
        assert_eq!(inline.report, moved.report);
        assert_eq!(inline.detector_cycles, moved.detector_cycles);
    }

    /// Regression test for two charging bugs: `advance` used to drop the
    /// `cycles % num_cores` remainder when spreading detector overhead (the
    /// same bug class as the driver's record-copy charging), and `finish`
    /// accumulated the final flush batch's detector cycles without charging
    /// the cores at all. Every injected cycle must now be accounted for:
    /// driver overhead plus detector cycles, exactly.
    #[test]
    fn detector_overhead_is_charged_exactly_including_the_final_flush() {
        let image = contended_image("exact", 3000);
        // A per-record cost that is odd and coprime with the core count so
        // batch charges almost always leave a remainder.
        let config = LaserConfig {
            detector_cycles_per_record: 37,
            ..LaserConfig::detection_only()
        };
        let outcome = Laser::builder().config(config).build(&image).run().unwrap();
        assert!(outcome.detector_cycles > 0);
        // The final flush processed records too: the detector's total must be
        // per-record cost times *all* sampled records, not just the polled
        // batches.
        assert_eq!(
            outcome.detector_cycles,
            outcome.driver_stats.records_sampled * 37
        );
        assert_eq!(
            outcome.run.stats.injected_overhead_cycles,
            outcome.driver_stats.overhead_cycles + outcome.detector_cycles,
            "total charged must equal driver overhead + detector cycles"
        );
    }

    // Builder/legacy-constructor outcome equivalence is pinned by the broader
    // integration test in `tests/end_to_end.rs`, which covers all four entry
    // points under both configurations on a real workload.

    #[test]
    fn stopped_session_can_still_finish_without_undercounting() {
        // An observer that breaks on the first RecordBatch: the batch must
        // already be processed and charged when the stop surfaces, so a
        // subsequent finish() yields an outcome whose detector accounting
        // still balances.
        let image = contended_image("stopfin", 6000);
        let config = LaserConfig {
            detector_cycles_per_record: 37,
            ..LaserConfig::detection_only()
        };
        let mut session = Laser::builder()
            .config(config)
            .observer(|event: &LaserEvent| {
                if let LaserEvent::RecordBatch { .. } = event {
                    return ControlFlow::Break(StopReason::Cancelled("first batch".into()));
                }
                ControlFlow::Continue(())
            })
            .build(&image);
        loop {
            match session.advance().unwrap() {
                SessionStatus::Running => {}
                SessionStatus::Done => panic!("observer should stop before completion"),
                SessionStatus::Stopped(reason) => {
                    assert_eq!(reason, StopReason::Cancelled("first batch".into()));
                    break;
                }
            }
        }
        let outcome = session.finish();
        assert!(outcome.driver_stats.records_sampled > 0);
        assert_eq!(
            outcome.detector_cycles,
            outcome.driver_stats.records_sampled * 37,
            "every sampled record must be processed and charged exactly once"
        );
        assert_eq!(
            outcome.run.stats.injected_overhead_cycles,
            outcome.driver_stats.overhead_cycles + outcome.detector_cycles
        );
    }

    #[test]
    fn observer_stream_narrates_the_run_and_does_not_perturb_it() {
        let image = contended_image("events", 6000);
        let baseline = Laser::builder().build(&image).run().unwrap();

        let log = EventLog::new();
        let observed = Laser::builder()
            .observer(log.clone())
            .build(&image)
            .run()
            .unwrap();
        // Observation is read-only: the outcome is identical.
        assert_eq!(baseline.cycles(), observed.cycles());
        assert_eq!(baseline.report, observed.report);

        let events = log.events();
        assert!(matches!(events.last(), Some(LaserEvent::Finished { .. })));
        let total_steps: u64 = events
            .iter()
            .filter_map(|e| match e {
                LaserEvent::QuantumCompleted { steps, .. } => Some(*steps),
                _ => None,
            })
            .sum();
        assert_eq!(total_steps, observed.run.steps);
        let batched: u64 = events
            .iter()
            .filter_map(|e| match e {
                LaserEvent::RecordBatch { n, .. } => Some(*n as u64),
                _ => None,
            })
            .sum();
        assert_eq!(batched, observed.driver_stats.records_sampled);
        // This workload contends: the detector's live view reported it before
        // the run ended, and repair attached exactly once.
        assert!(events.iter().any(|e| matches!(
            e,
            LaserEvent::DetectionUpdate { lines, .. } if !lines.is_empty()
        )));
        assert!(observed.repair.is_some(), "repair should trigger");
        assert_eq!(
            events
                .iter()
                .filter(|e| matches!(e, LaserEvent::RepairAttached { .. }))
                .count(),
            1
        );
    }

    #[test]
    fn observer_break_cancels_the_run_mid_flight() {
        let image = contended_image("cancel", 50_000);
        let mut quanta = 0u32;
        let err = Laser::builder()
            .observer(move |event: &LaserEvent| {
                if let LaserEvent::QuantumCompleted { .. } = event {
                    quanta += 1;
                    if quanta >= 2 {
                        return ControlFlow::Break(StopReason::Cancelled("test".into()));
                    }
                }
                ControlFlow::Continue(())
            })
            .build(&image)
            .run()
            .unwrap_err();
        assert_eq!(
            err,
            LaserError::Stopped(StopReason::Cancelled("test".into()))
        );
    }

    #[test]
    fn budget_observer_stops_a_session_at_its_step_budget() {
        let image = contended_image("budget", 50_000);
        let config = LaserConfig::detection_only();
        let limit = config.poll_interval_steps * 3;
        let err = Laser::builder()
            .config(config)
            .observer(BudgetObserver::new(CellBudget::steps(limit)))
            .build(&image)
            .run()
            .unwrap_err();
        match err {
            LaserError::Stopped(StopReason::StepBudget { limit: l, used }) => {
                assert_eq!(l, limit);
                assert!(used > limit);
            }
            other => panic!("expected a step-budget stop, got {other:?}"),
        }
    }

    #[test]
    fn advance_reports_stopped_and_leaves_state_inspectable() {
        let image = contended_image("stopped", 50_000);
        let mut session = Laser::builder()
            .observer(|_: &LaserEvent| {
                ControlFlow::Break(StopReason::Cancelled("immediately".into()))
            })
            .build(&image);
        let status = session.advance().unwrap();
        assert_eq!(
            status,
            SessionStatus::Stopped(StopReason::Cancelled("immediately".into()))
        );
        // The partial run is still inspectable.
        assert!(session.machine().steps() > 0);
        assert!(!session.repair_triggered());
    }

    #[test]
    fn config_topology_deploys_the_machine_on_the_preset() {
        use laser_machine::{ThreadPlacement, TopologySpec};
        // Two threads false-sharing one line, pinned to different sockets:
        // the session must surface the cross-socket share in its live
        // DetectionUpdate events and in the final report.
        let mut image = contended_image("xsock", 4000);
        image.set_thread_placement(ThreadPlacement::RoundRobin);
        let log = EventLog::new();
        let mut session = Laser::builder()
            .config(LaserConfig::detection_only().with_topology(TopologySpec::DualSocket))
            .observer(log.clone())
            .build(&image);
        assert_eq!(session.machine().num_cores(), 8);
        assert_eq!(session.machine().topology().num_sockets(), 2);
        loop {
            match session.advance().unwrap() {
                SessionStatus::Running => {}
                SessionStatus::Done => break,
                SessionStatus::Stopped(r) => panic!("unexpected stop: {r}"),
            }
        }
        let outcome = session.finish();
        let stats = &outcome.run.stats;
        assert!(stats.hitm_remote > 0, "threads sit on different sockets");
        assert_eq!(stats.hitm_remote, stats.hitm_events);
        assert!((outcome.report.remote_hitm_share - 1.0).abs() < 1e-12);
        assert!(log.events().iter().any(|e| matches!(
            e,
            LaserEvent::DetectionUpdate { remote_hitm_share, .. } if *remote_hitm_share > 0.99
        )));
    }

    #[test]
    fn explicit_machine_topology_wins_over_the_config_preset() {
        use laser_machine::{MachineConfig, Topology, TopologySpec};
        let image = contended_image("topoprec", 500);
        let session = Laser::builder()
            .config(LaserConfig::detection_only().with_topology(TopologySpec::DualSocket))
            .machine(MachineConfig {
                num_cores: 16,
                topology: Topology::quad_socket(),
                ..MachineConfig::default()
            })
            .build(&image);
        assert_eq!(session.machine().topology().num_sockets(), 4);
        assert_eq!(session.machine().num_cores(), 16);
    }

    #[test]
    #[should_panic(expected = "invalid machine configuration")]
    fn build_rejects_a_nonsense_latency_model() {
        use laser_machine::{LatencyModel, MachineConfig};
        let image = contended_image("badlat", 100);
        let _ = Laser::builder()
            .machine(MachineConfig {
                latency: LatencyModel {
                    freq_hz: 0,
                    ..LatencyModel::default()
                },
                ..MachineConfig::default()
            })
            .build(&image);
    }

    // ------------------------------------------------------------------
    // Pipelined execution
    // ------------------------------------------------------------------

    #[test]
    fn pipeline_config_defaults_are_a_lossless_double_buffer() {
        let config = PipelineConfig::default();
        assert!(!config.enabled);
        assert_eq!(config.capacity, 2);
        assert!(!config.lossy);
        assert_eq!(config.shards, 1, "single worker unless asked");
        assert_eq!(config.routing, ShardRouting::LineHash);
        assert_eq!(
            config.driver_lag_quanta, 0,
            "lag defaults to 0 so pipelined runs stay byte-identical to inline"
        );
        let on = PipelineConfig::pipelined()
            .with_capacity(0)
            .with_lossy(true)
            .with_shards(0)
            .with_routing(ShardRouting::Socket)
            .with_driver_lag(3);
        assert!(on.enabled);
        assert_eq!(on.capacity, 1, "capacity clamps to at least one batch");
        assert!(on.lossy);
        assert_eq!(on.shards, 1, "shard count clamps to at least one");
        assert_eq!(on.routing, ShardRouting::Socket);
        assert_eq!(on.driver_lag_quanta, 3);
    }

    #[test]
    fn shard_routing_keys_round_trip() {
        for routing in [ShardRouting::LineHash, ShardRouting::Socket] {
            assert_eq!(ShardRouting::parse(routing.key()), Some(routing));
        }
        assert_eq!(ShardRouting::key(ShardRouting::default()), "line");
        assert_eq!(ShardRouting::parse("hash"), None);
    }

    #[test]
    fn pipelined_detection_run_is_byte_identical_to_inline() {
        let image = contended_image("piped", 6000);
        let config = LaserConfig::detection_only();

        let inline = Laser::builder()
            .config(config.clone())
            .build(&image)
            .run()
            .unwrap();
        let piped = Laser::builder()
            .config(config)
            .pipeline(true)
            .build(&image)
            .run()
            .unwrap();

        assert_eq!(inline.cycles(), piped.cycles());
        assert_eq!(inline.run.per_core_cycles, piped.run.per_core_cycles);
        assert_eq!(inline.report, piped.report);
        assert_eq!(inline.detector_cycles, piped.detector_cycles);
        assert_eq!(inline.driver_stats, piped.driver_stats);
        assert_eq!(
            format!("{:?}", inline.report),
            format!("{:?}", piped.report)
        );
    }

    #[test]
    fn pipelined_repair_run_attaches_at_the_same_cycle_as_inline() {
        // With repair enabled the pipeline runs armed quanta in lock-step;
        // the attach point, plan and final outcome must match inline exactly.
        let image = contended_image("piperep", 6000);
        let inline = Laser::builder().build(&image).run().unwrap();
        let piped = Laser::builder().pipeline(true).build(&image).run().unwrap();

        assert!(inline.repair.is_some(), "workload should trigger repair");
        let (a, b) = (
            inline.repair.as_ref().unwrap(),
            piped.repair.as_ref().unwrap(),
        );
        assert_eq!(a.triggered_at_cycle, b.triggered_at_cycle);
        // (Plan sets are HashSets whose Debug order is unstable; compare
        // structurally.)
        assert_eq!(a.plan.instrumented_blocks, b.plan.instrumented_blocks);
        assert_eq!(a.plan.flush_blocks, b.plan.flush_blocks);
        assert_eq!(a.plan.ssb_stores, b.plan.ssb_stores);
        assert_eq!(
            a.plan.estimated_stores_per_flush,
            b.plan.estimated_stores_per_flush
        );
        assert_eq!(a.stats, b.stats);
        assert_eq!(inline.cycles(), piped.cycles());
        assert_eq!(inline.report, piped.report);
        assert_eq!(inline.detector_cycles, piped.detector_cycles);
    }

    #[test]
    fn pipelined_event_stream_is_byte_identical_to_inline() {
        for config in [LaserConfig::detection_only(), LaserConfig::default()] {
            let image = contended_image("pipevents", 6000);
            let inline_log = EventLog::new();
            let inline = Laser::builder()
                .config(config.clone())
                .observer(inline_log.clone())
                .build(&image)
                .run()
                .unwrap();
            let piped_log = EventLog::new();
            let piped = Laser::builder()
                .config(config.clone())
                .pipeline(true)
                .observer(piped_log.clone())
                .build(&image)
                .run()
                .unwrap();
            assert_eq!(inline.cycles(), piped.cycles());
            let (ie, pe) = (inline_log.events(), piped_log.events());
            assert!(!ie.is_empty());
            assert_eq!(ie, pe, "repair={}", config.enable_repair);
            assert_eq!(format!("{ie:?}"), format!("{pe:?}"));
        }
    }

    #[test]
    fn pipelined_session_exposes_stage_and_reclaims_detector() {
        let image = contended_image("reclaim", 1500);
        let mut session = Laser::builder()
            .config(LaserConfig::detection_only())
            .pipeline(true)
            .build(&image);
        assert!(session.is_pipelined());
        assert!(
            session.detector().is_none(),
            "the worker stage owns the detector while the pipeline runs"
        );
        loop {
            match session.advance().unwrap() {
                SessionStatus::Running => {}
                SessionStatus::Done => break,
                SessionStatus::Stopped(r) => panic!("unexpected stop: {r}"),
            }
        }
        let outcome = session.finish();
        assert!(outcome.report.lines.iter().any(|l| l.hitm_records > 0));
    }

    #[test]
    fn pipelined_budget_cancellation_matches_inline() {
        let image = contended_image("pipbudget", 50_000);
        let config = LaserConfig::detection_only();
        let limit = config.poll_interval_steps * 3;
        let run = |pipelined: bool| {
            Laser::builder()
                .config(config.clone())
                .pipeline(pipelined)
                .observer(BudgetObserver::new(CellBudget::steps(limit)))
                .build(&image)
                .run()
                .unwrap_err()
        };
        // Step budgets trip on QuantumCompleted events, which pipelining
        // emits at the same stream position with the same payloads — the
        // stop reason is identical, not merely similar.
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn stopped_pipelined_session_still_finishes_without_undercounting() {
        let image = contended_image("pipstop", 6000);
        let config = LaserConfig {
            detector_cycles_per_record: 37,
            ..LaserConfig::detection_only()
        };
        let mut session = Laser::builder()
            .config(config)
            .pipeline(true)
            .observer(|event: &LaserEvent| {
                if let LaserEvent::RecordBatch { .. } = event {
                    return ControlFlow::Break(StopReason::Cancelled("first batch".into()));
                }
                ControlFlow::Continue(())
            })
            .build(&image);
        loop {
            match session.advance().unwrap() {
                SessionStatus::Running => {}
                SessionStatus::Done => panic!("observer should stop before completion"),
                SessionStatus::Stopped(reason) => {
                    assert_eq!(reason, StopReason::Cancelled("first batch".into()));
                    break;
                }
            }
        }
        let outcome = session.finish();
        assert!(outcome.driver_stats.records_sampled > 0);
        assert_eq!(
            outcome.detector_cycles,
            outcome.driver_stats.records_sampled * 37,
            "every sampled record must be processed and charged exactly once"
        );
        assert_eq!(
            outcome.run.stats.injected_overhead_cycles,
            outcome.driver_stats.overhead_cycles + outcome.detector_cycles
        );
    }

    // ------------------------------------------------------------------
    // Sharded detection
    // ------------------------------------------------------------------

    #[test]
    fn sharded_detection_run_is_byte_identical_to_inline() {
        let image = contended_image("sharded", 6000);
        let config = LaserConfig::detection_only();
        let inline = Laser::builder()
            .config(config.clone())
            .build(&image)
            .run()
            .unwrap();
        for shards in [1, 2, 8] {
            let sharded = Laser::builder()
                .config(config.clone())
                .pipeline_config(PipelineConfig::pipelined().with_shards(shards))
                .build(&image)
                .run()
                .unwrap();
            assert_eq!(inline.cycles(), sharded.cycles(), "shards={shards}");
            assert_eq!(inline.run.per_core_cycles, sharded.run.per_core_cycles);
            assert_eq!(inline.report, sharded.report, "shards={shards}");
            assert_eq!(inline.detector_cycles, sharded.detector_cycles);
            assert_eq!(inline.driver_stats, sharded.driver_stats);
            assert_eq!(
                format!("{:?}", inline.report),
                format!("{:?}", sharded.report),
                "shards={shards}"
            );
        }
    }

    #[test]
    fn sharded_repair_run_attaches_at_the_same_cycle_as_inline() {
        // Lock-step quanta collect one reply per shard and merge before the
        // trigger decision, so the attach point must not move with the shard
        // count.
        let image = contended_image("shardrep", 6000);
        let inline = Laser::builder().build(&image).run().unwrap();
        assert!(inline.repair.is_some(), "workload should trigger repair");
        for shards in [2, 8] {
            let sharded = Laser::builder()
                .pipeline_config(PipelineConfig::pipelined().with_shards(shards))
                .build(&image)
                .run()
                .unwrap();
            let (a, b) = (
                inline.repair.as_ref().unwrap(),
                sharded.repair.as_ref().unwrap(),
            );
            assert_eq!(
                a.triggered_at_cycle, b.triggered_at_cycle,
                "shards={shards}"
            );
            assert_eq!(a.plan.instrumented_blocks, b.plan.instrumented_blocks);
            assert_eq!(a.plan.flush_blocks, b.plan.flush_blocks);
            assert_eq!(a.plan.ssb_stores, b.plan.ssb_stores);
            assert_eq!(a.stats, b.stats);
            assert_eq!(inline.cycles(), sharded.cycles(), "shards={shards}");
            assert_eq!(inline.report, sharded.report);
            assert_eq!(inline.detector_cycles, sharded.detector_cycles);
        }
    }

    #[test]
    fn sharded_event_stream_is_byte_identical_to_inline() {
        for config in [LaserConfig::detection_only(), LaserConfig::default()] {
            let image = contended_image("shardevents", 6000);
            let inline_log = EventLog::new();
            let inline = Laser::builder()
                .config(config.clone())
                .observer(inline_log.clone())
                .build(&image)
                .run()
                .unwrap();
            for shards in [2, 8] {
                let sharded_log = EventLog::new();
                let sharded = Laser::builder()
                    .config(config.clone())
                    .pipeline_config(PipelineConfig::pipelined().with_shards(shards))
                    .observer(sharded_log.clone())
                    .build(&image)
                    .run()
                    .unwrap();
                assert_eq!(inline.cycles(), sharded.cycles());
                let (ie, se) = (inline_log.events(), sharded_log.events());
                assert!(!ie.is_empty());
                assert_eq!(ie, se, "repair={} shards={shards}", config.enable_repair);
                assert_eq!(format!("{ie:?}"), format!("{se:?}"));
            }
        }
    }

    #[test]
    fn socket_routing_is_deterministic_across_identical_runs() {
        use laser_machine::{ThreadPlacement, TopologySpec};
        // Socket routing models one detector core per socket: it does not
        // promise inline-identity (a line touched from two sockets splits
        // its record sequence across shards), but it must be a pure function
        // of the run — two identical deployments produce identical bytes.
        let mut image = contended_image("shardsock", 6000);
        image.set_thread_placement(ThreadPlacement::RoundRobin);
        let run = || {
            Laser::builder()
                .config(LaserConfig::detection_only().with_topology(TopologySpec::DualSocket))
                .pipeline_config(
                    PipelineConfig::pipelined()
                        .with_shards(2)
                        .with_routing(ShardRouting::Socket),
                )
                .build(&image)
                .run()
                .unwrap()
        };
        let (a, b) = (run(), run());
        assert_eq!(a.cycles(), b.cycles());
        assert_eq!(a.report, b.report);
        assert_eq!(a.detector_cycles, b.detector_cycles);
        assert_eq!(format!("{:?}", a.report), format!("{:?}", b.report));
    }

    #[test]
    fn lagged_charge_back_is_deterministic_across_identical_runs() {
        // driver_lag_quanta ≥ 1 overlaps the machine with the driver stage:
        // charges for quantum k land at boundary k + lag, which moves the
        // cores' clocks relative to an inline run and perturbs the
        // interleaving. Like socket routing, the contract is determinism —
        // two identical deployments produce identical bytes — NOT
        // inline-identity.
        for lag in [1usize, 3] {
            let image = contended_image("lagdet", 6000);
            let run = |config: LaserConfig| {
                let log = EventLog::new();
                let outcome = Laser::builder()
                    .config(config)
                    .pipeline_config(
                        PipelineConfig::pipelined()
                            .with_shards(2)
                            .with_driver_lag(lag),
                    )
                    .observer(log.clone())
                    .build(&image)
                    .run()
                    .unwrap();
                (outcome, log.events())
            };
            for config in [LaserConfig::detection_only(), LaserConfig::default()] {
                let (a, a_events) = run(config.clone());
                let (b, b_events) = run(config);
                assert_eq!(a.cycles(), b.cycles(), "lag {lag}");
                assert_eq!(a.report, b.report, "lag {lag}");
                assert_eq!(a.detector_cycles, b.detector_cycles, "lag {lag}");
                assert_eq!(a_events, b_events, "lag {lag}");
                // Every deferred cycle still lands: the ledgers conserve the
                // driver's overhead exactly, however late they settle.
                assert_eq!(
                    a.run.stats.injected_overhead_cycles,
                    a.driver_stats.overhead_cycles + a.detector_cycles,
                    "lag {lag}"
                );
            }
        }
    }

    #[test]
    fn stage_occupancy_is_reported_for_pipelined_runs_only() {
        let image = contended_image("occup", 6000);
        let piped = Laser::builder()
            .config(LaserConfig::detection_only())
            .pipeline_config(PipelineConfig::pipelined())
            .build(&image)
            .run()
            .unwrap();
        let occupancy = piped
            .stage_occupancy
            .expect("pipelined runs report occupancy");
        assert!(
            occupancy.machine_busy > Duration::ZERO,
            "the machine stage did real work"
        );
        let inline = Laser::builder()
            .config(LaserConfig::detection_only())
            .build(&image)
            .run()
            .unwrap();
        assert!(
            inline.stage_occupancy.is_none(),
            "inline runs skip the measurement"
        );
        // Occupancy is bookkeeping about the run, never an input to it.
        assert_eq!(piped.report, inline.report);
        assert_eq!(piped.cycles(), inline.cycles());
    }

    #[test]
    fn dropping_a_pipelined_session_mid_run_shuts_the_worker_down() {
        let image = contended_image("pipdrop", 50_000);
        let mut session = Laser::builder()
            .config(LaserConfig::detection_only())
            .pipeline(true)
            .build(&image);
        for _ in 0..3 {
            assert_eq!(session.advance().unwrap(), SessionStatus::Running);
        }
        // Dropping the session drops the job sender; the worker drains and
        // exits rather than leaking a parked thread. (A deadlock here would
        // hang the test suite, which is the assertion.)
        drop(session);
    }

    #[test]
    fn lossy_pipeline_accounts_channel_overflow_as_driver_drops() {
        // A capacity-1 lossy channel with a worker that cannot keep up (the
        // channel stays saturated because the producer never blocks): some
        // batches must be dropped and accounted, and the outcome stays
        // internally consistent (dropped batches are neither processed nor
        // charged).
        let image = contended_image("piplossy", 20_000);
        let config = LaserConfig {
            detector_cycles_per_record: 37,
            ..LaserConfig::detection_only()
        };
        let outcome = Laser::builder()
            .config(config)
            .pipeline_config(
                PipelineConfig::pipelined()
                    .with_capacity(1)
                    .with_lossy(true),
            )
            .build(&image)
            .run()
            .unwrap();
        let stats = outcome.driver_stats;
        assert_eq!(
            outcome.detector_cycles,
            (stats.records_sampled - stats.records_dropped) * 37,
            "dropped records are not charged: {stats:?}"
        );
        assert_eq!(
            outcome.run.stats.injected_overhead_cycles,
            stats.overhead_cycles + outcome.detector_cycles
        );
    }
}
