//! Sparse byte-addressable memory for the simulated process.

use std::collections::HashMap;

use crate::addr::Addr;
use crate::fasthash::FastBuildHasher;

const PAGE_SIZE: u64 = 4096;

/// Sparse simulated memory. Untouched bytes read as zero, like freshly mapped
/// anonymous pages.
///
/// Pages are keyed by a fast deterministic hasher and multi-byte accesses
/// that stay within one page (the overwhelmingly common case) touch the map
/// once, not once per byte — the simulator's load/store path funnels every
/// access through [`SparseMemory::read`] and [`SparseMemory::write`].
#[derive(Debug, Clone, Default)]
pub struct SparseMemory {
    pages: HashMap<u64, Box<[u8]>, FastBuildHasher>,
}

impl SparseMemory {
    /// An empty memory image.
    pub fn new() -> Self {
        SparseMemory {
            pages: HashMap::default(),
        }
    }

    fn page_mut(&mut self, page: u64) -> &mut [u8] {
        self.pages
            .entry(page)
            .or_insert_with(|| vec![0u8; PAGE_SIZE as usize].into_boxed_slice())
    }

    /// Read a single byte.
    pub fn read_u8(&self, addr: Addr) -> u8 {
        let page = addr / PAGE_SIZE;
        let off = (addr % PAGE_SIZE) as usize;
        self.pages.get(&page).map(|p| p[off]).unwrap_or(0)
    }

    /// Write a single byte.
    pub fn write_u8(&mut self, addr: Addr, value: u8) {
        let page = addr / PAGE_SIZE;
        let off = (addr % PAGE_SIZE) as usize;
        self.page_mut(page)[off] = value;
    }

    /// Read `size` bytes (1..=8) little-endian, zero-extended to 64 bits.
    ///
    /// # Panics
    /// Panics if `size` is 0 or greater than 8.
    pub fn read(&self, addr: Addr, size: u8) -> u64 {
        assert!(
            (1..=8).contains(&size),
            "access size must be 1..=8, got {size}"
        );
        let off = (addr % PAGE_SIZE) as usize;
        if off + size as usize <= PAGE_SIZE as usize {
            // Fast path: the access stays within one page — one map lookup.
            let Some(page) = self.pages.get(&(addr / PAGE_SIZE)) else {
                return 0;
            };
            let mut v: u64 = 0;
            for (i, b) in page[off..off + size as usize].iter().enumerate() {
                v |= (*b as u64) << (8 * i);
            }
            return v;
        }
        let mut v: u64 = 0;
        for i in 0..size as u64 {
            v |= (self.read_u8(addr + i) as u64) << (8 * i);
        }
        v
    }

    /// Write the low `size` bytes (1..=8) of `value`, little-endian.
    ///
    /// # Panics
    /// Panics if `size` is 0 or greater than 8.
    pub fn write(&mut self, addr: Addr, size: u8, value: u64) {
        assert!(
            (1..=8).contains(&size),
            "access size must be 1..=8, got {size}"
        );
        let off = (addr % PAGE_SIZE) as usize;
        if off + size as usize <= PAGE_SIZE as usize {
            // Fast path: the access stays within one page — one map lookup.
            let page = self.page_mut(addr / PAGE_SIZE);
            for (i, b) in page[off..off + size as usize].iter_mut().enumerate() {
                *b = (value >> (8 * i)) as u8;
            }
            return;
        }
        for i in 0..size as u64 {
            self.write_u8(addr + i, (value >> (8 * i)) as u8);
        }
    }

    /// Copy `bytes` into memory starting at `addr`.
    pub fn write_bytes(&mut self, addr: Addr, bytes: &[u8]) {
        for (i, b) in bytes.iter().enumerate() {
            self.write_u8(addr + i as u64, *b);
        }
    }

    /// Read `len` bytes starting at `addr`.
    pub fn read_bytes(&self, addr: Addr, len: usize) -> Vec<u8> {
        (0..len as u64).map(|i| self.read_u8(addr + i)).collect()
    }

    /// Number of touched pages (for tests and capacity sanity checks).
    pub fn touched_pages(&self) -> usize {
        self.pages.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_initialised() {
        let m = SparseMemory::new();
        assert_eq!(m.read(0x1234, 8), 0);
        assert_eq!(m.read_u8(0xdead_beef), 0);
        assert_eq!(m.touched_pages(), 0);
    }

    #[test]
    fn read_write_roundtrip_various_sizes() {
        let mut m = SparseMemory::new();
        m.write(0x1000, 8, 0x1122_3344_5566_7788);
        assert_eq!(m.read(0x1000, 8), 0x1122_3344_5566_7788);
        assert_eq!(m.read(0x1000, 4), 0x5566_7788);
        assert_eq!(m.read(0x1004, 4), 0x1122_3344);
        assert_eq!(m.read(0x1000, 1), 0x88);
        m.write(0x1002, 2, 0xabcd);
        assert_eq!(m.read(0x1000, 8) & 0xffff_0000, 0xabcd_0000);
    }

    #[test]
    fn writes_crossing_page_boundaries() {
        let mut m = SparseMemory::new();
        m.write(4094, 8, u64::MAX);
        assert_eq!(m.read(4094, 8), u64::MAX);
        assert_eq!(m.touched_pages(), 2);
    }

    #[test]
    fn byte_slice_roundtrip() {
        let mut m = SparseMemory::new();
        m.write_bytes(0x2000, &[1, 2, 3, 4, 5]);
        assert_eq!(m.read_bytes(0x2000, 5), vec![1, 2, 3, 4, 5]);
    }

    #[test]
    #[should_panic(expected = "access size")]
    fn oversized_access_panics() {
        let m = SparseMemory::new();
        let _ = m.read(0, 9);
    }
}
