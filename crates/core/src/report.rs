//! Contention reports produced by LASERDETECT.

use serde::{Deserialize, Serialize};

use laser_isa::program::{Pc, SourceLoc};

/// The type of contention detected on a source line.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ContentionKind {
    /// Distinct bytes of one cache line are contended by different threads.
    FalseSharing,
    /// The same bytes are contended (at least one writer).
    TrueSharing,
    /// Not enough overlapping evidence to decide (e.g. when data-address
    /// accuracy is too low, as for `linear_regression` in the paper).
    Unknown,
}

impl std::fmt::Display for ContentionKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ContentionKind::FalseSharing => write!(f, "false sharing"),
            ContentionKind::TrueSharing => write!(f, "true sharing"),
            ContentionKind::Unknown => write!(f, "unknown"),
        }
    }
}

/// Contention attributed to one source line.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LineReport {
    /// The source line.
    pub location: SourceLoc,
    /// HITM records attributed to this line.
    pub hitm_records: u64,
    /// HITM records per second of (dilated) benchmark time.
    pub rate_per_sec: f64,
    /// Sharing events classified as true sharing by the cache-line model.
    pub true_sharing_events: u64,
    /// Sharing events classified as false sharing by the cache-line model.
    pub false_sharing_events: u64,
    /// Overall classification of this line's contention.
    pub kind: ContentionKind,
    /// The PCs that contributed records to this line.
    pub pcs: Vec<Pc>,
}

/// The detector's report for a whole run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ContentionReport {
    /// Workload name.
    pub workload: String,
    /// Lines whose HITM rate exceeded the reporting threshold, ordered by
    /// descending record count.
    pub lines: Vec<LineReport>,
    /// Total records received from the driver.
    pub total_records: u64,
    /// Records dropped because their PC was outside application/library code.
    pub dropped_non_code: u64,
    /// Records dropped because their data address fell in a thread stack.
    pub dropped_stack: u64,
    /// Benchmark time (seconds, after time dilation) used for rate
    /// computation.
    pub elapsed_seconds: f64,
    /// Whether LASERREPAIR was invoked during the run.
    pub repair_invoked: bool,
    /// Fraction of the run's ground-truth HITM events that crossed a socket
    /// boundary (0.0 on a single-socket topology). Filled in by the session
    /// from machine statistics — the detector itself only sees sampled
    /// records.
    pub remote_hitm_share: f64,
}

impl ContentionReport {
    /// The reported source locations (the lines a programmer would triage).
    pub fn reported_locations(&self) -> Vec<&SourceLoc> {
        self.lines.iter().map(|l| &l.location).collect()
    }

    /// The report entry for a given file/line, if present.
    pub fn line(&self, file: &str, line: u32) -> Option<&LineReport> {
        self.lines
            .iter()
            .find(|l| l.location.file == file && l.location.line == line)
    }

    /// True if any reported line is classified as false sharing.
    pub fn has_false_sharing(&self) -> bool {
        self.lines
            .iter()
            .any(|l| l.kind == ContentionKind::FalseSharing)
    }

    /// True if any reported line is classified as true sharing.
    pub fn has_true_sharing(&self) -> bool {
        self.lines
            .iter()
            .any(|l| l.kind == ContentionKind::TrueSharing)
    }

    /// Render the report as the text a programmer would read.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "LASER contention report for '{}' ({} records, {:.3}s)",
            self.workload, self.total_records, self.elapsed_seconds
        );
        let _ = writeln!(
            out,
            "  dropped: {} non-code PCs, {} stack addresses; repair invoked: {}",
            self.dropped_non_code, self.dropped_stack, self.repair_invoked
        );
        if self.remote_hitm_share > 0.0 {
            let _ = writeln!(
                out,
                "  cross-socket HITM share: {:.1}%",
                self.remote_hitm_share * 100.0
            );
        }
        for l in &self.lines {
            let _ = writeln!(
                out,
                "  {:<28} {:>10} records  {:>12.0} HITM/s  TS={:<8} FS={:<8} => {}",
                l.location.label(),
                l.hitm_records,
                l.rate_per_sec,
                l.true_sharing_events,
                l.false_sharing_events,
                l.kind
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> ContentionReport {
        ContentionReport {
            workload: "demo".into(),
            lines: vec![
                LineReport {
                    location: SourceLoc::new("demo.c", 10),
                    hitm_records: 500,
                    rate_per_sec: 25_000.0,
                    true_sharing_events: 3,
                    false_sharing_events: 212,
                    kind: ContentionKind::FalseSharing,
                    pcs: vec![0x40_0010],
                },
                LineReport {
                    location: SourceLoc::new("demo.c", 42),
                    hitm_records: 120,
                    rate_per_sec: 6_000.0,
                    true_sharing_events: 80,
                    false_sharing_events: 1,
                    kind: ContentionKind::TrueSharing,
                    pcs: vec![0x40_0100, 0x40_0104],
                },
            ],
            total_records: 700,
            dropped_non_code: 5,
            dropped_stack: 2,
            elapsed_seconds: 1.5,
            repair_invoked: true,
            remote_hitm_share: 0.0,
        }
    }

    #[test]
    fn lookup_and_predicates() {
        let r = sample_report();
        assert_eq!(r.reported_locations().len(), 2);
        assert!(r.line("demo.c", 10).is_some());
        assert!(r.line("demo.c", 11).is_none());
        assert!(r.has_false_sharing());
        assert!(r.has_true_sharing());
    }

    #[test]
    fn render_mentions_each_line_and_kind() {
        let r = sample_report();
        let text = r.render();
        assert!(text.contains("demo.c:10"));
        assert!(text.contains("demo.c:42"));
        assert!(text.contains("false sharing"));
        assert!(text.contains("true sharing"));
        // Single-socket runs do not mention sockets at all...
        assert!(!text.contains("cross-socket"));
        // ...multi-socket runs surface the share.
        let r = ContentionReport {
            remote_hitm_share: 0.625,
            ..sample_report()
        };
        assert!(r.render().contains("cross-socket HITM share: 62.5%"));
    }

    #[test]
    fn kind_display() {
        assert_eq!(ContentionKind::Unknown.to_string(), "unknown");
    }
}
