//! The PARSEC 3.0 workloads (native-style inputs).
//!
//! The interesting ones for LASER are `bodytrack` (true sharing in the ticket
//! dispenser), `dedup` (true sharing in the lock-protected pipeline queues)
//! and `streamcluster` (insufficiently padded `work_mem`); the remainder are
//! benign kernels built from the shared templates.

use laser_isa::inst::Operand;
use laser_isa::ProgramBuilder;
use laser_machine::{ThreadSpec, WorkloadImage};

use crate::common::{
    barrier_phased, close_loop, emit_lock_acquire, emit_lock_release, locked_accumulator,
    open_loop, private_compute, regs, scaled_iters, BENIGN_DILATION, INTENSE_DILATION,
    MILD_DILATION,
};
use crate::spec::{BugKind, BuildOptions, KnownBug, SheriffCompat, Suite, WorkloadSpec};

/// All PARSEC workload specifications.
pub fn all() -> Vec<WorkloadSpec> {
    vec![
        WorkloadSpec {
            name: "blackscholes",
            suite: Suite::Parsec,
            known_bugs: vec![],
            sheriff: SheriffCompat::Works,
            has_fix: false,
            build_fn: |o| private_compute("blackscholes", "blackscholes.c", o, 2600, 10, 8),
        },
        WorkloadSpec {
            name: "bodytrack",
            suite: Suite::Parsec,
            known_bugs: vec![KnownBug::new(
                "TicketDispenser.h",
                &[110],
                BugKind::TrueSharing,
                "TicketDispenser::getTicket(): every worker atomically increments one shared \
                 counter to claim work",
            )],
            sheriff: SheriffCompat::Crash,
            has_fix: false,
            build_fn: bodytrack,
        },
        WorkloadSpec {
            name: "canneal",
            suite: Suite::Parsec,
            known_bugs: vec![],
            sheriff: SheriffCompat::Crash,
            has_fix: false,
            build_fn: |o| locked_accumulator("canneal", "canneal.cpp", o, 2000, 64, 8),
        },
        WorkloadSpec {
            name: "dedup",
            suite: Suite::Parsec,
            known_bugs: vec![KnownBug::new(
                "queue.c",
                &[30, 34],
                BugKind::TrueSharing,
                "each pipeline-stage queue is protected by a single lock, serialising enqueue \
                 and dequeue",
            )],
            sheriff: SheriffCompat::Incompatible,
            has_fix: true,
            build_fn: dedup,
        },
        WorkloadSpec {
            name: "facesim",
            suite: Suite::Parsec,
            known_bugs: vec![],
            sheriff: SheriffCompat::Crash,
            has_fix: false,
            build_fn: |o| barrier_phased("facesim", "facesim.cpp", o, 3, 700, 8),
        },
        WorkloadSpec {
            name: "ferret",
            suite: Suite::Parsec,
            known_bugs: vec![],
            sheriff: SheriffCompat::Works,
            has_fix: false,
            build_fn: |o| locked_accumulator("ferret", "ferret.c", o, 2200, 48, 6),
        },
        WorkloadSpec {
            name: "fluidanimate",
            suite: Suite::Parsec,
            known_bugs: vec![],
            sheriff: SheriffCompat::Crash,
            has_fix: false,
            build_fn: |o| barrier_phased("fluidanimate", "fluidanimate.cpp", o, 4, 600, 5),
        },
        WorkloadSpec {
            name: "freqmine",
            suite: Suite::Parsec,
            known_bugs: vec![],
            sheriff: SheriffCompat::Incompatible,
            has_fix: false,
            build_fn: |o| private_compute("freqmine", "freqmine.cpp", o, 2400, 7, 16),
        },
        WorkloadSpec {
            name: "raytrace.parsec",
            suite: Suite::Parsec,
            known_bugs: vec![],
            sheriff: SheriffCompat::Incompatible,
            has_fix: false,
            build_fn: |o| {
                locked_accumulator("raytrace.parsec", "raytrace_parsec.cpp", o, 2000, 80, 10)
            },
        },
        WorkloadSpec {
            name: "streamcluster",
            suite: Suite::Parsec,
            known_bugs: vec![KnownBug::new(
                "streamcluster.cpp",
                &[985],
                BugKind::FalseSharing,
                "work_mem is padded, but with less than a 64-byte line so neighbouring \
                 threads still share lines",
            )],
            sheriff: SheriffCompat::Crash,
            has_fix: true,
            build_fn: streamcluster,
        },
        WorkloadSpec {
            name: "swaptions",
            suite: Suite::Parsec,
            known_bugs: vec![],
            sheriff: SheriffCompat::Works,
            has_fix: false,
            build_fn: |o| private_compute("swaptions", "swaptions.cpp", o, 2400, 12, 8),
        },
        WorkloadSpec {
            name: "vips",
            suite: Suite::Parsec,
            known_bugs: vec![],
            sheriff: SheriffCompat::Incompatible,
            has_fix: false,
            build_fn: |o| locked_accumulator("vips", "vips.c", o, 2200, 56, 7),
        },
        WorkloadSpec {
            name: "x264",
            suite: Suite::Parsec,
            known_bugs: vec![],
            sheriff: SheriffCompat::Incompatible,
            has_fix: false,
            build_fn: x264,
        },
    ]
}

/// `bodytrack`: worker threads repeatedly call the ticket dispenser — an
/// atomic fetch-and-add on one shared counter — to claim particles, then do
/// private work. The communication is fundamental load balancing, so there is
/// nothing to repair.
fn bodytrack(opts: &BuildOptions) -> WorkloadImage {
    let iters = scaled_iters(2000, opts);
    let file = "TicketDispenser.h";
    let mut b = ProgramBuilder::new("bodytrack");
    b.source("bodytrack.cpp", 300);
    let entry = b.block("entry");
    b.switch_to(entry);
    let (body, exit) = open_loop(&mut b, "particles");
    // getTicket(): one atomic increment of the shared ticket counter.
    b.source(file, 110);
    b.atomic_fetch_add(regs::VAL, regs::SHARED, 0, Operand::Imm(1), 8);
    // Private particle processing.
    b.source("bodytrack.cpp", 310);
    b.load(regs::SCRATCH_A, regs::DATA, 0, 8);
    b.add(regs::SCRATCH_A, regs::SCRATCH_A, Operand::Reg(regs::VAL));
    b.store(Operand::Reg(regs::SCRATCH_A), regs::DATA, 0, 8);
    b.nops(8);
    close_loop(&mut b, body, exit, iters);
    b.halt();
    let program = b.finish();

    let mut image = WorkloadImage::new("bodytrack", program);
    image.set_time_dilation(MILD_DILATION);
    if opts.layout_perturbation > 0 {
        image.layout_mut().perturb_heap(opts.layout_perturbation);
    }
    let ticket = image.layout_mut().global_alloc(64, 64);
    for t in 0..opts.threads {
        let buf = image
            .layout_mut()
            .heap_alloc(64, 64)
            .expect("particle buffer"); // lint:allow(panic) — workload images size their heaps to fit; allocation failure is a builder bug
        image.push_thread(
            ThreadSpec::new(format!("body{t}"), "entry")
                .with_reg(regs::DATA, buf)
                .with_reg(regs::SHARED, ticket)
                .with_reg(regs::TID, t as u64),
        );
    }
    image
}

/// `dedup`: a two-stage pipeline communicating through a queue protected by a
/// single lock, so enqueue and dequeue cannot proceed in parallel and every
/// operation bounces the lock and queue-header line between cores (the novel
/// true-sharing bug of Section 7.4.2). The fixed variant models the Boost
/// lock-free queue: head and tail become independent atomic counters on
/// separate lines.
fn dedup(opts: &BuildOptions) -> WorkloadImage {
    let iters = scaled_iters(1600, opts);
    let file = "queue.c";
    let mut b = ProgramBuilder::new("dedup");

    // Producer: acquires the queue lock (or, fixed, bumps the head atomically)
    // and writes a slot.
    b.source("encoder.c", 120);
    let producer = b.block("producer");
    b.switch_to(producer);
    let (p_body, p_exit) = open_loop(&mut b, "produce");
    if opts.fixed {
        b.source(file, 80);
        b.atomic_fetch_add(regs::VAL, regs::SHARED, 64, Operand::Imm(1), 8);
        b.alu(
            laser_isa::AluOp::Rem,
            regs::VAL,
            regs::VAL,
            Operand::Imm(16),
        );
        b.alu(laser_isa::AluOp::Mul, regs::VAL, regs::VAL, Operand::Imm(8));
        b.add(regs::VAL, regs::VAL, Operand::Reg(regs::DATA2));
        b.store(Operand::Reg(regs::IV), regs::VAL, 0, 8);
    } else {
        b.source(file, 30);
        emit_lock_acquire(&mut b, "pq", regs::SHARED, 0, true);
        b.source(file, 34);
        b.mem_add(regs::SHARED, 8, Operand::Imm(1), 8); // head++
        b.load(regs::VAL, regs::SHARED, 8, 8);
        b.alu(
            laser_isa::AluOp::Rem,
            regs::VAL,
            regs::VAL,
            Operand::Imm(16),
        );
        b.alu(laser_isa::AluOp::Mul, regs::VAL, regs::VAL, Operand::Imm(8));
        b.add(regs::VAL, regs::VAL, Operand::Reg(regs::DATA2));
        b.store(Operand::Reg(regs::IV), regs::VAL, 0, 8);
        emit_lock_release(&mut b, regs::SHARED, 0);
    }
    b.source("encoder.c", 130);
    b.nops(4);
    close_loop(&mut b, p_body, p_exit, iters);
    b.halt();

    // Consumer: same queue, reads a slot under the same lock (or, fixed, bumps
    // the tail counter on its own line).
    b.source("encoder.c", 220);
    let consumer = b.block("consumer");
    b.switch_to(consumer);
    let (c_body, c_exit) = open_loop(&mut b, "consume");
    if opts.fixed {
        b.source(file, 90);
        b.atomic_fetch_add(regs::VAL, regs::SHARED, 128, Operand::Imm(1), 8);
        b.alu(
            laser_isa::AluOp::Rem,
            regs::VAL,
            regs::VAL,
            Operand::Imm(16),
        );
        b.alu(laser_isa::AluOp::Mul, regs::VAL, regs::VAL, Operand::Imm(8));
        b.add(regs::VAL, regs::VAL, Operand::Reg(regs::DATA2));
        b.load(regs::SCRATCH_A, regs::VAL, 0, 8);
    } else {
        b.source(file, 30);
        emit_lock_acquire(&mut b, "cq", regs::SHARED, 0, true);
        b.source(file, 34);
        b.mem_add(regs::SHARED, 16, Operand::Imm(1), 8); // tail++
        b.load(regs::VAL, regs::SHARED, 16, 8);
        b.alu(
            laser_isa::AluOp::Rem,
            regs::VAL,
            regs::VAL,
            Operand::Imm(16),
        );
        b.alu(laser_isa::AluOp::Mul, regs::VAL, regs::VAL, Operand::Imm(8));
        b.add(regs::VAL, regs::VAL, Operand::Reg(regs::DATA2));
        b.load(regs::SCRATCH_A, regs::VAL, 0, 8);
        emit_lock_release(&mut b, regs::SHARED, 0);
    }
    b.source("encoder.c", 230);
    b.nops(4);
    close_loop(&mut b, c_body, c_exit, iters);
    b.halt();

    let program = b.finish();
    let mut image = WorkloadImage::new("dedup", program);
    image.set_time_dilation(INTENSE_DILATION);
    if opts.layout_perturbation > 0 {
        image.layout_mut().perturb_heap(opts.layout_perturbation);
    }
    // Queue header: lock at +0, head at +8, tail at +16 (all one line in the
    // buggy variant); the fixed variant's counters live at +64 and +128.
    let queue = image.layout_mut().global_alloc(192, 64);
    let slots = image
        .layout_mut()
        .heap_alloc(16 * 8, 64)
        .expect("queue slots"); // lint:allow(panic) — workload images size their heaps to fit; allocation failure is a builder bug
    for t in 0..opts.threads {
        let entry = if t % 2 == 0 { "producer" } else { "consumer" };
        image.push_thread(
            ThreadSpec::new(format!("stage{t}"), entry)
                .with_reg(regs::SHARED, queue)
                .with_reg(regs::DATA2, slots)
                .with_reg(regs::TID, t as u64),
        );
    }
    image
}

/// `streamcluster`: per-thread scratch regions inside `work_mem` are padded,
/// but only by 32 bytes, so neighbours still share cache lines. The fix pads
/// to a full line (which, as in the paper, removes the HITM traffic without
/// changing runtime much because the access rate is modest).
fn streamcluster(opts: &BuildOptions) -> WorkloadImage {
    let iters = scaled_iters(1800, opts);
    let file = "streamcluster.cpp";
    let mut b = ProgramBuilder::new("streamcluster");
    b.source(file, 980);
    let entry = b.block("entry");
    b.switch_to(entry);
    let (body, exit) = open_loop(&mut b, "gain");
    // Private gain computation dominates each iteration …
    b.source(file, 990);
    b.load(regs::VAL, regs::DATA2, 0, 8);
    b.addi(regs::VAL, regs::VAL, 1);
    b.store(Operand::Reg(regs::VAL), regs::DATA2, 0, 8);
    b.nops(16);
    // … with an occasional update of this thread's work_mem slot (shared line
    // with the neighbouring thread's slot in the buggy layout).
    b.alu(
        laser_isa::AluOp::Rem,
        regs::SCRATCH_A,
        regs::IV,
        Operand::Imm(8),
    );
    b.cmp_eq(regs::COND, regs::SCRATCH_A, Operand::Imm(0));
    let touch = b.block("work_mem_touch");
    let join = b.block("work_mem_join");
    b.branch(regs::COND, touch, join);
    b.switch_to(touch);
    b.source(file, 985);
    b.mem_add(regs::DATA, 0, Operand::Imm(1), 8);
    b.jump(join);
    b.switch_to(join);
    close_loop(&mut b, body, exit, iters);
    b.halt();
    let program = b.finish();

    let mut image = WorkloadImage::new("streamcluster", program);
    image.set_time_dilation(MILD_DILATION);
    if opts.layout_perturbation > 0 {
        image.layout_mut().perturb_heap(opts.layout_perturbation);
    }
    let stride = if opts.fixed { 64 } else { 32 };
    let work_mem = image
        .layout_mut()
        .heap_alloc(stride * opts.threads as u64 + 64, 64)
        .expect("work_mem"); // lint:allow(panic) — workload images size their heaps to fit; allocation failure is a builder bug
    for t in 0..opts.threads {
        let private = image.layout_mut().heap_alloc(64, 64).expect("private"); // lint:allow(panic) — workload images size their heaps to fit; allocation failure is a builder bug
        image.push_thread(
            ThreadSpec::new(format!("sc{t}"), "entry")
                .with_reg(regs::DATA, work_mem + stride * t as u64)
                .with_reg(regs::DATA2, private)
                .with_reg(regs::TID, t as u64),
        );
    }
    image
}

/// `x264`: frame threads that mostly work privately but synchronize often on
/// row-completion counters, giving it one of the higher benign HITM rates in
/// the suite (it shows up in the paper's Figure 12 overhead breakdown).
fn x264(opts: &BuildOptions) -> WorkloadImage {
    let iters = scaled_iters(2000, opts);
    let file = "x264_frame.c";
    let mut b = ProgramBuilder::new("x264");
    b.source(file, 400);
    let entry = b.block("entry");
    b.switch_to(entry);
    let (body, exit) = open_loop(&mut b, "rows");
    b.source(file, 410);
    b.load(regs::VAL, regs::DATA, 0, 8);
    b.addi(regs::VAL, regs::VAL, 1);
    b.store(Operand::Reg(regs::VAL), regs::DATA, 0, 8);
    b.nops(6);
    // Row-completion broadcast every 4 rows: atomic bump of a shared counter.
    b.alu(
        laser_isa::AluOp::Rem,
        regs::SCRATCH_A,
        regs::IV,
        Operand::Imm(4),
    );
    b.cmp_eq(regs::COND, regs::SCRATCH_A, Operand::Imm(0));
    let sync = b.block("row_sync");
    let join = b.block("row_join");
    b.branch(regs::COND, sync, join);
    b.switch_to(sync);
    b.source(file, 455);
    b.atomic_fetch_add(regs::SCRATCH_A, regs::SHARED, 0, Operand::Imm(1), 8);
    b.jump(join);
    b.switch_to(join);
    close_loop(&mut b, body, exit, iters);
    b.halt();
    let program = b.finish();

    let mut image = WorkloadImage::new("x264", program);
    image.set_time_dilation(BENIGN_DILATION);
    if opts.layout_perturbation > 0 {
        image.layout_mut().perturb_heap(opts.layout_perturbation);
    }
    let row_counter = image.layout_mut().global_alloc(64, 64);
    for t in 0..opts.threads {
        let buf = image.layout_mut().heap_alloc(64, 64).expect("frame buffer"); // lint:allow(panic) — workload images size their heaps to fit; allocation failure is a builder bug
        image.push_thread(
            ThreadSpec::new(format!("frame{t}"), "entry")
                .with_reg(regs::DATA, buf)
                .with_reg(regs::SHARED, row_counter)
                .with_reg(regs::TID, t as u64),
        );
    }
    image
}

#[cfg(test)]
mod tests {
    use super::*;
    use laser_machine::{Machine, MachineConfig};

    fn run(image: &WorkloadImage) -> laser_machine::RunResult {
        Machine::new(MachineConfig::default(), image)
            .run_to_completion()
            .unwrap()
    }

    fn small() -> BuildOptions {
        BuildOptions::scaled(0.15)
    }

    #[test]
    fn bodytrack_ticket_dispenser_contends() {
        let r = run(&bodytrack(&small()));
        assert!(r.stats.hitm_events > 200);
        assert!(r.stats.atomics > 500);
    }

    #[test]
    fn dedup_queue_lock_contends_and_lockfree_fix_helps() {
        let buggy = run(&dedup(&small()));
        let fixed = run(&dedup(&BuildOptions {
            fixed: true,
            ..small()
        }));
        assert!(buggy.stats.hitm_events > 500);
        assert!(fixed.stats.hitm_events < buggy.stats.hitm_events);
        assert!(
            fixed.cycles < buggy.cycles,
            "lock-free queue should speed dedup up"
        );
    }

    #[test]
    fn streamcluster_padding_fix_removes_hitms_without_big_speedup() {
        let buggy = run(&streamcluster(&small()));
        let fixed = run(&streamcluster(&BuildOptions {
            fixed: true,
            ..small()
        }));
        assert!(
            buggy.stats.hitm_events > 50,
            "hitms {}",
            buggy.stats.hitm_events
        );
        assert!(fixed.stats.hitm_events < buggy.stats.hitm_events / 3);
        let speedup = buggy.cycles as f64 / fixed.cycles as f64;
        assert!(
            speedup < 1.5,
            "streamcluster fix should not be a dramatic win: {speedup}"
        );
    }

    #[test]
    fn parsec_registry_entries_build() {
        for spec in all() {
            let image = spec.build(&BuildOptions::scaled(0.05));
            assert!(!image.threads().is_empty(), "{}", spec.name);
        }
    }
}
