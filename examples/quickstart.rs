//! Quick start: build the `linear_regression` workload, show the allocator
//! layout of its per-thread structs (the paper's Figure 2), run it natively,
//! then run it under LASER and print the contention report.

use laser::machine::line_of;
use laser::workloads::{common::regs, find, BuildOptions};
use laser::{Laser, LaserConfig};

fn main() {
    let spec = find("linear_regression").expect("linear_regression is registered");
    let opts = BuildOptions::scaled(0.3);
    let image = spec.build(&opts);

    println!("== Figure 2: how malloc lays out the lreg_args array ==");
    for (t, thread) in image.threads().iter().enumerate() {
        let base = thread
            .regs
            .iter()
            .find(|(r, _)| *r == regs::DATA)
            .map(|(_, v)| *v)
            .unwrap_or(0);
        let straddles = line_of(base) != line_of(base + 63);
        println!(
            "  lreg_args[{t}] @ {base:#x} (line offset {:2}) {}",
            base % 64,
            if straddles {
                "-- straddles two cache lines"
            } else {
                ""
            }
        );
    }

    let native = Laser::run_native(&image).expect("native run");
    println!(
        "\nnative run: {} cycles, {} HITM events",
        native.cycles, native.stats.hitm_events
    );

    let outcome = Laser::new(LaserConfig::default())
        .run(&image)
        .expect("LASER run");
    println!(
        "\n== LASER contention report ==\n{}",
        outcome.report.render()
    );
    if let Some(repair) = &outcome.repair {
        println!(
            "LASERREPAIR attached at cycle {} and buffered {} stores ({} flushes).",
            repair.triggered_at_cycle, repair.stats.buffered_stores, repair.stats.flushes
        );
    }
    println!(
        "runtime under LASER: {} cycles ({:.2}x native)",
        outcome.run.cycles,
        outcome.run.cycles as f64 / native.cycles as f64
    );
}
