//! The multicore execution engine.
//!
//! [`Machine`] executes a [`WorkloadImage`] instruction by instruction. At
//! every step the runnable thread whose core has the smallest local clock
//! executes one instruction and advances its core's clock by the cost of that
//! instruction; this yields deterministic interleavings that naturally model
//! the ping-pong timing of contended cache lines, because a core stalled on a
//! 90-cycle HITM transfer falls behind and the other cores run ahead.
//!
//! External agents (the PEBS driver, the detector process, instrumentation)
//! inject their overhead with [`Machine::charge_cycles`]; that is how the
//! reproduction accounts for tool overhead in the paper's Figures 10–14.

use std::fmt;

use serde::{Deserialize, Serialize};

use laser_isa::inst::{Inst, MemAddr, Operand, Reg, RmwOp, Terminator, NUM_REGS};
use laser_isa::program::{BlockId, Pc, Program};

use crate::addr::{lines_touched, Addr};
use crate::coherence::{AccessClass, CoherenceDirectory};
use crate::event::{HitmEvent, MemAccessKind};
use crate::hook::{ExecHook, HookAction, HookCtx, MemOp};
use crate::htm::{fits_in_transaction, HtmOutcome};
use crate::image::{WorkloadImage, STACK_POINTER_REG};
use crate::mem::SparseMemory;
use crate::memmap::MemoryMap;
use crate::stats::MachineStats;
use crate::timing::LatencyModel;

/// Identifier of a simulated core.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct CoreId(pub usize);

impl fmt::Display for CoreId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "core{}", self.0)
    }
}

/// Configuration of the simulated machine.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MachineConfig {
    /// Number of cores (the paper's machine has 4, hyper-threading disabled).
    pub num_cores: usize,
    /// The latency model.
    pub latency: LatencyModel,
    /// Upper bound on executed instructions before
    /// [`Machine::run_to_completion`] gives up.
    pub max_steps: u64,
}

impl Default for MachineConfig {
    fn default() -> Self {
        MachineConfig { num_cores: 4, latency: LatencyModel::default(), max_steps: 400_000_000 }
    }
}

/// Status returned by incremental execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunStatus {
    /// Some thread still has work to do.
    Running,
    /// Every thread has halted.
    Done,
}

/// Summary of a completed run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunResult {
    /// Wall-clock cycles of the run: the maximum over all core clocks.
    pub cycles: u64,
    /// Final per-core cycle counts.
    pub per_core_cycles: Vec<u64>,
    /// Execution statistics.
    pub stats: MachineStats,
    /// Instructions executed.
    pub steps: u64,
}

/// Errors produced by the machine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MachineError {
    /// The configured step budget was exhausted before every thread halted
    /// (most likely a livelocked spin loop in the workload).
    MaxStepsExceeded {
        /// The step budget that was exhausted.
        steps: u64,
    },
    /// A thread's entry label does not exist in the program.
    UnknownEntryLabel(String),
}

impl fmt::Display for MachineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MachineError::MaxStepsExceeded { steps } => {
                write!(f, "machine did not finish within {steps} steps")
            }
            MachineError::UnknownEntryLabel(l) => write!(f, "unknown thread entry label '{l}'"),
        }
    }
}

impl std::error::Error for MachineError {}

/// Shared mutable machine state that both normal execution and attached hooks
/// operate on.
pub(crate) struct MachineInner {
    pub(crate) mem: SparseMemory,
    pub(crate) coh: CoherenceDirectory,
    pub(crate) stats: MachineStats,
    pub(crate) pending_hitms: Vec<HitmEvent>,
    pub(crate) latency: LatencyModel,
}

impl MachineInner {
    /// Perform a memory access through the coherence directory, recording a
    /// HITM event when the access hits a remotely-Modified line. Returns the
    /// loaded value (0 for stores) and the cycle cost.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn access(
        &mut self,
        core: usize,
        pc: Pc,
        addr: Addr,
        size: u8,
        is_write: bool,
        event_kind: MemAccessKind,
        store_value: Option<u64>,
        now: u64,
    ) -> (u64, u64) {
        let mut worst = 0u64;
        for line in lines_touched(addr, size) {
            let outcome = self.coh.access(core, line, is_write);
            let cost = match outcome.class {
                AccessClass::L1Hit => {
                    self.stats.l1_hits += 1;
                    self.latency.l1_hit
                }
                AccessClass::LlcHit => {
                    self.stats.llc_hits += 1;
                    self.latency.llc_hit
                }
                AccessClass::Dram => {
                    self.stats.dram_accesses += 1;
                    self.latency.dram
                }
                AccessClass::Hitm => {
                    self.stats.hitm_events += 1;
                    match event_kind {
                        MemAccessKind::Load => self.stats.hitm_loads += 1,
                        MemAccessKind::Store => self.stats.hitm_stores += 1,
                    }
                    self.pending_hitms.push(HitmEvent {
                        core: CoreId(core),
                        pc,
                        addr,
                        size,
                        kind: event_kind,
                        cycle: now,
                    });
                    self.latency.hitm
                }
            };
            worst = worst.max(cost);
        }
        let value = if is_write {
            if let Some(v) = store_value {
                self.mem.write(addr, size, v);
            }
            0
        } else {
            self.mem.read(addr, size)
        };
        (value, worst)
    }

    /// Execute a write set atomically inside a hardware transaction.
    pub(crate) fn htm_execute(
        &mut self,
        core: usize,
        pc: Pc,
        writes: &[(Addr, u8, u64)],
        now: u64,
    ) -> HtmOutcome {
        let mut lines: Vec<Addr> = Vec::new();
        for (addr, size, _) in writes {
            for l in lines_touched(*addr, *size) {
                if !lines.contains(&l) {
                    lines.push(l);
                }
            }
        }
        if !fits_in_transaction(lines.len()) {
            self.stats.htm_capacity_aborts += 1;
            return HtmOutcome::CapacityAborted;
        }
        let mut cycles = self.latency.htm_begin + self.latency.htm_commit;
        for (addr, size, value) in writes {
            let (_, c) = self.access(
                core,
                pc,
                *addr,
                *size,
                true,
                MemAccessKind::Store,
                Some(*value),
                now,
            );
            cycles += c;
        }
        self.stats.htm_commits += 1;
        HtmOutcome::Committed { cycles }
    }
}

struct ThreadCtx {
    name: String,
    core: usize,
    block: BlockId,
    idx: usize,
    regs: [u64; NUM_REGS],
    halted: bool,
}

/// The simulated multicore machine.
pub struct Machine {
    config: MachineConfig,
    program: Program,
    map: MemoryMap,
    threads: Vec<ThreadCtx>,
    core_cycles: Vec<u64>,
    inner: MachineInner,
    hook: Option<Box<dyn ExecHook>>,
    steps: u64,
    time_dilation: f64,
}

impl fmt::Debug for Machine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Machine")
            .field("program", &self.program.name())
            .field("threads", &self.threads.len())
            .field("steps", &self.steps)
            .field("cycles", &self.cycles())
            .finish()
    }
}

impl Machine {
    /// Load a workload image onto a fresh machine.
    ///
    /// # Panics
    /// Panics if a thread's entry label does not exist in the program or if
    /// the image declares no threads.
    pub fn new(config: MachineConfig, image: &WorkloadImage) -> Self {
        assert!(!image.threads().is_empty(), "workload image declares no threads");
        let program = image.program().clone();
        let mut mem = SparseMemory::new();
        for (addr, bytes) in image.layout().initial_contents() {
            mem.write_bytes(*addr, bytes);
        }
        let mut threads = Vec::new();
        for (tid, spec) in image.threads().iter().enumerate() {
            let entry = program
                .block_by_label(&spec.entry_label)
                .unwrap_or_else(|| panic!("unknown thread entry label '{}'", spec.entry_label));
            let mut regs = [0u64; NUM_REGS];
            for (r, v) in &spec.regs {
                regs[r.0 as usize] = *v;
            }
            regs[STACK_POINTER_REG.0 as usize] = image.stack_top(tid);
            threads.push(ThreadCtx {
                name: spec.name.clone(),
                core: tid % config.num_cores,
                block: entry,
                idx: 0,
                regs,
                halted: false,
            });
        }
        let inner = MachineInner {
            mem,
            coh: CoherenceDirectory::new(config.num_cores),
            stats: MachineStats::default(),
            pending_hitms: Vec::new(),
            latency: config.latency.clone(),
        };
        Machine {
            core_cycles: vec![0; config.num_cores],
            map: image.memory_map().clone(),
            time_dilation: image.time_dilation(),
            program,
            threads,
            inner,
            hook: None,
            steps: 0,
            config,
        }
    }

    /// Attach a dynamic-instrumentation hook (the Pin substitute). Replaces
    /// any previously attached hook.
    pub fn attach_hook(&mut self, hook: Box<dyn ExecHook>) {
        self.hook = Some(hook);
    }

    /// Detach and return the current hook, if any.
    pub fn detach_hook(&mut self) -> Option<Box<dyn ExecHook>> {
        self.hook.take()
    }

    /// True if a hook is currently attached.
    pub fn has_hook(&self) -> bool {
        self.hook.is_some()
    }

    /// The program being executed.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// The process memory map.
    pub fn memory_map(&self) -> &MemoryMap {
        &self.map
    }

    /// Number of cores.
    pub fn num_cores(&self) -> usize {
        self.config.num_cores
    }

    /// Instructions executed so far.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// The machine's wall-clock: the maximum core cycle count.
    pub fn cycles(&self) -> u64 {
        self.core_cycles.iter().copied().max().unwrap_or(0)
    }

    /// Per-core cycle counts.
    pub fn per_core_cycles(&self) -> &[u64] {
        &self.core_cycles
    }

    /// Execution statistics so far.
    pub fn stats(&self) -> &MachineStats {
        &self.inner.stats
    }

    /// The workload's time-dilation factor.
    pub fn time_dilation(&self) -> f64 {
        self.time_dilation
    }

    /// Simulated elapsed time in seconds of the *full-size* benchmark:
    /// cycles, converted at the clock frequency, times the dilation factor.
    pub fn elapsed_benchmark_seconds(&self) -> f64 {
        self.config.latency.cycles_to_seconds(self.cycles()) * self.time_dilation
    }

    /// Drain the HITM events generated since the last call. This is how the
    /// PMU model pulls ground-truth coherence events out of the machine.
    pub fn take_hitm_events(&mut self) -> Vec<HitmEvent> {
        std::mem::take(&mut self.inner.pending_hitms)
    }

    /// Inject externally-caused cycles (driver interrupts, detector work
    /// stealing the core, instrumentation overhead) onto one core.
    pub fn charge_cycles(&mut self, core: CoreId, cycles: u64) {
        self.core_cycles[core.0] += cycles;
        self.inner.stats.injected_overhead_cycles += cycles;
    }

    /// Inject externally-caused cycles onto every core.
    pub fn charge_all_cores(&mut self, cycles: u64) {
        for c in 0..self.core_cycles.len() {
            self.charge_cycles(CoreId(c), cycles);
        }
    }

    /// Read a 64-bit word from simulated memory (for tests and examples).
    pub fn read_u64(&self, addr: Addr) -> u64 {
        self.inner.mem.read(addr, 8)
    }

    /// True if every thread has halted.
    pub fn is_done(&self) -> bool {
        self.threads.iter().all(|t| t.halted)
    }

    /// Run at most `n` instructions. Returns [`RunStatus::Done`] once all
    /// threads have halted.
    pub fn run_steps(&mut self, n: u64) -> RunStatus {
        for _ in 0..n {
            if !self.step() {
                return RunStatus::Done;
            }
        }
        if self.is_done() {
            RunStatus::Done
        } else {
            RunStatus::Running
        }
    }

    /// Run until every thread halts.
    ///
    /// # Errors
    /// Returns [`MachineError::MaxStepsExceeded`] if the configured step
    /// budget runs out first.
    pub fn run_to_completion(&mut self) -> Result<RunResult, MachineError> {
        while !self.is_done() {
            if self.steps >= self.config.max_steps {
                return Err(MachineError::MaxStepsExceeded { steps: self.config.max_steps });
            }
            self.step();
        }
        Ok(self.result())
    }

    /// Snapshot the result so far.
    pub fn result(&self) -> RunResult {
        RunResult {
            cycles: self.cycles(),
            per_core_cycles: self.core_cycles.clone(),
            stats: self.inner.stats.clone(),
            steps: self.steps,
        }
    }

    fn pick_thread(&self) -> Option<usize> {
        self.threads
            .iter()
            .enumerate()
            .filter(|(_, t)| !t.halted)
            .min_by_key(|(i, t)| (self.core_cycles[t.core], *i))
            .map(|(i, _)| i)
    }

    fn eval_operand(regs: &[u64; NUM_REGS], op: Operand) -> u64 {
        match op {
            Operand::Reg(r) => regs[r.0 as usize],
            Operand::Imm(v) => v,
        }
    }

    fn eval_addr(regs: &[u64; NUM_REGS], addr: &MemAddr) -> Addr {
        let mut a = regs[addr.base.0 as usize];
        if let Some((idx, scale)) = addr.index {
            a = a.wrapping_add(regs[idx.0 as usize].wrapping_mul(scale as u64));
        }
        a.wrapping_add(addr.offset as u64)
    }

    fn mask(value: u64, size: u8) -> u64 {
        if size >= 8 {
            value
        } else {
            value & ((1u64 << (8 * size)) - 1)
        }
    }

    fn hook_mem_op(&mut self, ti: usize, op: &MemOp) -> Option<HookAction> {
        let mut hook = self.hook.take()?;
        let core = self.threads[ti].core;
        let now = self.core_cycles[core];
        let action = {
            let mut ctx = HookCtx { inner: &mut self.inner, core, now };
            hook.on_mem_op(&mut ctx, op)
        };
        self.hook = Some(hook);
        Some(action)
    }

    fn hook_fence(&mut self, ti: usize, pc: Pc) -> u64 {
        let Some(mut hook) = self.hook.take() else { return 0 };
        let core = self.threads[ti].core;
        let now = self.core_cycles[core];
        let cycles = {
            let mut ctx = HookCtx { inner: &mut self.inner, core, now };
            hook.on_fence(&mut ctx, pc)
        };
        self.hook = Some(hook);
        cycles
    }

    fn hook_block_entry(&mut self, ti: usize, block: BlockId) -> u64 {
        let Some(mut hook) = self.hook.take() else { return 0 };
        let core = self.threads[ti].core;
        let now = self.core_cycles[core];
        let cycles = {
            let mut ctx = HookCtx { inner: &mut self.inner, core, now };
            hook.on_block_entry(&mut ctx, block)
        };
        self.hook = Some(hook);
        cycles
    }

    fn hook_thread_exit(&mut self, ti: usize) -> u64 {
        let Some(mut hook) = self.hook.take() else { return 0 };
        let core = self.threads[ti].core;
        let now = self.core_cycles[core];
        let cycles = {
            let mut ctx = HookCtx { inner: &mut self.inner, core, now };
            hook.on_thread_exit(&mut ctx)
        };
        self.hook = Some(hook);
        cycles
    }

    /// Execute one instruction on the thread whose core clock is lowest.
    /// Returns false when every thread has halted.
    fn step(&mut self) -> bool {
        let Some(ti) = self.pick_thread() else { return false };
        self.steps += 1;
        self.inner.stats.instructions += 1;

        let core = self.threads[ti].core;
        let block_id = self.threads[ti].block;
        let idx = self.threads[ti].idx;
        let pc = self.program.pc_of(block_id, idx);
        let now = self.core_cycles[core];
        let lat = self.config.latency.clone();

        let num_insts = self.program.block(block_id).insts.len();
        if idx < num_insts {
            let inst = self.program.block(block_id).insts[idx].clone();
            let mut cost = 0u64;
            match inst {
                Inst::Load { dst, addr, size } => {
                    self.inner.stats.loads += 1;
                    let a = Self::eval_addr(&self.threads[ti].regs, &addr);
                    let op = MemOp { pc, addr: a, size, kind: MemAccessKind::Load, store_value: None };
                    let action = self.hook_mem_op(ti, &op).unwrap_or(HookAction::Passthrough);
                    match action {
                        HookAction::Handled { load_value, extra_cycles } => {
                            self.inner.stats.hook_handled_ops += 1;
                            self.threads[ti].regs[dst.0 as usize] = load_value.unwrap_or(0);
                            cost += extra_cycles;
                        }
                        HookAction::Passthrough => {
                            let (v, c) = self.inner.access(
                                core,
                                pc,
                                a,
                                size,
                                false,
                                MemAccessKind::Load,
                                None,
                                now,
                            );
                            self.threads[ti].regs[dst.0 as usize] = v;
                            cost += c;
                        }
                    }
                }
                Inst::Store { src, addr, size } => {
                    self.inner.stats.stores += 1;
                    let a = Self::eval_addr(&self.threads[ti].regs, &addr);
                    let v = Self::mask(Self::eval_operand(&self.threads[ti].regs, src), size);
                    let op = MemOp {
                        pc,
                        addr: a,
                        size,
                        kind: MemAccessKind::Store,
                        store_value: Some(v),
                    };
                    let action = self.hook_mem_op(ti, &op).unwrap_or(HookAction::Passthrough);
                    match action {
                        HookAction::Handled { extra_cycles, .. } => {
                            self.inner.stats.hook_handled_ops += 1;
                            cost += extra_cycles;
                        }
                        HookAction::Passthrough => {
                            let (_, c) = self.inner.access(
                                core,
                                pc,
                                a,
                                size,
                                true,
                                MemAccessKind::Store,
                                Some(v),
                                now,
                            );
                            cost += c;
                        }
                    }
                }
                Inst::AtomicRmw { op, dst, addr, operand, expected, size } => {
                    self.inner.stats.atomics += 1;
                    // Atomics are fences: give the hook a chance to flush.
                    cost += self.hook_fence(ti, pc);
                    let a = Self::eval_addr(&self.threads[ti].regs, &addr);
                    let operand_v =
                        Self::mask(Self::eval_operand(&self.threads[ti].regs, operand), size);
                    // The read-modify-write is a single exclusive-ownership
                    // access; its load uop is what the precise PEBS event
                    // samples, so record it as a load-kind HITM.
                    let old = self.inner.mem.read(a, size);
                    let new = match op {
                        RmwOp::FetchAdd => Self::mask(old.wrapping_add(operand_v), size),
                        RmwOp::Exchange => operand_v,
                        RmwOp::CompareExchange => {
                            let exp = Self::mask(
                                Self::eval_operand(
                                    &self.threads[ti].regs,
                                    expected.unwrap_or(Operand::Imm(0)),
                                ),
                                size,
                            );
                            if old == exp {
                                operand_v
                            } else {
                                old
                            }
                        }
                    };
                    let (_, c) = self.inner.access(
                        core,
                        pc,
                        a,
                        size,
                        true,
                        MemAccessKind::Load,
                        Some(new),
                        now,
                    );
                    self.threads[ti].regs[dst.0 as usize] = old;
                    cost += c + lat.atomic_extra;
                }
                Inst::MemRmw { op, addr, operand, size } => {
                    self.inner.stats.loads += 1;
                    self.inner.stats.stores += 1;
                    let a = Self::eval_addr(&self.threads[ti].regs, &addr);
                    let rhs = Self::mask(Self::eval_operand(&self.threads[ti].regs, operand), size);
                    // Load half (this is the uop Haswell's precise HITM event
                    // samples, so a remote-Modified hit is recorded as a load).
                    let load_op =
                        MemOp { pc, addr: a, size, kind: MemAccessKind::Load, store_value: None };
                    let current = match self
                        .hook_mem_op(ti, &load_op)
                        .unwrap_or(HookAction::Passthrough)
                    {
                        HookAction::Handled { load_value, extra_cycles } => {
                            self.inner.stats.hook_handled_ops += 1;
                            cost += extra_cycles;
                            load_value.unwrap_or(0)
                        }
                        HookAction::Passthrough => {
                            let (v, c) = self.inner.access(
                                core,
                                pc,
                                a,
                                size,
                                false,
                                MemAccessKind::Load,
                                None,
                                now,
                            );
                            cost += c;
                            v
                        }
                    };
                    let new = Self::mask(op.apply(current, rhs), size);
                    let store_op = MemOp {
                        pc,
                        addr: a,
                        size,
                        kind: MemAccessKind::Store,
                        store_value: Some(new),
                    };
                    match self.hook_mem_op(ti, &store_op).unwrap_or(HookAction::Passthrough) {
                        HookAction::Handled { extra_cycles, .. } => {
                            self.inner.stats.hook_handled_ops += 1;
                            cost += extra_cycles;
                        }
                        HookAction::Passthrough => {
                            let (_, c) = self.inner.access(
                                core,
                                pc,
                                a,
                                size,
                                true,
                                MemAccessKind::Store,
                                Some(new),
                                now,
                            );
                            cost += c;
                        }
                    }
                }
                Inst::Mov { dst, src } => {
                    self.threads[ti].regs[dst.0 as usize] =
                        Self::eval_operand(&self.threads[ti].regs, src);
                    cost += lat.alu;
                }
                Inst::Alu { op, dst, lhs, rhs } => {
                    let l = self.threads[ti].regs[lhs.0 as usize];
                    let r = Self::eval_operand(&self.threads[ti].regs, rhs);
                    self.threads[ti].regs[dst.0 as usize] = op.apply(l, r);
                    cost += lat.alu;
                }
                Inst::Cmp { op, dst, lhs, rhs } => {
                    let l = self.threads[ti].regs[lhs.0 as usize];
                    let r = Self::eval_operand(&self.threads[ti].regs, rhs);
                    self.threads[ti].regs[dst.0 as usize] = op.apply(l, r);
                    cost += lat.alu;
                }
                Inst::Fence => {
                    self.inner.stats.fences += 1;
                    cost += self.hook_fence(ti, pc);
                    cost += lat.fence;
                }
                Inst::Pause => {
                    cost += lat.pause;
                }
                Inst::Nop => {
                    cost += lat.alu;
                }
            }
            self.threads[ti].idx += 1;
            self.core_cycles[core] += cost;
        } else {
            // Terminator.
            let term = self.program.block(block_id).term.clone();
            let mut cost = lat.branch;
            match term {
                Terminator::Jump(target) => {
                    self.threads[ti].block = target;
                    self.threads[ti].idx = 0;
                    cost += self.hook_block_entry(ti, target);
                }
                Terminator::Branch { cond, if_true, if_false } => {
                    let c = self.threads[ti].regs[cond.0 as usize];
                    let target = if c != 0 { if_true } else { if_false };
                    self.threads[ti].block = target;
                    self.threads[ti].idx = 0;
                    cost += self.hook_block_entry(ti, target);
                }
                Terminator::Halt => {
                    cost += self.hook_thread_exit(ti);
                    self.threads[ti].halted = true;
                }
            }
            self.core_cycles[core] += cost;
        }
        !self.is_done()
    }

    /// Names of the threads, in spawn order (for reports and tests).
    pub fn thread_names(&self) -> Vec<&str> {
        self.threads.iter().map(|t| t.name.as_str()).collect()
    }

    /// Register value of a thread (for tests).
    pub fn thread_reg(&self, thread: usize, reg: Reg) -> u64 {
        self.threads[thread].regs[reg.0 as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::image::ThreadSpec;
    use laser_isa::ProgramBuilder;

    /// A single thread storing 1..=n into consecutive u64 slots.
    fn store_loop_image(n: u64) -> (WorkloadImage, Addr) {
        let mut b = ProgramBuilder::new("store_loop");
        b.source("store_loop.c", 1);
        let body = b.block("body");
        let done = b.block("done");
        b.switch_to(body);
        // r0 = base, r1 = i
        b.store(Operand::Reg(Reg(1)), Reg(0), 0, 8);
        b.addi(Reg(0), Reg(0), 8);
        b.addi(Reg(1), Reg(1), 1);
        b.cmp_lt(Reg(2), Reg(1), Operand::Imm(n));
        b.branch(Reg(2), body, done);
        b.switch_to(done);
        b.halt();
        let program = b.finish();
        let mut image = WorkloadImage::new("store_loop", program);
        let base = image.layout_mut().heap_alloc(8 * n, 64).unwrap();
        image.push_thread(ThreadSpec::new("t0", "body").with_reg(Reg(0), base));
        (image, base)
    }

    /// Two threads hammering the same (or adjacent) 8-byte slots.
    fn sharing_image(offset1: i64, iters: u64) -> WorkloadImage {
        let mut b = ProgramBuilder::new("sharing");
        b.source("sharing.c", 10);
        let body = b.block("body");
        let done = b.block("done");
        b.switch_to(body);
        b.load(Reg(1), Reg(0), 0, 8);
        b.addi(Reg(1), Reg(1), 1);
        b.store(Operand::Reg(Reg(1)), Reg(0), 0, 8);
        b.addi(Reg(2), Reg(2), 1);
        b.cmp_lt(Reg(3), Reg(2), Operand::Imm(iters));
        b.branch(Reg(3), body, done);
        b.switch_to(done);
        b.halt();
        let program = b.finish();
        let mut image = WorkloadImage::new("sharing", program);
        let base = image.layout_mut().heap_alloc(64, 64).unwrap();
        image.push_thread(ThreadSpec::new("t0", "body").with_reg(Reg(0), base));
        image.push_thread(ThreadSpec::new("t1", "body").with_reg(Reg(0), base + offset1 as u64));
        image
    }

    #[test]
    fn single_thread_executes_and_writes_memory() {
        let (image, base) = store_loop_image(16);
        let mut m = Machine::new(MachineConfig::default(), &image);
        let result = m.run_to_completion().unwrap();
        assert!(result.steps > 16 * 5);
        assert_eq!(result.stats.hitm_events, 0);
        for i in 0..16u64 {
            assert_eq!(m.read_u64(base + i * 8), i);
        }
        assert!(m.is_done());
        assert_eq!(m.thread_names(), vec!["t0"]);
    }

    #[test]
    fn false_sharing_generates_hitm_events() {
        // Both threads write distinct words of the same cache line.
        let mut m = Machine::new(MachineConfig::default(), &sharing_image(8, 2000));
        let result = m.run_to_completion().unwrap();
        assert!(
            result.stats.hitm_events > 500,
            "expected many HITMs, got {}",
            result.stats.hitm_events
        );
        let events = m.take_hitm_events();
        assert_eq!(events.len() as u64, result.stats.hitm_events);
        // Events carry exact PCs within the program and data addresses on the
        // allocated line.
        for e in &events {
            assert!(m.program().contains_pc(e.pc));
        }
        // Draining again yields nothing.
        assert!(m.take_hitm_events().is_empty());
    }

    #[test]
    fn separated_lines_generate_no_hitms() {
        // Second thread works 2 cache lines away: no sharing at all. Offset
        // must stay within the 64-byte allocation? Allocate separately: use
        // offset of 128 within a 192-byte object.
        let mut b = ProgramBuilder::new("no_share");
        let body = b.block("body");
        let done = b.block("done");
        b.switch_to(body);
        b.load(Reg(1), Reg(0), 0, 8);
        b.addi(Reg(1), Reg(1), 1);
        b.store(Operand::Reg(Reg(1)), Reg(0), 0, 8);
        b.addi(Reg(2), Reg(2), 1);
        b.cmp_lt(Reg(3), Reg(2), Operand::Imm(1000));
        b.branch(Reg(3), body, done);
        b.switch_to(done);
        b.halt();
        let program = b.finish();
        let mut image = WorkloadImage::new("no_share", program);
        let base = image.layout_mut().heap_alloc(192, 64).unwrap();
        image.push_thread(ThreadSpec::new("t0", "body").with_reg(Reg(0), base));
        image.push_thread(ThreadSpec::new("t1", "body").with_reg(Reg(0), base + 128));
        let mut m = Machine::new(MachineConfig::default(), &image);
        let result = m.run_to_completion().unwrap();
        assert_eq!(result.stats.hitm_events, 0);
    }

    #[test]
    fn contended_run_is_slower_than_uncontended() {
        let mut contended = Machine::new(MachineConfig::default(), &sharing_image(8, 2000));
        let c = contended.run_to_completion().unwrap();
        // Same program, but second thread's data is on its own line far away.
        let mut b = ProgramBuilder::new("sharing");
        b.source("sharing.c", 10);
        let body = b.block("body");
        let done = b.block("done");
        b.switch_to(body);
        b.load(Reg(1), Reg(0), 0, 8);
        b.addi(Reg(1), Reg(1), 1);
        b.store(Operand::Reg(Reg(1)), Reg(0), 0, 8);
        b.addi(Reg(2), Reg(2), 1);
        b.cmp_lt(Reg(3), Reg(2), Operand::Imm(2000));
        b.branch(Reg(3), body, done);
        b.switch_to(done);
        b.halt();
        let program = b.finish();
        let mut image = WorkloadImage::new("sharing_fixed", program);
        let a0 = image.layout_mut().heap_alloc(64, 64).unwrap();
        let a1 = image.layout_mut().heap_alloc(64, 64).unwrap();
        image.push_thread(ThreadSpec::new("t0", "body").with_reg(Reg(0), a0));
        image.push_thread(ThreadSpec::new("t1", "body").with_reg(Reg(0), a1));
        let mut fixed = Machine::new(MachineConfig::default(), &image);
        let f = fixed.run_to_completion().unwrap();
        assert!(
            c.cycles > f.cycles * 2,
            "contended {} should be much slower than fixed {}",
            c.cycles,
            f.cycles
        );
    }

    #[test]
    fn atomic_fetch_add_is_atomic_across_threads() {
        let mut b = ProgramBuilder::new("atomic_inc");
        let body = b.block("body");
        let done = b.block("done");
        b.switch_to(body);
        b.atomic_fetch_add(Reg(1), Reg(0), 0, Operand::Imm(1), 8);
        b.addi(Reg(2), Reg(2), 1);
        b.cmp_lt(Reg(3), Reg(2), Operand::Imm(500));
        b.branch(Reg(3), body, done);
        b.switch_to(done);
        b.halt();
        let program = b.finish();
        let mut image = WorkloadImage::new("atomic_inc", program);
        let counter = image.layout_mut().heap_alloc(8, 64).unwrap();
        for t in 0..4 {
            image.push_thread(ThreadSpec::new(format!("t{t}"), "body").with_reg(Reg(0), counter));
        }
        let mut m = Machine::new(MachineConfig::default(), &image);
        let result = m.run_to_completion().unwrap();
        assert_eq!(m.read_u64(counter), 4 * 500);
        assert!(result.stats.atomics >= 2000);
        // True sharing on the counter produces HITMs too.
        assert!(result.stats.hitm_events > 100);
    }

    #[test]
    fn max_steps_guard_trips_on_infinite_loop() {
        let mut b = ProgramBuilder::new("spin");
        let body = b.block("body");
        b.switch_to(body);
        b.pause();
        b.jump(body);
        let program = b.finish();
        let mut image = WorkloadImage::new("spin", program);
        image.push_thread(ThreadSpec::new("t0", "body"));
        let config = MachineConfig { max_steps: 10_000, ..Default::default() };
        let mut m = Machine::new(config, &image);
        let err = m.run_to_completion().unwrap_err();
        assert!(matches!(err, MachineError::MaxStepsExceeded { .. }));
        assert!(!err.to_string().is_empty());
    }

    #[test]
    fn charge_cycles_adds_overhead() {
        let (image, _) = store_loop_image(4);
        let mut m = Machine::new(MachineConfig::default(), &image);
        let before = m.cycles();
        m.charge_cycles(CoreId(0), 1000);
        assert_eq!(m.cycles(), before + 1000);
        m.charge_all_cores(10);
        assert_eq!(m.stats().injected_overhead_cycles, 1000 + 10 * 4);
    }

    #[test]
    fn incremental_execution_reaches_same_end_state() {
        let (image, base) = store_loop_image(32);
        let mut m = Machine::new(MachineConfig::default(), &image);
        while m.run_steps(7) == RunStatus::Running {}
        assert!(m.is_done());
        for i in 0..32u64 {
            assert_eq!(m.read_u64(base + i * 8), i);
        }
    }

    #[test]
    fn stack_pointer_register_is_initialised() {
        let (image, _) = store_loop_image(1);
        let m = Machine::new(MachineConfig::default(), &image);
        let sp = m.thread_reg(0, STACK_POINTER_REG);
        assert!(m.memory_map().is_stack(sp));
    }

    #[test]
    fn hook_can_intercept_and_service_ops() {
        use std::collections::HashMap;

        /// Buffers every store to the watched line and serves loads from it.
        struct TinySsb {
            watched_line: Addr,
            buffer: HashMap<Addr, u64>,
            intercepted: usize,
        }
        impl ExecHook for TinySsb {
            fn on_mem_op(&mut self, _ctx: &mut HookCtx<'_>, op: &MemOp) -> HookAction {
                if crate::addr::line_of(op.addr) != self.watched_line {
                    return HookAction::Passthrough;
                }
                self.intercepted += 1;
                match op.kind {
                    MemAccessKind::Store => {
                        self.buffer.insert(op.addr, op.store_value.unwrap_or(0));
                        HookAction::Handled { load_value: None, extra_cycles: 6 }
                    }
                    MemAccessKind::Load => match self.buffer.get(&op.addr) {
                        Some(&v) => HookAction::Handled { load_value: Some(v), extra_cycles: 6 },
                        None => HookAction::Passthrough,
                    },
                }
            }
        }

        let image = sharing_image(8, 500);
        let watched = {
            // The shared allocation is the first heap allocation; recompute it.
            let mut probe = WorkloadImage::new("probe", {
                let mut b = ProgramBuilder::new("p");
                let blk = b.block("main");
                b.switch_to(blk);
                b.halt();
                b.finish()
            });
            probe.layout_mut().heap_alloc(64, 64).unwrap()
        };
        let mut m = Machine::new(MachineConfig::default(), &image);
        m.attach_hook(Box::new(TinySsb {
            watched_line: crate::addr::line_of(watched),
            buffer: HashMap::new(),
            intercepted: 0,
        }));
        assert!(m.has_hook());
        let result = m.run_to_completion().unwrap();
        // With every store to the contended line buffered, HITM traffic on it
        // disappears (only cold misses remain possible).
        assert!(result.stats.hook_handled_ops > 0);
        assert!(result.stats.hitm_events < 10);
        let hook = m.detach_hook();
        assert!(hook.is_some());
        assert!(!m.has_hook());
    }
}
