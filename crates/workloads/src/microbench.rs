//! The Section 3.1 characterization test cases.
//!
//! The paper characterizes Haswell's HITM records with "over 160 test cases
//! coded in assembly. These test cases each involve two threads engaged in
//! true or false sharing, with either write-read/read-write or write-write
//! sharing. Each thread performs the same operation repeatedly in an infinite
//! loop, where the loop body varies across tests from a single memory
//! operation to hundreds of … instructions."
//!
//! [`characterization_cases`] generates the equivalent matrix of cases
//! (bounded loops so the simulation terminates); each case knows the ground
//! truth — the PCs and data addresses truly involved in contention — so the
//! Figure 3 experiment can score every HITM record it receives.

use laser_isa::inst::{Operand, Reg};
use laser_isa::program::Pc;
use laser_isa::ProgramBuilder;
use laser_machine::{Addr, ThreadSpec, WorkloadImage};

use crate::common::{close_loop, open_loop, regs};

/// True sharing (same bytes) or false sharing (distinct bytes, same line).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SharingPattern {
    /// Both threads touch the same 8 bytes.
    TrueSharing,
    /// The threads touch different 8-byte slots of one cache line.
    FalseSharing,
}

/// Which threads write.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WriteMode {
    /// One thread writes, the other only reads (the paper's RW tests).
    ReadWrite,
    /// Both threads write (the WW tests).
    WriteWrite,
}

/// One characterization test case.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CharacterizationCase {
    /// Case index (0..160).
    pub id: usize,
    /// Sharing pattern.
    pub pattern: SharingPattern,
    /// Write mode.
    pub mode: WriteMode,
    /// Number of filler instructions in each loop body.
    pub filler_ops: usize,
    /// Loop iterations per thread.
    pub iters: u64,
}

/// A built test case: the image plus the ground truth needed to score records.
#[derive(Debug, Clone)]
pub struct BuiltCase {
    /// The two-thread workload image.
    pub image: WorkloadImage,
    /// PCs of the instructions genuinely involved in the contention.
    pub contended_pcs: Vec<Pc>,
    /// Data addresses genuinely involved in the contention.
    pub contended_addrs: Vec<Addr>,
}

impl CharacterizationCase {
    /// The category label used in Figure 3 ("TSRW", "FSRW", "TSWW", "FSWW").
    pub fn label(&self) -> &'static str {
        match (self.pattern, self.mode) {
            (SharingPattern::TrueSharing, WriteMode::ReadWrite) => "TSRW",
            (SharingPattern::FalseSharing, WriteMode::ReadWrite) => "FSRW",
            (SharingPattern::TrueSharing, WriteMode::WriteWrite) => "TSWW",
            (SharingPattern::FalseSharing, WriteMode::WriteWrite) => "FSWW",
        }
    }

    /// Build the two-thread workload for this case, returning the image and
    /// the ground-truth PCs/addresses.
    pub fn build(&self) -> BuiltCase {
        let file = "characterization.S";
        let mut b = ProgramBuilder::new(format!("chara_{}", self.id));

        // Writer thread: stores to slot 0 of the shared line every iteration.
        b.source(file, 10);
        let writer_entry = b.block("writer");
        b.switch_to(writer_entry);
        let (w_body, w_exit) = open_loop(&mut b, "writer_loop");
        b.source(file, 12);
        b.store(Operand::Reg(regs::IV), regs::DATA, 0, 8);
        b.nops(self.filler_ops);
        // The writer's loop is cheaper than the peer's (its accesses rarely
        // pay the HITM transfer), so it runs more iterations to keep both
        // threads contending for the whole measurement window, as the paper's
        // infinite-loop test cases do.
        close_loop(&mut b, w_body, w_exit, self.iters * 3);
        b.halt();

        // Peer thread: reads or writes slot 0 (true sharing) or slot 1 (false
        // sharing).
        let peer_offset: i64 = match self.pattern {
            SharingPattern::TrueSharing => 0,
            SharingPattern::FalseSharing => 8,
        };
        b.source(file, 20);
        let peer_entry = b.block("peer");
        b.switch_to(peer_entry);
        let (p_body, p_exit) = open_loop(&mut b, "peer_loop");
        b.source(file, 22);
        match self.mode {
            WriteMode::ReadWrite => {
                b.load(Reg(9), regs::DATA, peer_offset, 8);
            }
            WriteMode::WriteWrite => {
                b.store(Operand::Reg(regs::IV), regs::DATA, peer_offset, 8);
            }
        }
        b.nops(self.filler_ops);
        close_loop(&mut b, p_body, p_exit, self.iters);
        b.halt();

        let program = b.finish();
        // The contended instructions are the first instruction of each loop
        // body (the store / the peer's memory op).
        let writer_mem_pc = program.pc_of(w_body, 0);
        let peer_mem_pc = program.pc_of(p_body, 0);

        let mut image = WorkloadImage::new(format!("chara_{}", self.id), program);
        let line = image.layout_mut().heap_alloc(64, 64).expect("shared line"); // lint:allow(panic) — workload images size their heaps to fit; allocation failure is a builder bug
        image.push_thread(
            ThreadSpec::new("writer", "writer")
                .with_reg(regs::DATA, line)
                .with_reg(regs::TID, 0),
        );
        image.push_thread(
            ThreadSpec::new("peer", "peer")
                .with_reg(regs::DATA, line)
                .with_reg(regs::TID, 1),
        );

        let mut contended_addrs = vec![line];
        if peer_offset != 0 {
            contended_addrs.push(line + peer_offset as u64);
        }
        BuiltCase {
            image,
            contended_pcs: vec![writer_mem_pc, peer_mem_pc],
            contended_addrs,
        }
    }
}

/// Generate the full matrix of 160 characterization cases: the four
/// sharing/write categories crossed with twenty loop-body sizes and two loop
/// lengths.
pub fn characterization_cases() -> Vec<CharacterizationCase> {
    let mut cases = Vec::new();
    let mut id = 0;
    for pattern in [SharingPattern::TrueSharing, SharingPattern::FalseSharing] {
        for mode in [WriteMode::ReadWrite, WriteMode::WriteWrite] {
            for filler in 0..20usize {
                for iters in [600u64, 1000u64] {
                    cases.push(CharacterizationCase {
                        id,
                        pattern,
                        mode,
                        filler_ops: filler * 5,
                        iters,
                    });
                    id += 1;
                }
            }
        }
    }
    cases
}

#[cfg(test)]
mod tests {
    use super::*;
    use laser_machine::{Machine, MachineConfig};

    #[test]
    fn there_are_160_cases_across_four_categories() {
        let cases = characterization_cases();
        assert_eq!(cases.len(), 160);
        for label in ["TSRW", "FSRW", "TSWW", "FSWW"] {
            assert_eq!(cases.iter().filter(|c| c.label() == label).count(), 40);
        }
    }

    #[test]
    fn cases_generate_hitms_with_exact_ground_truth() {
        let case = CharacterizationCase {
            id: 0,
            pattern: SharingPattern::FalseSharing,
            mode: WriteMode::ReadWrite,
            filler_ops: 5,
            iters: 500,
        };
        let built = case.build();
        let mut m = Machine::new(MachineConfig::default(), &built.image);
        let r = m.run_to_completion().unwrap();
        assert!(
            r.stats.hitm_events > 100,
            "only {} HITMs",
            r.stats.hitm_events
        );
        // Every ground-truth HITM event points at one of the contended PCs and
        // one of the contended addresses.
        let events = m.take_hitm_events();
        for e in &events {
            assert!(
                built.contended_pcs.contains(&e.pc),
                "unexpected pc {:#x}",
                e.pc
            );
            assert!(
                built
                    .contended_addrs
                    .iter()
                    .any(|&a| e.addr >= a && e.addr < a + 8),
                "unexpected addr {:#x}",
                e.addr
            );
        }
    }

    #[test]
    fn true_sharing_write_write_also_contends() {
        let case = CharacterizationCase {
            id: 1,
            pattern: SharingPattern::TrueSharing,
            mode: WriteMode::WriteWrite,
            filler_ops: 0,
            iters: 400,
        };
        let built = case.build();
        let mut m = Machine::new(MachineConfig::default(), &built.image);
        let r = m.run_to_completion().unwrap();
        assert!(r.stats.hitm_events > 100);
        assert!(r.stats.hitm_stores > 0);
    }

    #[test]
    fn labels_cover_all_categories() {
        let c = |p, m| CharacterizationCase {
            id: 0,
            pattern: p,
            mode: m,
            filler_ops: 0,
            iters: 1,
        };
        assert_eq!(
            c(SharingPattern::TrueSharing, WriteMode::ReadWrite).label(),
            "TSRW"
        );
        assert_eq!(
            c(SharingPattern::FalseSharing, WriteMode::WriteWrite).label(),
            "FSWW"
        );
    }
}
