//! Criterion bench regenerating Table 1 at reduced scale.
use criterion::{criterion_group, criterion_main, Criterion};
use laser_bench::accuracy::table1_accuracy;
use laser_bench::ExperimentScale;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1_accuracy");
    group.sample_size(10);
    group.bench_function("table1_accuracy", |b| {
        b.iter(|| table1_accuracy(&ExperimentScale::bench()).unwrap())
    });
    group.finish();
}
criterion_group!(benches, bench);
criterion_main!(benches);
