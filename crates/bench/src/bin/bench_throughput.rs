//! Throughput harness for the simulator hot loop: the per-commit perf
//! trajectory and its two CI gates.
//!
//! ```text
//! bench_throughput [--scale S] [--workloads w1,w2,...] [--repeats N]
//!                  [--sav V] [--capacity C] [--shards N] [--driver-lag L]
//!                  [--min-ratio R] [--output PATH] [--topologies t1,t2,...]
//!                  [--hotloop-output PATH] [--hotloop-baseline PATH]
//!                  [--min-speedup R]
//! ```
//!
//! For each workload × topology the harness runs the same LASERDETECT session
//! twice per repeat — once inline, once as the three-stage pipeline
//! (machine | driver | detector shards) — interleaved so machine-load drift
//! hits both modes equally, and scores each mode by its **best** observed
//! steps/second (robust against scheduling noise). It also asserts the
//! tentpole invariant on every pair: at `--driver-lag 0` (the default) the
//! pipelined outcome must be byte-identical to the inline one (cycles,
//! report, driver statistics), so the perf gates double as a determinism
//! check. At `--driver-lag 1+` the charge-back is deferred, so outcomes
//! legitimately diverge from inline; the harness instead asserts the
//! pipelined outcome is identical across every repeat (run-to-run
//! determinism, the lag≥1 contract).
//!
//! Each pipelined row also carries **stage occupancy**: the machine, driver
//! and detector busy times of the best pipelined run divided by its wall
//! time. On a multi-core host healthy overlap shows all three fractions
//! high simultaneously; on a single-core host they sum to at most ~1.
//!
//! Two reports come out of one measurement sweep:
//!
//! * **`BENCH_pipeline.json`** (override with `--output`) — the flat-topology
//!   rows, scored as pipelined/inline ratios. The process exits non-zero when
//!   `geomean_ratio < --min-ratio` (default 1.0: pipelining must not be slower
//!   than inline).
//! * **`BENCH_hotloop.json`** (override with `--hotloop-output`) — the perf
//!   *trajectory*: absolute steps/second for every workload × topology × mode,
//!   plus a headline number (geomean of the flat inline steps/sec across
//!   workloads). When `--hotloop-baseline PATH` names a previously committed
//!   trajectory, the harness computes `speedup = headline / baseline headline`
//!   and exits non-zero if it falls below `--min-speedup`. That is the
//!   hot-loop regression gate: every PR that touches `Machine::step`, the
//!   scheduler or the dispatch path is judged against the recorded baseline.
//!
//! ```json
//! {"kind":"bench_hotloop", "rows":[{"workload":"histogram'",
//!  "topology":"flat", "steps":..., "inline_steps_per_sec":...,
//!  "pipelined_steps_per_sec":...}], "headline_steps_per_sec":...,
//!  "baseline_headline_steps_per_sec":..., "speedup":..., "pass":true}
//! ```
//!
//! One environmental caveat: on a host with a **single hardware thread**
//! the pipeline cannot overlap anything — the driver and detector stages
//! timeslice against the machine stage — so `pipelined ≥ inline` is
//! physically out of reach and the measured ratio is pure scheduler noise
//! around 1.0. The harness reports the host's `parallelism` in the JSON and,
//! when it is 1, relaxes the effective pipeline gate to
//! `min(min_ratio, 0.90)` (tightened from the 0.85 the two-stage pipeline
//! shipped with — the three-stage charge-back costs at most a couple of
//! context switches per quantum, and `--driver-lag 1` buys most of it back):
//! single-core hosts still catch gross regressions, while every multi-core
//! host — including every hosted CI runner — holds the strict line. The
//! hot-loop gate needs no such relaxation: it compares absolute inline
//! throughput, which a single-core host measures fine.
//!
//! The default `--sav 1` samples every HITM event, the detector-heaviest
//! configuration the hardware allows; it is where the paper's concurrency
//! claim matters most and where serializing the detector hurts most.

use std::env;
use std::process::ExitCode;
use std::time::Instant;

use laser_bench::runner::build_under_tool;
use laser_bench::{geomean, validate_workload_names, PipelineConfig};
use laser_core::{Laser, LaserConfig, LaserOutcome};
use laser_machine::{TopologySpec, WorkloadImage};
use laser_workloads::{registry, BuildOptions, WorkloadSpec};
use serde::json::Value;

const USAGE: &str = "usage: bench_throughput [--scale S] [--workloads w1,w2,...] [--repeats N] \
                     [--sav V] [--capacity C] [--shards N] [--driver-lag L] [--min-ratio R] \
                     [--output PATH] [--topologies t1,t2,...] [--hotloop-output PATH] \
                     [--hotloop-baseline PATH] [--min-speedup R]\n\
                     \n\
                     --scale S            workload input-size multiplier (default 2.0; below ~0.5\n\
                     \x20                     runs are too short for the pipeline to amortize)\n\
                     --workloads ...      comma-separated workload names (default: a contended trio)\n\
                     --repeats N          timed repeats per mode, best-of scoring (default 5)\n\
                     --sav V              PEBS sample-after-value (default 1: detector-heaviest)\n\
                     --capacity C         record-channel capacity in batches (default 2)\n\
                     --shards N           detector worker shards on the pipelined leg\n\
                     \x20                     (default 1; line-hash routing keeps the output\n\
                     \x20                     byte-identical, so the equality assert still holds)\n\
                     --driver-lag L       quanta of charge-back lag on the pipelined leg\n\
                     \x20                     (default 0: byte-identical to inline and asserted\n\
                     \x20                     so; 1+ defers charges, asserted run-to-run\n\
                     \x20                     deterministic instead)\n\
                     --min-ratio R        fail unless geomean(pipelined/inline) >= R on the flat\n\
                     \x20                     rows (default 1.0; relaxed to 0.90 on single-core\n\
                     \x20                     hosts, where the pipeline has nothing to overlap)\n\
                     --output PATH        pipeline JSON report (default BENCH_pipeline.json)\n\
                     --topologies ...     comma-separated topology presets to sweep in the\n\
                     \x20                     trajectory (default flat,2s,4s)\n\
                     --hotloop-output P   trajectory JSON report (default BENCH_hotloop.json)\n\
                     --hotloop-baseline P committed trajectory to gate against (default: none)\n\
                     --min-speedup R      with a baseline: fail unless headline steps/sec is at\n\
                     \x20                     least R x the baseline headline (default 1.0)";

/// Workloads whose contention keeps the detector busy enough for the
/// pipeline overlap to matter.
const DEFAULT_WORKLOADS: &[&str] = &["histogram'", "linear_regression", "reverse_index"];

/// Topology presets the trajectory sweeps by default: the paper's flat
/// machine plus both NUMA presets, so scheduler work at 8 and 16 cores is on
/// the record.
const DEFAULT_TOPOLOGIES: &[TopologySpec] = &[
    TopologySpec::Flat,
    TopologySpec::DualSocket,
    TopologySpec::QuadSocket,
];

#[derive(Debug)]
struct Cli {
    scale: f64,
    workloads: Vec<String>,
    repeats: usize,
    sav: u32,
    capacity: usize,
    shards: usize,
    driver_lag: usize,
    min_ratio: f64,
    output: String,
    topologies: Vec<TopologySpec>,
    hotloop_output: String,
    hotloop_baseline: Option<String>,
    min_speedup: f64,
}

impl Cli {
    fn parse(args: &[String]) -> Result<Cli, String> {
        let mut cli = Cli {
            scale: 2.0,
            workloads: DEFAULT_WORKLOADS.iter().map(|s| s.to_string()).collect(),
            repeats: 5,
            sav: 1,
            capacity: 2,
            shards: 1,
            driver_lag: 0,
            min_ratio: 1.0,
            output: "BENCH_pipeline.json".to_string(),
            topologies: DEFAULT_TOPOLOGIES.to_vec(),
            hotloop_output: "BENCH_hotloop.json".to_string(),
            hotloop_baseline: None,
            min_speedup: 1.0,
        };
        let mut i = 0;
        let value = |args: &[String], i: usize| -> Result<String, String> {
            args.get(i + 1)
                .cloned()
                .ok_or_else(|| format!("{} needs a value", args[i]))
        };
        while i < args.len() {
            match args[i].as_str() {
                "--scale" => cli.scale = value(args, i)?.parse().map_err(|e| format!("{e}"))?,
                "--workloads" => {
                    cli.workloads = value(args, i)?.split(',').map(str::to_string).collect();
                }
                "--repeats" => {
                    let n: usize = value(args, i)?.parse().map_err(|e| format!("{e}"))?;
                    cli.repeats = n.max(1);
                }
                "--sav" => cli.sav = value(args, i)?.parse().map_err(|e| format!("{e}"))?,
                "--capacity" => {
                    cli.capacity = value(args, i)?.parse().map_err(|e| format!("{e}"))?;
                }
                "--shards" => {
                    let n: usize = value(args, i)?.parse().map_err(|e| format!("{e}"))?;
                    cli.shards = n.max(1);
                }
                "--driver-lag" => {
                    cli.driver_lag = value(args, i)?.parse().map_err(|e| format!("{e}"))?;
                }
                "--min-ratio" => {
                    cli.min_ratio = value(args, i)?.parse().map_err(|e| format!("{e}"))?;
                }
                "--output" => cli.output = value(args, i)?,
                "--topologies" => {
                    cli.topologies = value(args, i)?
                        .split(',')
                        .map(|t| {
                            TopologySpec::parse(t).ok_or_else(|| {
                                format!("unknown topology '{t}' (flat, 2s, 4s, 8s, 32s)")
                            })
                        })
                        .collect::<Result<Vec<_>, _>>()?;
                }
                "--hotloop-output" => cli.hotloop_output = value(args, i)?,
                "--hotloop-baseline" => cli.hotloop_baseline = Some(value(args, i)?),
                "--min-speedup" => {
                    cli.min_speedup = value(args, i)?.parse().map_err(|e| format!("{e}"))?;
                }
                "--help" | "-h" => return Err(USAGE.to_string()),
                other => return Err(format!("unknown argument '{other}'\n{USAGE}")),
            }
            i += 2;
        }
        if cli.topologies.is_empty() || !cli.topologies.contains(&TopologySpec::Flat) {
            return Err(
                "--topologies must include 'flat' (the pipeline gate and the headline \
                        are scored on the flat rows)"
                    .to_string(),
            );
        }
        let names: Vec<&str> = cli.workloads.iter().map(String::as_str).collect();
        validate_workload_names(&names, &registry()).map_err(|e| e.to_string())?;
        Ok(cli)
    }
}

/// One timed run: wall seconds and the outcome it produced.
fn timed<F: FnOnce() -> Result<LaserOutcome, String>>(f: F) -> Result<(f64, LaserOutcome), String> {
    let start = Instant::now();
    let outcome = f()?;
    Ok((start.elapsed().as_secs_f64(), outcome))
}

/// The fields whose equality makes two outcomes "the same run".
fn fingerprint(outcome: &LaserOutcome) -> String {
    format!(
        "steps={} cycles={} per_core={:?} detector_cycles={} driver={:?} report={:?}",
        outcome.run.steps,
        outcome.run.cycles,
        outcome.run.per_core_cycles,
        outcome.detector_cycles,
        outcome.driver_stats,
        outcome.report
    )
}

/// Machine / driver / detector busy fractions of one pipelined run: each
/// stage's busy time divided by the run's wall time.
#[derive(Debug, Clone, Copy, Default)]
struct Occupancy {
    machine: f64,
    driver: f64,
    detector: f64,
}

impl Occupancy {
    fn of(outcome: &LaserOutcome, wall_secs: f64) -> Option<Occupancy> {
        let busy = outcome.stage_occupancy?;
        let wall = wall_secs.max(1e-9);
        Some(Occupancy {
            machine: busy.machine_busy.as_secs_f64() / wall,
            driver: busy.driver_busy.as_secs_f64() / wall,
            detector: busy.detector_busy.as_secs_f64() / wall,
        })
    }
}

/// Best-of-N steps/sec for one workload on one topology, inline and
/// pipelined, plus the stage occupancy of the best pipelined run.
struct Score {
    workload: String,
    topology: TopologySpec,
    steps: u64,
    inline_best: f64,
    piped_best: f64,
    occupancy: Occupancy,
}

impl Score {
    fn ratio(&self) -> f64 {
        self.piped_best / self.inline_best
    }
}

fn bench_cell(
    spec: &WorkloadSpec,
    opts: &BuildOptions,
    config: &LaserConfig,
    pipeline: PipelineConfig,
    topo: TopologySpec,
    repeats: usize,
) -> Result<Score, String> {
    // Image construction is mode-independent setup; build it once outside
    // the timed window so the measured ratio reflects only session
    // execution (the pipelined leg still pays its own worker spawn — that
    // genuinely is part of the pipelined deployment).
    let opts = opts.clone().for_topology(topo);
    let image: WorkloadImage = build_under_tool(spec, &opts);
    let config = if topo == TopologySpec::Flat {
        config.clone()
    } else {
        config.clone().with_topology(topo)
    };
    let run_session = |pipelined: bool| -> Result<LaserOutcome, String> {
        Laser::builder()
            .config(config.clone())
            .pipeline_config(if pipelined {
                pipeline
            } else {
                PipelineConfig::default()
            })
            .build(&image)
            .run()
            .map_err(|e| format!("{}@{}: {e}", spec.name, topo.key()))
    };
    let mut inline_best = 0f64;
    let mut piped_best = 0f64;
    let mut steps = 0u64;
    let mut occupancy = Occupancy::default();
    let mut first_piped_fp: Option<String> = None;
    for _ in 0..repeats {
        // Interleave the modes so load drift lands on both equally.
        let (inline_secs, inline_outcome) = timed(|| run_session(false))?;
        let (piped_secs, piped_outcome) = timed(|| run_session(true))?;
        let (a, b) = (fingerprint(&inline_outcome), fingerprint(&piped_outcome));
        if pipeline.driver_lag_quanta == 0 {
            // Lag 0 contract: the pipelined run is byte-identical to inline.
            if a != b {
                return Err(format!(
                    "{}@{}: pipelined outcome diverged from inline\n inline: {a}\n piped:  {b}",
                    spec.name,
                    topo.key()
                ));
            }
        } else {
            // Lag >= 1 contract: deferring charges legitimately changes the
            // interleaving, so the pipelined run is not inline-identical —
            // but it must be identical to every other pipelined run.
            match &first_piped_fp {
                None => first_piped_fp = Some(b),
                Some(first) if *first != b => {
                    return Err(format!(
                        "{}@{}: lagged pipelined outcome varies across repeats\n first: {first}\n \
                         later: {b}",
                        spec.name,
                        topo.key()
                    ));
                }
                Some(_) => {}
            }
        }
        steps = inline_outcome.run.steps;
        inline_best = inline_best.max(steps as f64 / inline_secs.max(1e-9));
        let piped_sps = steps as f64 / piped_secs.max(1e-9);
        if piped_sps > piped_best {
            piped_best = piped_sps;
            occupancy = Occupancy::of(&piped_outcome, piped_secs).unwrap_or_default();
        }
    }
    Ok(Score {
        workload: spec.name.to_string(),
        topology: topo,
        steps,
        inline_best,
        piped_best,
        occupancy,
    })
}

/// The pipeline gate actually applied: the configured `--min-ratio` on any
/// host with two or more hardware threads; relaxed on a single-core host,
/// where the detector stage timeslices against the machine stage and
/// `>= 1.0` would be a coin flip on scheduler noise.
fn effective_min_ratio(min_ratio: f64, parallelism: usize) -> f64 {
    if parallelism >= 2 {
        min_ratio
    } else {
        min_ratio.min(0.90)
    }
}

/// The headline number of the trajectory: geomean over workloads of the
/// *inline flat* steps/sec — the raw hot-loop speed, independent of pipeline
/// overlap and topology pricing.
fn headline(scores: &[Score]) -> f64 {
    let flat: Vec<f64> = scores
        .iter()
        .filter(|s| s.topology == TopologySpec::Flat)
        .map(|s| s.inline_best)
        .collect();
    geomean(&flat)
}

/// Extract the headline steps/sec from a committed trajectory report.
fn baseline_headline(path: &str) -> Result<f64, String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("read hotloop baseline {path}: {e}"))?;
    let doc = Value::parse(&text).map_err(|e| format!("parse hotloop baseline {path}: {e:?}"))?;
    match doc.get("headline_steps_per_sec") {
        Some(Value::Float(f)) if *f > 0.0 => Ok(*f),
        Some(Value::Int(i)) if *i > 0 => Ok(*i as f64),
        _ => Err(format!(
            "hotloop baseline {path} has no positive headline_steps_per_sec"
        )),
    }
}

/// The flat-topology report (`BENCH_pipeline.json`): pipelined/inline ratios
/// behind the `--min-ratio` gate. Schema unchanged from when it was the only
/// report, so existing consumers keep parsing it.
fn pipeline_json(
    cli: &Cli,
    parallelism: usize,
    flat: &[&Score],
    geomean_ratio: f64,
    gate: f64,
    pass: bool,
) -> Value {
    let workloads: Vec<Value> = flat
        .iter()
        .map(|s| {
            Value::object()
                .set("workload", s.workload.as_str())
                .set("steps", s.steps as i64)
                .set("inline_steps_per_sec", s.inline_best)
                .set("pipelined_steps_per_sec", s.piped_best)
                .set("ratio", s.ratio())
                .set("machine_busy_frac", s.occupancy.machine)
                .set("driver_busy_frac", s.occupancy.driver)
                .set("detector_busy_frac", s.occupancy.detector)
        })
        .collect();
    Value::object()
        .set("kind", "bench_pipeline")
        .set("scale", cli.scale)
        .set("repeats", cli.repeats as i64)
        .set("sav", cli.sav as i64)
        .set("capacity", cli.capacity as i64)
        .set("shards", cli.shards as i64)
        .set("driver_lag", cli.driver_lag as i64)
        .set("parallelism", parallelism as i64)
        .set("min_ratio", cli.min_ratio)
        .set("effective_min_ratio", gate)
        .set("workloads", Value::Array(workloads))
        .set("geomean_ratio", geomean_ratio)
        .set("pass", pass)
}

/// The trajectory report (`BENCH_hotloop.json`): absolute steps/sec for every
/// workload × topology × mode plus the headline, gated against a committed
/// baseline when one is named.
fn hotloop_json(
    cli: &Cli,
    parallelism: usize,
    scores: &[Score],
    headline_sps: f64,
    baseline: Option<(&str, f64)>,
    pass: bool,
) -> Value {
    let rows: Vec<Value> = scores
        .iter()
        .map(|s| {
            Value::object()
                .set("workload", s.workload.as_str())
                .set("topology", s.topology.key())
                .set("steps", s.steps as i64)
                .set("inline_steps_per_sec", s.inline_best)
                .set("pipelined_steps_per_sec", s.piped_best)
        })
        .collect();
    let (baseline_path, baseline_sps, speedup) = match baseline {
        Some((path, sps)) => (
            Value::Str(path.to_string()),
            Value::Float(sps),
            Value::Float(headline_sps / sps),
        ),
        None => (Value::Null, Value::Null, Value::Null),
    };
    Value::object()
        .set("kind", "bench_hotloop")
        .set("scale", cli.scale)
        .set("repeats", cli.repeats as i64)
        .set("sav", cli.sav as i64)
        .set("capacity", cli.capacity as i64)
        .set("shards", cli.shards as i64)
        .set("parallelism", parallelism as i64)
        .set(
            "topologies",
            Value::Array(
                cli.topologies
                    .iter()
                    .map(|t| Value::Str(t.key().to_string()))
                    .collect(),
            ),
        )
        .set("rows", Value::Array(rows))
        .set("headline_steps_per_sec", headline_sps)
        .set("baseline", baseline_path)
        .set("baseline_headline_steps_per_sec", baseline_sps)
        .set("speedup", speedup)
        .set("min_speedup", cli.min_speedup)
        .set("pass", pass)
}

fn run(cli: &Cli) -> Result<bool, String> {
    // Resolve the baseline before anything simulates: a bad path or a
    // malformed file should fail the invocation immediately.
    let baseline = match &cli.hotloop_baseline {
        Some(path) => Some((path.as_str(), baseline_headline(path)?)),
        None => None,
    };
    let config = LaserConfig::detection_only().with_sav(cli.sav);
    let pipeline = PipelineConfig::pipelined()
        .with_capacity(cli.capacity)
        .with_shards(cli.shards)
        .with_driver_lag(cli.driver_lag);
    let opts = BuildOptions {
        scale: cli.scale,
        ..Default::default()
    };
    let parallelism = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let gate = effective_min_ratio(cli.min_ratio, parallelism);
    if parallelism < 2 {
        eprintln!(
            "note: single hardware thread available; the pipeline has nothing to overlap \
             against, so the pipeline gate is relaxed to {gate:.2}"
        );
    }
    let all = registry();
    let mut scores = Vec::new();
    for name in &cli.workloads {
        let spec = all
            .iter()
            .find(|s| s.name == name.as_str())
            .expect("names validated at parse time");
        for topo in &cli.topologies {
            eprintln!(
                "benching {name}@{} ({} repeats x 2 modes)...",
                topo.key(),
                cli.repeats
            );
            let score = bench_cell(spec, &opts, &config, pipeline, *topo, cli.repeats)?;
            eprintln!(
                "  inline {:>12.0} steps/s | pipelined {:>12.0} steps/s | ratio {:.3}",
                score.inline_best,
                score.piped_best,
                score.ratio()
            );
            scores.push(score);
        }
    }

    // Pipeline gate: flat rows only.
    let flat: Vec<&Score> = scores
        .iter()
        .filter(|s| s.topology == TopologySpec::Flat)
        .collect();
    let ratios: Vec<f64> = flat.iter().map(|s| s.ratio()).collect();
    let geomean_ratio = geomean(&ratios);
    let pipeline_pass = geomean_ratio >= gate;
    let json = pipeline_json(cli, parallelism, &flat, geomean_ratio, gate, pipeline_pass).render();
    std::fs::write(&cli.output, format!("{json}\n"))
        .map_err(|e| format!("write {}: {e}", cli.output))?;
    // Reports live in the named output files; the console copy is a
    // diagnostic and must not pollute stdout (CI pipes it).
    eprintln!("{json}");
    eprintln!(
        "geomean pipelined/inline = {geomean_ratio:.3} (gate: >= {gate:.3}) -> {}; wrote {}",
        if pipeline_pass { "pass" } else { "FAIL" },
        cli.output
    );

    // Hot-loop gate: headline vs the committed baseline, when one is named.
    let headline_sps = headline(&scores);
    let hotloop_pass = match baseline {
        Some((_, sps)) => headline_sps / sps >= cli.min_speedup,
        None => true,
    };
    let json = hotloop_json(
        cli,
        parallelism,
        &scores,
        headline_sps,
        baseline,
        hotloop_pass,
    );
    let json = json.render();
    std::fs::write(&cli.hotloop_output, format!("{json}\n"))
        .map_err(|e| format!("write {}: {e}", cli.hotloop_output))?;
    eprintln!("{json}");
    match baseline {
        Some((path, sps)) => eprintln!(
            "headline {headline_sps:.0} steps/s vs baseline {sps:.0} ({path}): speedup {:.3} \
             (gate: >= {:.3}) -> {}; wrote {}",
            headline_sps / sps,
            cli.min_speedup,
            if hotloop_pass { "pass" } else { "FAIL" },
            cli.hotloop_output
        ),
        None => eprintln!(
            "headline {headline_sps:.0} steps/s (no baseline named; trajectory recorded, not \
             gated); wrote {}",
            cli.hotloop_output
        ),
    }
    Ok(pipeline_pass && hotloop_pass)
}

fn main() -> ExitCode {
    let args: Vec<String> = env::args().skip(1).collect();
    let cli = match Cli::parse(&args) {
        Ok(cli) => cli,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    match run(&cli) {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::FAILURE,
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    fn score(workload: &str, topo: TopologySpec, inline: f64, piped: f64) -> Score {
        Score {
            workload: workload.to_string(),
            topology: topo,
            steps: 1000,
            inline_best: inline,
            piped_best: piped,
            occupancy: Occupancy {
                machine: 0.5,
                driver: 0.25,
                detector: 0.125,
            },
        }
    }

    #[test]
    fn defaults_are_the_gate_configuration() {
        let cli = Cli::parse(&[]).unwrap();
        assert_eq!(cli.sav, 1);
        assert_eq!(cli.repeats, 5);
        assert_eq!(cli.scale, 2.0);
        assert_eq!(cli.min_ratio, 1.0);
        assert_eq!(cli.shards, 1);
        assert_eq!(cli.driver_lag, 0, "lag 0 keeps the equality assert armed");
        assert_eq!(cli.output, "BENCH_pipeline.json");
        assert_eq!(cli.workloads, DEFAULT_WORKLOADS);
        assert_eq!(cli.topologies, DEFAULT_TOPOLOGIES);
        assert_eq!(cli.hotloop_output, "BENCH_hotloop.json");
        assert_eq!(cli.hotloop_baseline, None);
        assert_eq!(cli.min_speedup, 1.0);
    }

    #[test]
    fn gate_is_strict_on_multicore_and_relaxed_on_a_single_core() {
        // Every multi-core host holds the configured line...
        assert_eq!(effective_min_ratio(1.0, 2), 1.0);
        assert_eq!(effective_min_ratio(1.0, 64), 1.0);
        assert_eq!(effective_min_ratio(0.97, 4), 0.97);
        // ...a single-core host (nothing to overlap against) only catches
        // gross regressions — at 0.90, tightened from the two-stage
        // pipeline's 0.85 now the charge-back round-trip is the only
        // per-quantum synchronization left...
        assert_eq!(effective_min_ratio(1.0, 1), 0.90);
        // ...and an operator who asked for an even laxer gate keeps it.
        assert_eq!(effective_min_ratio(0.5, 1), 0.5);
    }

    #[test]
    fn workload_names_are_validated_up_front() {
        let err = Cli::parse(&args(&["--workloads", "histogramm"])).unwrap_err();
        assert!(err.contains("unknown workload 'histogramm'"), "{err}");
        let ok = Cli::parse(&args(&["--workloads", "histogram',swaptions"])).unwrap();
        assert_eq!(ok.workloads, vec!["histogram'", "swaptions"]);
    }

    #[test]
    fn topology_names_are_validated_up_front() {
        let err = Cli::parse(&args(&["--topologies", "flat,16s"])).unwrap_err();
        assert!(err.contains("unknown topology '16s'"), "{err}");
        let ok = Cli::parse(&args(&["--topologies", "flat,8s"])).unwrap();
        assert_eq!(
            ok.topologies,
            vec![TopologySpec::Flat, TopologySpec::OctoSocket]
        );
        // The flat rows feed both the pipeline gate and the headline, so a
        // sweep without them is rejected before anything simulates.
        let err = Cli::parse(&args(&["--topologies", "2s,4s"])).unwrap_err();
        assert!(err.contains("must include 'flat'"), "{err}");
        let ok = Cli::parse(&args(&["--topologies", "flat,4s"])).unwrap();
        assert_eq!(
            ok.topologies,
            vec![TopologySpec::Flat, TopologySpec::QuadSocket]
        );
    }

    #[test]
    fn flags_override_defaults() {
        let cli = Cli::parse(&args(&[
            "--scale",
            "0.1",
            "--repeats",
            "0",
            "--min-ratio",
            "0.9",
            "--capacity",
            "4",
            "--shards",
            "0",
            "--driver-lag",
            "2",
            "--output",
            "out.json",
            "--hotloop-output",
            "hot.json",
            "--hotloop-baseline",
            "base.json",
            "--min-speedup",
            "1.5",
        ]))
        .unwrap();
        assert_eq!(cli.scale, 0.1);
        assert_eq!(cli.repeats, 1, "repeats clamp to at least one");
        assert_eq!(cli.min_ratio, 0.9);
        assert_eq!(cli.capacity, 4);
        assert_eq!(cli.shards, 1, "shard count clamps to at least one");
        assert_eq!(cli.driver_lag, 2);
        assert_eq!(cli.output, "out.json");
        assert_eq!(cli.hotloop_output, "hot.json");
        assert_eq!(cli.hotloop_baseline.as_deref(), Some("base.json"));
        assert_eq!(cli.min_speedup, 1.5);
    }

    #[test]
    fn pipeline_report_shape_is_stable_and_parses() {
        let cli = Cli::parse(&[]).unwrap();
        let s = score("histogram'", TopologySpec::Flat, 1.0e6, 1.1e6);
        let flat = vec![&s];
        let json = pipeline_json(&cli, 4, &flat, 1.1, 1.0, true).render();
        let doc = Value::parse(&json).unwrap();
        assert_eq!(doc.get("kind"), Some(&Value::Str("bench_pipeline".into())));
        assert_eq!(doc.get("pass"), Some(&Value::Bool(true)));
        assert_eq!(doc.get("parallelism"), Some(&Value::Int(4)));
        assert_eq!(doc.get("effective_min_ratio"), Some(&Value::Float(1.0)));
        assert_eq!(doc.get("driver_lag"), Some(&Value::Int(0)));
        let Some(Value::Array(rows)) = doc.get("workloads") else {
            panic!("workloads must be an array: {json}");
        };
        assert_eq!(rows.len(), 1);
        assert_eq!(
            rows[0].get("workload"),
            Some(&Value::Str("histogram'".into()))
        );
        // Stage occupancy of the best pipelined run rides on every row.
        assert_eq!(rows[0].get("machine_busy_frac"), Some(&Value::Float(0.5)));
        assert_eq!(rows[0].get("driver_busy_frac"), Some(&Value::Float(0.25)));
        assert_eq!(
            rows[0].get("detector_busy_frac"),
            Some(&Value::Float(0.125))
        );
    }

    #[test]
    fn headline_is_the_geomean_of_flat_inline_rows() {
        let scores = vec![
            score("a", TopologySpec::Flat, 4.0, 5.0),
            score("b", TopologySpec::Flat, 9.0, 8.0),
            // Multi-socket rows are on the record but not in the headline.
            score("a", TopologySpec::DualSocket, 100.0, 100.0),
        ];
        assert!((headline(&scores) - 6.0).abs() < 1e-9);
    }

    #[test]
    fn hotloop_report_round_trips_with_and_without_a_baseline() {
        let cli = Cli::parse(&[]).unwrap();
        let scores = vec![
            score("histogram'", TopologySpec::Flat, 2.0e6, 2.1e6),
            score("histogram'", TopologySpec::DualSocket, 1.5e6, 1.6e6),
        ];
        // Ungated: baseline fields are null, pass stands on its own.
        let json = hotloop_json(&cli, 1, &scores, 2.0e6, None, true).render();
        let doc = Value::parse(&json).unwrap();
        assert_eq!(doc.get("kind"), Some(&Value::Str("bench_hotloop".into())));
        assert_eq!(doc.get("baseline"), Some(&Value::Null));
        assert_eq!(doc.get("speedup"), Some(&Value::Null));
        assert_eq!(
            doc.get("headline_steps_per_sec"),
            Some(&Value::Float(2.0e6))
        );
        let Some(Value::Array(rows)) = doc.get("rows") else {
            panic!("rows must be an array: {json}");
        };
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[1].get("topology"), Some(&Value::Str("2s".into())));
        // Gated: the speedup against the named baseline is recorded.
        let json = hotloop_json(&cli, 1, &scores, 3.0e6, Some(("base.json", 2.0e6)), true).render();
        let doc = Value::parse(&json).unwrap();
        assert_eq!(doc.get("baseline"), Some(&Value::Str("base.json".into())));
        assert_eq!(doc.get("speedup"), Some(&Value::Float(1.5)));
        assert_eq!(
            doc.get("baseline_headline_steps_per_sec"),
            Some(&Value::Float(2.0e6))
        );
    }

    #[test]
    fn baseline_headline_reads_committed_reports_and_rejects_junk() {
        let dir = std::env::temp_dir();
        let good = dir.join("bench_hotloop_baseline_good.json");
        std::fs::write(
            &good,
            Value::object()
                .set("kind", "bench_hotloop")
                .set("headline_steps_per_sec", 1.25e7)
                .render(),
        )
        .unwrap();
        assert_eq!(
            baseline_headline(good.to_str().unwrap()).unwrap(),
            1.25e7_f64
        );
        let bad = dir.join("bench_hotloop_baseline_bad.json");
        std::fs::write(&bad, "{\"kind\":\"bench_hotloop\"}").unwrap();
        let err = baseline_headline(bad.to_str().unwrap()).unwrap_err();
        assert!(err.contains("headline_steps_per_sec"), "{err}");
        let err = baseline_headline("/nonexistent/baseline.json").unwrap_err();
        assert!(err.contains("read hotloop baseline"), "{err}");
    }
}
