//! # laser-workloads
//!
//! Synthetic reproductions of the 35 workload configurations the LASER paper
//! evaluates (Phoenix 1.0, Parsec 3.0 and Splash2x), plus the 160 two-thread
//! characterization test cases of Section 3.1 and the manually-fixed variants
//! used in Figures 11 and 14.
//!
//! Each workload is a small kernel written against the `laser-isa` builder
//! that reproduces the benchmark's *sharing structure* — which data is shared,
//! at what granularity, through which allocator layout, and how often — rather
//! than its numerical behaviour. That is the property LASER's detection
//! accuracy and repair benefit depend on. Every workload with a known
//! performance bug (Table 1 / Table 2 of the paper) carries a
//! [`spec::KnownBug`] entry naming the synthetic source lines involved, which
//! the accuracy experiments compare detector reports against.
//!
//! ## Example
//!
//! ```
//! use laser_workloads::registry;
//!
//! let specs = registry();
//! assert_eq!(specs.len(), 35);
//! let linear_regression = laser_workloads::find("linear_regression").unwrap();
//! let image = linear_regression.build_default();
//! assert!(!image.threads().is_empty());
//! ```

#![forbid(unsafe_code)]

pub mod common;
pub mod microbench;
pub mod parsec;
pub mod phoenix;
pub mod spec;
pub mod splash2x;

pub use microbench::{characterization_cases, CharacterizationCase, SharingPattern, WriteMode};
pub use spec::{
    find, registry, BugKind, BuildOptions, KnownBug, SheriffCompat, Suite, WorkloadSpec,
};
