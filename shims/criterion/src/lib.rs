//! Offline stand-in for the subset of `criterion` the laser-bench benchmarks
//! use: `criterion_group!` / `criterion_main!`, benchmark groups with a
//! configurable sample size, and `Bencher::iter`. Each benchmark runs its
//! closure `sample_size` times and reports min / mean / max wall-clock time —
//! enough to compare runs locally without a crates.io mirror.

use std::time::{Duration, Instant};

/// Prevents the compiler from optimising a value (and the work producing it)
/// away.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Start a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.to_string(),
            sample_size: 10,
        }
    }
}

/// A named group of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark (default 10).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Run and time one benchmark function.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut samples = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let mut b = Bencher {
                elapsed: Duration::ZERO,
                iterations: 0,
            };
            f(&mut b);
            if b.iterations > 0 {
                samples.push(b.elapsed / b.iterations);
            }
        }
        if let (Some(min), Some(max)) = (samples.iter().min(), samples.iter().max()) {
            let mean = samples.iter().sum::<Duration>() / samples.len() as u32;
            println!(
                "{}/{id}: [{min:?} {mean:?} {max:?}] over {} samples",
                self.name,
                samples.len()
            );
        }
        self
    }

    /// Finish the group (log-only in this shim).
    pub fn finish(self) {}
}

/// Times the closure passed to [`Bencher::iter`].
#[derive(Debug)]
pub struct Bencher {
    elapsed: Duration,
    iterations: u32,
}

impl Bencher {
    /// Run `f` once, timing it; criterion proper runs it many times per
    /// sample, the shim keeps samples cheap because the workloads under it are
    /// whole experiment suites.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        black_box(f());
        self.elapsed += start.elapsed();
        self.iterations += 1;
    }
}

/// Bundles benchmark functions into a runnable group, mirroring criterion's
/// macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generates `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_times_functions() {
        let mut c = Criterion::default();
        let mut runs = 0;
        {
            let mut g = c.benchmark_group("shim");
            g.sample_size(3);
            g.bench_function("count", |b| b.iter(|| runs += 1));
            g.finish();
        }
        assert_eq!(runs, 3);
    }
}
