//! Criterion bench regenerating Figure 11 at reduced scale.
use criterion::{criterion_group, criterion_main, Criterion};
use laser_bench::performance::fig11_speedups;
use laser_bench::ExperimentScale;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig11_speedup");
    group.sample_size(10);
    group.bench_function("fig11_speedup", |b| {
        b.iter(|| fig11_speedups(&ExperimentScale::bench()).unwrap())
    });
    group.finish();
}
criterion_group!(benches, bench);
criterion_main!(benches);
