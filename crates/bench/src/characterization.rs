//! Figure 2 (allocation layout) and Figure 3 (HITM record accuracy
//! characterization).

use laser_machine::{line_of, Machine, MachineConfig};
use laser_pebs::imprecision::{ImprecisionModel, ImprecisionParams};
use laser_workloads::{characterization_cases, CharacterizationCase};

/// Accuracy of the HITM records of one characterization test case.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig3Case {
    /// Case id.
    pub id: usize,
    /// Category label ("TSRW", "FSRW", "TSWW", "FSWW").
    pub label: &'static str,
    /// Fraction of records with the correct data address.
    pub addr_correct: f64,
    /// Fraction of records with the exact PC.
    pub pc_exact: f64,
    /// Fraction of records with the exact or an adjacent PC.
    pub pc_adjacent: f64,
    /// Ground-truth HITM events observed.
    pub events: u64,
}

/// The Figure 3 report: per-case accuracies plus per-category averages.
#[derive(Debug, Clone, Default)]
pub struct Fig3Report {
    /// Every test case.
    pub cases: Vec<Fig3Case>,
}

impl Fig3Report {
    /// Average of a metric over one category.
    pub fn category_mean(&self, label: &str, metric: impl Fn(&Fig3Case) -> f64) -> f64 {
        let vals: Vec<f64> = self
            .cases
            .iter()
            .filter(|c| c.label == label)
            .map(metric)
            .collect();
        if vals.is_empty() {
            0.0
        } else {
            vals.iter().sum::<f64>() / vals.len() as f64 // lint:allow(float-accum) — vals is a Vec summed in index order, which is fixed across runs
        }
    }

    /// Render the figure as text: one scatter row per case plus the category
    /// averages the paper quotes in prose.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "Figure 3: HITM record accuracy per test case");
        let _ = writeln!(
            out,
            "{:<6} {:>6} {:>12} {:>10} {:>12}",
            "case", "cat", "addr_ok%", "pc_ok%", "pc_adj_ok%"
        );
        for c in &self.cases {
            let _ = writeln!(
                out,
                "{:<6} {:>6} {:>12.1} {:>10.1} {:>12.1}",
                c.id,
                c.label,
                c.addr_correct * 100.0,
                c.pc_exact * 100.0,
                c.pc_adjacent * 100.0
            );
        }
        let _ = writeln!(out, "\ncategory averages:");
        for label in ["TSRW", "FSRW", "TSWW", "FSWW"] {
            let _ = writeln!(
                out,
                "  {label}: addr {:.0}%  pc {:.0}%  pc+adjacent {:.0}%",
                self.category_mean(label, |c| c.addr_correct) * 100.0,
                self.category_mean(label, |c| c.pc_exact) * 100.0,
                self.category_mean(label, |c| c.pc_adjacent) * 100.0,
            );
        }
        out
    }
}

/// Run the Figure 3 characterization over `cases_per_category` cases per
/// category (the paper uses 40; pass a smaller number for quick runs), one
/// worker per available core.
/// Sampling is disabled, as in the paper: every ground-truth HITM event is
/// scored after passing through the imprecision model.
pub fn fig3_characterization(cases_per_category: usize) -> Fig3Report {
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    fig3_characterization_on(cases_per_category, threads)
}

/// Like [`fig3_characterization`] with an explicit worker-thread count. Each
/// test case is an independent deterministic simulation, so the cases fan out
/// over the campaign runner's [`ordered_parallel`](crate::campaign::ordered_parallel)
/// executor and the report is identical for any thread count.
pub fn fig3_characterization_on(cases_per_category: usize, threads: usize) -> Fig3Report {
    let mut selected: Vec<CharacterizationCase> = Vec::new();
    for label in ["TSRW", "FSRW", "TSWW", "FSWW"] {
        selected.extend(
            characterization_cases()
                .into_iter()
                .filter(|c| c.label() == label)
                .take(cases_per_category),
        );
    }
    let cases =
        crate::campaign::ordered_parallel(selected.len(), threads, |i| fig3_case(&selected[i]));
    Fig3Report { cases }
}

/// Score one characterization case: run it to completion, pass every
/// ground-truth HITM event through the imprecision model, and count how many
/// records keep the right address and PC.
fn fig3_case(case: &CharacterizationCase) -> Fig3Case {
    let built = case.build();
    let mut machine = Machine::new(MachineConfig::default(), &built.image);
    let _ = machine
        .run_to_completion()
        .expect("characterization cases terminate"); // lint:allow(panic) — characterization cells run under an instruction budget; non-termination is a bench bug
    let events = machine.take_hitm_events();
    let program = built.image.program();
    let mut model = ImprecisionModel::new(
        ImprecisionParams::default(),
        built.image.memory_map(),
        (program.base_pc(), program.end_pc()),
        0xF163 + case.id as u64,
    );
    let mut addr_ok = 0u64;
    let mut pc_ok = 0u64;
    let mut pc_adj = 0u64;
    for e in &events {
        let r = model.distort(e);
        if r.data_addr == e.addr {
            addr_ok += 1;
        }
        if r.pc == e.pc {
            pc_ok += 1;
        }
        if (r.pc as i64 - e.pc as i64).unsigned_abs() <= laser_isa::program::INST_BYTES {
            pc_adj += 1;
        }
    }
    let n = events.len().max(1) as f64;
    Fig3Case {
        id: case.id,
        label: case.label(),
        addr_correct: addr_ok as f64 / n,
        pc_exact: pc_ok as f64 / n,
        pc_adjacent: pc_adj as f64 / n,
        events: events.len() as u64,
    }
}

/// The Figure 2 demonstration: how the allocator lays `lreg_args` structs out
/// across cache lines, with and without the manual alignment fix.
pub fn fig2_layout() -> String {
    use laser_workloads::{find, BuildOptions};
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Figure 2: allocator layout of the linear_regression args array\n"
    );
    for (title, opts) in [
        ("default malloc layout (buggy)", BuildOptions::default()),
        ("cache-line aligned (manual fix)", BuildOptions::fixed()),
    ] {
        let spec = find("linear_regression").expect("workload exists"); // lint:allow(panic) — a missing built-in workload is a bench-table bug, not a runtime condition
        let image = spec.build(&opts);
        let _ = writeln!(out, "{title}:");
        for (t, thread) in image.threads().iter().enumerate() {
            let base = thread
                .regs
                .iter()
                .find(|(r, _)| *r == laser_workloads::common::regs::DATA)
                .map(|(_, v)| *v)
                .unwrap_or(0);
            let first_line = line_of(base);
            let last_line = line_of(base + 63);
            let _ = writeln!(
                out,
                "  lreg_args[{t}] at {base:#x}: spans cache line(s) {first_line:#x}{}",
                if first_line == last_line {
                    String::new()
                } else {
                    format!(" and {last_line:#x}  <-- straddles, shared with neighbour")
                }
            );
        }
        let _ = writeln!(out);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig3_reproduces_the_rw_vs_ww_accuracy_gap() {
        let report = fig3_characterization(3);
        assert_eq!(report.cases.len(), 12);
        // RW (load-triggered) records are far more accurate than WW
        // (store-triggered) ones, as in the paper's Figure 3.
        let rw_addr = (report.category_mean("TSRW", |c| c.addr_correct)
            + report.category_mean("FSRW", |c| c.addr_correct))
            / 2.0;
        let ww_addr = (report.category_mean("TSWW", |c| c.addr_correct)
            + report.category_mean("FSWW", |c| c.addr_correct))
            / 2.0;
        assert!(rw_addr > 0.6, "rw addr accuracy {rw_addr}");
        assert!(ww_addr < 0.35, "ww addr accuracy {ww_addr}");
        let rw_adj = report.category_mean("FSRW", |c| c.pc_adjacent);
        assert!(rw_adj > 0.55, "rw adjacent-pc accuracy {rw_adj}");
        assert!(!report.render().is_empty());
    }

    #[test]
    fn fig3_is_thread_count_independent() {
        let serial = fig3_characterization_on(2, 1);
        let parallel = fig3_characterization_on(2, 8);
        assert_eq!(serial.cases, parallel.cases);
        assert_eq!(serial.render(), parallel.render());
    }

    #[test]
    fn fig2_shows_straddling_without_fix_only() {
        let text = fig2_layout();
        assert!(text.contains("straddles"));
        assert!(text.contains("manual fix"));
    }
}
