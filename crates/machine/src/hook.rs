//! Dynamic instrumentation hooks — the Pin substitute.
//!
//! The paper's LASERREPAIR attaches Intel Pin to the running process and
//! rewrites the contending instructions to use a software store buffer. The
//! simulator offers the same interception points through the [`ExecHook`]
//! trait: an attached tool sees every memory operation before it reaches the
//! cache hierarchy and may either let it pass through or service it itself
//! (buffering a store, returning a buffered value for a load), charging
//! whatever extra cycles the instrumentation costs. Hooks are also notified at
//! fences, block entries (where flushes are placed) and thread exit.

use laser_isa::program::{BlockId, Pc};

use crate::addr::Addr;
use crate::event::MemAccessKind;
use crate::htm::HtmOutcome;
use crate::machine::{CoreId, MachineInner};
use crate::timing::LatencyModel;

/// A memory operation about to be executed by a core.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemOp {
    /// PC of the instruction.
    pub pc: Pc,
    /// Effective data address.
    pub addr: Addr,
    /// Access size in bytes.
    pub size: u8,
    /// Load or store.
    pub kind: MemAccessKind,
    /// For stores, the value being written (already masked to `size` bytes).
    pub store_value: Option<u64>,
}

/// What the hook decided to do with a memory operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HookAction {
    /// Let the simulator perform the access normally.
    Passthrough,
    /// The hook serviced the access itself (e.g. from the software store
    /// buffer). For loads, `load_value` is the value to place in the
    /// destination register; `extra_cycles` is the instrumentation cost.
    Handled {
        /// Value returned to the load destination register, if a load.
        load_value: Option<u64>,
        /// Cycles to charge to the executing core.
        extra_cycles: u64,
    },
}

/// Access to the machine's memory system granted to a hook while it runs.
///
/// Reads and writes performed through this context go through the coherence
/// directory, so a software-store-buffer flush performed by a hook can itself
/// produce (far fewer) HITM events, exactly as on real hardware.
pub struct HookCtx<'a> {
    pub(crate) inner: &'a mut MachineInner,
    pub(crate) core: usize,
    pub(crate) now: u64,
}

impl HookCtx<'_> {
    /// The core on whose behalf the hook is running.
    pub fn core(&self) -> CoreId {
        CoreId(self.core)
    }

    /// The executing core's current cycle count.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// The latency model in effect.
    pub fn latency(&self) -> &LatencyModel {
        &self.inner.latency
    }

    /// Perform a real load of `size` bytes at `addr`, attributed to `pc`.
    /// Returns the value and the cycles the access cost.
    pub fn mem_read(&mut self, pc: Pc, addr: Addr, size: u8) -> (u64, u64) {
        self.inner.access(
            self.core,
            pc,
            addr,
            size,
            false,
            MemAccessKind::Load,
            None,
            self.now,
        )
    }

    /// Perform a real store of `size` bytes at `addr`, attributed to `pc`.
    /// Returns the cycles the access cost.
    pub fn mem_write(&mut self, pc: Pc, addr: Addr, size: u8, value: u64) -> u64 {
        self.inner
            .access(
                self.core,
                pc,
                addr,
                size,
                true,
                MemAccessKind::Store,
                Some(value),
                self.now,
            )
            .1
    }

    /// Flush a set of buffered writes atomically inside a hardware
    /// transaction. Returns [`HtmOutcome::CapacityAborted`] without performing
    /// any write if the write set spans more cache lines than the transaction
    /// capacity; the caller must then fall back to a fenced, non-transactional
    /// flush.
    pub fn htm_flush(&mut self, pc: Pc, writes: &[(Addr, u8, u64)]) -> HtmOutcome {
        self.inner.htm_execute(self.core, pc, writes, self.now)
    }
}

/// A dynamic-instrumentation tool attached to the machine.
///
/// All methods have default no-op implementations so tools only override the
/// interception points they need.
///
/// Hooks are required to be `Send` (they own their state outright — no
/// `Rc`/`RefCell` sharing with the outside), so a machine with a hook
/// attached remains a self-contained value that can move across threads;
/// that is what lets whole tool runs be fanned out over a thread pool.
pub trait ExecHook: Send {
    /// Expose the concrete tool for downcasting, so a caller holding the
    /// machine can read tool statistics (e.g. via [`std::any::Any`]) without
    /// the tool having to share state behind `Rc<RefCell<..>>`. Tools that
    /// carry no queryable state can keep the `None` default.
    fn as_any(&self) -> Option<&dyn std::any::Any> {
        None
    }

    /// Called before every memory operation. Returning
    /// [`HookAction::Passthrough`] lets the access proceed normally.
    fn on_mem_op(&mut self, ctx: &mut HookCtx<'_>, op: &MemOp) -> HookAction {
        let _ = (ctx, op);
        HookAction::Passthrough
    }

    /// Called at explicit fences and atomic read-modify-writes, *before* the
    /// fencing instruction executes. Returns extra cycles to charge.
    fn on_fence(&mut self, ctx: &mut HookCtx<'_>, pc: Pc) -> u64 {
        let _ = (ctx, pc);
        0
    }

    /// Called when control transfers to a new basic block. Returns extra
    /// cycles to charge. This is where LASERREPAIR's flush blocks run.
    fn on_block_entry(&mut self, ctx: &mut HookCtx<'_>, block: BlockId) -> u64 {
        let _ = (ctx, block);
        0
    }

    /// Called when a thread halts. Returns extra cycles to charge.
    fn on_thread_exit(&mut self, ctx: &mut HookCtx<'_>) -> u64 {
        let _ = ctx;
        0
    }
}

/// A hook that does nothing; useful as a baseline in tests.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullHook;

impl ExecHook for NullHook {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_hook_methods_are_noops() {
        // NullHook relies entirely on default methods; construct a dummy ctx
        // indirectly by checking the action variants only.
        let action = HookAction::Handled {
            load_value: Some(7),
            extra_cycles: 3,
        };
        assert_ne!(action, HookAction::Passthrough);
        let op = MemOp {
            pc: 0x40_0000,
            addr: 0x1000,
            size: 8,
            kind: MemAccessKind::Load,
            store_value: None,
        };
        assert_eq!(op.kind, MemAccessKind::Load);
    }
}
