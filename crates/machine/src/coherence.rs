//! A MESI-style coherence directory.
//!
//! The directory tracks, for every cache line that has ever been touched,
//! which core (if any) holds it Modified and which cores share it. Accesses
//! report whether they hit locally, hit in the shared LLC, missed to DRAM, or
//! hit a line Modified in a *remote* cache — the HITM case that Haswell's
//! PEBS facility can sample and that LASER is built around (paper Sections 2
//! and 3).

use std::collections::hash_map::Entry;
use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use crate::addr::Addr;
use crate::fasthash::FastBuildHasher;

/// Outcome classification of a single line access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AccessClass {
    /// The line was already present locally in a suitable state.
    L1Hit,
    /// The line was present somewhere on chip (shared or needed an upgrade)
    /// but not Modified remotely.
    LlcHit,
    /// The line was Modified in a remote core's cache: a HITM.
    Hitm,
    /// The line had to be fetched from memory.
    Dram,
}

/// Result of a directory access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessOutcome {
    /// How the access was satisfied.
    pub class: AccessClass,
    /// For HITM outcomes, the core that previously held the line Modified.
    pub previous_owner: Option<usize>,
    /// Bitmask of the cores that held the line *before* this access (the
    /// sharer set, or the Modified owner's bit; zero for a cold miss). The
    /// topology layer uses it to decide whether an LLC hit was serviced
    /// on-socket or across the interconnect.
    pub sharers: u128,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LineState {
    Shared(u128),
    Modified(usize),
}

/// The coherence directory for all cores.
///
/// Lines are keyed by a fast deterministic hasher: the directory sits on the
/// simulator's hot path (one lookup per line per memory access) and its map
/// is never iterated, so hashing cost is the only thing the hasher choice
/// can change.
#[derive(Debug, Clone)]
pub struct CoherenceDirectory {
    num_cores: usize,
    lines: HashMap<Addr, LineState, FastBuildHasher>,
}

impl CoherenceDirectory {
    /// Create a directory for `num_cores` cores.
    ///
    /// # Panics
    /// Panics if `num_cores` is zero or greater than 128.
    pub fn new(num_cores: usize) -> Self {
        assert!(
            (1..=128).contains(&num_cores),
            "1..=128 cores supported, got {num_cores}"
        );
        CoherenceDirectory {
            num_cores,
            lines: HashMap::default(),
        }
    }

    /// Number of cores.
    pub fn num_cores(&self) -> usize {
        self.num_cores
    }

    /// Number of distinct lines the directory has ever tracked.
    pub fn tracked_lines(&self) -> usize {
        self.lines.len()
    }

    /// Perform a coherence access by `core` to the line containing `line_addr`
    /// (must be line-aligned by the caller) and update the directory.
    ///
    /// # Panics
    /// Panics if `core` is out of range.
    pub fn access(&mut self, core: usize, line_addr: Addr, is_write: bool) -> AccessOutcome {
        assert!(core < self.num_cores, "core {core} out of range");
        let bit = 1u128 << core;
        // One map probe for both the state read and the in-place update.
        let slot = match self.lines.entry(line_addr) {
            Entry::Vacant(e) => {
                // Cold miss.
                e.insert(if is_write {
                    LineState::Modified(core)
                } else {
                    LineState::Shared(bit)
                });
                return AccessOutcome {
                    class: AccessClass::Dram,
                    previous_owner: None,
                    sharers: 0,
                };
            }
            Entry::Occupied(e) => e.into_mut(),
        };
        match *slot {
            LineState::Modified(owner) if owner == core => AccessOutcome {
                class: AccessClass::L1Hit,
                previous_owner: None,
                sharers: bit,
            },
            LineState::Modified(owner) => {
                // Remote modified: HITM. A read leaves the line shared by
                // both; a write transfers ownership.
                *slot = if is_write {
                    LineState::Modified(core)
                } else {
                    LineState::Shared(bit | (1u128 << owner))
                };
                AccessOutcome {
                    class: AccessClass::Hitm,
                    previous_owner: Some(owner),
                    sharers: 1u128 << owner,
                }
            }
            LineState::Shared(sharers) => {
                if is_write {
                    // Upgrade / invalidate others.
                    *slot = LineState::Modified(core);
                    AccessOutcome {
                        class: if sharers == bit {
                            AccessClass::L1Hit
                        } else {
                            AccessClass::LlcHit
                        },
                        previous_owner: None,
                        sharers,
                    }
                } else if sharers & bit != 0 {
                    AccessOutcome {
                        class: AccessClass::L1Hit,
                        previous_owner: None,
                        sharers,
                    }
                } else {
                    *slot = LineState::Shared(sharers | bit);
                    AccessOutcome {
                        class: AccessClass::LlcHit,
                        previous_owner: None,
                        sharers,
                    }
                }
            }
        }
    }

    /// True if `core` currently holds `line_addr` in Modified state.
    pub fn is_modified_by(&self, line_addr: Addr, core: usize) -> bool {
        matches!(self.lines.get(&line_addr), Some(LineState::Modified(o)) if *o == core)
    }

    /// True if any core other than `core` holds `line_addr` Modified.
    pub fn is_remote_modified(&self, line_addr: Addr, core: usize) -> bool {
        matches!(self.lines.get(&line_addr), Some(LineState::Modified(o)) if *o != core)
    }

    /// Reset all coherence state (used between experiment repetitions).
    pub fn clear(&mut self) {
        self.lines.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cold_miss_then_local_hits() {
        let mut d = CoherenceDirectory::new(4);
        let o = d.access(0, 0x1000, false);
        assert_eq!(o.class, AccessClass::Dram);
        let o = d.access(0, 0x1000, false);
        assert_eq!(o.class, AccessClass::L1Hit);
        let o = d.access(0, 0x1000, true);
        assert_eq!(o.class, AccessClass::L1Hit); // sole sharer upgrade
        let o = d.access(0, 0x1000, true);
        assert_eq!(o.class, AccessClass::L1Hit);
        assert!(d.is_modified_by(0x1000, 0));
    }

    #[test]
    fn write_read_sharing_triggers_hitm_on_load() {
        let mut d = CoherenceDirectory::new(2);
        d.access(0, 0x40, true); // core0 modifies
        let o = d.access(1, 0x40, false); // core1 reads => HITM (Figure 1a)
        assert_eq!(o.class, AccessClass::Hitm);
        assert_eq!(o.previous_owner, Some(0));
        // Line is now shared; another read is a local hit for core1.
        let o = d.access(1, 0x40, false);
        assert_eq!(o.class, AccessClass::L1Hit);
    }

    #[test]
    fn write_write_sharing_triggers_hitm_on_store() {
        let mut d = CoherenceDirectory::new(2);
        d.access(0, 0x80, true);
        let o = d.access(1, 0x80, true); // Figure 1c
        assert_eq!(o.class, AccessClass::Hitm);
        assert!(d.is_modified_by(0x80, 1));
        assert!(d.is_remote_modified(0x80, 0));
    }

    #[test]
    fn read_write_sharing_costs_invalidation_not_hitm() {
        let mut d = CoherenceDirectory::new(2);
        d.access(0, 0xc0, false); // core0 reads (Shared)
        d.access(1, 0xc0, false); // core1 reads too
        let o = d.access(1, 0xc0, true); // Figure 1b: upgrade, not HITM
        assert_eq!(o.class, AccessClass::LlcHit);
        // ... but the next read by core0 is now a HITM.
        let o = d.access(0, 0xc0, false);
        assert_eq!(o.class, AccessClass::Hitm);
    }

    #[test]
    fn ping_pong_produces_hitm_every_iteration() {
        let mut d = CoherenceDirectory::new(2);
        d.access(0, 0x200, true);
        let mut hitms = 0;
        for i in 0..100 {
            let core = 1 - (i % 2);
            let o = d.access(core, 0x200, true);
            if o.class == AccessClass::Hitm {
                hitms += 1;
            }
        }
        assert_eq!(hitms, 100);
    }

    #[test]
    fn distinct_lines_do_not_interfere() {
        let mut d = CoherenceDirectory::new(2);
        d.access(0, 0x0, true);
        let o = d.access(1, 0x40, true);
        assert_eq!(o.class, AccessClass::Dram);
        assert_eq!(d.tracked_lines(), 2);
        d.clear();
        assert_eq!(d.tracked_lines(), 0);
    }

    #[test]
    fn outcomes_carry_the_prior_holder_set() {
        let mut d = CoherenceDirectory::new(4);
        let o = d.access(0, 0x100, false);
        assert_eq!(o.sharers, 0, "cold miss: nobody held the line");
        d.access(1, 0x100, false);
        let o = d.access(2, 0x100, false);
        assert_eq!(o.sharers, 0b011, "cores 0 and 1 held it before core 2");
        let o = d.access(3, 0x100, true); // upgrade over three sharers
        assert_eq!(o.sharers, 0b111);
        let o = d.access(0, 0x100, true); // HITM: owner 3's bit
        assert_eq!(o.class, AccessClass::Hitm);
        assert_eq!(o.sharers, 0b1000);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_core_panics() {
        let mut d = CoherenceDirectory::new(2);
        d.access(2, 0x0, false);
    }

    #[test]
    fn directories_wider_than_64_cores_track_high_core_bits() {
        // The sharers bitmap is 128 bits wide so many-core topologies (the
        // 32-socket preset, 128-thread deployments) are constructible; the
        // high half must behave exactly like the low half.
        let mut d = CoherenceDirectory::new(128);
        d.access(127, 0x300, false);
        let o = d.access(0, 0x300, false);
        assert_eq!(o.class, AccessClass::LlcHit);
        assert_eq!(o.sharers, 1u128 << 127, "core 127's bit survives");
        let o = d.access(127, 0x300, true); // upgrade over two sharers
        assert_eq!(o.class, AccessClass::LlcHit);
        assert_eq!(o.sharers, (1u128 << 127) | 1);
        let o = d.access(0, 0x300, false);
        assert_eq!(o.class, AccessClass::Hitm);
        assert_eq!(o.previous_owner, Some(127));
    }

    #[test]
    #[should_panic(expected = "1..=128 cores supported")]
    fn directories_cap_at_128_cores() {
        let _ = CoherenceDirectory::new(129);
    }
}
