//! Throughput harness for the pipelined session: inline vs pipelined
//! steps-per-second, as a machine-readable CI gate.
//!
//! ```text
//! bench_throughput [--scale S] [--workloads w1,w2,...] [--repeats N]
//!                  [--sav V] [--capacity C] [--min-ratio R] [--output PATH]
//! ```
//!
//! For each workload the harness runs the same LASERDETECT session twice per
//! repeat — once inline, once with the detector stage pipelined onto a worker
//! thread — interleaved so machine-load drift hits both modes equally, and
//! scores each mode by its **best** observed steps/second (robust against
//! scheduling noise). It also asserts the tentpole invariant on every pair:
//! the pipelined outcome must be byte-identical to the inline one (cycles,
//! report, driver statistics), so the perf gate doubles as a determinism
//! check.
//!
//! The result is written to `BENCH_pipeline.json` (override with `--output`)
//! and echoed to stdout:
//!
//! ```json
//! {"kind":"bench_pipeline", "workloads":[{"workload":"histogram'",
//!  "inline_steps_per_sec":..., "pipelined_steps_per_sec":..., "ratio":...}],
//!  "geomean_ratio":..., "min_ratio":..., "pass":true}
//! ```
//!
//! The process exits non-zero when `geomean_ratio < --min-ratio` (default
//! 1.0: pipelining must not be slower than inline) or when any pipelined
//! outcome diverges from its inline twin — the CI `perf` job runs exactly
//! this at small scale and fails the build on a regression.
//!
//! One environmental caveat: on a host with a **single hardware thread**
//! the pipeline cannot overlap anything — the detector stage timeslices
//! against the machine stage — so `pipelined ≥ inline` is physically out of
//! reach and the measured ratio is pure scheduler noise around 1.0. The
//! harness reports the host's `parallelism` in the JSON and, when it is 1,
//! relaxes the effective gate to `min(min_ratio, 0.85)`: single-core hosts
//! still catch gross regressions (a pipeline suddenly costing 15 %+), while
//! every multi-core host — including every hosted CI runner — holds the
//! strict line.
//!
//! The default `--sav 1` samples every HITM event, the detector-heaviest
//! configuration the hardware allows; it is where the paper's concurrency
//! claim matters most and where serializing the detector hurts most.

use std::env;
use std::process::ExitCode;
use std::time::Instant;

use laser_bench::runner::build_under_tool;
use laser_bench::{geomean, validate_workload_names, PipelineConfig};
use laser_core::{Laser, LaserConfig, LaserOutcome};
use laser_machine::WorkloadImage;
use laser_workloads::{registry, BuildOptions, WorkloadSpec};
use serde::json::Value;

const USAGE: &str = "usage: bench_throughput [--scale S] [--workloads w1,w2,...] [--repeats N] \
                     [--sav V] [--capacity C] [--min-ratio R] [--output PATH]\n\
                     \n\
                     --scale S        workload input-size multiplier (default 2.0; below ~0.5\n\
                     \x20                 runs are too short for the pipeline to amortize)\n\
                     --workloads ...  comma-separated workload names (default: a contended trio)\n\
                     --repeats N      timed repeats per mode, best-of scoring (default 5)\n\
                     --sav V          PEBS sample-after-value (default 1: detector-heaviest)\n\
                     --capacity C     record-channel capacity in batches (default 2)\n\
                     --min-ratio R    fail unless geomean(pipelined/inline) >= R (default 1.0;\n\
                     \x20                 relaxed to 0.85 on single-core hosts, where the\n\
                     \x20                 pipeline has nothing to overlap against)\n\
                     --output PATH    where to write the JSON report (default BENCH_pipeline.json)";

/// Workloads whose contention keeps the detector busy enough for the
/// pipeline overlap to matter.
const DEFAULT_WORKLOADS: &[&str] = &["histogram'", "linear_regression", "reverse_index"];

#[derive(Debug)]
struct Cli {
    scale: f64,
    workloads: Vec<String>,
    repeats: usize,
    sav: u32,
    capacity: usize,
    min_ratio: f64,
    output: String,
}

impl Cli {
    fn parse(args: &[String]) -> Result<Cli, String> {
        let mut cli = Cli {
            scale: 2.0,
            workloads: DEFAULT_WORKLOADS.iter().map(|s| s.to_string()).collect(),
            repeats: 5,
            sav: 1,
            capacity: 2,
            min_ratio: 1.0,
            output: "BENCH_pipeline.json".to_string(),
        };
        let mut i = 0;
        let value = |args: &[String], i: usize| -> Result<String, String> {
            args.get(i + 1)
                .cloned()
                .ok_or_else(|| format!("{} needs a value", args[i]))
        };
        while i < args.len() {
            match args[i].as_str() {
                "--scale" => cli.scale = value(args, i)?.parse().map_err(|e| format!("{e}"))?,
                "--workloads" => {
                    cli.workloads = value(args, i)?.split(',').map(str::to_string).collect();
                }
                "--repeats" => {
                    let n: usize = value(args, i)?.parse().map_err(|e| format!("{e}"))?;
                    cli.repeats = n.max(1);
                }
                "--sav" => cli.sav = value(args, i)?.parse().map_err(|e| format!("{e}"))?,
                "--capacity" => {
                    cli.capacity = value(args, i)?.parse().map_err(|e| format!("{e}"))?;
                }
                "--min-ratio" => {
                    cli.min_ratio = value(args, i)?.parse().map_err(|e| format!("{e}"))?;
                }
                "--output" => cli.output = value(args, i)?,
                "--help" | "-h" => return Err(USAGE.to_string()),
                other => return Err(format!("unknown argument '{other}'\n{USAGE}")),
            }
            i += 2;
        }
        let names: Vec<&str> = cli.workloads.iter().map(String::as_str).collect();
        validate_workload_names(&names, &registry()).map_err(|e| e.to_string())?;
        Ok(cli)
    }
}

/// One timed run: wall seconds and the outcome it produced.
fn timed<F: FnOnce() -> Result<LaserOutcome, String>>(f: F) -> Result<(f64, LaserOutcome), String> {
    let start = Instant::now();
    let outcome = f()?;
    Ok((start.elapsed().as_secs_f64(), outcome))
}

/// The fields whose equality makes two outcomes "the same run".
fn fingerprint(outcome: &LaserOutcome) -> String {
    format!(
        "steps={} cycles={} per_core={:?} detector_cycles={} driver={:?} report={:?}",
        outcome.run.steps,
        outcome.run.cycles,
        outcome.run.per_core_cycles,
        outcome.detector_cycles,
        outcome.driver_stats,
        outcome.report
    )
}

struct WorkloadScore {
    name: String,
    steps: u64,
    inline_best: f64,
    piped_best: f64,
}

impl WorkloadScore {
    fn ratio(&self) -> f64 {
        self.piped_best / self.inline_best
    }
}

fn bench_workload(
    spec: &WorkloadSpec,
    opts: &BuildOptions,
    config: &LaserConfig,
    pipeline: PipelineConfig,
    repeats: usize,
) -> Result<WorkloadScore, String> {
    // Image construction is mode-independent setup; build it once outside
    // the timed window so the measured ratio reflects only session
    // execution (the pipelined leg still pays its own worker spawn — that
    // genuinely is part of the pipelined deployment).
    let image: WorkloadImage = build_under_tool(spec, opts);
    let run_session = |pipelined: bool| -> Result<LaserOutcome, String> {
        Laser::builder()
            .config(config.clone())
            .pipeline_config(if pipelined {
                pipeline
            } else {
                PipelineConfig::default()
            })
            .build(&image)
            .run()
            .map_err(|e| format!("{}: {e}", spec.name))
    };
    let mut inline_best = 0f64;
    let mut piped_best = 0f64;
    let mut steps = 0u64;
    for _ in 0..repeats {
        // Interleave the modes so load drift lands on both equally.
        let (inline_secs, inline_outcome) = timed(|| run_session(false))?;
        let (piped_secs, piped_outcome) = timed(|| run_session(true))?;
        let (a, b) = (fingerprint(&inline_outcome), fingerprint(&piped_outcome));
        if a != b {
            return Err(format!(
                "{}: pipelined outcome diverged from inline\n inline: {a}\n piped:  {b}",
                spec.name
            ));
        }
        steps = inline_outcome.run.steps;
        inline_best = inline_best.max(steps as f64 / inline_secs.max(1e-9));
        piped_best = piped_best.max(steps as f64 / piped_secs.max(1e-9));
    }
    Ok(WorkloadScore {
        name: spec.name.to_string(),
        steps,
        inline_best,
        piped_best,
    })
}

/// The gate actually applied: the configured `--min-ratio` on any host with
/// two or more hardware threads; relaxed on a single-core host, where the
/// detector stage timeslices against the machine stage and `>= 1.0` would be
/// a coin flip on scheduler noise.
fn effective_min_ratio(min_ratio: f64, parallelism: usize) -> f64 {
    if parallelism >= 2 {
        min_ratio
    } else {
        min_ratio.min(0.85)
    }
}

fn report_json(
    cli: &Cli,
    parallelism: usize,
    scores: &[WorkloadScore],
    geomean_ratio: f64,
    gate: f64,
    pass: bool,
) -> Value {
    let workloads: Vec<Value> = scores
        .iter()
        .map(|s| {
            Value::object()
                .set("workload", s.name.as_str())
                .set("steps", s.steps as i64)
                .set("inline_steps_per_sec", s.inline_best)
                .set("pipelined_steps_per_sec", s.piped_best)
                .set("ratio", s.ratio())
        })
        .collect();
    Value::object()
        .set("kind", "bench_pipeline")
        .set("scale", cli.scale)
        .set("repeats", cli.repeats as i64)
        .set("sav", cli.sav as i64)
        .set("capacity", cli.capacity as i64)
        .set("parallelism", parallelism as i64)
        .set("min_ratio", cli.min_ratio)
        .set("effective_min_ratio", gate)
        .set("workloads", Value::Array(workloads))
        .set("geomean_ratio", geomean_ratio)
        .set("pass", pass)
}

fn run(cli: &Cli) -> Result<bool, String> {
    let config = LaserConfig::detection_only().with_sav(cli.sav);
    let pipeline = PipelineConfig::pipelined().with_capacity(cli.capacity);
    let opts = BuildOptions {
        scale: cli.scale,
        ..Default::default()
    };
    let parallelism = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let gate = effective_min_ratio(cli.min_ratio, parallelism);
    if parallelism < 2 {
        eprintln!(
            "note: single hardware thread available; the pipeline has nothing to overlap \
             against, so the gate is relaxed to {gate:.2}"
        );
    }
    let all = registry();
    let mut scores = Vec::new();
    for name in &cli.workloads {
        let spec = all
            .iter()
            .find(|s| s.name == name.as_str())
            .expect("names validated at parse time");
        eprintln!("benching {name} ({} repeats x 2 modes)...", cli.repeats);
        let score = bench_workload(spec, &opts, &config, pipeline, cli.repeats)?;
        eprintln!(
            "  inline {:>12.0} steps/s | pipelined {:>12.0} steps/s | ratio {:.3}",
            score.inline_best,
            score.piped_best,
            score.ratio()
        );
        scores.push(score);
    }

    let ratios: Vec<f64> = scores.iter().map(WorkloadScore::ratio).collect();
    let geomean_ratio = geomean(&ratios);
    let pass = geomean_ratio >= gate;
    let json = report_json(cli, parallelism, &scores, geomean_ratio, gate, pass).render();
    std::fs::write(&cli.output, format!("{json}\n"))
        .map_err(|e| format!("write {}: {e}", cli.output))?;
    println!("{json}");
    eprintln!(
        "geomean pipelined/inline = {geomean_ratio:.3} (gate: >= {gate:.3}) -> {}; wrote {}",
        if pass { "pass" } else { "FAIL" },
        cli.output
    );
    Ok(pass)
}

fn main() -> ExitCode {
    let args: Vec<String> = env::args().skip(1).collect();
    let cli = match Cli::parse(&args) {
        Ok(cli) => cli,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    match run(&cli) {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::FAILURE,
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn defaults_are_the_gate_configuration() {
        let cli = Cli::parse(&[]).unwrap();
        assert_eq!(cli.sav, 1);
        assert_eq!(cli.repeats, 5);
        assert_eq!(cli.scale, 2.0);
        assert_eq!(cli.min_ratio, 1.0);
        assert_eq!(cli.output, "BENCH_pipeline.json");
        assert_eq!(cli.workloads, DEFAULT_WORKLOADS);
    }

    #[test]
    fn gate_is_strict_on_multicore_and_relaxed_on_a_single_core() {
        // Every multi-core host holds the configured line...
        assert_eq!(effective_min_ratio(1.0, 2), 1.0);
        assert_eq!(effective_min_ratio(1.0, 64), 1.0);
        assert_eq!(effective_min_ratio(0.97, 4), 0.97);
        // ...a single-core host (nothing to overlap against) only catches
        // gross regressions...
        assert_eq!(effective_min_ratio(1.0, 1), 0.85);
        // ...and an operator who asked for an even laxer gate keeps it.
        assert_eq!(effective_min_ratio(0.5, 1), 0.5);
    }

    #[test]
    fn workload_names_are_validated_up_front() {
        let err = Cli::parse(&args(&["--workloads", "histogramm"])).unwrap_err();
        assert!(err.contains("unknown workload 'histogramm'"), "{err}");
        let ok = Cli::parse(&args(&["--workloads", "histogram',swaptions"])).unwrap();
        assert_eq!(ok.workloads, vec!["histogram'", "swaptions"]);
    }

    #[test]
    fn flags_override_defaults() {
        let cli = Cli::parse(&args(&[
            "--scale",
            "0.1",
            "--repeats",
            "0",
            "--min-ratio",
            "0.9",
            "--capacity",
            "4",
            "--output",
            "out.json",
        ]))
        .unwrap();
        assert_eq!(cli.scale, 0.1);
        assert_eq!(cli.repeats, 1, "repeats clamp to at least one");
        assert_eq!(cli.min_ratio, 0.9);
        assert_eq!(cli.capacity, 4);
        assert_eq!(cli.output, "out.json");
    }

    #[test]
    fn report_shape_is_stable_and_parses() {
        let cli = Cli::parse(&[]).unwrap();
        let scores = vec![WorkloadScore {
            name: "histogram'".to_string(),
            steps: 1000,
            inline_best: 1.0e6,
            piped_best: 1.1e6,
        }];
        let json = report_json(&cli, 4, &scores, 1.1, 1.0, true).render();
        let doc = Value::parse(&json).unwrap();
        assert_eq!(doc.get("kind"), Some(&Value::Str("bench_pipeline".into())));
        assert_eq!(doc.get("pass"), Some(&Value::Bool(true)));
        assert_eq!(doc.get("parallelism"), Some(&Value::Int(4)));
        assert_eq!(doc.get("effective_min_ratio"), Some(&Value::Float(1.0)));
        let Some(Value::Array(rows)) = doc.get("workloads") else {
            panic!("workloads must be an array: {json}");
        };
        assert_eq!(rows.len(), 1);
        assert_eq!(
            rows[0].get("workload"),
            Some(&Value::Str("histogram'".into()))
        );
    }
}
