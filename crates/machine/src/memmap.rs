//! The process virtual memory map (the `/proc/<pid>/maps` equivalent).
//!
//! LASERDETECT's first pipeline stages classify a HITM record's PC as
//! belonging to the application, a library, or other code, and classify its
//! data address as stack or not (Section 4.1). Both queries are answered from
//! the memory map, which this module models explicitly.

use serde::{Deserialize, Serialize};

use crate::addr::Addr;

/// What a mapped region contains.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RegionKind {
    /// The application's own code (text segment).
    AppCode,
    /// Code of a shared library the application loaded.
    LibCode,
    /// A thread's stack; the payload is the thread index.
    Stack(u32),
    /// The heap.
    Heap,
    /// Global/static data.
    Globals,
    /// Kernel or other mappings; HITM records pointing here are spurious.
    Other,
}

/// Classification of a PC by the detector's first filter stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PcClass {
    /// PC inside the application's text segment.
    Application,
    /// PC inside a loaded library.
    Library,
    /// PC outside any code mapping (spurious record).
    Other,
}

/// A contiguous mapped region `[start, end)`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Region {
    /// Inclusive start address.
    pub start: Addr,
    /// Exclusive end address.
    pub end: Addr,
    /// What the region holds.
    pub kind: RegionKind,
    /// Human-readable name (e.g. the mapped file).
    pub name: String,
}

impl Region {
    /// Create a region.
    pub fn new(start: Addr, end: Addr, kind: RegionKind, name: impl Into<String>) -> Self {
        assert!(start < end, "region must have positive size");
        Region {
            start,
            end,
            kind,
            name: name.into(),
        }
    }

    /// True if `addr` falls inside the region.
    pub fn contains(&self, addr: Addr) -> bool {
        addr >= self.start && addr < self.end
    }

    /// Size of the region in bytes.
    pub fn len(&self) -> u64 {
        self.end - self.start
    }

    /// Regions are never empty.
    pub fn is_empty(&self) -> bool {
        false
    }
}

/// The full memory map of the simulated process.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct MemoryMap {
    regions: Vec<Region>,
}

impl MemoryMap {
    /// An empty map.
    pub fn new() -> Self {
        MemoryMap {
            regions: Vec::new(),
        }
    }

    /// Add a region.
    ///
    /// # Panics
    /// Panics if the new region overlaps an existing one.
    pub fn add(&mut self, region: Region) {
        for r in &self.regions {
            assert!(
                region.end <= r.start || region.start >= r.end,
                "region {:?} overlaps {:?}",
                region,
                r
            );
        }
        self.regions.push(region);
        self.regions.sort_by_key(|r| r.start);
    }

    /// All regions, ordered by start address.
    pub fn regions(&self) -> &[Region] {
        &self.regions
    }

    /// The region containing `addr`, if any.
    pub fn region_of(&self, addr: Addr) -> Option<&Region> {
        self.regions.iter().find(|r| r.contains(addr))
    }

    /// True if `addr` is inside any mapped region.
    pub fn is_mapped(&self, addr: Addr) -> bool {
        self.region_of(addr).is_some()
    }

    /// Classify a program counter for the detector's first filter stage.
    pub fn classify_pc(&self, pc: Addr) -> PcClass {
        match self.region_of(pc).map(|r| r.kind) {
            Some(RegionKind::AppCode) => PcClass::Application,
            Some(RegionKind::LibCode) => PcClass::Library,
            _ => PcClass::Other,
        }
    }

    /// True if `addr` lies in some thread's stack.
    pub fn is_stack(&self, addr: Addr) -> bool {
        matches!(
            self.region_of(addr).map(|r| r.kind),
            Some(RegionKind::Stack(_))
        )
    }

    /// True if `addr` lies in the heap or global data.
    pub fn is_data(&self, addr: Addr) -> bool {
        matches!(
            self.region_of(addr).map(|r| r.kind),
            Some(RegionKind::Heap) | Some(RegionKind::Globals)
        )
    }

    /// Render the map in a `/proc/<pid>/maps`-like textual form.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for r in &self.regions {
            let _ = writeln!(
                out,
                "{:012x}-{:012x} {:?} {}",
                r.start, r.end, r.kind, r.name
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_map() -> MemoryMap {
        let mut m = MemoryMap::new();
        m.add(Region::new(
            0x0040_0000,
            0x0050_0000,
            RegionKind::AppCode,
            "app",
        ));
        m.add(Region::new(
            0x7f00_0000,
            0x7f10_0000,
            RegionKind::LibCode,
            "libc.so",
        ));
        m.add(Region::new(
            0x1000_0000,
            0x2000_0000,
            RegionKind::Heap,
            "[heap]",
        ));
        m.add(Region::new(
            0x7ffd_0000,
            0x7ffe_0000,
            RegionKind::Stack(0),
            "[stack:0]",
        ));
        m.add(Region::new(
            0x7ffe_0000,
            0x7fff_0000,
            RegionKind::Stack(1),
            "[stack:1]",
        ));
        m
    }

    #[test]
    fn pc_classification() {
        let m = sample_map();
        assert_eq!(m.classify_pc(0x0040_1234), PcClass::Application);
        assert_eq!(m.classify_pc(0x7f00_0042), PcClass::Library);
        assert_eq!(m.classify_pc(0xdead_beef_0000), PcClass::Other);
        assert_eq!(m.classify_pc(0x1000_0010), PcClass::Other); // heap is not code
    }

    #[test]
    fn stack_and_data_queries() {
        let m = sample_map();
        assert!(m.is_stack(0x7ffd_8000));
        assert!(!m.is_stack(0x1000_0000));
        assert!(m.is_data(0x1000_0000));
        assert!(!m.is_data(0x0040_0000));
        assert!(m.is_mapped(0x7f00_0000));
        assert!(!m.is_mapped(0x4242_4242_4242));
    }

    #[test]
    #[should_panic(expected = "overlaps")]
    fn overlapping_regions_rejected() {
        let mut m = sample_map();
        m.add(Region::new(
            0x0045_0000,
            0x0046_0000,
            RegionKind::Heap,
            "bad",
        ));
    }

    #[test]
    fn render_lists_each_region() {
        let m = sample_map();
        let text = m.render();
        assert_eq!(text.lines().count(), m.regions().len());
        assert!(text.contains("libc.so"));
    }

    #[test]
    fn region_basics() {
        let r = Region::new(0x100, 0x200, RegionKind::Heap, "h");
        assert_eq!(r.len(), 0x100);
        assert!(r.contains(0x100));
        assert!(!r.contains(0x200));
        assert!(!r.is_empty());
    }
}
