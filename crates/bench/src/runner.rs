//! Shared plumbing for the experiments: workload selection, tool invocation
//! and scoring against the known-bug database.

use laser_core::{
    ContentionReport, Laser, LaserConfig, LaserError, LaserOutcome, Observer, PipelineConfig,
    TopologySpec,
};
use laser_machine::{RunResult, WorkloadImage};
use laser_workloads::{registry, BuildOptions, WorkloadSpec};

use crate::topofile::Deployment;

/// How large an experiment to run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExperimentScale {
    /// Input-scale multiplier applied to every workload.
    pub workload_scale: f64,
    /// Optional restriction to a subset of workload names (used by the
    /// Criterion benches to stay fast); `None` means the full suite.
    pub only: Option<&'static [&'static str]>,
}

impl Default for ExperimentScale {
    fn default() -> Self {
        ExperimentScale {
            workload_scale: 0.4,
            only: None,
        }
    }
}

impl ExperimentScale {
    /// The scale used by the Criterion benches: tiny inputs, a handful of
    /// representative workloads.
    pub fn bench() -> Self {
        ExperimentScale {
            workload_scale: 0.08,
            only: Some(&[
                "histogram'",
                "linear_regression",
                "kmeans",
                "dedup",
                "swaptions",
                "streamcluster",
            ]),
        }
    }

    /// Build options for a workload at this scale.
    pub fn options(&self) -> BuildOptions {
        BuildOptions {
            scale: self.workload_scale,
            ..Default::default()
        }
    }

    /// The workloads selected by this scale, in registry order.
    pub fn workloads(&self) -> Vec<WorkloadSpec> {
        registry()
            .into_iter()
            .filter(|s| {
                self.only
                    .map(|names| names.contains(&s.name))
                    .unwrap_or(true)
            })
            .collect()
    }
}

/// Incidental heap-layout shift caused by running a workload under a tool
/// (driver + detector resident in the process environment). Only `lu_ncb` is
/// sensitive to it, reproducing the paper's "coincidental change in memory
/// layout caused by LASER" observation.
pub const TOOL_LAYOUT_PERTURBATION: u64 = 32;

/// Build a workload image the way it is laid out when running *under a tool*
/// (LASER or VTune). Only `lu_ncb` is sensitive to the incidental allocator
/// shift the tool environment causes (Section 7.4.2 of the paper); applying it
/// elsewhere would perturb layouts the paper reports as unchanged.
pub fn build_under_tool(spec: &WorkloadSpec, opts: &BuildOptions) -> WorkloadImage {
    if spec.name == "lu_ncb" {
        let opts = BuildOptions {
            layout_perturbation: TOOL_LAYOUT_PERTURBATION,
            ..opts.clone()
        };
        spec.build(&opts)
    } else {
        spec.build(opts)
    }
}

/// Run a workload natively (no tool attached).
///
/// # Errors
/// Propagates simulator errors (step-budget exhaustion).
pub fn run_native(spec: &WorkloadSpec, opts: &BuildOptions) -> Result<RunResult, LaserError> {
    Laser::run_native(&spec.build(opts))
}

/// Run a workload natively on a topology preset: the build options are
/// adapted to it ([`BuildOptions::for_topology`]: threads scale with the
/// socket count, multi-socket placement goes round-robin) and the machine is
/// deployed on the preset's topology and core count. The flat preset is
/// byte-identical to [`run_native`].
///
/// # Errors
/// Propagates simulator errors (step-budget exhaustion).
pub fn run_native_at(
    spec: &WorkloadSpec,
    opts: &BuildOptions,
    topo: TopologySpec,
) -> Result<RunResult, LaserError> {
    run_native_deployed(spec, opts, &Deployment::Preset(topo))
}

/// Run a workload natively on an arbitrary [`Deployment`]: a preset behaves
/// exactly like [`run_native_at`]; a custom layout adapts the build options
/// ([`crate::topofile::CustomTopology::adapt`]) and deploys the machine on
/// the loaded topology and core count.
///
/// # Errors
/// Propagates simulator errors (step-budget exhaustion).
pub fn run_native_deployed(
    spec: &WorkloadSpec,
    opts: &BuildOptions,
    deploy: &Deployment,
) -> Result<RunResult, LaserError> {
    let opts = deploy.adapt(opts);
    Laser::run_native_on(&spec.build(&opts), deploy.machine_config())
}

/// Run a workload under LASER with the given configuration.
///
/// # Errors
/// Propagates simulator errors (step-budget exhaustion).
pub fn run_laser(
    spec: &WorkloadSpec,
    opts: &BuildOptions,
    config: LaserConfig,
) -> Result<LaserOutcome, LaserError> {
    Laser::new(config).run(&build_under_tool(spec, opts))
}

/// Run a workload under LASER with `observer` attached to the session's
/// event stream (see [`laser_core::observe`]) and the given pipeline
/// deployment. This is how the campaign runner threads per-cell budgets —
/// and the `--pipeline` execution mode — into a run. Pipelining changes
/// only the wall-clock: the outcome and event stream are byte-identical to
/// an inline run.
///
/// # Errors
/// Propagates simulator errors, and [`LaserError::Stopped`] when `observer`
/// cancelled the run.
pub fn run_laser_observed(
    spec: &WorkloadSpec,
    opts: &BuildOptions,
    config: LaserConfig,
    pipeline: PipelineConfig,
    observer: Box<dyn Observer>,
) -> Result<LaserOutcome, LaserError> {
    run_laser_observed_at(spec, opts, config, pipeline, TopologySpec::Flat, observer)
}

/// Like [`run_laser_observed`], deployed on a topology preset: the build
/// options are adapted to it and the session's machine is configured with
/// the preset's topology and core count (via `LaserConfig::topology`). The
/// flat preset is byte-identical to [`run_laser_observed`].
///
/// # Errors
/// Propagates simulator errors, and [`LaserError::Stopped`] when `observer`
/// cancelled the run.
pub fn run_laser_observed_at(
    spec: &WorkloadSpec,
    opts: &BuildOptions,
    config: LaserConfig,
    pipeline: PipelineConfig,
    topo: TopologySpec,
    observer: Box<dyn Observer>,
) -> Result<LaserOutcome, LaserError> {
    run_laser_observed_deployed(
        spec,
        opts,
        config,
        pipeline,
        &Deployment::Preset(topo),
        observer,
    )
}

/// Like [`run_laser_observed_at`], on an arbitrary [`Deployment`]. A preset
/// takes the exact pre-deployment code path (the session builder deploys the
/// machine from `LaserConfig::topology`, byte-identical); a custom layout
/// hands the session an explicit machine configuration built from the loaded
/// topology, which the builder honours over any config preset.
///
/// # Errors
/// Propagates simulator errors, and [`LaserError::Stopped`] when `observer`
/// cancelled the run.
pub fn run_laser_observed_deployed(
    spec: &WorkloadSpec,
    opts: &BuildOptions,
    config: LaserConfig,
    pipeline: PipelineConfig,
    deploy: &Deployment,
    observer: Box<dyn Observer>,
) -> Result<LaserOutcome, LaserError> {
    let opts = deploy.adapt(opts);
    laser_builder_deployed(config, deploy)
        .pipeline_config(pipeline)
        .boxed_observer(observer)
        .build(&build_under_tool(spec, &opts))
        .run()
}

/// Start a session builder for `deploy`: presets ride on
/// `LaserConfig::topology` (the flat default never clobbers a topology the
/// caller put in their own config); custom layouts pass an explicit machine
/// configuration, which wins over any config preset.
fn laser_builder_deployed(config: LaserConfig, deploy: &Deployment) -> laser_core::SessionBuilder {
    match deploy {
        Deployment::Preset(TopologySpec::Flat) => Laser::builder().config(config),
        Deployment::Preset(topo) => Laser::builder().config(config.with_topology(*topo)),
        Deployment::Custom(_) => Laser::builder()
            .config(config)
            .machine(deploy.machine_config()),
    }
}

/// Run a workload under LASER with the detector stage pipelined onto a
/// worker thread (see [`laser_core::PipelineConfig`]), unobserved. Used by
/// the `bench_throughput` harness to compare inline and pipelined
/// steps-per-second on identical sessions.
///
/// # Errors
/// Propagates simulator errors (step-budget exhaustion).
pub fn run_laser_piped(
    spec: &WorkloadSpec,
    opts: &BuildOptions,
    config: LaserConfig,
    pipeline: PipelineConfig,
) -> Result<LaserOutcome, LaserError> {
    run_laser_piped_at(spec, opts, config, pipeline, TopologySpec::Flat)
}

/// Like [`run_laser_piped`], deployed on a topology preset (see
/// [`run_laser_observed_at`] for how the preset is applied).
///
/// # Errors
/// Propagates simulator errors (step-budget exhaustion).
pub fn run_laser_piped_at(
    spec: &WorkloadSpec,
    opts: &BuildOptions,
    config: LaserConfig,
    pipeline: PipelineConfig,
    topo: TopologySpec,
) -> Result<LaserOutcome, LaserError> {
    run_laser_piped_deployed(spec, opts, config, pipeline, &Deployment::Preset(topo))
}

/// Like [`run_laser_piped_at`], on an arbitrary [`Deployment`] (see
/// [`run_laser_observed_deployed`] for how each arm deploys the machine).
///
/// # Errors
/// Propagates simulator errors (step-budget exhaustion).
pub fn run_laser_piped_deployed(
    spec: &WorkloadSpec,
    opts: &BuildOptions,
    config: LaserConfig,
    pipeline: PipelineConfig,
    deploy: &Deployment,
) -> Result<LaserOutcome, LaserError> {
    let opts = deploy.adapt(opts);
    laser_builder_deployed(config, deploy)
        .pipeline_config(pipeline)
        .build(&build_under_tool(spec, &opts))
        .run()
}

/// False negatives and false positives of a report, scored against the
/// workload's known-bug database exactly as the paper's Table 1 does: a bug is
/// *found* if any reported line matches one of its locations; every reported
/// line that matches no bug is a false positive.
pub fn score_report(spec: &WorkloadSpec, report: &ContentionReport) -> (usize, usize) {
    score_locations(
        spec,
        &report
            .lines
            .iter()
            .map(|l| (l.location.file.clone(), l.location.line))
            .collect::<Vec<_>>(),
    )
}

/// Score the reported lines of a cached campaign cell against the known-bug
/// database. Only lines that attribute to source locations participate;
/// Sheriff's allocation-site reports are scored separately (see
/// `crate::accuracy`).
pub fn score_reported(
    spec: &WorkloadSpec,
    reported: &[crate::tool::ReportedLine],
) -> (usize, usize) {
    score_locations(
        spec,
        &reported
            .iter()
            .filter_map(|l| l.location().map(|(f, line)| (f.to_string(), line)))
            .collect::<Vec<_>>(),
    )
}

/// Score an arbitrary list of reported `(file, line)` locations against the
/// known-bug database.
pub fn score_locations(spec: &WorkloadSpec, reported: &[(String, u32)]) -> (usize, usize) {
    let false_negatives = spec
        .known_bugs
        .iter()
        .filter(|bug| !reported.iter().any(|(f, l)| bug.matches(f, *l)))
        .count();
    let false_positives = reported
        .iter()
        .filter(|(f, l)| !spec.known_bugs.iter().any(|bug| bug.matches(f, *l)))
        .count();
    (false_negatives, false_positives)
}

/// Geometric mean of a slice of ratios (1.0 for an empty slice).
pub fn geomean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 1.0;
    }
    let log_sum: f64 = values.iter().map(|v| v.max(1e-12).ln()).sum();
    (log_sum / values.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;
    use laser_workloads::find;

    #[test]
    fn geomean_basics() {
        assert!((geomean(&[]) - 1.0).abs() < 1e-12);
        assert!((geomean(&[2.0, 8.0]) - 4.0).abs() < 1e-9);
        assert!((geomean(&[1.0, 1.0, 1.0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn scoring_counts_fn_and_fp() {
        let spec = find("linear_regression").unwrap();
        // Nothing reported: one false negative, no false positives.
        assert_eq!(score_locations(&spec, &[]), (1, 0));
        // The bug line plus a stray line: bug found, one false positive.
        let reported = vec![
            ("linear_regression.c".to_string(), 45),
            ("other.c".to_string(), 3),
        ];
        assert_eq!(score_locations(&spec, &reported), (0, 1));
    }

    #[test]
    fn bench_scale_selects_a_subset() {
        let s = ExperimentScale::bench();
        let w = s.workloads();
        assert!(w.len() < 10 && !w.is_empty());
        assert!(w.iter().any(|s| s.name == "histogram'"));
    }

    #[test]
    fn laser_and_native_runners_work_end_to_end() {
        let spec = find("swaptions").unwrap();
        let opts = BuildOptions::scaled(0.05);
        let native = run_native(&spec, &opts).unwrap();
        let laser = run_laser(&spec, &opts, LaserConfig::detection_only()).unwrap();
        assert!(native.cycles > 0);
        assert!(laser.run.cycles >= native.cycles);
    }
}
