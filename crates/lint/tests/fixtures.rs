//! Golden-fixture and self-check integration tests for `laser-lint`.
//!
//! * every file under `fixtures/bad/` must trigger exactly the rules its
//!   header documents when linted under the strictest (library) role;
//! * every file under `fixtures/good/` must lint clean;
//! * the shipped workspace itself must lint clean (`--check` gates CI, so a
//!   regression here is caught before the pipeline does);
//! * the binary's exit-code contract is smoke-tested end to end.

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};
use std::process::Command;

use laser_lint::{lint_source, lint_tree};

fn fixture(kind: &str, name: &str) -> String {
    let p = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(kind)
        .join(name);
    std::fs::read_to_string(&p).unwrap_or_else(|e| panic!("read {}: {e}", p.display()))
}

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/lint sits two levels below the workspace root")
        .to_path_buf()
}

/// Lint fixture text under the strictest role: a library source path.
fn lint_as_lib(source: &str) -> Vec<laser_lint::Finding> {
    lint_source("crates/fixture/src/lib.rs", source)
}

fn rule_set(findings: &[laser_lint::Finding]) -> BTreeSet<&'static str> {
    findings.iter().map(|f| f.rule).collect()
}

#[test]
fn bad_fixtures_trigger_exactly_their_rules() {
    let cases: &[(&str, &[&str])] = &[
        ("default_hasher.rs", &["default-hasher"]),
        ("hash_iter.rs", &["default-hasher", "hash-iter"]),
        ("fs_iter.rs", &["fs-iter"]),
        ("wall_clock.rs", &["wall-clock"]),
        ("float_accum.rs", &["float-accum"]),
        ("panic.rs", &["panic"]),
        ("unsafe_code.rs", &["unsafe-code"]),
        ("bad_allow.rs", &["bad-allow", "panic"]),
        ("shard_merge.rs", &["shard-merge"]),
    ];
    for (name, expected) in cases {
        let findings = lint_as_lib(&fixture("bad", name));
        let got = rule_set(&findings);
        let want: BTreeSet<&str> = expected.iter().copied().collect();
        assert_eq!(
            got, want,
            "fixtures/bad/{name} triggered {got:?}, expected {want:?}"
        );
    }
}

#[test]
fn bad_fixture_finding_counts_are_pinned() {
    // One `fs::read_dir(…)` call plus one `path.read_dir()` method form.
    assert_eq!(lint_as_lib(&fixture("bad", "fs_iter.rs")).len(), 2);
    assert_eq!(lint_as_lib(&fixture("bad", "wall_clock.rs")).len(), 3);
    assert_eq!(lint_as_lib(&fixture("bad", "float_accum.rs")).len(), 3);
    assert_eq!(lint_as_lib(&fixture("bad", "panic.rs")).len(), 5);
    // Two malformed annotations plus the unsuppressed unwrap.
    assert_eq!(lint_as_lib(&fixture("bad", "bad_allow.rs")).len(), 3);
    // The free merge function and the method-form absorb; the shard-free
    // combiner at the bottom stays out of scope.
    assert_eq!(lint_as_lib(&fixture("bad", "shard_merge.rs")).len(), 2);
}

#[test]
fn unsafe_rule_reaches_test_code() {
    // Linted under its real fixtures/ path the file is test-like, yet the
    // unsafe-code findings must survive — it is the one rule with no exempt
    // role.
    let findings = lint_source(
        "crates/lint/fixtures/bad/unsafe_code.rs",
        &fixture("bad", "unsafe_code.rs"),
    );
    assert!(!findings.is_empty());
    assert!(findings.iter().all(|f| f.rule == "unsafe-code"));
    assert!(
        findings.len() >= 3,
        "static mut, unsafe block, and the unsafe block inside #[cfg(test)]"
    );
}

#[test]
fn good_fixtures_are_clean() {
    for name in ["clean.rs", "allowed.rs", "test_code.rs"] {
        let findings = lint_as_lib(&fixture("good", name));
        assert!(
            findings.is_empty(),
            "fixtures/good/{name} should lint clean, got: {findings:?}"
        );
    }
}

#[test]
fn shipped_workspace_lints_clean() {
    let root = workspace_root();
    let report = lint_tree(&root, &[]).expect("walk the workspace tree");
    assert!(
        report.files_scanned > 50,
        "workspace walk found only {} files — wrong root?",
        report.files_scanned
    );
    assert!(
        report.findings.is_empty(),
        "the shipped tree must lint clean; found:\n{}",
        report.to_text()
    );
}

#[test]
fn check_flag_exits_nonzero_on_bad_fixture() {
    let out = Command::new(env!("CARGO_BIN_EXE_laser-lint"))
        .current_dir(workspace_root())
        .args([
            "--check",
            "--format",
            "json",
            "crates/lint/fixtures/bad/unsafe_code.rs",
        ])
        .output()
        .expect("run laser-lint");
    assert_eq!(out.status.code(), Some(2), "findings under --check exit 2");
    let stdout = String::from_utf8(out.stdout).expect("json is utf-8");
    assert!(stdout.contains("\"finding_count\""));
    assert!(stdout.contains("unsafe-code"));
}

#[test]
fn check_flag_exits_zero_on_clean_tree() {
    let out = Command::new(env!("CARGO_BIN_EXE_laser-lint"))
        .current_dir(workspace_root())
        .args(["--check", "--format", "json"])
        .output()
        .expect("run laser-lint");
    assert_eq!(
        out.status.code(),
        Some(0),
        "the shipped tree must pass --check; stdout:\n{}",
        String::from_utf8_lossy(&out.stdout)
    );
}

#[test]
fn list_rules_names_every_rule() {
    let out = Command::new(env!("CARGO_BIN_EXE_laser-lint"))
        .arg("--list-rules")
        .output()
        .expect("run laser-lint");
    assert_eq!(out.status.code(), Some(0));
    let stdout = String::from_utf8_lossy(&out.stdout);
    for rule in [
        "default-hasher",
        "hash-iter",
        "fs-iter",
        "wall-clock",
        "float-accum",
        "panic",
        "unsafe-code",
        "shard-merge",
    ] {
        assert!(stdout.contains(rule), "--list-rules omits {rule}");
    }
}

#[test]
fn usage_errors_exit_two() {
    let out = Command::new(env!("CARGO_BIN_EXE_laser-lint"))
        .arg("--bogus-flag")
        .output()
        .expect("run laser-lint");
    assert_eq!(out.status.code(), Some(2));
}
