//! Hardware transactional memory (Intel RTM) model.
//!
//! LASERREPAIR flushes its software store buffer inside a hardware
//! transaction so that the coalesced (and therefore potentially re-ordered)
//! stores become visible to other threads atomically, which preserves TSO
//! (paper Section 5.5). The only RTM properties the repair scheme relies on
//! are strong atomicity and a bounded write-set capacity of roughly the L1
//! associativity (8 ways on the paper's machine); both are modelled here.

use serde::{Deserialize, Serialize};

/// Maximum number of distinct cache lines a transaction's write set may
/// contain before it aborts for capacity. The paper's machine has an 8-way L1,
/// and LASERREPAIR pre-emptively flushes when the SSB exceeds 8 entries.
pub const HTM_CAPACITY_LINES: usize = 8;

/// Outcome of attempting a hardware transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum HtmOutcome {
    /// The transaction committed; `cycles` is its total cost (begin + body +
    /// commit).
    Committed {
        /// Cycles charged for the whole transaction.
        cycles: u64,
    },
    /// The write set exceeded [`HTM_CAPACITY_LINES`]; the caller must fall
    /// back to a non-transactional path.
    CapacityAborted,
}

impl HtmOutcome {
    /// True if the transaction committed.
    pub fn committed(&self) -> bool {
        matches!(self, HtmOutcome::Committed { .. })
    }
}

/// Check whether a write set touching `distinct_lines` cache lines fits in a
/// transaction.
pub fn fits_in_transaction(distinct_lines: usize) -> bool {
    distinct_lines <= HTM_CAPACITY_LINES
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacity_rule() {
        assert!(fits_in_transaction(0));
        assert!(fits_in_transaction(8));
        assert!(!fits_in_transaction(9));
    }

    #[test]
    fn outcome_predicates() {
        assert!(HtmOutcome::Committed { cycles: 10 }.committed());
        assert!(!HtmOutcome::CapacityAborted.committed());
    }
}
