//! Coherence events observed by the performance-monitoring hardware.

use serde::{Deserialize, Serialize};

use crate::addr::Addr;
use crate::machine::CoreId;

/// Whether a memory access reads or writes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MemAccessKind {
    /// A load (or the read half of an atomic).
    Load,
    /// A store (or the write half of an atomic).
    Store,
}

/// A HITM event: a core accessed a cache line that was in Modified state in a
/// remote core's cache.
///
/// These are the ground-truth events; the PEBS model in `laser-pebs` samples
/// them and injects Haswell's measured record imprecision before anything
/// reaches the detector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HitmEvent {
    /// The core that performed the access.
    pub core: CoreId,
    /// PC of the triggering instruction (exact).
    pub pc: u64,
    /// Data address of the access (exact).
    pub addr: Addr,
    /// Access size in bytes.
    pub size: u8,
    /// Whether the access was a load or a store. Haswell's
    /// `MEM_LOAD_UOPS_LLC_HIT_RETIRED.XSNP_HITM` event is precise only for
    /// loads; store-triggered HITMs produce much noisier records.
    pub kind: MemAccessKind,
    /// The core-local cycle count at which the event occurred.
    pub cycle: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_is_copy_and_comparable() {
        let e = HitmEvent {
            core: CoreId(1),
            pc: 0x40_0000,
            addr: 0x1000_0040,
            size: 8,
            kind: MemAccessKind::Store,
            cycle: 123,
        };
        let f = e;
        assert_eq!(e, f);
        assert_eq!(f.kind, MemAccessKind::Store);
    }
}
