//! Hook attachment and dispatch — the machine side of the Pin substitute.
//!
//! The hook lives in its own [`HookSlot`] field of the machine, disjoint from
//! the [`MachineInner`](crate::machine::MachineInner) state a running hook
//! mutates. Field-level borrow splitting then lets a dispatcher hand the hook
//! a [`HookCtx`] without moving the hook out of the machine first: the
//! no-hook path is a single `None` branch, and the hooked path pays no
//! `Option::take`/restore round-trip per call.

use laser_isa::program::{BlockId, Pc};

use crate::hook::{ExecHook, HookAction, HookCtx, MemOp};
use crate::machine::Machine;

/// The machine's hook attachment point. A dedicated single-field struct (not
/// a bare `Option` inside the machine) so the dispatchers below borrow it
/// independently of the inner state both lexically and in intent: everything
/// the hook may touch lives on the other side of the split.
#[derive(Default)]
pub(crate) struct HookSlot(pub(crate) Option<Box<dyn ExecHook>>);

impl HookSlot {
    /// True if a hook is attached — the hot loop's one-branch fast-path
    /// check, used to skip argument marshalling entirely when unhooked.
    #[inline]
    pub(crate) fn is_attached(&self) -> bool {
        self.0.is_some()
    }
}

impl Machine {
    /// Attach a dynamic-instrumentation hook (the Pin substitute). Replaces
    /// any previously attached hook.
    pub fn attach_hook(&mut self, hook: Box<dyn ExecHook>) {
        self.hook.0 = Some(hook);
    }

    /// Detach and return the current hook, if any.
    pub fn detach_hook(&mut self) -> Option<Box<dyn ExecHook>> {
        self.hook.0.take()
    }

    /// The currently attached hook, if any (e.g. to read tool statistics via
    /// [`ExecHook::as_any`] while the machine still owns the hook).
    pub fn hook(&self) -> Option<&dyn ExecHook> {
        self.hook.0.as_deref()
    }

    /// True if a hook is currently attached.
    pub fn has_hook(&self) -> bool {
        self.hook.is_attached()
    }

    pub(crate) fn hook_mem_op(&mut self, core: usize, now: u64, op: &MemOp) -> Option<HookAction> {
        let hook = self.hook.0.as_deref_mut()?;
        let mut ctx = HookCtx {
            inner: &mut self.inner,
            core,
            now,
        };
        Some(hook.on_mem_op(&mut ctx, op))
    }

    pub(crate) fn hook_fence(&mut self, core: usize, now: u64, pc: Pc) -> u64 {
        let Some(hook) = self.hook.0.as_deref_mut() else {
            return 0;
        };
        let mut ctx = HookCtx {
            inner: &mut self.inner,
            core,
            now,
        };
        hook.on_fence(&mut ctx, pc)
    }

    pub(crate) fn hook_block_entry(&mut self, core: usize, now: u64, block: BlockId) -> u64 {
        let Some(hook) = self.hook.0.as_deref_mut() else {
            return 0;
        };
        let mut ctx = HookCtx {
            inner: &mut self.inner,
            core,
            now,
        };
        hook.on_block_entry(&mut ctx, block)
    }

    pub(crate) fn hook_thread_exit(&mut self, core: usize, now: u64) -> u64 {
        let Some(hook) = self.hook.0.as_deref_mut() else {
            return 0;
        };
        let mut ctx = HookCtx {
            inner: &mut self.inner,
            core,
            now,
        };
        hook.on_thread_exit(&mut ctx)
    }
}
