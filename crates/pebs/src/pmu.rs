//! The per-core performance monitoring unit with PEBS sampling.
//!
//! The PMU counts HITM events per core and, every *Sample-After-Value* (SAV)
//! events, captures a PEBS record into that core's buffer. When a buffer fills
//! up (or, in the "interrupt on every sample" mode that VTune uses for extra
//! precision, after every sample) a performance-monitoring interrupt is
//! raised; the driver handles the interrupt, drains the buffer and charges the
//! interrupted core for the handler's cycles.

use serde::{Deserialize, Serialize};

use laser_machine::HitmEvent;

use crate::imprecision::ImprecisionModel;
use crate::record::HitmRecord;

/// PMU configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PmuConfig {
    /// Sample-After-Value: every `sav`-th HITM event is sampled. The paper
    /// uses 19 (a prime, as PEBS folklore recommends) by default and 1 for the
    /// characterization experiments.
    pub sav: u32,
    /// Per-core PEBS buffer capacity, in records, before a buffer-full
    /// interrupt is raised.
    pub pebs_buffer_capacity: usize,
    /// Raise an interrupt after every sampled record instead of waiting for
    /// the buffer to fill. VTune configures the PMU this way; it improves
    /// timeliness at a large overhead cost (paper Section 7.1).
    pub interrupt_on_each_sample: bool,
    /// Number of cores.
    pub num_cores: usize,
}

impl Default for PmuConfig {
    fn default() -> Self {
        PmuConfig {
            sav: 19,
            pebs_buffer_capacity: 32,
            interrupt_on_each_sample: false,
            num_cores: 4,
        }
    }
}

/// Work the PMU generated while observing a batch of events; the driver uses
/// this to charge overhead.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PmuActivity {
    /// Records captured into PEBS buffers.
    pub records_sampled: usize,
    /// Interrupts raised (buffer full, or per-sample in VTune mode).
    pub interrupts: usize,
    /// Events dropped outright (not sampled, not counted against a SAV
    /// countdown) — e.g. events from cores outside the configured range.
    pub events_dropped: usize,
}

/// The performance monitoring unit for all cores.
#[derive(Debug)]
pub struct Pmu {
    config: PmuConfig,
    model: ImprecisionModel,
    countdown: Vec<u32>,
    buffers: Vec<Vec<HitmRecord>>,
    ready: Vec<HitmRecord>,
    total_events: u64,
    total_samples: u64,
    total_interrupts: u64,
    total_dropped: u64,
}

impl Pmu {
    /// Create a PMU with the given sampling configuration and imprecision
    /// model.
    ///
    /// # Panics
    /// Panics if `sav` is zero.
    pub fn new(config: PmuConfig, model: ImprecisionModel) -> Self {
        assert!(config.sav >= 1, "SAV must be at least 1");
        Pmu {
            countdown: vec![config.sav; config.num_cores],
            buffers: vec![Vec::new(); config.num_cores],
            ready: Vec::new(),
            total_events: 0,
            total_samples: 0,
            total_interrupts: 0,
            total_dropped: 0,
            config,
            model,
        }
    }

    /// The sampling configuration.
    pub fn config(&self) -> &PmuConfig {
        &self.config
    }

    /// Total ground-truth HITM events observed (the raw counter, which
    /// pre-Haswell chips already exposed).
    pub fn total_events(&self) -> u64 {
        self.total_events
    }

    /// Total PEBS records sampled.
    pub fn total_samples(&self) -> u64 {
        self.total_samples
    }

    /// Total interrupts raised.
    pub fn total_interrupts(&self) -> u64 {
        self.total_interrupts
    }

    /// Total events dropped outright (see [`PmuActivity::events_dropped`]).
    pub fn total_dropped(&self) -> u64 {
        self.total_dropped
    }

    /// Feed a batch of ground-truth HITM events into the PMU. Sampled events
    /// are distorted by the imprecision model and recorded into the
    /// originating core's PEBS buffer.
    pub fn observe(&mut self, events: &[HitmEvent]) -> PmuActivity {
        let mut activity = PmuActivity::default();
        for event in events {
            self.total_events += 1;
            let core = event.core.0;
            if core >= self.config.num_cores {
                self.total_dropped += 1;
                activity.events_dropped += 1;
                continue;
            }
            self.countdown[core] -= 1;
            if self.countdown[core] > 0 {
                continue;
            }
            self.countdown[core] = self.config.sav;
            let record = self.model.distort(event);
            self.buffers[core].push(record);
            self.total_samples += 1;
            activity.records_sampled += 1;
            let full = self.buffers[core].len() >= self.config.pebs_buffer_capacity;
            if full || self.config.interrupt_on_each_sample {
                self.ready.append(&mut self.buffers[core]);
                self.total_interrupts += 1;
                activity.interrupts += 1;
            }
        }
        activity
    }

    /// Records whose buffers have already been flushed by an interrupt.
    pub fn drain_ready(&mut self) -> Vec<HitmRecord> {
        std::mem::take(&mut self.ready)
    }

    /// Flush every per-core buffer (end of run) and return everything,
    /// including records previously made ready.
    pub fn drain_all_buffers(&mut self) -> Vec<HitmRecord> {
        let mut out = std::mem::take(&mut self.ready);
        for b in &mut self.buffers {
            out.append(b);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::imprecision::ImprecisionParams;
    use laser_machine::memmap::{Region, RegionKind};
    use laser_machine::{CoreId, MemAccessKind, MemoryMap};

    fn model(seed: u64) -> ImprecisionModel {
        let mut m = MemoryMap::new();
        m.add(Region::new(
            0x40_0000,
            0x50_0000,
            RegionKind::AppCode,
            "app",
        ));
        ImprecisionModel::new(
            ImprecisionParams::perfect(),
            &m,
            (0x40_0000, 0x50_0000),
            seed,
        )
    }

    fn events(n: usize, core: usize) -> Vec<HitmEvent> {
        (0..n)
            .map(|i| HitmEvent {
                core: CoreId(core),
                pc: 0x40_0000 + (i as u64 % 16) * 4,
                addr: 0x1000_0000 + (i as u64 % 8) * 8,
                size: 8,
                kind: MemAccessKind::Load,
                cycle: i as u64 * 10,
            })
            .collect()
    }

    #[test]
    fn sav_controls_sampling_rate() {
        let mut pmu = Pmu::new(
            PmuConfig {
                sav: 19,
                ..Default::default()
            },
            model(1),
        );
        pmu.observe(&events(1900, 0));
        assert_eq!(pmu.total_events(), 1900);
        assert_eq!(pmu.total_samples(), 100);
        let mut pmu1 = Pmu::new(
            PmuConfig {
                sav: 1,
                ..Default::default()
            },
            model(1),
        );
        pmu1.observe(&events(1900, 0));
        assert_eq!(pmu1.total_samples(), 1900);
    }

    #[test]
    fn buffer_full_raises_interrupt() {
        let cfg = PmuConfig {
            sav: 1,
            pebs_buffer_capacity: 10,
            ..Default::default()
        };
        let mut pmu = Pmu::new(cfg, model(2));
        let act = pmu.observe(&events(25, 0));
        assert_eq!(act.records_sampled, 25);
        assert_eq!(act.interrupts, 2); // two buffer fills of 10
        assert_eq!(pmu.drain_ready().len(), 20);
        // The remaining 5 sit in the per-core buffer until a final drain.
        assert_eq!(pmu.drain_all_buffers().len(), 5);
    }

    #[test]
    fn per_sample_interrupt_mode() {
        let cfg = PmuConfig {
            sav: 1,
            pebs_buffer_capacity: 64,
            interrupt_on_each_sample: true,
            ..Default::default()
        };
        let mut pmu = Pmu::new(cfg, model(3));
        let act = pmu.observe(&events(50, 1));
        assert_eq!(act.interrupts, 50);
        assert_eq!(pmu.drain_ready().len(), 50);
    }

    #[test]
    fn per_core_counters_are_independent() {
        let cfg = PmuConfig {
            sav: 10,
            ..Default::default()
        };
        let mut pmu = Pmu::new(cfg, model(4));
        // 9 events on each of two cores: no samples yet.
        pmu.observe(&events(9, 0));
        pmu.observe(&events(9, 1));
        assert_eq!(pmu.total_samples(), 0);
        // One more on core 0 triggers its sample only.
        pmu.observe(&events(1, 0));
        assert_eq!(pmu.total_samples(), 1);
    }

    #[test]
    fn out_of_range_core_events_are_ignored() {
        let cfg = PmuConfig {
            sav: 1,
            num_cores: 2,
            ..Default::default()
        };
        let mut pmu = Pmu::new(cfg, model(5));
        let act = pmu.observe(&events(5, 3));
        assert_eq!(pmu.total_samples(), 0);
        // The drop is counted, per batch and in total.
        assert_eq!(act.events_dropped, 5);
        assert_eq!(pmu.total_dropped(), 5);
        // In-range events are not drops.
        let act = pmu.observe(&events(3, 1));
        assert_eq!(act.events_dropped, 0);
        assert_eq!(pmu.total_dropped(), 5);
    }

    #[test]
    #[should_panic(expected = "SAV")]
    fn zero_sav_rejected() {
        let _ = Pmu::new(
            PmuConfig {
                sav: 0,
                ..Default::default()
            },
            model(6),
        );
    }
}
