//! Configuration of the LASER system.

use serde::{Deserialize, Serialize};

use laser_machine::TopologySpec;
use laser_pebs::driver::DriverConfig;
use laser_pebs::imprecision::ImprecisionParams;

/// Tunables of the LASER system. The defaults are the values the paper uses
/// throughout its evaluation (SAV = 19, rate threshold = 1 000 HITMs/second).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LaserConfig {
    /// PEBS Sample-After-Value (paper default: 19, a prime).
    pub sav: u32,
    /// Source lines with a HITM-record rate below this many HITMs/second are
    /// filtered from reports (paper default: 1 000).
    pub rate_threshold_hitm_per_sec: f64,
    /// LASERREPAIR is invoked once some false-sharing-dominated source line
    /// sustains at least this many HITM records per second (Section 4.4: the
    /// detector "periodically checks the HITM event rate, triggering
    /// LASERREPAIR if the rate of false sharing events exceeds a given
    /// threshold"). On a multi-socket topology the session cost-weights this
    /// threshold by the observed remote-HITM share — cross-socket transfers
    /// are dearer but correspondingly rarer per second, so a raw event-rate
    /// trigger would under-fire exactly where repair pays most; on a single
    /// socket the weighting is exactly 1 and the paper's semantics are
    /// unchanged.
    pub repair_rate_threshold: f64,
    /// How many instructions the application runs between driver polls /
    /// detector wake-ups.
    pub poll_interval_steps: u64,
    /// Detector processing cost per HITM record, in cycles, charged to the
    /// machine (the detector is a separate process sharing the chip).
    pub detector_cycles_per_record: u64,
    /// Minimum estimated stores-per-flush ratio for a repair plan to be
    /// considered profitable (Section 5.4: repair is not attempted when the
    /// ratio of stores to flushes is estimated to be low).
    pub min_stores_per_flush: f64,
    /// Repair plans touching more than this many basic blocks are considered
    /// too complex to instrument precisely (the paper's `lu_ncb` case).
    pub max_plan_blocks: usize,
    /// Whether online repair is enabled at all.
    pub enable_repair: bool,
    /// Haswell record-imprecision parameters.
    pub imprecision: ImprecisionParams,
    /// Driver overhead parameters.
    pub driver: DriverConfig,
    /// Seed for the imprecision model's random draws.
    pub seed: u64,
    /// The socket topology the deployment runs on (default: the paper's
    /// single-socket machine). A non-flat preset makes
    /// `SessionBuilder::build` configure the machine with the preset's
    /// topology and core count unless the caller supplied an explicit
    /// non-default machine configuration of their own.
    pub topology: TopologySpec,
}

impl Default for LaserConfig {
    fn default() -> Self {
        LaserConfig {
            sav: 19,
            rate_threshold_hitm_per_sec: 1_000.0,
            repair_rate_threshold: 20_000.0,
            poll_interval_steps: 10_000,
            detector_cycles_per_record: 35,
            min_stores_per_flush: 4.0,
            max_plan_blocks: 12,
            enable_repair: true,
            imprecision: ImprecisionParams::default(),
            driver: DriverConfig::default(),
            seed: 0xA5E12,
            topology: TopologySpec::Flat,
        }
    }
}

impl LaserConfig {
    /// A configuration with detection only (repair disabled); used for the
    /// accuracy experiments so that repair does not change what is measured.
    pub fn detection_only() -> Self {
        LaserConfig {
            enable_repair: false,
            ..Self::default()
        }
    }

    /// Override the SAV (builder-style).
    pub fn with_sav(mut self, sav: u32) -> Self {
        self.sav = sav;
        self
    }

    /// Override the report rate threshold (builder-style).
    pub fn with_rate_threshold(mut self, threshold: f64) -> Self {
        self.rate_threshold_hitm_per_sec = threshold;
        self
    }

    /// Override the seed (builder-style).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Override the socket topology (builder-style).
    pub fn with_topology(mut self, topology: TopologySpec) -> Self {
        self.topology = topology;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_values() {
        let c = LaserConfig::default();
        assert_eq!(c.sav, 19);
        assert_eq!(c.rate_threshold_hitm_per_sec, 1_000.0);
        assert!(c.enable_repair);
    }

    #[test]
    fn builders_override_fields() {
        let c = LaserConfig::detection_only()
            .with_sav(7)
            .with_rate_threshold(64.0)
            .with_seed(1)
            .with_topology(TopologySpec::DualSocket);
        assert!(!c.enable_repair);
        assert_eq!(c.sav, 7);
        assert_eq!(c.rate_threshold_hitm_per_sec, 64.0);
        assert_eq!(c.seed, 1);
        assert_eq!(c.topology, TopologySpec::DualSocket);
        assert_eq!(LaserConfig::default().topology, TopologySpec::Flat);
    }
}
