//! Bad fixture: order-sensitive float reductions in library code.
//! Expected findings: `float-accum` (three).

pub fn mean(vals: &[f64]) -> f64 {
    vals.iter().sum::<f64>() / vals.len() as f64
}

pub fn product(vals: &[f32]) -> f32 {
    vals.iter().product::<f32>()
}

pub fn folded(vals: &[f64]) -> f64 {
    vals.iter().fold(0.0, |acc, v| acc + v)
}
