//! Declarative scenario files: the campaign-service input format.
//!
//! A scenario is a small JSON document naming the cells a campaign should
//! run — individually, or through named sweeps — plus the knobs the
//! `experiments` CLI exposes as flags (scale, worker threads, step budget,
//! pipelining, aggregate output format). `laser-serve` reads scenarios from
//! files, stdin or a watch directory and fans their cells over the
//! [`Campaign`](crate::campaign::Campaign) thread pool (see
//! [`crate::service`]).
//!
//! ```json
//! {
//!   "name": "nightly-xsocket",
//!   "scale": 0.4,
//!   "threads": 4,
//!   "budget_steps": 40000000,
//!   "pipeline": true,
//!   "shards": 4,
//!   "driver_lag_quanta": 1,
//!   "format": "json",
//!   "cells": [
//!     {"workload": "histogram'", "tool": "laser", "topology": "8s"}
//!   ],
//!   "sweeps": [
//!     {"kind": "xsocket"},
//!     {"kind": "grid",
//!      "workloads": ["histogram'", "swaptions"],
//!      "tools": ["native", "laser-detect"],
//!      "topologies": ["flat", "2s"]}
//!   ]
//! }
//! ```
//!
//! Parsing follows the `Cli::parse` convention: **everything** is validated
//! fail-fast — unknown keys, unknown workload/tool/topology names, malformed
//! numbers, an empty cell set — before anything simulates, and the binaries
//! turn a [`ScenarioError`] into exit code 2. The resolved cell list
//! ([`Scenario::plan`]) deduplicates in sorted grid order, so the aggregated
//! result of a scenario is byte-identical however its cells were spelled.

use std::collections::BTreeSet;

use laser_core::{PipelineConfig, TopologySpec};
use laser_workloads::find;
use serde::json::Value;

use crate::tool::ToolSpec;
use crate::topofile::CustomTopology;
use crate::xsocket::XSOCKET_WORKLOADS;

/// A scenario file could not be parsed or validated. The message names the
/// offending field; the binaries print it and exit 2 before simulating.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScenarioError(pub String);

impl std::fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid scenario: {}", self.0)
    }
}

impl std::error::Error for ScenarioError {}

/// Upper bound on `"driver_lag_quanta"`: the session keeps one in-flight
/// charge ledger per quantum of lag, so anything past this is almost
/// certainly a typo rather than a deployment.
pub const MAX_DRIVER_LAG: u64 = 1024;

fn err<T>(message: impl Into<String>) -> Result<T, ScenarioError> {
    Err(ScenarioError(message.into()))
}

/// Aggregate output format a scenario can request alongside the streamed
/// per-cell lines.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggregateFormat {
    /// The campaign's text table.
    Text,
    /// The campaign's JSON document (see [`crate::emit::Emit`]).
    Json,
    /// The campaign's CSV table.
    Csv,
}

impl AggregateFormat {
    fn parse(s: &str) -> Option<AggregateFormat> {
        match s {
            "text" => Some(AggregateFormat::Text),
            "json" => Some(AggregateFormat::Json),
            "csv" => Some(AggregateFormat::Csv),
            _ => None,
        }
    }

    /// The stable spelling used in scenario files.
    pub fn key(&self) -> &'static str {
        match self {
            AggregateFormat::Text => "text",
            AggregateFormat::Json => "json",
            AggregateFormat::Csv => "csv",
        }
    }
}

/// A named sweep inside a scenario.
#[derive(Debug, Clone, PartialEq)]
pub enum Sweep {
    /// The cross-socket sweep: the named workloads (default: the headline
    /// false-sharing set) under native, LASERDETECT and LASER on every
    /// preset topology — the scenario-file spelling of `experiments
    /// xsocket`.
    Xsocket {
        /// Workloads to sweep; `None` means [`XSOCKET_WORKLOADS`].
        workloads: Option<Vec<String>>,
    },
    /// An explicit cross product of workloads × tools × topologies.
    Grid {
        /// Workload names (validated against the registry).
        workloads: Vec<String>,
        /// Tool keys (see [`ToolSpec::parse`]).
        tools: Vec<ToolSpec>,
        /// Topology presets; an absent `topologies` key means `[flat]`.
        topologies: Vec<TopologySpec>,
    },
}

/// One explicitly-named cell.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioCell {
    /// Workload name (validated against the registry).
    pub workload: String,
    /// The tool to run it under.
    pub tool: ToolSpec,
    /// Topology preset (default: flat).
    pub topology: TopologySpec,
}

/// A parsed, validated scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Scenario name, echoed in every streamed result line.
    pub name: String,
    /// Workload input-scale multiplier (default 0.4).
    pub scale: f64,
    /// Campaign worker threads; `None` means one per available core.
    pub threads: Option<usize>,
    /// Per-cell step budget; `None` means unlimited.
    pub budget_steps: Option<u64>,
    /// Whether cells deploy the pipelined (detector-on-a-worker) session.
    pub pipeline: bool,
    /// Detector worker shards for pipelined cells; `Some(n)` implies
    /// `pipeline` (mirroring the CLI, where `--shards` implies `--pipeline`).
    /// Line-hash routing keeps sharded output byte-identical to inline.
    pub shards: Option<usize>,
    /// Charge-back lag of the driver stage in quanta; `Some(n)` implies
    /// `pipeline` (like `shards`). Lag 0 keeps pipelined cells
    /// byte-identical to inline; lag >= 1 overlaps the machine with the
    /// driver stage and is run-to-run deterministic but not
    /// inline-identical — the cell cache keys on the lag, so lagged and
    /// inline results never alias.
    pub driver_lag: Option<usize>,
    /// Aggregate document to append after the per-cell stream, if any.
    pub format: Option<AggregateFormat>,
    /// Bespoke topology every cell deploys on instead of a preset (the
    /// scenario-file spelling of `experiments --topology-file`): the same
    /// JSON object a topology file holds, validated at parse time like
    /// everything else. Mutually exclusive with preset `"topology"` /
    /// `"topologies"` keys and xsocket sweeps — the override is
    /// campaign-wide, so a preset axis underneath it would only produce
    /// colliding cell keys.
    pub custom_topology: Option<CustomTopology>,
    /// Explicit cells.
    pub cells: Vec<ScenarioCell>,
    /// Named sweeps.
    pub sweeps: Vec<Sweep>,
}

impl Scenario {
    /// Parse and validate a scenario document.
    ///
    /// # Errors
    /// [`ScenarioError`] on the first malformed or unknown field; nothing is
    /// silently ignored or defaulted away.
    pub fn parse(text: &str) -> Result<Scenario, ScenarioError> {
        let value = match Value::parse(text) {
            Ok(value) => value,
            Err(e) => return err(format!("not valid JSON: {e}")),
        };
        Scenario::from_value(&value)
    }

    /// Validate an already-parsed JSON document as a scenario.
    ///
    /// # Errors
    /// As for [`Scenario::parse`].
    pub fn from_value(value: &Value) -> Result<Scenario, ScenarioError> {
        let pairs = match value {
            Value::Object(pairs) => pairs,
            _ => return err("top level must be an object"),
        };
        let mut scenario = Scenario {
            name: String::new(),
            scale: 0.4,
            threads: None,
            budget_steps: None,
            pipeline: false,
            shards: None,
            driver_lag: None,
            format: None,
            custom_topology: None,
            cells: Vec::new(),
            sweeps: Vec::new(),
        };
        let mut named = false;
        for (key, field) in pairs {
            match key.as_str() {
                "name" => {
                    scenario.name = req_str(field, "name")?.to_string();
                    if scenario.name.is_empty() {
                        return err("\"name\" must not be empty");
                    }
                    named = true;
                }
                "scale" => {
                    let scale = match field {
                        Value::Float(f) => *f,
                        Value::Int(i) => *i as f64,
                        _ => return err("\"scale\" must be a number"),
                    };
                    if !scale.is_finite() || scale <= 0.0 {
                        return err(format!("\"scale\" must be a positive number, got {scale}"));
                    }
                    scenario.scale = scale;
                }
                "threads" => {
                    let threads = req_u64(field, "threads")?;
                    if threads == 0 {
                        return err("\"threads\" must be at least 1");
                    }
                    scenario.threads = Some(threads as usize);
                }
                "budget_steps" => {
                    let steps = req_u64(field, "budget_steps")?;
                    if steps == 0 {
                        return err("\"budget_steps\" must be at least 1");
                    }
                    scenario.budget_steps = Some(steps);
                }
                "pipeline" => {
                    scenario.pipeline = match field {
                        Value::Bool(b) => *b,
                        _ => return err("\"pipeline\" must be true or false"),
                    };
                }
                "shards" => {
                    let shards = req_u64(field, "shards")?;
                    if shards == 0 {
                        return err("\"shards\" must be at least 1");
                    }
                    scenario.shards = Some(shards as usize);
                }
                "driver_lag_quanta" => {
                    let lag = req_u64(field, "driver_lag_quanta")?;
                    if lag > MAX_DRIVER_LAG {
                        // req_u64 already rejected negatives and non-integers.
                        return err(format!(
                            "\"driver_lag_quanta\" must be at most {MAX_DRIVER_LAG}, got {lag}"
                        ));
                    }
                    scenario.driver_lag = Some(lag as usize);
                }
                "format" => {
                    let name = req_str(field, "format")?;
                    scenario.format = Some(AggregateFormat::parse(name).ok_or_else(|| {
                        ScenarioError(format!(
                            "unknown format '{name}' (expected text, json or csv)"
                        ))
                    })?);
                }
                "custom_topology" => {
                    scenario.custom_topology = Some(
                        CustomTopology::from_value(field)
                            .map_err(|e| ScenarioError(format!("\"custom_topology\": {e}")))?,
                    );
                }
                "cells" => {
                    let items = req_array(field, "cells")?;
                    for item in items {
                        scenario.cells.push(parse_cell(item)?);
                    }
                }
                "sweeps" => {
                    let items = req_array(field, "sweeps")?;
                    for item in items {
                        scenario.sweeps.push(parse_sweep(item)?);
                    }
                }
                other => return err(format!("unknown key \"{other}\"")),
            }
        }
        if !named {
            return err("missing required key \"name\"");
        }
        if scenario.plan().is_empty() {
            return err("scenario plans no cells (give \"cells\" and/or \"sweeps\")");
        }
        if scenario.custom_topology.is_some()
            && scenario
                .plan()
                .iter()
                .any(|(_, _, topo)| *topo != TopologySpec::Flat)
        {
            return err(
                "\"custom_topology\" replaces the topology axis; remove \"topology\"/\
                 \"topologies\" keys and xsocket sweeps",
            );
        }
        Ok(scenario)
    }

    /// The pipeline deployment the scenario requests: `"pipeline": true`
    /// enables the three-stage pipeline, a `"shards"` key shards the
    /// detector stage and a `"driver_lag_quanta"` key sets the charge-back
    /// lag (each implies pipelining, mirroring the CLI's `--shards` and
    /// `--driver-lag`). Line-hash routing keeps every shard count
    /// byte-identical to an inline run; only a non-zero lag diverges.
    pub fn pipeline_config(&self) -> PipelineConfig {
        PipelineConfig {
            enabled: self.pipeline || self.shards.is_some() || self.driver_lag.is_some(),
            ..PipelineConfig::default()
        }
        .with_shards(self.shards.unwrap_or(1))
        .with_driver_lag(self.driver_lag.unwrap_or(0))
    }

    /// The resolved `(workload, tool, topology)` cells, deduplicated in
    /// sorted grid order — the order the campaign aggregates in.
    pub fn plan(&self) -> Vec<(String, ToolSpec, TopologySpec)> {
        let mut set: BTreeSet<(String, ToolSpec, TopologySpec)> = BTreeSet::new();
        for cell in &self.cells {
            set.insert((cell.workload.clone(), cell.tool, cell.topology));
        }
        for sweep in &self.sweeps {
            match sweep {
                Sweep::Xsocket { workloads } => {
                    let names: Vec<&str> = match workloads {
                        Some(names) => names.iter().map(String::as_str).collect(),
                        None => XSOCKET_WORKLOADS.to_vec(),
                    };
                    for name in names {
                        for tool in [ToolSpec::Native, ToolSpec::LaserDetect, ToolSpec::Laser] {
                            for topo in TopologySpec::ALL {
                                set.insert((name.to_string(), tool, topo));
                            }
                        }
                    }
                }
                Sweep::Grid {
                    workloads,
                    tools,
                    topologies,
                } => {
                    for name in workloads {
                        for tool in tools {
                            for topo in topologies {
                                set.insert((name.clone(), *tool, *topo));
                            }
                        }
                    }
                }
            }
        }
        set.into_iter().collect()
    }
}

fn req_str<'a>(value: &'a Value, key: &str) -> Result<&'a str, ScenarioError> {
    match value {
        Value::Str(s) => Ok(s.as_str()),
        _ => err(format!("\"{key}\" must be a string")),
    }
}

fn req_u64(value: &Value, key: &str) -> Result<u64, ScenarioError> {
    match value {
        Value::Int(i) if *i >= 0 => Ok(*i as u64),
        _ => err(format!("\"{key}\" must be a non-negative integer")),
    }
}

fn req_array<'a>(value: &'a Value, key: &str) -> Result<&'a [Value], ScenarioError> {
    match value {
        Value::Array(items) => Ok(items),
        _ => err(format!("\"{key}\" must be an array")),
    }
}

fn parse_workload(name: &str) -> Result<String, ScenarioError> {
    if find(name).is_none() {
        return err(format!(
            "unknown workload '{name}' (names are case-sensitive; the alternative-input \
             histogram is \"histogram'\")"
        ));
    }
    Ok(name.to_string())
}

fn parse_tool(key: &str) -> Result<ToolSpec, ScenarioError> {
    ToolSpec::parse(key).ok_or_else(|| {
        ScenarioError(format!(
            "unknown tool '{key}' (expected native, native-fixed, laser, laser-detect, \
             laser-detect-raw, laser-detect-savN, vtune, sheriff-detect or sheriff-protect)"
        ))
    })
}

fn parse_topology(key: &str) -> Result<TopologySpec, ScenarioError> {
    TopologySpec::parse(key)
        .ok_or_else(|| ScenarioError(format!("unknown topology '{key}' (flat, 2s, 4s, 8s, 32s)")))
}

fn parse_cell(value: &Value) -> Result<ScenarioCell, ScenarioError> {
    let pairs = match value {
        Value::Object(pairs) => pairs,
        _ => return err("each cell must be an object"),
    };
    let mut workload = None;
    let mut tool = None;
    let mut topology = TopologySpec::Flat;
    for (key, field) in pairs {
        match key.as_str() {
            "workload" => workload = Some(parse_workload(req_str(field, "workload")?)?),
            "tool" => tool = Some(parse_tool(req_str(field, "tool")?)?),
            "topology" => topology = parse_topology(req_str(field, "topology")?)?,
            other => return err(format!("unknown cell key \"{other}\"")),
        }
    }
    match (workload, tool) {
        (Some(workload), Some(tool)) => Ok(ScenarioCell {
            workload,
            tool,
            topology,
        }),
        (None, _) => err("cell is missing \"workload\""),
        (_, None) => err("cell is missing \"tool\""),
    }
}

fn parse_sweep(value: &Value) -> Result<Sweep, ScenarioError> {
    let pairs = match value {
        Value::Object(pairs) => pairs,
        _ => return err("each sweep must be an object"),
    };
    let kind = match value.get("kind") {
        Some(kind) => req_str(kind, "kind")?,
        None => return err("sweep is missing \"kind\" (xsocket or grid)"),
    };
    match kind {
        "xsocket" => {
            let mut workloads = None;
            for (key, field) in pairs {
                match key.as_str() {
                    "kind" => {}
                    "workloads" => {
                        let mut names = Vec::new();
                        for item in req_array(field, "workloads")? {
                            names.push(parse_workload(req_str(item, "workloads")?)?);
                        }
                        if names.is_empty() {
                            return err("xsocket sweep \"workloads\" must not be empty");
                        }
                        workloads = Some(names);
                    }
                    other => return err(format!("unknown xsocket sweep key \"{other}\"")),
                }
            }
            Ok(Sweep::Xsocket { workloads })
        }
        "grid" => {
            let mut workloads = Vec::new();
            let mut tools = Vec::new();
            let mut topologies = vec![TopologySpec::Flat];
            for (key, field) in pairs {
                match key.as_str() {
                    "kind" => {}
                    "workloads" => {
                        for item in req_array(field, "workloads")? {
                            workloads.push(parse_workload(req_str(item, "workloads")?)?);
                        }
                    }
                    "tools" => {
                        for item in req_array(field, "tools")? {
                            tools.push(parse_tool(req_str(item, "tools")?)?);
                        }
                    }
                    "topologies" => {
                        topologies.clear();
                        for item in req_array(field, "topologies")? {
                            topologies.push(parse_topology(req_str(item, "topologies")?)?);
                        }
                        if topologies.is_empty() {
                            return err("grid sweep \"topologies\" must not be empty");
                        }
                    }
                    other => return err(format!("unknown grid sweep key \"{other}\"")),
                }
            }
            if workloads.is_empty() {
                return err("grid sweep needs a non-empty \"workloads\" array");
            }
            if tools.is_empty() {
                return err("grid sweep needs a non-empty \"tools\" array");
            }
            Ok(Sweep::Grid {
                workloads,
                tools,
                topologies,
            })
        }
        other => err(format!("unknown sweep kind '{other}' (xsocket or grid)")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_full_scenario() {
        let s = Scenario::parse(
            r#"{
              "name": "nightly",
              "scale": 0.25,
              "threads": 3,
              "budget_steps": 500000,
              "pipeline": true,
              "shards": 2,
              "driver_lag_quanta": 1,
              "format": "csv",
              "cells": [
                {"workload": "histogram'", "tool": "laser", "topology": "8s"},
                {"workload": "swaptions", "tool": "native"}
              ],
              "sweeps": [
                {"kind": "grid", "workloads": ["kmeans"], "tools": ["native", "laser-detect-sav97"]}
              ]
            }"#,
        )
        .unwrap();
        assert_eq!(s.name, "nightly");
        assert_eq!(s.scale, 0.25);
        assert_eq!(s.threads, Some(3));
        assert_eq!(s.budget_steps, Some(500000));
        assert!(s.pipeline);
        assert_eq!(s.shards, Some(2));
        assert_eq!(s.driver_lag, Some(1));
        assert_eq!(
            s.pipeline_config(),
            PipelineConfig::pipelined()
                .with_shards(2)
                .with_driver_lag(1)
        );
        assert_eq!(s.format, Some(AggregateFormat::Csv));
        assert_eq!(s.cells.len(), 2);
        assert_eq!(s.cells[1].topology, TopologySpec::Flat, "topology defaults");
        let plan = s.plan();
        assert_eq!(plan.len(), 4);
        // Sorted grid order, independent of spelling order in the file.
        assert_eq!(
            plan,
            vec![
                (
                    "histogram'".to_string(),
                    ToolSpec::Laser,
                    TopologySpec::OctoSocket
                ),
                ("kmeans".to_string(), ToolSpec::Native, TopologySpec::Flat),
                (
                    "kmeans".to_string(),
                    ToolSpec::LaserDetectSav(97),
                    TopologySpec::Flat
                ),
                (
                    "swaptions".to_string(),
                    ToolSpec::Native,
                    TopologySpec::Flat
                ),
            ]
        );
    }

    #[test]
    fn defaults_are_the_cli_defaults() {
        let s = Scenario::parse(
            r#"{"name": "one", "cells": [{"workload": "swaptions", "tool": "native"}]}"#,
        )
        .unwrap();
        assert_eq!(s.scale, 0.4);
        assert_eq!(s.threads, None);
        assert_eq!(s.budget_steps, None);
        assert!(!s.pipeline);
        assert_eq!(s.shards, None);
        assert_eq!(s.driver_lag, None);
        assert_eq!(s.pipeline_config(), PipelineConfig::default());
        assert_eq!(s.format, None);
    }

    #[test]
    fn shards_key_implies_the_pipelined_deployment() {
        // Mirrors the CLI: `"shards"` without `"pipeline"` still pipelines,
        // so a scenario can ask for a sharded detector in one key.
        let s = Scenario::parse(
            r#"{"name": "s", "shards": 8,
                "cells": [{"workload": "swaptions", "tool": "laser-detect"}]}"#,
        )
        .unwrap();
        assert!(!s.pipeline, "the boolean key itself stays untouched");
        assert_eq!(
            s.pipeline_config(),
            PipelineConfig::pipelined().with_shards(8)
        );
    }

    #[test]
    fn driver_lag_key_implies_the_pipelined_deployment() {
        // Same convention as `"shards"`: asking for a charge-back lag is
        // asking for the three-stage pipeline, even at lag 0.
        let s = Scenario::parse(
            r#"{"name": "l", "driver_lag_quanta": 3,
                "cells": [{"workload": "swaptions", "tool": "laser-detect"}]}"#,
        )
        .unwrap();
        assert!(!s.pipeline, "the boolean key itself stays untouched");
        assert_eq!(
            s.pipeline_config(),
            PipelineConfig::pipelined().with_driver_lag(3)
        );
        let s = Scenario::parse(
            r#"{"name": "l0", "driver_lag_quanta": 0,
                "cells": [{"workload": "swaptions", "tool": "laser-detect"}]}"#,
        )
        .unwrap();
        assert_eq!(s.driver_lag, Some(0));
        assert_eq!(s.pipeline_config(), PipelineConfig::pipelined());
    }

    #[test]
    fn custom_topology_key_parses_and_validates_inline() {
        // The spec is the scenario spelling of `--topology-file`: the layout
        // object rides inline so parsing stays pure, and the same validation
        // runs at parse time.
        let s = Scenario::parse(
            r#"{
              "name": "fat-thin-sweep",
              "custom_topology": {
                "name": "fat-thin",
                "core_blocks": [6, 2],
                "remote": {"remote_hitm": 220, "remote_llc": 100, "remote_dram": 310}
              },
              "cells": [{"workload": "swaptions", "tool": "laser-detect"}]
            }"#,
        )
        .unwrap();
        let custom = s.custom_topology.as_ref().unwrap();
        assert_eq!(custom.name(), "fat-thin");
        assert_eq!(custom.num_cores(), 8);
    }

    #[test]
    fn xsocket_sweep_matches_the_planner_cells() {
        let s = Scenario::parse(r#"{"name": "x", "sweeps": [{"kind": "xsocket"}]}"#).unwrap();
        let plan = s.plan();
        // Every headline workload × 3 tools × every preset topology.
        assert_eq!(
            plan.len(),
            XSOCKET_WORKLOADS.len() * 3 * TopologySpec::ALL.len()
        );
        assert!(plan.contains(&(
            "histogram'".to_string(),
            ToolSpec::Laser,
            TopologySpec::OctoSocket
        )));
        // A restricted sweep only plans its named workloads.
        let s = Scenario::parse(
            r#"{"name": "x", "sweeps": [{"kind": "xsocket", "workloads": ["reverse_index"]}]}"#,
        )
        .unwrap();
        assert_eq!(s.plan().len(), 3 * TopologySpec::ALL.len());
    }

    #[test]
    fn plan_deduplicates_across_cells_and_sweeps() {
        let s = Scenario::parse(
            r#"{
              "name": "dup",
              "cells": [
                {"workload": "kmeans", "tool": "native"},
                {"workload": "kmeans", "tool": "native"}
              ],
              "sweeps": [
                {"kind": "grid", "workloads": ["kmeans"], "tools": ["native"]}
              ]
            }"#,
        )
        .unwrap();
        assert_eq!(s.plan().len(), 1);
    }

    #[test]
    fn every_malformed_field_fails_fast() {
        let cases: &[(&str, &str)] = &[
            ("[1,2]", "top level must be an object"),
            ("{\"name\": \"x\"", "not valid JSON"),
            (
                r#"{"cells": [{"workload": "swaptions", "tool": "native"}]}"#,
                "missing required key \"name\"",
            ),
            (r#"{"name": ""}"#, "\"name\" must not be empty"),
            (r#"{"name": "x", "bogus": 1}"#, "unknown key \"bogus\""),
            (r#"{"name": "x", "scale": "big"}"#, "must be a number"),
            (r#"{"name": "x", "scale": -0.5}"#, "positive"),
            (r#"{"name": "x", "scale": 0}"#, "positive"),
            (r#"{"name": "x", "threads": 0}"#, "at least 1"),
            (r#"{"name": "x", "threads": -2}"#, "non-negative integer"),
            (r#"{"name": "x", "budget_steps": 0}"#, "at least 1"),
            (
                r#"{"name": "x", "shards": 0}"#,
                "\"shards\" must be at least 1",
            ),
            (r#"{"name": "x", "shards": -4}"#, "non-negative integer"),
            (r#"{"name": "x", "shards": "many"}"#, "non-negative integer"),
            (
                r#"{"name": "x", "driver_lag_quanta": -1}"#,
                "non-negative integer",
            ),
            (
                r#"{"name": "x", "driver_lag_quanta": "slow"}"#,
                "non-negative integer",
            ),
            (
                r#"{"name": "x", "driver_lag_quanta": 1.5}"#,
                "non-negative integer",
            ),
            (
                r#"{"name": "x", "driver_lag_quanta": 1025}"#,
                "at most 1024",
            ),
            (r#"{"name": "x", "pipeline": 1}"#, "true or false"),
            (
                r#"{"name": "x", "format": "yaml"}"#,
                "unknown format 'yaml'",
            ),
            (r#"{"name": "x", "cells": {}}"#, "must be an array"),
            (r#"{"name": "x", "cells": [3]}"#, "cell must be an object"),
            (
                r#"{"name": "x", "cells": [{"tool": "native"}]}"#,
                "missing \"workload\"",
            ),
            (
                r#"{"name": "x", "cells": [{"workload": "swaptions"}]}"#,
                "missing \"tool\"",
            ),
            (
                r#"{"name": "x", "cells": [{"workload": "histogramm", "tool": "native"}]}"#,
                "unknown workload 'histogramm'",
            ),
            (
                r#"{"name": "x", "cells": [{"workload": "swaptions", "tool": "nativ"}]}"#,
                "unknown tool 'nativ'",
            ),
            (
                r#"{"name": "x", "cells": [{"workload": "swaptions", "tool": "native", "topology": "16s"}]}"#,
                "unknown topology '16s'",
            ),
            (
                r#"{"name": "x", "cells": [{"workload": "swaptions", "tool": "native", "color": "red"}]}"#,
                "unknown cell key \"color\"",
            ),
            (r#"{"name": "x", "sweeps": [{}]}"#, "missing \"kind\""),
            (
                r#"{"name": "x", "sweeps": [{"kind": "mystery"}]}"#,
                "unknown sweep kind 'mystery'",
            ),
            (
                r#"{"name": "x", "sweeps": [{"kind": "grid", "workloads": ["kmeans"]}]}"#,
                "non-empty \"tools\"",
            ),
            (
                r#"{"name": "x", "sweeps": [{"kind": "grid", "tools": ["native"]}]}"#,
                "non-empty \"workloads\"",
            ),
            (
                r#"{"name": "x", "sweeps": [{"kind": "grid", "workloads": ["kmeans"], "tools": ["native"], "topologies": []}]}"#,
                "must not be empty",
            ),
            (
                r#"{"name": "x", "sweeps": [{"kind": "xsocket", "workloads": []}]}"#,
                "must not be empty",
            ),
            (
                r#"{"name": "x", "sweeps": [{"kind": "xsocket", "depth": 2}]}"#,
                "unknown xsocket sweep key \"depth\"",
            ),
            (r#"{"name": "x"}"#, "plans no cells"),
            (
                r#"{"name": "x", "cells": [], "sweeps": []}"#,
                "plans no cells",
            ),
            (
                r#"{"name": "x", "custom_topology": "fat-thin.json",
                    "cells": [{"workload": "swaptions", "tool": "native"}]}"#,
                "\"custom_topology\": topology spec must be an object",
            ),
            (
                r#"{"name": "x",
                    "custom_topology": {"name": "fat-thin", "core_blocks": [6, 2],
                        "remote": {"remote_hitm": 1, "remote_llc": 100, "remote_dram": 310}},
                    "cells": [{"workload": "swaptions", "tool": "native"}]}"#,
                "\"custom_topology\":",
            ),
            (
                r#"{"name": "x",
                    "custom_topology": {"name": "fat-thin", "core_blocks": [6, 2],
                        "remote": {"remote_hitm": 220, "remote_llc": 100, "remote_dram": 310}},
                    "cells": [{"workload": "swaptions", "tool": "native", "topology": "2s"}]}"#,
                "\"custom_topology\" replaces the topology axis",
            ),
            (
                r#"{"name": "x",
                    "custom_topology": {"name": "fat-thin", "core_blocks": [6, 2],
                        "remote": {"remote_hitm": 220, "remote_llc": 100, "remote_dram": 310}},
                    "sweeps": [{"kind": "xsocket"}]}"#,
                "\"custom_topology\" replaces the topology axis",
            ),
        ];
        for (text, needle) in cases {
            let e = Scenario::parse(text).unwrap_err();
            assert!(
                e.to_string().contains(needle),
                "{text} -> {e} (wanted {needle:?})"
            );
        }
    }
}
