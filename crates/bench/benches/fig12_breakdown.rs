//! Criterion bench regenerating Figure 12 at reduced scale.
use criterion::{criterion_group, criterion_main, Criterion};
use laser_bench::performance::fig12_breakdown;
use laser_bench::ExperimentScale;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig12_breakdown");
    group.sample_size(10);
    group.bench_function("fig12_breakdown", |b| {
        b.iter(|| fig12_breakdown(&ExperimentScale::bench(), 0.0).unwrap())
    });
    group.finish();
}
criterion_group!(benches, bench);
criterion_main!(benches);
