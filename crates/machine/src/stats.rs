//! Execution statistics collected by the simulator.

use serde::{Deserialize, Serialize};

/// Counters accumulated over a run.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MachineStats {
    /// Instructions executed (including terminators).
    pub instructions: u64,
    /// Load instructions executed.
    pub loads: u64,
    /// Store instructions executed.
    pub stores: u64,
    /// Atomic read-modify-write instructions executed.
    pub atomics: u64,
    /// Explicit fences executed.
    pub fences: u64,
    /// Accesses satisfied from the local L1.
    pub l1_hits: u64,
    /// Accesses satisfied on-chip without a HITM.
    pub llc_hits: u64,
    /// Accesses that hit a remotely-Modified line (HITM events).
    pub hitm_events: u64,
    /// HITM events triggered by loads.
    pub hitm_loads: u64,
    /// HITM events triggered by stores.
    pub hitm_stores: u64,
    /// HITM events serviced by a core on the accessor's own socket. On a
    /// single-socket topology every HITM is local.
    pub hitm_local: u64,
    /// HITM events serviced across the interconnect — the 2-3× dearer
    /// cross-socket transfers repair removes. `hitm_local + hitm_remote ==
    /// hitm_events` always.
    pub hitm_remote: u64,
    /// LLC hits serviced from another socket's cache (subset of `llc_hits`).
    pub llc_remote_hits: u64,
    /// Accesses that went to DRAM.
    pub dram_accesses: u64,
    /// DRAM accesses homed on another socket (subset of `dram_accesses`).
    pub dram_remote_accesses: u64,
    /// Memory operations intercepted and serviced by an attached hook
    /// (the Pin/SSB instrumentation path).
    pub hook_handled_ops: u64,
    /// Hardware transactions committed.
    pub htm_commits: u64,
    /// Hardware transactions aborted for capacity.
    pub htm_capacity_aborts: u64,
    /// Cycles injected by external agents (driver interrupts, detector
    /// processing, instrumentation overhead).
    pub injected_overhead_cycles: u64,
}

impl MachineStats {
    /// Fraction of memory accesses that were HITMs.
    pub fn hitm_fraction(&self) -> f64 {
        let mem = self.loads + self.stores + self.atomics;
        if mem == 0 {
            0.0
        } else {
            self.hitm_events as f64 / mem as f64
        }
    }

    /// Fraction of HITM events that crossed a socket boundary (0.0 when the
    /// run saw no HITMs at all, as on a single-socket topology with no
    /// contention).
    pub fn remote_hitm_share(&self) -> f64 {
        if self.hitm_events == 0 {
            0.0
        } else {
            self.hitm_remote as f64 / self.hitm_events as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hitm_fraction_handles_zero() {
        let s = MachineStats::default();
        assert_eq!(s.hitm_fraction(), 0.0);
        let s = MachineStats {
            loads: 50,
            stores: 50,
            hitm_events: 10,
            ..Default::default()
        };
        assert!((s.hitm_fraction() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn remote_hitm_share_handles_zero_and_splits() {
        let s = MachineStats::default();
        assert_eq!(s.remote_hitm_share(), 0.0);
        let s = MachineStats {
            hitm_events: 10,
            hitm_local: 6,
            hitm_remote: 4,
            ..Default::default()
        };
        assert!((s.remote_hitm_share() - 0.4).abs() < 1e-12);
    }
}
