//! Criterion bench regenerating Figure 3 at reduced scale.
use criterion::{criterion_group, criterion_main, Criterion};
use laser_bench::characterization::fig3_characterization;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig3_characterization");
    group.sample_size(10);
    group.bench_function("fig3_characterization", |b| {
        b.iter(|| fig3_characterization(2))
    });
    group.finish();
}
criterion_group!(benches, bench);
criterion_main!(benches);
