//! Criterion bench regenerating Figure 10 at reduced scale.
use criterion::{criterion_group, criterion_main, Criterion};
use laser_bench::performance::fig10_overhead;
use laser_bench::ExperimentScale;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig10_overhead");
    group.sample_size(10);
    group.bench_function("fig10_overhead", |b| {
        b.iter(|| fig10_overhead(&ExperimentScale::bench()).unwrap())
    });
    group.finish();
}
criterion_group!(benches, bench);
criterion_main!(benches);
