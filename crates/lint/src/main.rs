//! `laser-lint` CLI: lint the workspace (or named paths) against the
//! determinism & concurrency rules.
//!
//! ```text
//! cargo run -p laser-lint -- [--check] [--format text|json] [--root DIR] [PATH…]
//! ```
//!
//! Exit codes: `0` clean (or findings without `--check`), `2` findings under
//! `--check` or a usage error, `1` an I/O failure.

use std::path::PathBuf;
use std::process::ExitCode;

use laser_lint::{lint_tree, rules::RULES};

const USAGE: &str = "\
laser-lint: determinism & concurrency static analyzer for the LASER workspace

USAGE:
    laser-lint [OPTIONS] [PATH...]

OPTIONS:
    --check           exit 2 when any finding is reported
    --format FMT      text (default) or json
    --root DIR        workspace root to scan and to relativize paths against
                      (default: current directory)
    --list-rules      print the rule table and exit
    -h, --help        show this help

With no PATH arguments the whole tree under --root is scanned, skipping
target/, .git/ and fixtures/ directories. Named paths are linted as given
(fixtures included), with roles derived from their --root-relative path.

Suppress a finding inline, with a written reason (enforced):
    // lint:allow(<rule>[, <rule>...]) — <why this is safe>
";

struct Cli {
    check: bool,
    json: bool,
    root: PathBuf,
    paths: Vec<PathBuf>,
    list_rules: bool,
}

fn parse(args: &[String]) -> Result<Cli, String> {
    let mut cli = Cli {
        check: false,
        json: false,
        root: PathBuf::from("."),
        paths: Vec::new(),
        list_rules: false,
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--check" => cli.check = true,
            "--format" => {
                let v = it.next().ok_or("--format needs a value: text|json")?;
                match v.as_str() {
                    "json" => cli.json = true,
                    "text" => cli.json = false,
                    other => return Err(format!("unknown format '{other}' (want text|json)")),
                }
            }
            "--root" => {
                let v = it.next().ok_or("--root needs a directory")?;
                cli.root = PathBuf::from(v);
            }
            "--list-rules" => cli.list_rules = true,
            "-h" | "--help" => return Err(String::new()),
            flag if flag.starts_with('-') => return Err(format!("unknown flag '{flag}'")),
            path => cli.paths.push(PathBuf::from(path)),
        }
    }
    Ok(cli)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cli = match parse(&args) {
        Ok(cli) => cli,
        Err(msg) => {
            if !msg.is_empty() {
                eprintln!("error: {msg}\n");
            }
            eprintln!("{USAGE}");
            return ExitCode::from(2);
        }
    };
    if cli.list_rules {
        for r in RULES {
            println!("{:<16} {}", r.id, r.summary);
        }
        return ExitCode::SUCCESS;
    }
    let report = match lint_tree(&cli.root, &cli.paths) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(1);
        }
    };
    if cli.json {
        print!("{}", report.to_json());
    } else {
        print!("{}", report.to_text());
    }
    if cli.check && !report.findings.is_empty() {
        eprintln!(
            "laser-lint: {} finding(s) — failing --check",
            report.findings.len()
        );
        return ExitCode::from(2);
    }
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: &[&str]) -> Vec<String> {
        v.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn defaults() {
        let cli = parse(&[]).unwrap();
        assert!(!cli.check);
        assert!(!cli.json);
        assert_eq!(cli.root, PathBuf::from("."));
        assert!(cli.paths.is_empty());
    }

    #[test]
    fn flags_and_paths() {
        let cli = parse(&s(&[
            "--check", "--format", "json", "--root", "/w", "a.rs", "b",
        ]))
        .unwrap();
        assert!(cli.check && cli.json);
        assert_eq!(cli.root, PathBuf::from("/w"));
        assert_eq!(cli.paths.len(), 2);
    }

    #[test]
    fn bad_flag_and_bad_format_rejected() {
        assert!(parse(&s(&["--bogus"])).is_err());
        assert!(parse(&s(&["--format", "xml"])).is_err());
        assert!(parse(&s(&["--format"])).is_err());
    }
}
