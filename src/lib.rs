//! # laser
//!
//! Umbrella crate for the LASER (HPCA 2016) reproduction: re-exports the
//! public API of every sub-crate so examples, integration tests and downstream
//! users can depend on a single crate.
//!
//! * [`isa`] — the mini instruction set and static analyses.
//! * [`machine`] — the multicore simulator (MESI coherence, HITM events, HTM,
//!   instrumentation hooks).
//! * [`pebs`] — the PEBS/PMU model with Haswell's record imprecision and the
//!   kernel-driver model.
//! * [`workloads`] — the 35 synthetic Phoenix/Parsec/Splash2x workloads, the
//!   characterization tests and the known-bug database.
//! * [`core`] — LASERDETECT, LASERREPAIR and the end-to-end [`Laser`] system.
//! * [`baselines`] — the VTune and Sheriff comparison tools.
//!
//! ## Quick start
//!
//! ```
//! use laser::workloads::{find, BuildOptions};
//! use laser::{Laser, LaserConfig};
//!
//! let spec = find("histogram").expect("workload exists");
//! let image = spec.build(&BuildOptions::scaled(0.05));
//! let outcome = Laser::new(LaserConfig::default()).run(&image).expect("run succeeds");
//! println!("{}", outcome.report.render());
//! ```
//!
//! (The paper's alternative-input variant is registered as `histogram'` —
//! apostrophe included — and is the one that false-shares.)

pub use laser_baselines as baselines;
pub use laser_core as core;
pub use laser_isa as isa;
pub use laser_machine as machine;
pub use laser_pebs as pebs;
pub use laser_workloads as workloads;

pub use laser_core::{ContentionKind, Laser, LaserConfig, LaserOutcome};
pub use laser_machine::{Machine, MachineConfig, WorkloadImage};
