//! The campaign service: run a [`Scenario`] and stream its cells as JSON
//! lines.
//!
//! [`run_scenario`] is the engine under the `laser-serve` binary. It resolves
//! a validated scenario's cell plan onto the parallel
//! [`Campaign`] runner and writes one JSON object
//! per line to the caller's writer *as cells land* — a client watching the
//! stream sees results the moment a worker finishes them, not when the whole
//! campaign does. Line order therefore depends on scheduling; everything
//! else is deterministic:
//!
//! - each `{"kind":"cell", ...}` line carries the cell's full outcome
//!   (status, cycles, whether it was answered from the cell cache), and
//! - the final `{"kind":"scenario-summary", ...}` line aggregates counts,
//!   cache statistics and — when the scenario asked for one — the campaign's
//!   aggregate document (text, JSON or CSV), which *is* byte-identical for
//!   identical scenarios whatever the thread count or cache temperature.
//!
//! Stream and cache write failures never panic: the first error is captured
//! while the campaign drains and surfaced as a [`ServiceError`], which the
//! binaries turn into a clean nonzero exit.

use std::collections::BTreeMap;
use std::io::Write;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use laser_core::{CellBudget, TopologySpec};
use laser_workloads::{find, WorkloadSpec};
use serde::json::Value;

use crate::cache::{CacheStats, CellCache};
use crate::campaign::{Campaign, CampaignProgress};
use crate::emit::Emit;
use crate::runner::ExperimentScale;
use crate::scenario::{AggregateFormat, Scenario};
use crate::tool::{Tool, ToolSpec};

/// The service could not run a scenario to completion: the result stream or
/// the cell cache stopped accepting writes. The binaries print the message
/// and exit nonzero — never a panic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServiceError(pub String);

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "service error: {}", self.0)
    }
}

impl std::error::Error for ServiceError {}

/// Host-side knobs for [`run_scenario`] — the things a scenario file does
/// *not* decide because they belong to the machine running it.
#[derive(Default)]
pub struct ServiceOptions {
    /// Default worker-thread count for scenarios that do not pin their own
    /// `threads`; `None` means one worker per available core.
    pub threads: Option<usize>,
    /// Persistent cell cache shared across scenarios and invocations. Cells
    /// already in the cache stream back immediately with `"cached": true`.
    pub cache: Option<Arc<CellCache>>,
}

/// What a finished scenario run looked like, mirrored by the
/// `scenario-summary` line at the end of the stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServiceSummary {
    /// The scenario's name.
    pub scenario: String,
    /// Total cells run.
    pub cells: usize,
    /// Cells whose tool completed.
    pub ok: usize,
    /// Cells that failed (unsupported, over budget, errored or panicked).
    pub failed: usize,
    /// Cells answered from the cell cache.
    pub cached: u64,
    /// Cells actually simulated (`cells - cached`).
    pub simulated: u64,
    /// Cache statistics at the end of the run, if a cache was configured.
    pub cache: Option<CacheStats>,
}

impl ServiceSummary {
    /// The summary as a JSON object (without the aggregate document).
    pub fn to_json(&self) -> Value {
        Value::object()
            .set("kind", "scenario-summary")
            .set("scenario", self.scenario.as_str())
            .set("cells", self.cells)
            .set("ok", self.ok)
            .set("failed", self.failed)
            .set("cached", self.cached)
            .set("simulated", self.simulated)
            .set("cache", self.cache.as_ref().map(CacheStats::to_json))
    }
}

/// Run `scenario` on the campaign thread pool, streaming one JSON line per
/// finished cell to `out` followed by a `scenario-summary` line.
///
/// Cells fan over up to `scenario.threads` workers (falling back to
/// [`ServiceOptions::threads`], then one per core); the cache in `options`,
/// when present, answers previously-computed cells without simulating and
/// absorbs newly-computed ones for the next invocation.
///
/// # Errors
/// [`ServiceError`] if the stream writer or the cell cache fails; the
/// campaign still drains (a half-written stream never wedges workers), and
/// the first failure wins.
pub fn run_scenario<W: Write + Send>(
    scenario: &Scenario,
    options: &ServiceOptions,
    out: W,
) -> Result<ServiceSummary, ServiceError> {
    let campaign = plan_campaign(scenario, options)?;

    let writer = Mutex::new(out);
    let write_error: Mutex<Option<String>> = Mutex::new(None);
    let cached_cells = AtomicU64::new(0);
    let result = campaign.run_with_progress(|p| {
        let CampaignProgress::Finished {
            done,
            total,
            cell,
            cached,
        } = p
        else {
            return;
        };
        if cached {
            cached_cells.fetch_add(1, Ordering::Relaxed);
        }
        let line = Value::object()
            .set("kind", "cell")
            .set("scenario", scenario.name.as_str())
            .set("workload", cell.workload.as_str())
            .set("tool", cell.tool.as_str())
            .set("status", cell.status())
            .set(
                "cycles",
                match &cell.outcome {
                    Ok(run) => Value::from(run.cycles),
                    Err(_) => Value::Null,
                },
            )
            .set("cached", cached)
            .set("done", done)
            .set("total", total);
        let rendered = line.render();
        let mut w = writer.lock().unwrap(); // lint:allow(panic) — lock poisoning only follows a panic already unwinding this run
        if let Err(e) = writeln!(w, "{rendered}") {
            let mut slot = write_error.lock().unwrap(); // lint:allow(panic) — same poisoning argument as the writer lock
            if slot.is_none() {
                *slot = Some(e.to_string());
            }
        }
    });

    let error = write_error.into_inner().unwrap(); // lint:allow(panic) — the campaign joined; the mutex cannot be poisoned or held
    if let Some(message) = error {
        return Err(ServiceError(format!(
            "failed to write result stream: {message}"
        )));
    }

    let cached = cached_cells.load(Ordering::Relaxed);
    let cells = result.cells.len();
    let ok = result.cells.iter().filter(|c| c.outcome.is_ok()).count();
    let summary = ServiceSummary {
        scenario: scenario.name.clone(),
        cells,
        ok,
        failed: cells - ok,
        cached,
        simulated: cells as u64 - cached,
        cache: options.cache.as_ref().map(|c| c.stats()),
    };

    let mut line = summary.to_json();
    if let Some(format) = scenario.format {
        let aggregate = Value::object().set("format", format.key()).set(
            "content",
            match format {
                AggregateFormat::Text => result.render(),
                AggregateFormat::Json => result.to_json().render(),
                AggregateFormat::Csv => result.to_csv(),
            },
        );
        line = line.set("aggregate", aggregate);
    }
    let rendered = line.render();
    let mut w = writer.into_inner().unwrap(); // lint:allow(panic) — the campaign joined; the mutex cannot be poisoned or held
    writeln!(w, "{rendered}")
        .map_err(|e| ServiceError(format!("failed to write result stream: {e}")))?;

    if let Some(cache) = &options.cache {
        if let Some(message) = cache.write_error() {
            return Err(ServiceError(format!("cell cache write failed: {message}")));
        }
    }
    Ok(summary)
}

/// Resolve a scenario's plan into a configured [`Campaign`], mirroring how
/// [`Grid`](crate::grid::Grid) lowers its request set.
fn plan_campaign(scenario: &Scenario, options: &ServiceOptions) -> Result<Campaign, ServiceError> {
    let plan = scenario.plan();
    let mut workloads: Vec<WorkloadSpec> = Vec::new();
    let mut workload_index: BTreeMap<String, usize> = BTreeMap::new();
    let mut tools: Vec<Box<dyn Tool>> = Vec::new();
    let mut tool_index: BTreeMap<ToolSpec, usize> = BTreeMap::new();
    let mut cells: Vec<(usize, usize, TopologySpec)> = Vec::with_capacity(plan.len());
    for (name, spec, topo) in &plan {
        let w = match workload_index.get(name) {
            Some(&w) => w,
            None => {
                // Scenario validation already vetted every name; a miss here
                // means the registry changed under us mid-run.
                let workload =
                    find(name).ok_or_else(|| ServiceError(format!("unknown workload '{name}'")))?;
                workloads.push(workload);
                workload_index.insert(name.clone(), workloads.len() - 1);
                workloads.len() - 1
            }
        };
        let t = *tool_index.entry(*spec).or_insert_with(|| {
            tools.push(spec.build());
            tools.len() - 1
        });
        cells.push((w, t, *topo));
    }

    let mut campaign = Campaign::from_cells_at(workloads, tools, cells).with_options(
        ExperimentScale {
            workload_scale: scenario.scale,
            only: None,
        }
        .options(),
    );
    if let Some(threads) = scenario.threads.or(options.threads) {
        campaign = campaign.with_threads(threads);
    }
    if let Some(steps) = scenario.budget_steps {
        campaign = campaign.with_cell_budget(CellBudget::steps(steps));
    }
    let pipeline = scenario.pipeline_config();
    if pipeline.enabled {
        campaign = campaign.with_pipeline(pipeline);
    }
    if let Some(custom) = &scenario.custom_topology {
        campaign = campaign.with_custom_topology(Arc::new(custom.clone()));
    }
    if let Some(cache) = &options.cache {
        campaign = campaign.with_cache(Arc::clone(cache));
    }
    Ok(campaign)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;
    use std::sync::atomic::AtomicU32;

    fn scratch_dir(tag: &str) -> PathBuf {
        static COUNTER: AtomicU32 = AtomicU32::new(0);
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!(
            "laser-service-test-{}-{tag}-{n}",
            std::process::id()
        ))
    }

    fn tiny_scenario(extra: &str) -> Scenario {
        Scenario::parse(&format!(
            r#"{{
              "name": "tiny",
              "scale": 0.06,
              "threads": 1,
              "cells": [
                {{"workload": "histogram'", "tool": "native"}},
                {{"workload": "histogram'", "tool": "laser-detect"}},
                {{"workload": "swaptions", "tool": "native"}}
              ]{extra}
            }}"#
        ))
        .unwrap()
    }

    fn lines(out: &[u8]) -> Vec<Value> {
        std::str::from_utf8(out)
            .unwrap()
            .lines()
            .map(|l| Value::parse(l).expect("every streamed line is valid JSON"))
            .collect()
    }

    #[test]
    fn streams_one_line_per_cell_then_a_summary() {
        let scenario = tiny_scenario("");
        let mut out = Vec::new();
        let summary = run_scenario(&scenario, &ServiceOptions::default(), &mut out).unwrap();
        assert_eq!(summary.cells, 3);
        assert_eq!(summary.ok, 3);
        assert_eq!(summary.failed, 0);
        assert_eq!(summary.cached, 0);
        assert_eq!(summary.simulated, 3);
        assert_eq!(summary.cache, None);

        let lines = lines(&out);
        assert_eq!(lines.len(), 4);
        for line in &lines[..3] {
            assert_eq!(line.get("kind"), Some(&Value::Str("cell".to_string())));
            assert_eq!(line.get("scenario"), Some(&Value::Str("tiny".to_string())));
            assert_eq!(line.get("status"), Some(&Value::Str("ok".to_string())));
            assert_eq!(line.get("cached"), Some(&Value::Bool(false)));
            assert!(matches!(line.get("cycles"), Some(Value::Int(c)) if *c > 0));
        }
        let summary_line = &lines[3];
        assert_eq!(
            summary_line.get("kind"),
            Some(&Value::Str("scenario-summary".to_string()))
        );
        assert_eq!(summary_line.get("cells"), Some(&Value::Int(3)));
        assert_eq!(summary_line.get("cache"), Some(&Value::Null));
        assert_eq!(summary_line.get("aggregate"), None);
    }

    #[test]
    fn warm_cache_rerun_streams_cached_cells_and_identical_aggregate() {
        let dir = scratch_dir("warm");
        let cache = Arc::new(CellCache::open(&dir).unwrap());
        let scenario = tiny_scenario(r#", "format": "csv""#);
        let options = ServiceOptions {
            threads: None,
            cache: Some(Arc::clone(&cache)),
        };

        let mut cold = Vec::new();
        let first = run_scenario(&scenario, &options, &mut cold).unwrap();
        assert_eq!(first.cached, 0);
        assert_eq!(first.simulated, 3);

        // A fresh cache handle over the same directory: a second invocation
        // answers every cell from disk and simulates nothing.
        let options = ServiceOptions {
            threads: None,
            cache: Some(Arc::new(CellCache::open(&dir).unwrap())),
        };
        let mut warm = Vec::new();
        let second = run_scenario(&scenario, &options, &mut warm).unwrap();
        assert_eq!(second.cached, 3);
        assert_eq!(second.simulated, 0);
        assert_eq!(second.ok, 3);

        let cold_lines = lines(&cold);
        let warm_lines = lines(&warm);
        for line in &warm_lines[..3] {
            assert_eq!(line.get("cached"), Some(&Value::Bool(true)));
        }
        // The aggregate document is byte-identical, cold or warm.
        let aggregate = |ls: &[Value]| {
            ls.last()
                .and_then(|l| l.get("aggregate"))
                .and_then(|a| a.get("content"))
                .cloned()
                .expect("summary carries the requested aggregate")
        };
        assert_eq!(aggregate(&cold_lines), aggregate(&warm_lines));
        assert!(matches!(
            aggregate(&cold_lines),
            Value::Str(csv) if csv.starts_with("workload,tool,")
        ));

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn scenario_knobs_reach_the_campaign() {
        // A starvation budget marks every cell over budget — proof the
        // scenario's budget_steps reached the campaign.
        let scenario = Scenario::parse(
            r#"{
              "name": "starved",
              "scale": 0.06,
              "threads": 2,
              "budget_steps": 10,
              "pipeline": true,
              "driver_lag_quanta": 1,
              "cells": [
                {"workload": "histogram'", "tool": "native"},
                {"workload": "histogram'", "tool": "laser-detect", "topology": "2s"}
              ]
            }"#,
        )
        .unwrap();
        let mut out = Vec::new();
        let summary = run_scenario(&scenario, &ServiceOptions::default(), &mut out).unwrap();
        assert_eq!(summary.cells, 2);
        assert_eq!(summary.ok, 0);
        assert_eq!(summary.failed, 2);
        let lines = lines(&out);
        for line in &lines[..2] {
            assert_eq!(
                line.get("status"),
                Some(&Value::Str("budget-exceeded".to_string()))
            );
            assert_eq!(line.get("cycles"), Some(&Value::Null));
        }
        // The multi-socket cell streams its decorated key.
        assert!(lines[..2]
            .iter()
            .any(|l| { l.get("tool") == Some(&Value::Str("laser-detect@2s".to_string())) }));
    }

    #[test]
    fn custom_topology_reaches_the_campaign_and_decorates_cell_keys() {
        // Same starvation trick as above: a 10-step budget keeps the run
        // instant, while the streamed tool key proves the bespoke layout —
        // not a preset — deployed the cell.
        let scenario = Scenario::parse(
            r#"{
              "name": "bespoke",
              "scale": 0.06,
              "budget_steps": 10,
              "custom_topology": {
                "name": "fat-thin",
                "core_blocks": [6, 2],
                "remote": {"remote_hitm": 220, "remote_llc": 100, "remote_dram": 310}
              },
              "cells": [{"workload": "histogram'", "tool": "laser-detect"}]
            }"#,
        )
        .unwrap();
        let mut out = Vec::new();
        let summary = run_scenario(&scenario, &ServiceOptions::default(), &mut out).unwrap();
        assert_eq!(summary.cells, 1);
        let lines = lines(&out);
        assert_eq!(
            lines[0].get("tool"),
            Some(&Value::Str("laser-detect@fat-thin".to_string()))
        );
    }

    #[test]
    fn a_failing_stream_writer_is_an_error_not_a_panic() {
        struct Brick;
        impl Write for Brick {
            fn write(&mut self, _: &[u8]) -> std::io::Result<usize> {
                Err(std::io::Error::other("brick"))
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let scenario = tiny_scenario("");
        let err = run_scenario(&scenario, &ServiceOptions::default(), Brick).unwrap_err();
        assert!(err.to_string().contains("result stream"), "{err}");
        assert!(err.to_string().contains("brick"), "{err}");
    }
}
