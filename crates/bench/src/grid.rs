//! The shared cell cache behind every figure and table: plan the union of the
//! `(workload, tool)` cells the requested experiments need, run each unique
//! cell **exactly once** on the parallel [`Campaign`] runner, and let every
//! figure derive its rows from the cached results.
//!
//! Before this layer, each figure generator re-ran its own workloads serially
//! — `experiments all` simulated the same `(workload, native)` cell up to six
//! times. Now the planning functions (`plan_fig10`, `plan_table1`, …, in
//! [`crate::performance`] and [`crate::accuracy`]) register requests on a
//! [`Grid`], requests deduplicate in a sorted set, and one campaign computes
//! the union in parallel. Figures become pure views: `fig10_from_grid` and
//! friends read cells out of the [`GridResult`] and never simulate anything.
//!
//! Cell order (and therefore aggregation order) is the sorted request set, so
//! a grid's rendered output is byte-identical for any thread count and any
//! planning order.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

use laser_baselines::SheriffFailure;
use laser_core::{CellBudget, PipelineConfig, TopologySpec};
use laser_workloads::WorkloadSpec;

use crate::cache::CellCache;
use crate::campaign::{Campaign, CampaignProgress, CampaignResult, CellResult};
use crate::runner::ExperimentScale;
use crate::tool::{Tool, ToolFailure, ToolRun, ToolSpec};

/// Why an experiment could not be derived from a grid.
#[derive(Debug, Clone, PartialEq)]
pub enum ExperimentError {
    /// A required cell ran but failed.
    Cell {
        /// Workload name.
        workload: String,
        /// Tool key.
        tool: String,
        /// What went wrong.
        failure: ToolFailure,
    },
    /// A required cell was never planned into the grid (a planner bug).
    MissingCell {
        /// Workload name.
        workload: String,
        /// Tool key.
        tool: String,
    },
}

impl std::fmt::Display for ExperimentError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExperimentError::Cell {
                workload,
                tool,
                failure,
            } => write!(f, "cell {workload} × {tool} failed: {failure}"),
            ExperimentError::MissingCell { workload, tool } => {
                write!(f, "cell {workload} × {tool} was not planned into the grid")
            }
        }
    }
}

impl std::error::Error for ExperimentError {}

/// A planned set of `(workload, tool, topology)` cells, ready to run as one
/// campaign.
#[derive(Debug, Clone)]
pub struct Grid {
    scale: ExperimentScale,
    threads: usize,
    budget: CellBudget,
    pipeline: PipelineConfig,
    topology: TopologySpec,
    cache: Option<Arc<CellCache>>,
    requests: BTreeSet<(String, ToolSpec, TopologySpec)>,
    specs: BTreeMap<String, WorkloadSpec>,
}

impl Grid {
    /// An empty grid at `scale`, defaulting to one worker per available core
    /// and the flat (single-socket) topology.
    pub fn new(scale: ExperimentScale) -> Self {
        Grid {
            scale,
            threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            budget: CellBudget::default(),
            pipeline: PipelineConfig::default(),
            topology: TopologySpec::Flat,
            cache: None,
            requests: BTreeSet::new(),
            specs: BTreeMap::new(),
        }
    }

    /// Set the worker-thread count (clamped to at least 1).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Bound every cell with `budget` (see [`Campaign::with_cell_budget`]).
    /// A figure whose cells trip the budget derives to an
    /// [`ExperimentError::Cell`] instead of silently using partial data.
    pub fn with_cell_budget(mut self, budget: CellBudget) -> Self {
        self.budget = budget;
        self
    }

    /// Deploy every cell's session with `pipeline` (see
    /// [`Campaign::with_pipeline`]). The cached cells — and every figure
    /// derived from them — are byte-identical to an un-pipelined grid.
    pub fn with_pipeline(mut self, pipeline: PipelineConfig) -> Self {
        self.pipeline = pipeline;
        self
    }

    /// Run every cell planned through [`Grid::request`] on `topology`
    /// (default: flat). Explicit [`Grid::request_at`] cells — e.g. the
    /// cross-socket sweep, which plans the same workloads at several
    /// topologies — are unaffected. Every figure planner routes through
    /// `request`, so `experiments --topology 2s` shifts the whole grid with
    /// this one knob.
    pub fn with_topology(mut self, topology: TopologySpec) -> Self {
        self.topology = topology;
        self
    }

    /// Consult `cache` before simulating any cell and write finished cells
    /// back (see [`Campaign::with_cache`]). Figures derived from a cached
    /// grid are byte-identical to a cold one.
    pub fn with_cache(mut self, cache: Arc<CellCache>) -> Self {
        self.cache = Some(cache);
        self
    }

    /// The scale experiments will be planned and derived at.
    pub fn scale(&self) -> ExperimentScale {
        self.scale
    }

    /// The topology [`Grid::request`] plans cells on.
    pub fn topology(&self) -> TopologySpec {
        self.topology
    }

    /// The configured worker-thread count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Request one cell. Requests deduplicate: planning ten figures that all
    /// need `(histogram', native)` still runs that cell once. Taking the
    /// [`WorkloadSpec`] itself (obtained from `laser_workloads::registry()` /
    /// `find`) means an unknown workload name cannot be planned at all — the
    /// typo surfaces where the spec is looked up, not as a late failure here.
    pub fn request(&mut self, workload: &WorkloadSpec, tool: ToolSpec) {
        self.request_at(workload, tool, self.topology);
    }

    /// Request one cell on an explicit topology, regardless of the grid's
    /// default. The cross-socket sweep uses this to plan the same workloads
    /// at every preset into one grid.
    pub fn request_at(&mut self, workload: &WorkloadSpec, tool: ToolSpec, topology: TopologySpec) {
        self.specs
            .entry(workload.name.to_string())
            .or_insert_with(|| workload.clone());
        self.requests
            .insert((workload.name.to_string(), tool, topology));
    }

    /// Number of unique cells planned so far.
    pub fn cells(&self) -> usize {
        self.requests.len()
    }

    /// Run every planned cell once, in parallel, and index the results.
    pub fn run(self) -> GridResult {
        self.run_with_progress(|_| {})
    }

    /// Like [`Grid::run`], streaming [`CampaignProgress`] notifications to
    /// `progress` as cells start and finish.
    pub fn run_with_progress<F>(self, progress: F) -> GridResult
    where
        F: Fn(CampaignProgress) + Sync,
    {
        let mut workloads: Vec<WorkloadSpec> = Vec::new();
        let mut workload_index: BTreeMap<String, usize> = BTreeMap::new();
        let mut tools: Vec<Box<dyn Tool>> = Vec::new();
        let mut tool_index: BTreeMap<ToolSpec, usize> = BTreeMap::new();
        let mut cells = Vec::with_capacity(self.requests.len());
        for (name, spec, topo) in &self.requests {
            let w = *workload_index.entry(name.clone()).or_insert_with(|| {
                workloads.push(self.specs[name].clone());
                workloads.len() - 1
            });
            let t = *tool_index.entry(*spec).or_insert_with(|| {
                tools.push(spec.build());
                tools.len() - 1
            });
            cells.push((w, t, *topo));
        }

        let mut campaign = Campaign::from_cells_at(workloads, tools, cells)
            .with_options(self.scale.options())
            .with_threads(self.threads)
            .with_cell_budget(self.budget)
            .with_pipeline(self.pipeline);
        if let Some(cache) = self.cache {
            campaign = campaign.with_cache(cache);
        }
        let result = campaign.run_with_progress(progress);
        let index = result
            .cells
            .iter()
            .enumerate()
            .map(|(i, c)| ((c.workload.clone(), c.tool.clone()), i))
            .collect();
        GridResult {
            scale: self.scale,
            topology: self.topology,
            result,
            index,
        }
    }
}

/// The cached cells of a finished grid run: every figure derives from this.
#[derive(Debug, Clone)]
pub struct GridResult {
    scale: ExperimentScale,
    topology: TopologySpec,
    result: CampaignResult,
    index: BTreeMap<(String, String), usize>,
}

impl GridResult {
    /// The scale the grid ran at.
    pub fn scale(&self) -> ExperimentScale {
        self.scale
    }

    /// The topology default-planned cells ran on. Figure views look their
    /// cells up here, so a `--topology 2s` grid derives every figure from
    /// the 2-socket cells without the views knowing anything changed.
    pub fn topology(&self) -> TopologySpec {
        self.topology
    }

    /// The underlying campaign result, in grid order.
    pub fn campaign(&self) -> &CampaignResult {
        &self.result
    }

    /// The raw cell for `workload` under `tool` on the grid's default
    /// topology, if it was planned.
    pub fn cell(&self, workload: &str, tool: ToolSpec) -> Option<&CellResult> {
        self.cell_at(workload, tool, self.topology)
    }

    /// The raw cell for `workload` under `tool` on an explicit topology.
    pub fn cell_at(
        &self,
        workload: &str,
        tool: ToolSpec,
        topology: TopologySpec,
    ) -> Option<&CellResult> {
        let key = (workload.to_string(), tool.key_at(topology));
        self.index.get(&key).map(|&i| &self.result.cells[i])
    }

    /// The successful run of `workload` under `tool` on the grid's default
    /// topology.
    ///
    /// # Errors
    /// [`ExperimentError::MissingCell`] if the cell was never planned,
    /// [`ExperimentError::Cell`] if it ran but failed (including Sheriff
    /// incompatibility — use [`GridResult::sheriff_run`] where that is an
    /// expected outcome rather than an error).
    pub fn tool_run(&self, workload: &str, tool: ToolSpec) -> Result<&ToolRun, ExperimentError> {
        self.tool_run_at(workload, tool, self.topology)
    }

    /// The successful run of `workload` under `tool` on an explicit
    /// topology.
    ///
    /// # Errors
    /// As for [`GridResult::tool_run`].
    pub fn tool_run_at(
        &self,
        workload: &str,
        tool: ToolSpec,
        topology: TopologySpec,
    ) -> Result<&ToolRun, ExperimentError> {
        let cell =
            self.cell_at(workload, tool, topology)
                .ok_or_else(|| ExperimentError::MissingCell {
                    workload: workload.to_string(),
                    tool: tool.key_at(topology),
                })?;
        cell.outcome.as_ref().map_err(|f| ExperimentError::Cell {
            workload: workload.to_string(),
            tool: tool.key_at(topology),
            failure: f.clone(),
        })
    }

    /// The run of `workload` under a Sheriff `tool`, with the compatibility
    /// matrix surfaced as data: `Ok(Err(failure))` is Sheriff declining the
    /// workload (an expected result the tables print as "x"/"i"), while
    /// simulator errors and panics remain [`ExperimentError`]s.
    ///
    /// # Errors
    /// [`ExperimentError::MissingCell`] / [`ExperimentError::Cell`] as for
    /// [`GridResult::tool_run`], except `Unsupported` outcomes.
    pub fn sheriff_run(
        &self,
        workload: &str,
        tool: ToolSpec,
    ) -> Result<Result<&ToolRun, SheriffFailure>, ExperimentError> {
        let cell = self
            .cell(workload, tool)
            .ok_or_else(|| ExperimentError::MissingCell {
                workload: workload.to_string(),
                tool: tool.key(),
            })?;
        match &cell.outcome {
            Ok(run) => Ok(Ok(run)),
            Err(ToolFailure::Unsupported(failure)) => Ok(Err(*failure)),
            Err(f) => Err(ExperimentError::Cell {
                workload: workload.to_string(),
                tool: tool.key(),
                failure: f.clone(),
            }),
        }
    }

    /// Runtime of `workload` under `tool` normalized to the workload's native
    /// cell, both on the grid's default topology.
    ///
    /// # Errors
    /// Propagates missing/failed cells for either endpoint.
    pub fn normalized(&self, workload: &str, tool: ToolSpec) -> Result<f64, ExperimentError> {
        self.normalized_at(workload, tool, self.topology)
    }

    /// Runtime of `workload` under `tool` normalized to the workload's
    /// native cell, both on an explicit topology.
    ///
    /// # Errors
    /// Propagates missing/failed cells for either endpoint.
    pub fn normalized_at(
        &self,
        workload: &str,
        tool: ToolSpec,
        topology: TopologySpec,
    ) -> Result<f64, ExperimentError> {
        let cycles = self.tool_run_at(workload, tool, topology)?.cycles;
        let native = self
            .tool_run_at(workload, ToolSpec::Native, topology)?
            .cycles;
        Ok(cycles as f64 / native.max(1) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use laser_workloads::find;

    fn spec(name: &str) -> WorkloadSpec {
        find(name).expect("known workload")
    }

    fn tiny_scale() -> ExperimentScale {
        ExperimentScale {
            workload_scale: 0.06,
            only: Some(&["histogram'", "swaptions"]),
        }
    }

    #[test]
    fn requests_deduplicate_and_run_once() {
        let mut grid = Grid::new(tiny_scale()).with_threads(2);
        for _ in 0..3 {
            grid.request(&spec("histogram'"), ToolSpec::Native);
            grid.request(&spec("histogram'"), ToolSpec::LaserDetect);
        }
        grid.request(&spec("swaptions"), ToolSpec::Native);
        assert_eq!(grid.cells(), 3);
        let result = grid.run();
        assert_eq!(result.campaign().cells.len(), 3);
        assert!(result.tool_run("histogram'", ToolSpec::Native).is_ok());
        assert!(result.tool_run("histogram'", ToolSpec::LaserDetect).is_ok());
        let norm = result
            .normalized("histogram'", ToolSpec::LaserDetect)
            .unwrap();
        assert!(norm >= 1.0, "{norm}");
    }

    #[test]
    fn missing_cells_are_reported_not_panicked() {
        let mut grid = Grid::new(tiny_scale());
        grid.request(&spec("swaptions"), ToolSpec::Native);
        let result = grid.run();
        assert_eq!(
            result.tool_run("swaptions", ToolSpec::Vtune),
            Err(ExperimentError::MissingCell {
                workload: "swaptions".to_string(),
                tool: "vtune".to_string(),
            })
        );
    }

    #[test]
    fn sheriff_incompatibility_is_data_not_error() {
        let mut grid = Grid::new(ExperimentScale {
            workload_scale: 0.06,
            only: Some(&["dedup"]),
        });
        grid.request(&spec("dedup"), ToolSpec::SheriffDetect);
        let result = grid.run();
        // dedup is Sheriff-incompatible: sheriff_run surfaces it as data...
        assert_eq!(
            result
                .sheriff_run("dedup", ToolSpec::SheriffDetect)
                .unwrap(),
            Err(SheriffFailure::Incompatible)
        );
        // ...while tool_run treats it as a failed cell.
        assert!(matches!(
            result.tool_run("dedup", ToolSpec::SheriffDetect),
            Err(ExperimentError::Cell { .. })
        ));
    }

    #[test]
    fn grid_order_is_independent_of_planning_order() {
        let mut a = Grid::new(tiny_scale()).with_threads(1);
        a.request(&spec("swaptions"), ToolSpec::Native);
        a.request(&spec("histogram'"), ToolSpec::LaserDetect);
        a.request(&spec("histogram'"), ToolSpec::Native);
        let mut b = Grid::new(tiny_scale()).with_threads(4);
        b.request(&spec("histogram'"), ToolSpec::Native);
        b.request(&spec("swaptions"), ToolSpec::Native);
        b.request(&spec("histogram'"), ToolSpec::LaserDetect);
        let (ra, rb) = (a.run(), b.run());
        assert_eq!(ra.campaign().cells, rb.campaign().cells);
        assert_eq!(ra.campaign().render(), rb.campaign().render());
    }
}
