//! The campaign runner's central guarantee: fanning a `workload × tool` grid
//! across a thread pool changes nothing but the wall-clock. A campaign run
//! with `threads = 1` (the reference serial execution) and with `threads = N`
//! must produce byte-identical aggregated results — including when per-cell
//! budgets are enabled, and including the per-run observer event stream,
//! which is identical whether a session runs inline or on a worker thread.

use laser_bench::{
    Campaign, CellBudget, Emit, LaserTool, NativeTool, PipelineConfig, SheriffTool, Tool,
    TopologySpec, VtuneTool,
};
use laser_core::{EventLog, Laser, LaserConfig};
use laser_workloads::{find, registry, BuildOptions};

fn tools() -> Vec<Box<dyn Tool>> {
    vec![
        Box::new(NativeTool),
        Box::new(LaserTool::new(LaserConfig::detection_only())),
        Box::new(VtuneTool::default()),
        Box::new(SheriffTool::new(laser_baselines::SheriffMode::Detect)),
    ]
}

fn campaign(threads: usize) -> Campaign {
    Campaign::new(registry(), tools())
        .with_workload_names(&["histogram'", "swaptions", "linear_regression"])
        .expect("known workload names")
        .with_options(BuildOptions::scaled(0.08))
        .with_threads(threads)
}

#[test]
fn single_and_multi_threaded_campaigns_are_byte_identical() {
    let serial = campaign(1).run();
    let parallel = campaign(8).run();

    // Structural equality of every cell...
    assert_eq!(serial.cells, parallel.cells);
    // ...and byte-identical rendered output.
    assert_eq!(serial.render(), parallel.render());
    assert_eq!(serial.cells.len(), 12);
}

#[test]
fn repeated_parallel_runs_are_stable() {
    // Two parallel runs with the same thread count also agree — there is no
    // hidden dependence on scheduling at all.
    let a = campaign(4).run();
    let b = campaign(4).run();
    assert_eq!(a.cells, b.cells);
    assert_eq!(a.render(), b.render());
}

#[test]
fn observer_event_stream_is_identical_inline_and_on_a_worker_thread() {
    let spec = find("histogram'").expect("known workload");
    let image = spec.build(&BuildOptions::scaled(0.08));
    let config = LaserConfig::detection_only();

    let inline_log = EventLog::new();
    let inline = Laser::builder()
        .config(config.clone())
        .observer(inline_log.clone())
        .build(&image)
        .run()
        .unwrap();

    let worker_log = EventLog::new();
    let session = Laser::builder()
        .config(config)
        .observer(worker_log.clone())
        .build(&image);
    let moved = std::thread::spawn(move || session.run().unwrap())
        .join()
        .unwrap();

    // The runs agree...
    assert_eq!(inline.cycles(), moved.cycles());
    assert_eq!(inline.report, moved.report);
    // ...and so does the full event sequence, byte for byte.
    let inline_events = inline_log.events();
    assert!(!inline_events.is_empty());
    assert_eq!(inline_events, worker_log.events());
    assert_eq!(
        format!("{inline_events:?}"),
        format!("{:?}", worker_log.events())
    );
}

#[test]
fn pipelined_campaigns_are_byte_identical_to_inline_for_any_thread_count() {
    // The tentpole guarantee of the pipelined session: moving the detector
    // stage to a worker thread changes the wall-clock and nothing else. A
    // pipelined campaign must aggregate and render byte-identically to the
    // inline reference — serial or fanned across workers, with the inline
    // serial run as the common baseline.
    let reference = campaign(1).run();
    let piped_serial = campaign(1).with_pipeline(PipelineConfig::pipelined()).run();
    let piped_parallel = campaign(8).with_pipeline(PipelineConfig::pipelined()).run();

    assert_eq!(reference.cells, piped_serial.cells);
    assert_eq!(reference.cells, piped_parallel.cells);
    assert_eq!(reference.render(), piped_serial.render());
    assert_eq!(reference.render(), piped_parallel.render());
    assert_eq!(
        reference.to_json().render(),
        piped_parallel.to_json().render()
    );
    assert_eq!(reference.to_csv(), piped_parallel.to_csv());
}

#[test]
fn sharded_campaigns_are_byte_identical_to_inline_for_any_shard_count() {
    // The sharded detector's tentpole guarantee: line-hash routing keeps each
    // cache line's observation sequence on one shard, so the sorted merge
    // reassembles exactly the inline aggregates. One shard, eight shards,
    // serial or fanned across campaign workers — all three formats must come
    // out byte-identical to the inline reference.
    let reference = campaign(1).run();
    for shards in [1, 8] {
        let config = PipelineConfig::pipelined().with_shards(shards);
        let serial = campaign(1).with_pipeline(config).run();
        let parallel = campaign(8).with_pipeline(config).run();

        assert_eq!(reference.cells, serial.cells, "shards={shards}");
        assert_eq!(reference.cells, parallel.cells, "shards={shards}");
        assert_eq!(reference.render(), parallel.render(), "shards={shards}");
        assert_eq!(
            reference.to_json().render(),
            parallel.to_json().render(),
            "shards={shards}"
        );
        assert_eq!(reference.to_csv(), parallel.to_csv(), "shards={shards}");
    }
}

#[test]
fn pipelined_observer_event_stream_is_identical_to_inline() {
    // The event sequence — order and payloads — is part of the determinism
    // contract: an observer cannot tell a pipelined session from an inline
    // one. Covers both the streaming mode (detection-only) and the
    // lock-step-then-streaming mode (repair armed).
    for config in [LaserConfig::detection_only(), LaserConfig::default()] {
        let spec = find("histogram'").expect("known workload");
        let image = spec.build(&BuildOptions::scaled(0.08));

        let inline_log = EventLog::new();
        let inline = Laser::builder()
            .config(config.clone())
            .observer(inline_log.clone())
            .build(&image)
            .run()
            .unwrap();

        let piped_log = EventLog::new();
        let piped = Laser::builder()
            .config(config.clone())
            .pipeline(true)
            .observer(piped_log.clone())
            .build(&image)
            .run()
            .unwrap();

        assert_eq!(inline.cycles(), piped.cycles());
        assert_eq!(inline.report, piped.report);
        let inline_events = inline_log.events();
        assert!(!inline_events.is_empty());
        assert_eq!(
            inline_events,
            piped_log.events(),
            "repair={}",
            config.enable_repair
        );
        assert_eq!(
            format!("{inline_events:?}"),
            format!("{:?}", piped_log.events())
        );
    }
}

#[test]
fn topology_campaigns_are_byte_identical_across_thread_counts_and_pipelining() {
    // The topology axis composes with everything the campaign runner
    // guarantees: a 2-socket campaign aggregates and renders byte-identically
    // whatever the thread count, pipelined or inline, in all three formats.
    let reference = campaign(1).with_topology(TopologySpec::DualSocket).run();
    let parallel = campaign(8).with_topology(TopologySpec::DualSocket).run();
    let piped = campaign(8)
        .with_topology(TopologySpec::DualSocket)
        .with_pipeline(PipelineConfig::pipelined())
        .run();

    assert_eq!(reference.cells, parallel.cells);
    assert_eq!(reference.cells, piped.cells);
    assert_eq!(reference.render(), piped.render());
    assert_eq!(reference.to_json().render(), piped.to_json().render());
    assert_eq!(reference.to_csv(), piped.to_csv());

    // The axis is real, not a relabel: cells carry the @2s key, and the
    // contended workloads show cross-socket traffic a flat campaign cannot.
    assert!(reference.cells.iter().all(|c| c.tool.ends_with("@2s")));
    let flat = campaign(1).run();
    let (hot_2s, hot_flat) = (
        reference.cell("histogram'", "native@2s").unwrap(),
        flat.cell("histogram'", "native").unwrap(),
    );
    assert!(hot_2s.outcome.as_ref().unwrap().hitm_remote > 0);
    assert_eq!(hot_flat.outcome.as_ref().unwrap().hitm_remote, 0);
    assert_ne!(
        hot_2s.outcome.as_ref().unwrap().cycles,
        hot_flat.outcome.as_ref().unwrap().cycles
    );
}

#[test]
fn pipelined_budgeted_campaigns_match_inline_budgeted_campaigns() {
    // Budget observers ride the event stream; since the stream is identical,
    // the same cells trip the same budgets at the same points whatever the
    // execution mode or thread count.
    let budget = CellBudget::steps(10_000);
    let inline = campaign(1).with_cell_budget(budget).run();
    let piped = campaign(8)
        .with_cell_budget(budget)
        .with_pipeline(PipelineConfig::pipelined())
        .run();
    assert_eq!(inline.cells, piped.cells);
    assert_eq!(inline.render(), piped.render());
    assert_eq!(inline.to_json().render(), piped.to_json().render());
    assert_eq!(inline.to_csv(), piped.to_csv());
    assert!(
        inline.cells.iter().any(|c| c.status() == "budget-exceeded"),
        "budget should trip for at least one cell"
    );
}

#[test]
fn three_stage_campaigns_at_lag_zero_are_byte_identical_to_inline() {
    // The three-stage pipeline's tentpole guarantee: with the driver stage on
    // its own thread and the charge-back lag at 0, the machine blocks on each
    // quantum's ledger before the next quantum runs, so the whole campaign —
    // any shard count, budgeted or not, in every format — must come out
    // byte-identical to the inline two-loop reference.
    let budget = CellBudget::steps(10_000);
    let reference = campaign(1).run();
    let budgeted_reference = campaign(1).with_cell_budget(budget).run();
    for shards in [1, 4] {
        let config = PipelineConfig::pipelined()
            .with_shards(shards)
            .with_driver_lag(0);
        let three_stage = campaign(8).with_pipeline(config).run();
        assert_eq!(reference.cells, three_stage.cells, "shards={shards}");
        assert_eq!(reference.render(), three_stage.render(), "shards={shards}");
        assert_eq!(
            reference.to_json().render(),
            three_stage.to_json().render(),
            "shards={shards}"
        );
        assert_eq!(reference.to_csv(), three_stage.to_csv(), "shards={shards}");

        // Budget observers ride the same event stream, so the same cells trip
        // the same budgets at the same points under the three-stage pipeline.
        let budgeted = campaign(8)
            .with_pipeline(config)
            .with_cell_budget(budget)
            .run();
        assert_eq!(budgeted_reference.cells, budgeted.cells, "shards={shards}");
        assert_eq!(
            budgeted_reference.render(),
            budgeted.render(),
            "shards={shards}"
        );
    }
}

#[test]
fn lagged_campaigns_are_deterministic_for_any_thread_and_shard_count() {
    // At lag >= 1 the machine overlaps execution with the driver stage: the
    // run is documented as *not* inline-identical, but it must stay a pure
    // function of (workload, config) — byte-identical across repeats, thread
    // counts and shard counts, in all three formats.
    let config = PipelineConfig::pipelined().with_driver_lag(1);
    let serial = campaign(1).with_pipeline(config).run();
    let parallel = campaign(8).with_pipeline(config).run();
    let sharded = campaign(8).with_pipeline(config.with_shards(4)).run();

    assert_eq!(serial.cells, parallel.cells);
    assert_eq!(serial.cells, sharded.cells);
    assert_eq!(serial.render(), parallel.render());
    assert_eq!(serial.to_json().render(), sharded.to_json().render());
    assert_eq!(serial.to_csv(), sharded.to_csv());

    // Every cell still completes and reports under the deferred charge-back.
    assert!(serial.cells.iter().all(|c| c.outcome.is_ok()));
}

#[test]
fn budgeted_campaigns_are_byte_identical_for_any_thread_count() {
    // A step budget that some cells trip and others survive: the grid must
    // aggregate identically — including the budget-exceeded cells — whatever
    // the thread count, in the text, JSON and CSV emissions alike.
    let budget = CellBudget::steps(10_000);
    let serial = campaign(1).with_cell_budget(budget).run();
    let parallel = campaign(8).with_cell_budget(budget).run();

    assert_eq!(serial.cells, parallel.cells);
    assert_eq!(serial.render(), parallel.render());
    assert_eq!(serial.to_json().render(), parallel.to_json().render());
    assert_eq!(serial.to_csv(), parallel.to_csv());

    // The budget did something (this is not vacuous determinism)...
    assert!(
        serial.cells.iter().any(|c| c.status() == "budget-exceeded"),
        "budget should trip for at least one cell:\n{}",
        serial.render()
    );
    // ...without disturbing the cells that fit inside it.
    let unbudgeted = campaign(4).run();
    for (with_budget, without) in serial.cells.iter().zip(&unbudgeted.cells) {
        if with_budget.outcome.is_ok() {
            assert_eq!(with_budget, without);
        }
    }
}
