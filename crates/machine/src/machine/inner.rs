//! Shared mutable machine state: memory, coherence directory, statistics.
//!
//! [`MachineInner`] is the part of the machine that both normal instruction
//! execution and attached hooks operate on; hooks receive it through
//! [`crate::hook::HookCtx`] so a software-store-buffer flush goes through the
//! same coherence directory as the application's own accesses.

use laser_isa::program::Pc;

use crate::addr::{iter_lines_touched, Addr};
use crate::coherence::CoherenceDirectory;
use crate::event::{HitmEvent, MemAccessKind};
use crate::htm::{fits_in_transaction, HtmOutcome};
use crate::machine::CoreId;
use crate::mem::SparseMemory;
use crate::stats::MachineStats;
use crate::timing::LatencyModel;
use crate::topology::{ResolvedClass, Topology};

/// Shared mutable machine state that both normal execution and attached hooks
/// operate on.
pub(crate) struct MachineInner {
    pub(crate) mem: SparseMemory,
    pub(crate) coh: CoherenceDirectory,
    pub(crate) stats: MachineStats,
    pub(crate) pending_hitms: Vec<HitmEvent>,
    pub(crate) latency: LatencyModel,
    pub(crate) topology: Topology,
}

impl MachineInner {
    /// Perform a memory access through the coherence directory, recording a
    /// HITM event when the access hits a remotely-Modified line. Returns the
    /// loaded value (0 for stores) and the cycle cost.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn access(
        &mut self,
        core: usize,
        pc: Pc,
        addr: Addr,
        size: u8,
        is_write: bool,
        event_kind: MemAccessKind,
        store_value: Option<u64>,
        now: u64,
    ) -> (u64, u64) {
        let mut worst = 0u64;
        let num_cores = self.coh.num_cores();
        for line in iter_lines_touched(addr, size) {
            let outcome = self.coh.access(core, line, is_write);
            // The directory decides *what* happened; the topology decides
            // *where* it was serviced and what that costs. On the default
            // single-socket topology every class resolves local and is priced
            // straight from the base latency model.
            let class = self.topology.resolve(&outcome, core, num_cores, line);
            match class {
                ResolvedClass::L1Hit => self.stats.l1_hits += 1,
                ResolvedClass::LlcLocal => self.stats.llc_hits += 1,
                ResolvedClass::LlcRemote => {
                    self.stats.llc_hits += 1;
                    self.stats.llc_remote_hits += 1;
                }
                ResolvedClass::DramLocal => self.stats.dram_accesses += 1,
                ResolvedClass::DramRemote => {
                    self.stats.dram_accesses += 1;
                    self.stats.dram_remote_accesses += 1;
                }
                ResolvedClass::HitmLocal | ResolvedClass::HitmRemote => {
                    self.stats.hitm_events += 1;
                    if class == ResolvedClass::HitmRemote {
                        self.stats.hitm_remote += 1;
                    } else {
                        self.stats.hitm_local += 1;
                    }
                    match event_kind {
                        MemAccessKind::Load => self.stats.hitm_loads += 1,
                        MemAccessKind::Store => self.stats.hitm_stores += 1,
                    }
                    self.pending_hitms.push(HitmEvent {
                        core: CoreId(core),
                        pc,
                        addr,
                        size,
                        kind: event_kind,
                        cycle: now,
                    });
                }
            }
            worst = worst.max(self.topology.cost(class, &self.latency));
        }
        let value = if is_write {
            if let Some(v) = store_value {
                self.mem.write(addr, size, v);
            }
            0
        } else {
            self.mem.read(addr, size)
        };
        (value, worst)
    }

    /// Execute a write set atomically inside a hardware transaction.
    pub(crate) fn htm_execute(
        &mut self,
        core: usize,
        pc: Pc,
        writes: &[(Addr, u8, u64)],
        now: u64,
    ) -> HtmOutcome {
        let mut lines: Vec<Addr> = Vec::new();
        for (addr, size, _) in writes {
            for l in iter_lines_touched(*addr, *size) {
                if !lines.contains(&l) {
                    lines.push(l);
                }
            }
        }
        if !fits_in_transaction(lines.len()) {
            self.stats.htm_capacity_aborts += 1;
            return HtmOutcome::CapacityAborted;
        }
        let mut cycles = self.latency.htm_begin + self.latency.htm_commit;
        for (addr, size, value) in writes {
            let (_, c) = self.access(
                core,
                pc,
                *addr,
                *size,
                true,
                MemAccessKind::Store,
                Some(*value),
                now,
            );
            cycles += c;
        }
        self.stats.htm_commits += 1;
        HtmOutcome::Committed { cycles }
    }
}
