//! Instruction execution: the fetch/execute loop and operand evaluation.
//!
//! `step()` is the simulator's hot loop. Its structure is deliberate:
//!
//! * Fetch copies one pre-decoded `(instruction, PC)` pair out of the flat
//!   [`DecodedProgram`](laser_isa::decoded::DecodedProgram) arrays — no PC
//!   arithmetic, no borrow held into the program while executing.
//! * Scheduling reads the [`CoreSched`](super::sched::CoreSched) heap root in
//!   O(1) and repositions it in O(log cores) after the cost is charged.
//! * The no-hook path is a single branch per dispatch site
//!   (`self.hook.is_attached()`); hook argument marshalling only happens on
//!   the hooked path.

use laser_isa::inst::{Inst, MemAddr, Operand, RmwOp, Terminator, NUM_REGS};

use crate::addr::Addr;
use crate::event::MemAccessKind;
use crate::hook::{HookAction, MemOp};
use crate::machine::{Machine, MachineError, RunResult, RunStatus};

impl Machine {
    /// Run at most `n` instructions. Returns [`RunStatus::Done`] once all
    /// threads have halted.
    pub fn run_steps(&mut self, n: u64) -> RunStatus {
        for _ in 0..n {
            if !self.step() {
                return RunStatus::Done;
            }
        }
        if self.is_done() {
            RunStatus::Done
        } else {
            RunStatus::Running
        }
    }

    /// Run until every thread halts.
    ///
    /// # Errors
    /// Returns [`MachineError::MaxStepsExceeded`] if the configured step
    /// budget runs out first.
    pub fn run_to_completion(&mut self) -> Result<RunResult, MachineError> {
        while !self.is_done() {
            if self.steps >= self.config.max_steps {
                return Err(MachineError::MaxStepsExceeded {
                    steps: self.config.max_steps,
                });
            }
            self.step();
        }
        Ok(self.result())
    }

    pub(crate) fn eval_operand(regs: &[u64; NUM_REGS], op: Operand) -> u64 {
        match op {
            Operand::Reg(r) => regs[r.0 as usize],
            Operand::Imm(v) => v,
        }
    }

    pub(crate) fn eval_addr(regs: &[u64; NUM_REGS], addr: &MemAddr) -> Addr {
        let mut a = regs[addr.base.0 as usize];
        if let Some((idx, scale)) = addr.index {
            a = a.wrapping_add(regs[idx.0 as usize].wrapping_mul(scale as u64));
        }
        a.wrapping_add(addr.offset as u64)
    }

    pub(crate) fn mask(value: u64, size: u8) -> u64 {
        if size >= 8 {
            value
        } else {
            value & ((1u64 << (8 * size)) - 1)
        }
    }

    /// Execute one instruction on the thread whose core clock is lowest.
    /// Returns false when every thread has halted.
    pub(crate) fn step(&mut self) -> bool {
        let Some(ti) = self.sched.pick() else {
            return false;
        };
        self.steps += 1;
        self.inner.stats.instructions += 1;

        let core = self.threads[ti].core;
        let block_id = self.threads[ti].block;
        let idx = self.threads[ti].idx;
        let now = self.core_cycles[core];
        let lat = self.hot;

        // Everything decoded is `Copy`: fetch copies one entry out of the
        // flat block array, releasing the borrow on the program before
        // execution mutates the machine.
        let fetched = {
            let blk = self.decoded.block(block_id);
            blk.insts().get(idx).copied().ok_or_else(|| blk.term())
        };
        if let Ok(fetched) = fetched {
            let inst = fetched.inst;
            let pc = fetched.pc;
            let mut cost = 0u64;
            match inst {
                Inst::Load { dst, addr, size } => {
                    self.inner.stats.loads += 1;
                    let a = Self::eval_addr(&self.threads[ti].regs, &addr);
                    let action = if self.hook.is_attached() {
                        let op = MemOp {
                            pc,
                            addr: a,
                            size,
                            kind: MemAccessKind::Load,
                            store_value: None,
                        };
                        self.hook_mem_op(core, now, &op)
                            .unwrap_or(HookAction::Passthrough)
                    } else {
                        HookAction::Passthrough
                    };
                    match action {
                        HookAction::Handled {
                            load_value,
                            extra_cycles,
                        } => {
                            self.inner.stats.hook_handled_ops += 1;
                            self.threads[ti].regs[dst.0 as usize] = load_value.unwrap_or(0);
                            cost += extra_cycles;
                        }
                        HookAction::Passthrough => {
                            let (v, c) = self.inner.access(
                                core,
                                pc,
                                a,
                                size,
                                false,
                                MemAccessKind::Load,
                                None,
                                now,
                            );
                            self.threads[ti].regs[dst.0 as usize] = v;
                            cost += c;
                        }
                    }
                }
                Inst::Store { src, addr, size } => {
                    self.inner.stats.stores += 1;
                    let a = Self::eval_addr(&self.threads[ti].regs, &addr);
                    let v = Self::mask(Self::eval_operand(&self.threads[ti].regs, src), size);
                    let action = if self.hook.is_attached() {
                        let op = MemOp {
                            pc,
                            addr: a,
                            size,
                            kind: MemAccessKind::Store,
                            store_value: Some(v),
                        };
                        self.hook_mem_op(core, now, &op)
                            .unwrap_or(HookAction::Passthrough)
                    } else {
                        HookAction::Passthrough
                    };
                    match action {
                        HookAction::Handled { extra_cycles, .. } => {
                            self.inner.stats.hook_handled_ops += 1;
                            cost += extra_cycles;
                        }
                        HookAction::Passthrough => {
                            let (_, c) = self.inner.access(
                                core,
                                pc,
                                a,
                                size,
                                true,
                                MemAccessKind::Store,
                                Some(v),
                                now,
                            );
                            cost += c;
                        }
                    }
                }
                Inst::AtomicRmw {
                    op,
                    dst,
                    addr,
                    operand,
                    expected,
                    size,
                } => {
                    self.inner.stats.atomics += 1;
                    // Atomics are fences: give the hook a chance to flush.
                    cost += self.hook_fence(core, now, pc);
                    let a = Self::eval_addr(&self.threads[ti].regs, &addr);
                    let operand_v =
                        Self::mask(Self::eval_operand(&self.threads[ti].regs, operand), size);
                    // The read-modify-write is a single exclusive-ownership
                    // access; its load uop is what the precise PEBS event
                    // samples, so record it as a load-kind HITM.
                    let old = self.inner.mem.read(a, size);
                    let new = match op {
                        RmwOp::FetchAdd => Self::mask(old.wrapping_add(operand_v), size),
                        RmwOp::Exchange => operand_v,
                        RmwOp::CompareExchange => {
                            let exp = Self::mask(
                                Self::eval_operand(
                                    &self.threads[ti].regs,
                                    expected.unwrap_or(Operand::Imm(0)),
                                ),
                                size,
                            );
                            if old == exp {
                                operand_v
                            } else {
                                old
                            }
                        }
                    };
                    let (_, c) = self.inner.access(
                        core,
                        pc,
                        a,
                        size,
                        true,
                        MemAccessKind::Load,
                        Some(new),
                        now,
                    );
                    self.threads[ti].regs[dst.0 as usize] = old;
                    cost += c + lat.atomic_extra;
                }
                Inst::MemRmw {
                    op,
                    addr,
                    operand,
                    size,
                } => {
                    self.inner.stats.loads += 1;
                    self.inner.stats.stores += 1;
                    let a = Self::eval_addr(&self.threads[ti].regs, &addr);
                    let rhs = Self::mask(Self::eval_operand(&self.threads[ti].regs, operand), size);
                    // Load half (this is the uop Haswell's precise HITM event
                    // samples, so a remote-Modified hit is recorded as a load).
                    let load_action = if self.hook.is_attached() {
                        let load_op = MemOp {
                            pc,
                            addr: a,
                            size,
                            kind: MemAccessKind::Load,
                            store_value: None,
                        };
                        self.hook_mem_op(core, now, &load_op)
                            .unwrap_or(HookAction::Passthrough)
                    } else {
                        HookAction::Passthrough
                    };
                    let current = match load_action {
                        HookAction::Handled {
                            load_value,
                            extra_cycles,
                        } => {
                            self.inner.stats.hook_handled_ops += 1;
                            cost += extra_cycles;
                            load_value.unwrap_or(0)
                        }
                        HookAction::Passthrough => {
                            let (v, c) = self.inner.access(
                                core,
                                pc,
                                a,
                                size,
                                false,
                                MemAccessKind::Load,
                                None,
                                now,
                            );
                            cost += c;
                            v
                        }
                    };
                    let new = Self::mask(op.apply(current, rhs), size);
                    let store_action = if self.hook.is_attached() {
                        let store_op = MemOp {
                            pc,
                            addr: a,
                            size,
                            kind: MemAccessKind::Store,
                            store_value: Some(new),
                        };
                        self.hook_mem_op(core, now, &store_op)
                            .unwrap_or(HookAction::Passthrough)
                    } else {
                        HookAction::Passthrough
                    };
                    match store_action {
                        HookAction::Handled { extra_cycles, .. } => {
                            self.inner.stats.hook_handled_ops += 1;
                            cost += extra_cycles;
                        }
                        HookAction::Passthrough => {
                            let (_, c) = self.inner.access(
                                core,
                                pc,
                                a,
                                size,
                                true,
                                MemAccessKind::Store,
                                Some(new),
                                now,
                            );
                            cost += c;
                        }
                    }
                }
                Inst::Mov { dst, src } => {
                    self.threads[ti].regs[dst.0 as usize] =
                        Self::eval_operand(&self.threads[ti].regs, src);
                    cost += lat.alu;
                }
                Inst::Alu { op, dst, lhs, rhs } => {
                    let l = self.threads[ti].regs[lhs.0 as usize];
                    let r = Self::eval_operand(&self.threads[ti].regs, rhs);
                    self.threads[ti].regs[dst.0 as usize] = op.apply(l, r);
                    cost += lat.alu;
                }
                Inst::Cmp { op, dst, lhs, rhs } => {
                    let l = self.threads[ti].regs[lhs.0 as usize];
                    let r = Self::eval_operand(&self.threads[ti].regs, rhs);
                    self.threads[ti].regs[dst.0 as usize] = op.apply(l, r);
                    cost += lat.alu;
                }
                Inst::Fence => {
                    self.inner.stats.fences += 1;
                    cost += self.hook_fence(core, now, pc);
                    cost += lat.fence;
                }
                Inst::Pause => {
                    cost += lat.pause;
                }
                Inst::Nop => {
                    cost += lat.alu;
                }
            }
            self.threads[ti].idx += 1;
            self.core_cycles[core] += cost;
            self.sched.reposition(&self.core_cycles, core);
        } else {
            let term = fetched.unwrap_err(); // lint:allow(panic) — the fetch above returned Err on this path; unwrap_err cannot fire
            let mut cost = lat.branch;
            match term {
                Terminator::Jump(target) => {
                    self.threads[ti].block = target;
                    self.threads[ti].idx = 0;
                    cost += self.hook_block_entry(core, now, target);
                    self.core_cycles[core] += cost;
                    self.sched.reposition(&self.core_cycles, core);
                }
                Terminator::Branch {
                    cond,
                    if_true,
                    if_false,
                } => {
                    let c = self.threads[ti].regs[cond.0 as usize];
                    let target = if c != 0 { if_true } else { if_false };
                    self.threads[ti].block = target;
                    self.threads[ti].idx = 0;
                    cost += self.hook_block_entry(core, now, target);
                    self.core_cycles[core] += cost;
                    self.sched.reposition(&self.core_cycles, core);
                }
                Terminator::Halt => {
                    cost += self.hook_thread_exit(core, now);
                    self.threads[ti].halted = true;
                    self.core_cycles[core] += cost;
                    self.sched.on_halt(&self.core_cycles, core);
                }
            }
        }
        !self.is_done()
    }
}
