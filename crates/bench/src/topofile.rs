//! Bespoke socket topologies loaded from JSON, and the [`Deployment`] axis
//! that runs campaign cells on either a named preset or a custom layout.
//!
//! The preset [`TopologySpec`] sweep covers symmetric 4-cores-per-socket
//! parts. Real deployments are lumpier: a fat socket of accelerator-adjacent
//! cores next to thin ones, or an interconnect priced differently from any
//! preset. [`CustomTopology`] carries such a layout — built on
//! [`Topology::asymmetric`] — parsed from a small JSON document:
//!
//! ```json
//! {
//!   "name": "fat-thin",
//!   "core_blocks": [6, 2],
//!   "remote": {"remote_hitm": 220, "remote_llc": 100, "remote_dram": 310}
//! }
//! ```
//!
//! Parsing follows the scenario-file convention: **everything** is validated
//! fail-fast — unknown keys, malformed numbers, a layout the machine would
//! reject ([`Topology::validate`]) — before anything simulates, so the
//! binaries can turn an invalid file into exit code 2 up front. `experiments
//! --topology-file FILE` deploys a whole campaign on the loaded layout;
//! scenario files carry the same object inline under `"custom_topology"`.
//!
//! Determinism contract: a custom topology changes *what is simulated* (the
//! machine's socket map and latency table), not how it is scheduled, so runs
//! on the same layout are byte-identical to each other. The layout is
//! rendered into [`CustomTopology::canonical`] and fingerprinted into the
//! cell cache (see [`crate::cache::CellConfig`]), so cells from different
//! layouts never alias.

use std::sync::Arc;

use laser_core::TopologySpec;
use laser_machine::{LatencyModel, MachineConfig, SocketLatency, ThreadPlacement, Topology};
use laser_workloads::BuildOptions;
use serde::json::Value;

/// Upper bound on the total core count of a custom topology: the coherence
/// directory tracks sharers in a 128-bit bitmap, so anything wider cannot be
/// simulated.
pub const MAX_CUSTOM_CORES: usize = 128;

/// A parsed, validated bespoke topology: an asymmetric socket layout plus
/// the machine core count it implies (the sum of its core blocks).
///
/// The only constructors are [`CustomTopology::from_json`] /
/// [`CustomTopology::from_value`] / [`CustomTopology::load`], so every value
/// of this type has already passed [`Topology::validate`] against the
/// default latency model — holders never need to re-check.
#[derive(Debug, Clone, PartialEq)]
pub struct CustomTopology {
    topology: Topology,
    num_cores: usize,
}

impl CustomTopology {
    /// Load and validate a topology file.
    ///
    /// # Errors
    /// The unreadable-file or invalid-spec message, prefixed with the path.
    pub fn load(path: &str) -> Result<CustomTopology, String> {
        let text =
            std::fs::read_to_string(path).map_err(|e| format!("failed to read {path}: {e}"))?;
        CustomTopology::from_json(&text).map_err(|e| format!("{path}: {e}"))
    }

    /// Parse and validate a topology document.
    ///
    /// # Errors
    /// A message naming the first malformed or unknown field; nothing is
    /// silently ignored or defaulted away.
    pub fn from_json(text: &str) -> Result<CustomTopology, String> {
        let value = Value::parse(text).map_err(|e| format!("not valid JSON: {e}"))?;
        CustomTopology::from_value(&value)
    }

    /// Validate an already-parsed JSON document as a topology spec.
    ///
    /// # Errors
    /// As for [`CustomTopology::from_json`].
    pub fn from_value(value: &Value) -> Result<CustomTopology, String> {
        let pairs = match value {
            Value::Object(pairs) => pairs,
            _ => return Err("topology spec must be an object".to_string()),
        };
        let mut name: Option<String> = None;
        let mut core_blocks: Option<Vec<usize>> = None;
        let mut remote: Option<SocketLatency> = None;
        for (key, field) in pairs {
            match key.as_str() {
                "name" => name = Some(parse_name(field)?),
                "core_blocks" => core_blocks = Some(parse_core_blocks(field)?),
                "remote" => remote = Some(parse_remote(field)?),
                other => return Err(format!("unknown key \"{other}\"")),
            }
        }
        let Some(name) = name else {
            return Err("missing required key \"name\"".to_string());
        };
        let Some(core_blocks) = core_blocks else {
            return Err("missing required key \"core_blocks\"".to_string());
        };
        let Some(remote) = remote else {
            return Err("missing required key \"remote\"".to_string());
        };
        let num_cores: usize = core_blocks.iter().sum();
        if num_cores > MAX_CUSTOM_CORES {
            return Err(format!(
                "\"core_blocks\" sum to {num_cores} cores; the coherence directory admits at \
                 most {MAX_CUSTOM_CORES}"
            ));
        }
        let topology = Topology::asymmetric(name, core_blocks, remote);
        topology
            .validate(&LatencyModel::default())
            .map_err(|e| format!("invalid topology: {e}"))?;
        Ok(CustomTopology {
            num_cores,
            topology,
        })
    }

    /// The layout's display name, used to decorate cell keys (`laser@name`).
    pub fn name(&self) -> &str {
        self.topology.name()
    }

    /// Total machine cores: the sum of the per-socket core blocks.
    pub fn num_cores(&self) -> usize {
        self.num_cores
    }

    /// The validated topology itself.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// The machine deployment this layout implies.
    pub fn machine_config(&self) -> MachineConfig {
        MachineConfig {
            num_cores: self.num_cores,
            topology: self.topology.clone(),
            ..MachineConfig::default()
        }
    }

    /// Adapt build options to this layout, by the same rule the presets use
    /// ([`BuildOptions::for_topology`]): the thread count scales with the
    /// socket count and multi-socket layouts place threads round-robin so
    /// contended lines actually cross the interconnect. A single-socket
    /// layout leaves the options unchanged, like the flat preset.
    pub fn adapt(&self, opts: &BuildOptions) -> BuildOptions {
        let sockets = self.topology.num_sockets();
        if sockets <= 1 {
            return opts.clone();
        }
        BuildOptions {
            threads: opts.threads * sockets,
            placement: ThreadPlacement::RoundRobin,
            ..opts.clone()
        }
    }

    /// Deterministic one-line rendering of the full layout, for cache
    /// fingerprints: two custom topologies collide only if every field —
    /// name, per-socket core blocks and remote latency table — agrees.
    pub fn canonical(&self) -> String {
        let blocks: Vec<String> = self
            .topology
            .core_blocks()
            .iter()
            .map(usize::to_string)
            .collect();
        let remote = self.topology.remote_latency();
        format!(
            "custom:{};blocks={};remote_hitm={};remote_llc={};remote_dram={}",
            self.topology.name(),
            blocks.join(","),
            remote.remote_hitm,
            remote.remote_llc,
            remote.remote_dram
        )
    }
}

/// Layout names end up inside cell keys (`laser@name`) and newline-delimited
/// cache canonicals, so they are restricted to a filename-ish alphabet and
/// must not shadow a preset key (a custom layout named `2s` would alias the
/// preset's cells).
fn parse_name(value: &Value) -> Result<String, String> {
    let Value::Str(name) = value else {
        return Err("\"name\" must be a string".to_string());
    };
    if name.is_empty() || name.len() > 64 {
        return Err("\"name\" must be 1..=64 characters".to_string());
    }
    if !name
        .chars()
        .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '-' || c == '_')
    {
        return Err(format!(
            "\"name\" must be lowercase alphanumeric with '-' or '_', got \"{name}\""
        ));
    }
    if TopologySpec::parse(name).is_some() {
        return Err(format!(
            "\"name\" must not shadow the topology preset \"{name}\""
        ));
    }
    Ok(name.clone())
}

fn parse_core_blocks(value: &Value) -> Result<Vec<usize>, String> {
    let Value::Array(items) = value else {
        return Err("\"core_blocks\" must be an array of positive integers".to_string());
    };
    if items.is_empty() {
        return Err("\"core_blocks\" must name at least one socket".to_string());
    }
    let mut blocks = Vec::with_capacity(items.len());
    for item in items {
        match item {
            Value::Int(i) if *i > 0 => blocks.push(*i as usize),
            _ => {
                return Err(
                    "\"core_blocks\" entries must be positive integers (cores per socket)"
                        .to_string(),
                )
            }
        }
    }
    Ok(blocks)
}

fn parse_remote(value: &Value) -> Result<SocketLatency, String> {
    let Value::Object(pairs) = value else {
        return Err("\"remote\" must be an object".to_string());
    };
    let mut remote_hitm = None;
    let mut remote_llc = None;
    let mut remote_dram = None;
    for (key, field) in pairs {
        let slot = match key.as_str() {
            "remote_hitm" => &mut remote_hitm,
            "remote_llc" => &mut remote_llc,
            "remote_dram" => &mut remote_dram,
            other => return Err(format!("unknown \"remote\" key \"{other}\"")),
        };
        *slot = Some(match field {
            Value::Int(i) if *i >= 0 => *i as u64,
            _ => return Err(format!("\"remote.{key}\" must be a non-negative integer")),
        });
    }
    match (remote_hitm, remote_llc, remote_dram) {
        (Some(remote_hitm), Some(remote_llc), Some(remote_dram)) => Ok(SocketLatency {
            remote_hitm,
            remote_llc,
            remote_dram,
        }),
        (None, _, _) => Err("\"remote\" is missing \"remote_hitm\"".to_string()),
        (_, None, _) => Err("\"remote\" is missing \"remote_llc\"".to_string()),
        (_, _, None) => Err("\"remote\" is missing \"remote_dram\"".to_string()),
    }
}

/// Where a cell's machine is deployed: a preset from the [`TopologySpec`]
/// sweep, or a bespoke [`CustomTopology`]. Tools take this instead of a bare
/// preset so `--topology-file` reaches every machine the campaign builds;
/// the preset arm is byte-identical to the pre-deployment code path.
#[derive(Debug, Clone)]
pub enum Deployment {
    /// A named preset; `TopologySpec::Flat` is the single-socket default.
    Preset(TopologySpec),
    /// A bespoke layout, shared across the campaign's cells.
    Custom(Arc<CustomTopology>),
}

impl Deployment {
    /// The preset this deployment names, if it is one.
    pub fn preset(&self) -> Option<TopologySpec> {
        match self {
            Deployment::Preset(topo) => Some(*topo),
            Deployment::Custom(_) => None,
        }
    }

    /// Adapt build options to the deployment (see
    /// [`BuildOptions::for_topology`] and [`CustomTopology::adapt`]).
    pub fn adapt(&self, opts: &BuildOptions) -> BuildOptions {
        match self {
            Deployment::Preset(topo) => opts.clone().for_topology(*topo),
            Deployment::Custom(custom) => custom.adapt(opts),
        }
    }

    /// The machine deployment for this axis value.
    pub fn machine_config(&self) -> MachineConfig {
        match self {
            Deployment::Preset(topo) => MachineConfig::for_topology(*topo),
            Deployment::Custom(custom) => custom.machine_config(),
        }
    }

    /// The cell key of `tool_name` on this deployment: bare on the flat
    /// preset (preserving pre-topology naming byte-for-byte), `name@2s` on
    /// the multi-socket presets, `name@layout` on a custom layout.
    pub fn cell_key(&self, tool_name: &str) -> String {
        match self {
            Deployment::Preset(topo) => crate::tool::cell_key(tool_name, *topo),
            Deployment::Custom(custom) => format!("{tool_name}@{}", custom.name()),
        }
    }

    /// Deterministic rendering for cache fingerprints: the preset key
    /// (`flat`, `2s`, ...) or the custom layout's full
    /// [`CustomTopology::canonical`].
    pub fn canonical(&self) -> String {
        match self {
            Deployment::Preset(topo) => topo.key().to_string(),
            Deployment::Custom(custom) => custom.canonical(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const FAT_THIN: &str = r#"{
        "name": "fat-thin",
        "core_blocks": [6, 2],
        "remote": {"remote_hitm": 220, "remote_llc": 100, "remote_dram": 310}
    }"#;

    #[test]
    fn parses_a_valid_spec() {
        let custom = CustomTopology::from_json(FAT_THIN).unwrap();
        assert_eq!(custom.name(), "fat-thin");
        assert_eq!(custom.num_cores(), 8);
        assert_eq!(custom.topology().num_sockets(), 2);
        assert_eq!(custom.topology().core_blocks(), &[6, 2]);
        assert_eq!(custom.topology().remote_latency().remote_hitm, 220);
    }

    #[test]
    fn canonical_covers_every_field() {
        let custom = CustomTopology::from_json(FAT_THIN).unwrap();
        assert_eq!(
            custom.canonical(),
            "custom:fat-thin;blocks=6,2;remote_hitm=220;remote_llc=100;remote_dram=310"
        );
    }

    #[test]
    fn machine_config_matches_the_layout() {
        let custom = CustomTopology::from_json(FAT_THIN).unwrap();
        let machine = custom.machine_config();
        assert_eq!(machine.num_cores, 8);
        assert_eq!(machine.topology.num_sockets(), 2);
    }

    #[test]
    fn adapt_scales_threads_with_sockets_and_goes_round_robin() {
        let custom = CustomTopology::from_json(FAT_THIN).unwrap();
        let opts = custom.adapt(&BuildOptions::default());
        assert_eq!(opts.threads, BuildOptions::default().threads * 2);
        assert_eq!(opts.placement, ThreadPlacement::RoundRobin);

        // A single-socket layout leaves the options unchanged, like flat.
        let solo = CustomTopology::from_json(
            r#"{"name": "solo", "core_blocks": [4],
                "remote": {"remote_hitm": 220, "remote_llc": 100, "remote_dram": 310}}"#,
        )
        .unwrap();
        assert_eq!(
            solo.adapt(&BuildOptions::default()),
            BuildOptions::default()
        );
    }

    #[test]
    fn invalid_specs_are_rejected_with_the_offending_field() {
        let cases: &[(&str, &str)] = &[
            ("[]", "must be an object"),
            ("{", "not valid JSON"),
            (
                r#"{"core_blocks": [4], "remote": {"remote_hitm": 220, "remote_llc": 100, "remote_dram": 310}}"#,
                "missing required key \"name\"",
            ),
            (
                r#"{"name": "x", "remote": {"remote_hitm": 220, "remote_llc": 100, "remote_dram": 310}}"#,
                "missing required key \"core_blocks\"",
            ),
            (
                r#"{"name": "x", "core_blocks": [4]}"#,
                "missing required key \"remote\"",
            ),
            (
                r#"{"name": "", "core_blocks": [4], "remote": {"remote_hitm": 220, "remote_llc": 100, "remote_dram": 310}}"#,
                "1..=64 characters",
            ),
            (
                r#"{"name": "Has Space", "core_blocks": [4], "remote": {"remote_hitm": 220, "remote_llc": 100, "remote_dram": 310}}"#,
                "lowercase alphanumeric",
            ),
            (
                r#"{"name": "2s", "core_blocks": [4, 4], "remote": {"remote_hitm": 220, "remote_llc": 100, "remote_dram": 310}}"#,
                "must not shadow the topology preset",
            ),
            (
                r#"{"name": "x", "core_blocks": [], "remote": {"remote_hitm": 220, "remote_llc": 100, "remote_dram": 310}}"#,
                "at least one socket",
            ),
            (
                r#"{"name": "x", "core_blocks": [4, 0], "remote": {"remote_hitm": 220, "remote_llc": 100, "remote_dram": 310}}"#,
                "positive integers",
            ),
            (
                r#"{"name": "x", "core_blocks": [4, 1.5], "remote": {"remote_hitm": 220, "remote_llc": 100, "remote_dram": 310}}"#,
                "positive integers",
            ),
            (
                r#"{"name": "x", "core_blocks": [129], "remote": {"remote_hitm": 220, "remote_llc": 100, "remote_dram": 310}}"#,
                "at most 128",
            ),
            (
                r#"{"name": "x", "core_blocks": [4], "remote": {"remote_hitm": 220, "remote_llc": 100}}"#,
                "missing \"remote_dram\"",
            ),
            (
                r#"{"name": "x", "core_blocks": [4], "remote": {"remote_hitm": -1, "remote_llc": 100, "remote_dram": 310}}"#,
                "non-negative integer",
            ),
            (
                r#"{"name": "x", "core_blocks": [4], "remote": {"remote_hitm": 220, "remote_llc": 100, "remote_dram": 310, "extra": 1}}"#,
                "unknown \"remote\" key",
            ),
            (
                r#"{"name": "x", "core_blocks": [4], "remote": {"remote_hitm": 220, "remote_llc": 100, "remote_dram": 310}, "sockets": 2}"#,
                "unknown key \"sockets\"",
            ),
            // remote_hitm below the local HITM latency: Topology::validate
            // rejects an interconnect cheaper than staying on-socket.
            (
                r#"{"name": "x", "core_blocks": [4], "remote": {"remote_hitm": 1, "remote_llc": 100, "remote_dram": 310}}"#,
                "invalid topology",
            ),
        ];
        for (text, needle) in cases {
            let outcome = CustomTopology::from_json(text);
            match outcome {
                Err(message) => assert!(
                    message.contains(needle),
                    "{text}: expected {needle:?} in {message:?}"
                ),
                Ok(_) => panic!("{text}: expected an error containing {needle:?}"),
            }
        }
    }

    #[test]
    fn load_surfaces_missing_files_with_the_path() {
        let message = CustomTopology::load("/nonexistent/topo.json").unwrap_err();
        assert!(message.contains("/nonexistent/topo.json"), "{message}");
    }

    #[test]
    fn deployment_preset_arm_matches_the_preset_helpers() {
        let deploy = Deployment::Preset(TopologySpec::DualSocket);
        assert_eq!(deploy.preset(), Some(TopologySpec::DualSocket));
        assert_eq!(deploy.cell_key("laser"), "laser@2s");
        assert_eq!(deploy.canonical(), "2s");
        assert_eq!(
            deploy.machine_config().num_cores,
            MachineConfig::for_topology(TopologySpec::DualSocket).num_cores
        );
        assert_eq!(
            deploy.adapt(&BuildOptions::default()),
            BuildOptions::default().for_topology(TopologySpec::DualSocket)
        );
        // The flat preset stays bare, preserving pre-topology cell naming.
        assert_eq!(
            Deployment::Preset(TopologySpec::Flat).cell_key("laser"),
            "laser"
        );
    }

    #[test]
    fn deployment_custom_arm_uses_the_layout() {
        let custom = Arc::new(CustomTopology::from_json(FAT_THIN).unwrap());
        let deploy = Deployment::Custom(Arc::clone(&custom));
        assert_eq!(deploy.preset(), None);
        assert_eq!(deploy.cell_key("laser"), "laser@fat-thin");
        assert_eq!(deploy.canonical(), custom.canonical());
        assert_eq!(deploy.machine_config().num_cores, 8);
    }
}
