//! The multicore execution engine.
//!
//! [`Machine`] executes a [`WorkloadImage`] instruction by instruction. At
//! every step the runnable thread whose core has the smallest local clock
//! executes one instruction and advances its core's clock by the cost of that
//! instruction; this yields deterministic interleavings that naturally model
//! the ping-pong timing of contended cache lines, because a core stalled on a
//! 90-cycle HITM transfer falls behind and the other cores run ahead.
//!
//! External agents (the PEBS driver, the detector process, instrumentation)
//! inject their overhead with [`Machine::charge_cycles`]; that is how the
//! reproduction accounts for tool overhead in the paper's Figures 10–14.
//!
//! The engine is split into focused submodules:
//!
//! * `inner` — `MachineInner`, the memory/coherence state shared with hooks;
//! * `sched` — per-thread state and the smallest-clock scheduling decision;
//! * `exec` — the fetch/execute loop and operand evaluation;
//! * `dispatch` — hook attachment and dispatch (the Pin substitute).
//!
//! A `Machine` owns everything it needs (no shared interior mutability), so a
//! fully configured machine — hook included — is `Send` and whole runs can be
//! fanned out across worker threads by `laser-bench`'s campaign runner.

use std::fmt;

use serde::{Deserialize, Serialize};

use laser_isa::decoded::DecodedProgram;
use laser_isa::inst::NUM_REGS;
use laser_isa::program::Program;

use crate::addr::Addr;
use crate::coherence::CoherenceDirectory;
use crate::event::HitmEvent;
use crate::image::{WorkloadImage, STACK_POINTER_REG};
use crate::mem::SparseMemory;
use crate::memmap::MemoryMap;
use crate::stats::MachineStats;
use crate::timing::{HotLatency, LatencyModel};
use crate::topology::Topology;

mod dispatch;
mod exec;
mod inner;
mod sched;
#[cfg(test)]
mod tests;

use dispatch::HookSlot;
pub(crate) use inner::MachineInner;
use sched::{CoreSched, ThreadCtx};

/// Identifier of a simulated core.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct CoreId(pub usize);

impl fmt::Display for CoreId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "core{}", self.0)
    }
}

/// Configuration of the simulated machine.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MachineConfig {
    /// Number of cores (the paper's machine has 4, hyper-threading disabled).
    pub num_cores: usize,
    /// The latency model.
    pub latency: LatencyModel,
    /// The socket topology: core-to-socket mapping and cross-socket costs.
    /// The default single-socket topology reproduces the pre-topology flat
    /// cost model byte-identically.
    pub topology: Topology,
    /// Upper bound on executed instructions before
    /// [`Machine::run_to_completion`] gives up.
    pub max_steps: u64,
}

impl Default for MachineConfig {
    fn default() -> Self {
        MachineConfig {
            num_cores: 4,
            latency: LatencyModel::default(),
            topology: Topology::single_socket(),
            max_steps: 400_000_000,
        }
    }
}

impl MachineConfig {
    /// The machine a [`crate::topology::TopologySpec`] preset describes: 4
    /// cores per socket with the preset's topology, everything else default.
    pub fn for_topology(spec: crate::topology::TopologySpec) -> Self {
        MachineConfig {
            num_cores: spec.num_cores(),
            topology: spec.topology(),
            ..Default::default()
        }
    }
}

/// Status returned by incremental execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunStatus {
    /// Some thread still has work to do.
    Running,
    /// Every thread has halted.
    Done,
}

/// What one quantum of execution produced: the run status plus the batch of
/// ground-truth HITM events the quantum generated.
///
/// [`Machine::run_quantum`] *yields* the event batch instead of leaving it
/// inside the machine to be polled in place ([`Machine::take_hitm_events`]).
/// Yielding makes the quantum a self-contained unit of work that can be handed
/// to a concurrent consumer — the record channel feeding `laser-core`'s
/// pipelined session stage — without the consumer ever needing a reference to
/// the machine.
#[derive(Debug)]
pub struct QuantumYield {
    /// Whether any thread still has work after this quantum.
    pub status: RunStatus,
    /// The HITM events generated during the quantum, in machine order.
    pub events: Vec<HitmEvent>,
}

/// Summary of a completed run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunResult {
    /// Wall-clock cycles of the run: the maximum over all core clocks.
    pub cycles: u64,
    /// Final per-core cycle counts.
    pub per_core_cycles: Vec<u64>,
    /// Execution statistics.
    pub stats: MachineStats,
    /// Instructions executed.
    pub steps: u64,
}

/// Errors produced by the machine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MachineError {
    /// The configured step budget was exhausted before every thread halted
    /// (most likely a livelocked spin loop in the workload).
    MaxStepsExceeded {
        /// The step budget that was exhausted.
        steps: u64,
    },
    /// A thread's entry label does not exist in the program.
    UnknownEntryLabel(String),
}

impl fmt::Display for MachineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MachineError::MaxStepsExceeded { steps } => {
                write!(f, "machine did not finish within {steps} steps")
            }
            MachineError::UnknownEntryLabel(l) => write!(f, "unknown thread entry label '{l}'"),
        }
    }
}

impl std::error::Error for MachineError {}

/// The simulated multicore machine.
pub struct Machine {
    config: MachineConfig,
    program: Program,
    /// The program in execution form: flat per-block `(Inst, Pc)` arrays,
    /// decoded once at construction. `step()` fetches exclusively from this.
    decoded: DecodedProgram,
    map: MemoryMap,
    threads: Vec<ThreadCtx>,
    core_cycles: Vec<u64>,
    /// The incremental scheduling structure (see [`sched`]); keeps the
    /// smallest-clock decision O(1) per step.
    sched: CoreSched,
    inner: MachineInner,
    hook: HookSlot,
    steps: u64,
    time_dilation: f64,
    /// The latencies `step()` charges directly, hoisted out of the hot loop
    /// at construction time (`Copy` — no per-instruction clone).
    hot: HotLatency,
}

impl fmt::Debug for Machine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Machine")
            .field("program", &self.program.name())
            .field("threads", &self.threads.len())
            .field("steps", &self.steps)
            .field("cycles", &self.cycles())
            .finish()
    }
}

impl Machine {
    /// Load a workload image onto a fresh machine.
    ///
    /// # Panics
    /// Panics if a thread's entry label does not exist in the program, if the
    /// image declares no threads, or if the configuration's latency model or
    /// topology fail validation (zero clock frequency, non-monotone latency
    /// ladder, remote transfers cheaper than local ones) — rejecting nonsense
    /// cost models at construction time instead of producing corrupt rates
    /// downstream.
    pub fn new(config: MachineConfig, image: &WorkloadImage) -> Self {
        assert!(
            !image.threads().is_empty(),
            "workload image declares no threads"
        );
        if let Err(e) = config.topology.validate(&config.latency) {
            panic!("invalid machine configuration: {e}"); // lint:allow(panic) — configuration is validated before any simulation starts; a bad config must abort the run
        }
        let program = image.program().clone();
        let mut mem = SparseMemory::new();
        for (addr, bytes) in image.layout().initial_contents() {
            mem.write_bytes(*addr, bytes);
        }
        let mut threads = Vec::new();
        for (tid, spec) in image.threads().iter().enumerate() {
            let entry = program
                .block_by_label(&spec.entry_label)
                .unwrap_or_else(|| panic!("unknown thread entry label '{}'", spec.entry_label)); // lint:allow(panic) — an unknown entry label is a workload-definition bug; fail fast at machine construction
            let mut regs = [0u64; NUM_REGS];
            for (r, v) in &spec.regs {
                regs[r.0 as usize] = *v;
            }
            regs[STACK_POINTER_REG.0 as usize] = image.stack_top(tid);
            threads.push(ThreadCtx {
                name: spec.name.clone(),
                core: config
                    .topology
                    .place_thread(tid, config.num_cores, image.thread_placement()),
                block: entry,
                idx: 0,
                regs,
                halted: false,
            });
        }
        let inner = MachineInner {
            mem,
            coh: CoherenceDirectory::new(config.num_cores),
            stats: MachineStats::default(),
            pending_hitms: Vec::new(),
            latency: config.latency.clone(),
            topology: config.topology.clone(),
        };
        let thread_cores: Vec<usize> = threads.iter().map(|t| t.core).collect();
        Machine {
            core_cycles: vec![0; config.num_cores],
            map: image.memory_map().clone(),
            time_dilation: image.time_dilation(),
            hot: HotLatency::from(&config.latency),
            decoded: DecodedProgram::decode(&program),
            sched: CoreSched::new(&thread_cores, config.num_cores),
            program,
            threads,
            inner,
            hook: HookSlot::default(),
            steps: 0,
            config,
        }
    }

    /// The program being executed.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// The process memory map.
    pub fn memory_map(&self) -> &MemoryMap {
        &self.map
    }

    /// Number of cores.
    pub fn num_cores(&self) -> usize {
        self.config.num_cores
    }

    /// The socket topology the machine runs on.
    pub fn topology(&self) -> &Topology {
        &self.config.topology
    }

    /// The latency model charging the machine's accesses.
    pub fn latency(&self) -> &LatencyModel {
        &self.config.latency
    }

    /// Instructions executed so far.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// The machine's wall-clock: the maximum core cycle count.
    pub fn cycles(&self) -> u64 {
        self.core_cycles.iter().copied().max().unwrap_or(0)
    }

    /// Per-core cycle counts.
    pub fn per_core_cycles(&self) -> &[u64] {
        &self.core_cycles
    }

    /// Execution statistics so far.
    pub fn stats(&self) -> &MachineStats {
        &self.inner.stats
    }

    /// The workload's time-dilation factor.
    pub fn time_dilation(&self) -> f64 {
        self.time_dilation
    }

    /// Simulated elapsed time in seconds of the *full-size* benchmark:
    /// cycles, converted at the clock frequency, times the dilation factor.
    pub fn elapsed_benchmark_seconds(&self) -> f64 {
        self.config.latency.cycles_to_seconds(self.cycles()) * self.time_dilation
    }

    /// Drain the HITM events generated since the last call. This is how the
    /// PMU model pulls ground-truth coherence events out of the machine.
    pub fn take_hitm_events(&mut self) -> Vec<HitmEvent> {
        std::mem::take(&mut self.inner.pending_hitms)
    }

    /// Run one quantum of up to `steps` instructions and *yield* the HITM
    /// events it generated (equivalent to [`Machine::run_steps`] followed by
    /// [`Machine::take_hitm_events`], as one operation).
    ///
    /// This is the producer half of the pipelined execution model: the yielded
    /// batch is a plain owned value that can be sent down a record channel to
    /// a driver/detector stage running concurrently with the next quantum.
    pub fn run_quantum(&mut self, steps: u64) -> QuantumYield {
        let status = self.run_steps(steps);
        QuantumYield {
            status,
            events: self.take_hitm_events(),
        }
    }

    /// Inject externally-caused cycles (driver interrupts, detector work
    /// stealing the core, instrumentation overhead) onto one core.
    pub fn charge_cycles(&mut self, core: CoreId, cycles: u64) {
        self.core_cycles[core.0] += cycles;
        self.inner.stats.injected_overhead_cycles += cycles;
        self.sched.reposition(&self.core_cycles, core.0);
    }

    /// Inject externally-caused cycles onto every core.
    pub fn charge_all_cores(&mut self, cycles: u64) {
        // A uniform charge shifts every scheduler key equally, so the heap's
        // relative order is untouched — no per-core maintenance needed.
        for c in self.core_cycles.iter_mut() {
            *c += cycles;
            self.inner.stats.injected_overhead_cycles += cycles;
        }
    }

    /// Inject a whole vector of externally-caused per-core charges in one
    /// pass — `charges[i]` cycles onto core `i`. This is the application side
    /// of a deferred charge ledger (a pipelined driver stage accumulates its
    /// overhead as a value and the machine applies it at a quantum boundary):
    /// equivalent to one [`Machine::charge_cycles`] call per non-zero entry,
    /// but with a single scheduler fix-up per charged core. Charges are
    /// additive, so the machine state after this call is identical to the
    /// state after the individual calls in any order.
    pub fn charge_per_core(&mut self, charges: &[u64]) {
        debug_assert!(charges.len() <= self.core_cycles.len());
        for (core, &cycles) in charges.iter().enumerate() {
            if cycles > 0 {
                self.core_cycles[core] += cycles;
                self.inner.stats.injected_overhead_cycles += cycles;
                self.sched.reposition(&self.core_cycles, core);
            }
        }
    }

    /// Read a 64-bit word from simulated memory (for tests and examples).
    pub fn read_u64(&self, addr: Addr) -> u64 {
        self.inner.mem.read(addr, 8)
    }

    /// Snapshot the result so far.
    pub fn result(&self) -> RunResult {
        RunResult {
            cycles: self.cycles(),
            per_core_cycles: self.core_cycles.clone(),
            stats: self.inner.stats.clone(),
            steps: self.steps,
        }
    }
}
