//! Workload images: a program plus its initial address space and threads.
//!
//! A [`WorkloadImage`] is the simulator's equivalent of a loaded process: the
//! program text, a memory map with code/heap/globals/stack regions, initial
//! data contents, and the set of threads to spawn (each with its entry block
//! and initial argument registers). The synthetic benchmarks in
//! `laser-workloads` each produce one of these.

use laser_isa::inst::Reg;
use laser_isa::program::Program;

use crate::addr::Addr;
use crate::alloc::{AllocError, HeapAllocator, DEFAULT_ALIGN};
use crate::memmap::{MemoryMap, Region, RegionKind};
use crate::topology::ThreadPlacement;

/// Start of the globals (static data) region.
pub const GLOBALS_START: Addr = 0x0060_0000;
/// End of the globals region.
pub const GLOBALS_END: Addr = 0x0100_0000;
/// Start of the heap region.
pub const HEAP_START: Addr = 0x1000_0000;
/// End of the heap region.
pub const HEAP_END: Addr = 0x5000_0000;
/// Start of the (synthetic) shared-library code region.
pub const LIB_START: Addr = 0x7000_0000;
/// End of the shared-library code region.
pub const LIB_END: Addr = 0x7100_0000;
/// Base of the stack area; thread `i`'s stack occupies
/// `[STACK_AREA_BASE + i*STACK_STRIDE, … + STACK_SIZE)`.
pub const STACK_AREA_BASE: Addr = 0x7f00_0000;
/// Size of each thread stack.
pub const STACK_SIZE: Addr = 0x4_0000;
/// Distance between consecutive thread stacks.
pub const STACK_STRIDE: Addr = 0x10_0000;

/// The register that receives the thread's initial stack pointer.
pub const STACK_POINTER_REG: Reg = Reg(31);

/// A thread to be spawned when the machine starts.
#[derive(Debug, Clone)]
pub struct ThreadSpec {
    /// Human-readable thread name.
    pub name: String,
    /// Label of the basic block where the thread begins executing.
    pub entry_label: String,
    /// Initial register values (arguments).
    pub regs: Vec<(Reg, u64)>,
}

impl ThreadSpec {
    /// Create a thread starting at the block labelled `entry_label`.
    pub fn new(name: impl Into<String>, entry_label: impl Into<String>) -> Self {
        ThreadSpec {
            name: name.into(),
            entry_label: entry_label.into(),
            regs: Vec::new(),
        }
    }

    /// Set an initial register value (builder-style).
    pub fn with_reg(mut self, reg: Reg, value: u64) -> Self {
        self.regs.push((reg, value));
        self
    }
}

/// The data-layout half of a workload image: memory map, heap allocator,
/// globals allocator and initial memory contents.
#[derive(Debug, Clone)]
pub struct MemoryLayout {
    map: MemoryMap,
    heap: HeapAllocator,
    globals_cursor: Addr,
    initial: Vec<(Addr, Vec<u8>)>,
}

impl MemoryLayout {
    fn standard(program: &Program) -> Self {
        let mut map = MemoryMap::new();
        let code_end = (program.end_pc() + 0xfff) & !0xfff;
        map.add(Region::new(
            program.base_pc(),
            code_end,
            RegionKind::AppCode,
            program.name(),
        ));
        map.add(Region::new(
            LIB_START,
            LIB_END,
            RegionKind::LibCode,
            "libshared.so",
        ));
        map.add(Region::new(
            GLOBALS_START,
            GLOBALS_END,
            RegionKind::Globals,
            "[data]",
        ));
        map.add(Region::new(
            HEAP_START,
            HEAP_END,
            RegionKind::Heap,
            "[heap]",
        ));
        MemoryLayout {
            map,
            heap: HeapAllocator::new(HEAP_START, HEAP_END),
            globals_cursor: GLOBALS_START,
            initial: Vec::new(),
        }
    }

    /// The memory map (including any stacks added for spawned threads).
    pub fn map(&self) -> &MemoryMap {
        &self.map
    }

    /// Allocate `size` bytes on the simulated heap. Alignments up to the
    /// allocator default (16) behave like plain `malloc`, including the
    /// chunk-header offset that produces the paper's Figure 2 layout; larger
    /// alignments behave like `posix_memalign` (the manual false-sharing fix).
    ///
    /// # Errors
    /// Returns an error if the heap is exhausted or the alignment is not a
    /// power of two.
    pub fn heap_alloc(&mut self, size: u64, align: u64) -> Result<Addr, AllocError> {
        if align <= DEFAULT_ALIGN {
            self.heap.malloc(size)
        } else {
            self.heap.malloc_aligned(size, align)
        }
    }

    /// Allocate zero-initialised global (static) data with the given
    /// alignment.
    ///
    /// # Panics
    /// Panics if the globals region is exhausted or `align` is not a power of
    /// two.
    pub fn global_alloc(&mut self, size: u64, align: u64) -> Addr {
        assert!(align.is_power_of_two(), "alignment must be a power of two");
        let addr = (self.globals_cursor + align - 1) & !(align - 1);
        assert!(addr + size <= GLOBALS_END, "globals region exhausted");
        self.globals_cursor = addr + size;
        addr
    }

    /// Shift all subsequent heap allocations by `bytes`, modelling an
    /// incidental layout perturbation (the paper's `lu_ncb` observation).
    pub fn perturb_heap(&mut self, bytes: u64) {
        self.heap.set_perturbation(bytes);
    }

    /// Set the initial value of a 64-bit word.
    pub fn poke_u64(&mut self, addr: Addr, value: u64) {
        self.initial.push((addr, value.to_le_bytes().to_vec()));
    }

    /// Set initial memory contents from a byte slice.
    pub fn poke_bytes(&mut self, addr: Addr, bytes: &[u8]) {
        self.initial.push((addr, bytes.to_vec()));
    }

    /// Initial memory contents as `(address, bytes)` pairs.
    pub fn initial_contents(&self) -> &[(Addr, Vec<u8>)] {
        &self.initial
    }

    fn add_stack(&mut self, tid: u32) -> Addr {
        let base = STACK_AREA_BASE + tid as u64 * STACK_STRIDE;
        let end = base + STACK_SIZE;
        self.map.add(Region::new(
            base,
            end,
            RegionKind::Stack(tid),
            format!("[stack:{tid}]"),
        ));
        // Stack grows down; leave a small red zone below the top.
        end - 64
    }
}

/// A complete workload: program, memory layout, threads and the time-dilation
/// factor used to convert simulated cycles into "benchmark time" for
/// HITM-rate computations.
#[derive(Debug, Clone)]
pub struct WorkloadImage {
    name: String,
    program: Program,
    layout: MemoryLayout,
    threads: Vec<ThreadSpec>,
    stack_tops: Vec<Addr>,
    time_dilation: f64,
    thread_placement: ThreadPlacement,
}

impl WorkloadImage {
    /// Create an image for `program` with the standard address-space layout.
    pub fn new(name: impl Into<String>, program: Program) -> Self {
        let layout = MemoryLayout::standard(&program);
        WorkloadImage {
            name: name.into(),
            program,
            layout,
            threads: Vec::new(),
            stack_tops: Vec::new(),
            time_dilation: 1.0,
            thread_placement: ThreadPlacement::default(),
        }
    }

    /// Workload name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The program text.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// The memory layout (read-only).
    pub fn layout(&self) -> &MemoryLayout {
        &self.layout
    }

    /// The memory layout, for allocating data and poking initial contents.
    pub fn layout_mut(&mut self) -> &mut MemoryLayout {
        &mut self.layout
    }

    /// The process memory map.
    pub fn memory_map(&self) -> &MemoryMap {
        self.layout.map()
    }

    /// Threads to spawn.
    pub fn threads(&self) -> &[ThreadSpec] {
        &self.threads
    }

    /// The stack top assigned to thread `tid`.
    pub fn stack_top(&self, tid: usize) -> Addr {
        self.stack_tops[tid]
    }

    /// Add a thread; its stack region is created automatically.
    pub fn push_thread(&mut self, spec: ThreadSpec) {
        let tid = self.threads.len() as u32;
        let top = self.layout.add_stack(tid);
        self.stack_tops.push(top);
        self.threads.push(spec);
    }

    /// Set the time-dilation factor: one simulated cycle represents this many
    /// cycles of the full-size benchmark. The synthetic kernels run scaled
    /// down inputs, so the detector's HITM-per-second thresholds are applied
    /// to dilated time.
    pub fn set_time_dilation(&mut self, dilation: f64) {
        assert!(dilation > 0.0, "time dilation must be positive");
        self.time_dilation = dilation;
    }

    /// The time-dilation factor (1.0 if the workload runs at natural scale).
    pub fn time_dilation(&self) -> f64 {
        self.time_dilation
    }

    /// Set how the machine lays the image's threads out over the sockets
    /// (default: [`ThreadPlacement::Packed`], the pre-topology mapping).
    pub fn set_thread_placement(&mut self, placement: ThreadPlacement) {
        self.thread_placement = placement;
    }

    /// The thread placement the machine will honour.
    pub fn thread_placement(&self) -> ThreadPlacement {
        self.thread_placement
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use laser_isa::ProgramBuilder;

    fn trivial_program() -> Program {
        let mut b = ProgramBuilder::new("trivial");
        let blk = b.block("main");
        b.switch_to(blk);
        b.nop();
        b.halt();
        b.finish()
    }

    #[test]
    fn standard_layout_has_all_regions() {
        let image = WorkloadImage::new("t", trivial_program());
        let map = image.memory_map();
        assert!(map.region_of(image.program().base_pc()).is_some());
        assert!(map.is_data(HEAP_START));
        assert!(map.is_data(GLOBALS_START));
        assert_eq!(map.classify_pc(LIB_START), crate::memmap::PcClass::Library);
    }

    #[test]
    fn pushing_threads_creates_stacks() {
        let mut image = WorkloadImage::new("t", trivial_program());
        image.push_thread(ThreadSpec::new("t0", "main"));
        image.push_thread(ThreadSpec::new("t1", "main").with_reg(Reg(0), 99));
        assert_eq!(image.threads().len(), 2);
        assert!(image.memory_map().is_stack(image.stack_top(0)));
        assert!(image.memory_map().is_stack(image.stack_top(1)));
        assert_ne!(image.stack_top(0), image.stack_top(1));
        assert_eq!(image.threads()[1].regs, vec![(Reg(0), 99)]);
    }

    #[test]
    fn heap_and_global_allocation() {
        let mut image = WorkloadImage::new("t", trivial_program());
        let a = image.layout_mut().heap_alloc(128, 1).unwrap();
        let b = image.layout_mut().heap_alloc(128, 64).unwrap();
        assert!((HEAP_START..HEAP_END).contains(&a));
        assert_eq!(b % 64, 0);
        let g = image.layout_mut().global_alloc(256, 64);
        assert_eq!(g % 64, 0);
        assert!((GLOBALS_START..GLOBALS_END).contains(&g));
    }

    #[test]
    fn initial_contents_and_dilation() {
        let mut image = WorkloadImage::new("t", trivial_program());
        image.layout_mut().poke_u64(HEAP_START + 8, 0xdead_beef);
        image.layout_mut().poke_bytes(HEAP_START + 32, &[1, 2, 3]);
        assert_eq!(image.layout().initial_contents().len(), 2);
        assert_eq!(image.time_dilation(), 1.0);
        image.set_time_dilation(5000.0);
        assert_eq!(image.time_dilation(), 5000.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_dilation_rejected() {
        let mut image = WorkloadImage::new("t", trivial_program());
        image.set_time_dilation(0.0);
    }
}
