//! The HITM record delivered to the detector.

use serde::{Deserialize, Serialize};

use laser_machine::{Addr, CoreId};

/// A PEBS HITM record after the driver has stripped it down to the fields the
/// detector needs: the PC, the data linear address, and the originating core
/// (paper Section 6). Unlike [`laser_machine::HitmEvent`], the PC and data
/// address here may be *imprecise*, as characterized in Section 3.1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HitmRecord {
    /// Program counter reported by the hardware (possibly off by an adjacent
    /// instruction, or entirely wrong for store-triggered events).
    pub pc: u64,
    /// Data linear address reported by the hardware (possibly pointing at
    /// unmapped memory for imprecise records).
    pub data_addr: Addr,
    /// Core whose PMU produced the record.
    pub core: CoreId,
    /// Core-local cycle count when the sampled event occurred; used by the
    /// detector to compute HITM rates.
    pub cycle: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_is_small_and_copyable() {
        let r = HitmRecord {
            pc: 1,
            data_addr: 2,
            core: CoreId(3),
            cycle: 4,
        };
        let s = r;
        assert_eq!(r, s);
        // The driver ships millions of these; keep them compact.
        assert!(std::mem::size_of::<HitmRecord>() <= 40);
    }
}
