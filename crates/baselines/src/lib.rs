//! # laser-baselines
//!
//! Models of the tools the LASER paper compares against:
//!
//! * [`vtune`] — an Intel VTune Amplifier-style profiler: same PEBS HITM
//!   events, but configured to interrupt on every sample, with heavier
//!   always-on profiling machinery, no record filtering and no true-/false-
//!   sharing classification (Sections 7.1–7.2).
//! * [`sheriff`] — Sheriff-Detect and Sheriff-Protect: the threads-as-
//!   processes execution model whose per-synchronization page twinning and
//!   diffing costs dominate on synchronization-heavy programs, which fixes
//!   false sharing as a side effect of address-space isolation, and which
//!   cannot run much of the benchmark suite at all (Sections 5, 7.3).
//!
//! Both are driven by the same simulated machine and workloads as LASER
//! itself, so the accuracy (Table 1/2) and overhead (Figures 10 and 14)
//! comparisons are apples-to-apples.

#![forbid(unsafe_code)]

pub mod sheriff;
pub mod vtune;

pub use sheriff::{
    Sheriff, SheriffConfig, SheriffFailure, SheriffMode, SheriffOutcome, SheriffRun,
};
pub use vtune::{Vtune, VtuneConfig, VtuneOutcome};
