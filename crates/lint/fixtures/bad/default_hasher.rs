//! Bad fixture: default-hasher map construction in library code.
//! Expected findings: `default-hasher` (several).

use std::collections::{HashMap, HashSet};

pub struct Directory {
    by_pc: HashMap<u64, u32>,
}

pub fn build() -> Directory {
    let mut by_pc = HashMap::new();
    by_pc.insert(0u64, 1u32);
    let mut seen: HashSet<u64> = HashSet::with_capacity(16);
    seen.insert(7);
    let _typed = HashMap::<String, u64>::new();
    Directory { by_pc }
}
