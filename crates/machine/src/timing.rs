//! The cycle cost model.
//!
//! The absolute values are loosely calibrated to a Haswell-class part (L1 hit
//! ≈ 4 cycles, LLC hit ≈ 40, cross-core HITM transfer ≈ 90, DRAM ≈ 200); what
//! matters for reproducing the paper's figures is the *ratio* between a local
//! hit and a HITM transfer, because that ratio is what contention repair
//! recovers.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Latencies (in cycles) charged by the simulator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LatencyModel {
    /// Non-memory instruction (ALU, move, compare, nop).
    pub alu: u64,
    /// Branch or jump.
    pub branch: u64,
    /// Load/store hitting in the local L1.
    pub l1_hit: u64,
    /// Load/store hitting in the shared LLC (line not present locally, not
    /// modified remotely).
    pub llc_hit: u64,
    /// Access to a line that is Modified in a remote core's cache — the HITM
    /// case. This is the expensive coherence transition LASER removes.
    pub hitm: u64,
    /// Cold / capacity miss to DRAM.
    pub dram: u64,
    /// Explicit memory fence (store-buffer drain).
    pub fence: u64,
    /// Extra cost of an atomic read-modify-write on top of the line access.
    pub atomic_extra: u64,
    /// Starting a hardware transaction.
    pub htm_begin: u64,
    /// Committing a hardware transaction.
    pub htm_commit: u64,
    /// Pause (spin hint).
    pub pause: u64,
    /// Core clock frequency in Hz, used to convert cycles to seconds for the
    /// detector's HITM-rate thresholds (the paper's machine runs at 3.4 GHz).
    pub freq_hz: u64,
}

impl Default for LatencyModel {
    fn default() -> Self {
        LatencyModel {
            alu: 1,
            branch: 1,
            l1_hit: 4,
            llc_hit: 40,
            hitm: 90,
            dram: 200,
            fence: 20,
            atomic_extra: 15,
            htm_begin: 30,
            htm_commit: 30,
            pause: 2,
            freq_hz: 3_400_000_000,
        }
    }
}

/// Why a [`LatencyModel`] was rejected by [`LatencyModel::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LatencyError {
    /// `freq_hz` is zero: every cycles-to-seconds conversion would divide by
    /// zero and the detector's HITM-rate thresholds become meaningless.
    ZeroFrequency,
    /// The memory hierarchy is priced out of order (e.g. a DRAM access
    /// cheaper than an LLC hit), which inverts every ratio the figures rest
    /// on.
    NonMonotone {
        /// The faster level that should be the slower one.
        slower: &'static str,
        /// Its cost in cycles.
        slower_cycles: u64,
        /// The level it undercuts.
        faster: &'static str,
        /// That level's cost in cycles.
        faster_cycles: u64,
    },
}

impl fmt::Display for LatencyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LatencyError::ZeroFrequency => write!(f, "freq_hz must be non-zero"),
            LatencyError::NonMonotone {
                slower,
                slower_cycles,
                faster,
                faster_cycles,
            } => write!(
                f,
                "non-monotone latencies: {slower} ({slower_cycles} cycles) must cost at least \
                 {faster} ({faster_cycles} cycles)"
            ),
        }
    }
}

impl std::error::Error for LatencyError {}

/// The latencies the fetch/execute loop charges directly, copied out of the
/// [`LatencyModel`] once at machine construction. `Copy`, so `Machine::step`
/// reads them as plain locals instead of cloning the full model (or fighting
/// the borrow checker for a reference into `self`) on every instruction.
#[derive(Debug, Clone, Copy)]
pub(crate) struct HotLatency {
    pub(crate) alu: u64,
    pub(crate) branch: u64,
    pub(crate) fence: u64,
    pub(crate) pause: u64,
    pub(crate) atomic_extra: u64,
}

impl From<&LatencyModel> for HotLatency {
    fn from(m: &LatencyModel) -> Self {
        HotLatency {
            alu: m.alu,
            branch: m.branch,
            fence: m.fence,
            pause: m.pause,
            atomic_extra: m.atomic_extra,
        }
    }
}

impl LatencyModel {
    /// Convert a cycle count to seconds at this model's clock frequency.
    pub fn cycles_to_seconds(&self, cycles: u64) -> f64 {
        cycles as f64 / self.freq_hz as f64
    }

    /// Reject configurations that would produce nonsense downstream: a zero
    /// clock frequency (the detector's HITM-per-second rates divide by it)
    /// or a memory hierarchy priced out of order
    /// (`l1_hit ≤ llc_hit ≤ hitm ≤ dram` must hold). Called by
    /// `Machine::new` — and therefore by `SessionBuilder::build` — so bad
    /// models are rejected at construction time, not discovered as corrupt
    /// rates at report time.
    ///
    /// # Errors
    /// Returns the first violated constraint.
    pub fn validate(&self) -> Result<(), LatencyError> {
        if self.freq_hz == 0 {
            return Err(LatencyError::ZeroFrequency);
        }
        let ladder = [
            ("l1_hit", self.l1_hit),
            ("llc_hit", self.llc_hit),
            ("hitm", self.hitm),
            ("dram", self.dram),
        ];
        for pair in ladder.windows(2) {
            let ((faster, fc), (slower, sc)) = (pair[0], pair[1]);
            if sc < fc {
                return Err(LatencyError::NonMonotone {
                    slower,
                    slower_cycles: sc,
                    faster,
                    faster_cycles: fc,
                });
            }
        }
        Ok(())
    }

    /// The ratio between a HITM transfer and a local L1 hit; the headroom that
    /// contention repair can recover per access.
    pub fn hitm_penalty_ratio(&self) -> f64 {
        self.hitm as f64 / self.l1_hit as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_model_is_ordered_sensibly() {
        let m = LatencyModel::default();
        assert!(m.l1_hit < m.llc_hit);
        assert!(m.llc_hit < m.hitm);
        assert!(m.hitm < m.dram);
        assert!(m.hitm_penalty_ratio() > 10.0);
    }

    #[test]
    fn validate_accepts_the_default_and_rejects_nonsense() {
        LatencyModel::default().validate().unwrap();
        let zero = LatencyModel {
            freq_hz: 0,
            ..LatencyModel::default()
        };
        assert_eq!(zero.validate(), Err(LatencyError::ZeroFrequency));
        let inverted = LatencyModel {
            dram: 10, // < hitm (90)
            ..LatencyModel::default()
        };
        assert_eq!(
            inverted.validate(),
            Err(LatencyError::NonMonotone {
                slower: "dram",
                slower_cycles: 10,
                faster: "hitm",
                faster_cycles: 90,
            })
        );
        // Equal levels are allowed (degenerate but not nonsense).
        let flat = LatencyModel {
            l1_hit: 40,
            llc_hit: 40,
            hitm: 90,
            ..LatencyModel::default()
        };
        flat.validate().unwrap();
    }

    #[test]
    fn latency_error_display_is_stable() {
        assert_eq!(
            LatencyError::ZeroFrequency.to_string(),
            "freq_hz must be non-zero"
        );
        assert_eq!(
            LatencyError::NonMonotone {
                slower: "dram",
                slower_cycles: 10,
                faster: "hitm",
                faster_cycles: 90,
            }
            .to_string(),
            "non-monotone latencies: dram (10 cycles) must cost at least hitm (90 cycles)"
        );
    }

    #[test]
    fn cycle_second_conversion() {
        let m = LatencyModel::default();
        let s = m.cycles_to_seconds(3_400_000_000);
        assert!((s - 1.0).abs() < 1e-9);
    }
}
