//! Control-flow graph construction over a [`Program`].
//!
//! LASERREPAIR's static analysis (Section 5.3 of the paper) needs block
//! successors/predecessors, reachability from the contending blocks, and
//! dominator information (see [`crate::dom`]).

use std::collections::BTreeSet;

use crate::inst::Terminator;
use crate::program::{BlockId, Program};

/// The control-flow graph of a program: successor and predecessor lists per
/// basic block.
#[derive(Debug, Clone)]
pub struct Cfg {
    succs: Vec<Vec<BlockId>>,
    preds: Vec<Vec<BlockId>>,
    exits: Vec<BlockId>,
}

impl Cfg {
    /// Build the CFG of `program`.
    pub fn build(program: &Program) -> Self {
        let n = program.blocks().len();
        let mut succs = vec![Vec::new(); n];
        let mut preds = vec![Vec::new(); n];
        let mut exits = Vec::new();
        for block in program.blocks() {
            let ss = block.term.successors();
            if matches!(block.term, Terminator::Halt) {
                exits.push(block.id);
            }
            for s in &ss {
                preds[s.0 as usize].push(block.id);
            }
            succs[block.id.0 as usize] = ss;
        }
        Cfg {
            succs,
            preds,
            exits,
        }
    }

    /// Number of basic blocks.
    pub fn num_blocks(&self) -> usize {
        self.succs.len()
    }

    /// Successors of `block`.
    pub fn successors(&self, block: BlockId) -> &[BlockId] {
        &self.succs[block.0 as usize]
    }

    /// Predecessors of `block`.
    pub fn predecessors(&self, block: BlockId) -> &[BlockId] {
        &self.preds[block.0 as usize]
    }

    /// Blocks whose terminator is `Halt` (thread exits).
    pub fn exit_blocks(&self) -> &[BlockId] {
        &self.exits
    }

    /// The set of blocks reachable from any block in `from` (including the
    /// starting blocks themselves).
    pub fn reachable_from(&self, from: &[BlockId]) -> BTreeSet<BlockId> {
        let mut seen: BTreeSet<BlockId> = BTreeSet::new();
        let mut stack: Vec<BlockId> = from.to_vec();
        while let Some(b) = stack.pop() {
            if seen.insert(b) {
                for s in self.successors(b) {
                    if !seen.contains(s) {
                        stack.push(*s);
                    }
                }
            }
        }
        seen
    }

    /// The set of blocks from which some block in `to` is reachable
    /// (including the target blocks themselves). This walks predecessor edges.
    pub fn reaching(&self, to: &[BlockId]) -> BTreeSet<BlockId> {
        let mut seen: BTreeSet<BlockId> = BTreeSet::new();
        let mut stack: Vec<BlockId> = to.to_vec();
        while let Some(b) = stack.pop() {
            if seen.insert(b) {
                for p in self.predecessors(b) {
                    if !seen.contains(p) {
                        stack.push(*p);
                    }
                }
            }
        }
        seen
    }

    /// All block ids.
    pub fn blocks(&self) -> impl Iterator<Item = BlockId> {
        (0..self.succs.len() as u32).map(BlockId)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::inst::Reg;

    /// entry -> loop_head -> loop_body -> loop_head ; loop_head -> exit
    fn loop_program() -> (Program, BlockId, BlockId, BlockId, BlockId) {
        let mut b = ProgramBuilder::new("loop");
        let entry = b.block("entry");
        let head = b.block("head");
        let body = b.block("body");
        let exit = b.block("exit");
        b.switch_to(entry);
        b.movi(Reg(1), 0);
        b.jump(head);
        b.switch_to(head);
        b.cmp_lt(Reg(2), Reg(1), 10u64.into());
        b.branch(Reg(2), body, exit);
        b.switch_to(body);
        b.addi(Reg(1), Reg(1), 1);
        b.jump(head);
        b.switch_to(exit);
        b.halt();
        (b.finish(), entry, head, body, exit)
    }

    use crate::program::Program;

    #[test]
    fn successors_and_predecessors() {
        let (p, entry, head, body, exit) = loop_program();
        let cfg = Cfg::build(&p);
        assert_eq!(cfg.successors(entry), &[head]);
        assert_eq!(cfg.successors(head), &[body, exit]);
        assert_eq!(cfg.successors(body), &[head]);
        assert!(cfg.successors(exit).is_empty());
        assert_eq!(cfg.predecessors(head).len(), 2);
        assert_eq!(cfg.predecessors(entry).len(), 0);
        assert_eq!(cfg.exit_blocks(), &[exit]);
    }

    #[test]
    fn reachability() {
        let (p, entry, head, body, exit) = loop_program();
        let cfg = Cfg::build(&p);
        let from_body = cfg.reachable_from(&[body]);
        assert!(from_body.contains(&body));
        assert!(from_body.contains(&head));
        assert!(from_body.contains(&exit));
        assert!(!from_body.contains(&entry));

        let to_body = cfg.reaching(&[body]);
        assert!(to_body.contains(&entry));
        assert!(to_body.contains(&head));
        assert!(to_body.contains(&body));
        assert!(!to_body.contains(&exit));
    }

    #[test]
    fn blocks_iterator_counts_all() {
        let (p, ..) = loop_program();
        let cfg = Cfg::build(&p);
        assert_eq!(cfg.blocks().count(), 4);
        assert_eq!(cfg.num_blocks(), 4);
    }
}
