//! The event stream of an in-flight LASER run.
//!
//! LASER is an *online* pipeline: sampled HITM records flow driver → detector
//! → repair while the application is still running. This module gives that
//! pipeline a public surface. A [`LaserSession`](crate::session::LaserSession)
//! built with an [`Observer`] (see
//! [`SessionBuilder::observer`](crate::session::SessionBuilder::observer))
//! reports every poll quantum as a typed [`LaserEvent`], and the observer's
//! return value — a [`ControlFlow`]`<`[`StopReason`]`>` — steers the run:
//! returning `ControlFlow::Break` cancels the session mid-flight.
//!
//! Two stock observers cover the common cases: [`EventLog`] records the event
//! sequence through a shareable handle (the sequence is deterministic for a
//! given workload and configuration, and identical on whatever thread the
//! session runs), and [`BudgetObserver`] enforces a [`CellBudget`] — the
//! mechanism `laser-bench`'s campaign runner uses for per-cell step and
//! wall-clock limits.
//!
//! The event stream is part of the determinism contract: an observer cannot
//! tell how the session it watches is deployed. Inline, pipelined, or
//! line-hash sharded across any number of detector workers
//! (`PipelineConfig::with_shards`), the same workload and configuration
//! produce the same events in the same order with the same payloads — a
//! sharded session emits its `RecordBatch`/`DetectionUpdate` events only
//! after every shard's reply for the batch has been merged, never per shard.

use std::ops::ControlFlow;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// The live HITM rate of one source line, as carried by
/// [`LaserEvent::DetectionUpdate`].
#[derive(Debug, Clone, PartialEq)]
pub struct LineRate {
    /// Source file (`<unknown>` when the PC has no line info).
    pub file: String,
    /// 1-based source line (0 when unknown).
    pub line: u32,
    /// HITM records attributed to the line so far.
    pub hitm_records: u64,
    /// Records per second of dilated benchmark time elapsed so far.
    pub rate_per_sec: f64,
}

/// One step of an in-flight LASER run, as delivered to an [`Observer`].
///
/// Events are emitted in a fixed order within each
/// [`advance`](crate::session::LaserSession::advance) call — `QuantumCompleted`,
/// then (when the driver delivered records) `RecordBatch` and
/// `DetectionUpdate`, then `RepairAttached` the quantum repair triggers — and
/// the whole sequence is deterministic for a given workload, configuration
/// and seed.
#[derive(Debug, Clone, PartialEq)]
pub enum LaserEvent {
    /// One poll quantum of application execution finished.
    QuantumCompleted {
        /// Instructions retired during this quantum.
        steps: u64,
        /// Machine wall-clock so far (maximum per-core cycle count).
        cycles: u64,
    },
    /// The driver delivered a batch of HITM records to the detector.
    RecordBatch {
        /// Records in the batch.
        n: usize,
        /// Ground-truth events the PMU dropped (rather than sampled or
        /// skipped) since the previous batch — e.g. events from cores outside
        /// the PMU's configured range.
        dropped: u64,
    },
    /// The detector finished processing a batch: the live per-line HITM
    /// rates, hottest line first.
    DetectionUpdate {
        /// Per-line rates over the benchmark time elapsed so far.
        lines: Vec<LineRate>,
        /// Fraction of the ground-truth HITM events so far that crossed a
        /// socket boundary (0.0 on a single-socket topology). Drawn from
        /// machine statistics at the batch's charge point, so it is
        /// identical inline and pipelined.
        remote_hitm_share: f64,
    },
    /// LASERREPAIR attached its instrumentation to the running program.
    RepairAttached {
        /// Machine cycle count at the attachment point.
        at_cycle: u64,
        /// Basic blocks whose memory operations are instrumented.
        instrumented_blocks: usize,
        /// Blocks on whose entry the software store buffer is flushed.
        flush_blocks: usize,
        /// Store PCs redirected into the store buffer.
        ssb_stores: usize,
        /// The plan's estimated dynamic stores-per-flush ratio.
        estimated_stores_per_flush: f64,
    },
    /// The run completed (including the final record flush).
    Finished {
        /// Total instructions retired.
        steps: u64,
        /// Final machine wall-clock.
        cycles: u64,
    },
}

/// Why an [`Observer`] stopped a run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StopReason {
    /// The run retired more instructions than its budget allows.
    StepBudget {
        /// The configured limit.
        limit: u64,
        /// Instructions retired when the limit tripped.
        used: u64,
    },
    /// The run held its worker longer than its wall-clock budget allows.
    WallClock {
        /// The configured limit, in milliseconds.
        limit_ms: u64,
        /// Real time elapsed when the limit tripped, in milliseconds.
        elapsed_ms: u64,
    },
    /// The caller cancelled the run for its own reason.
    Cancelled(String),
}

impl std::fmt::Display for StopReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StopReason::StepBudget { limit, used } => {
                write!(f, "step budget exceeded ({used} steps > limit {limit})")
            }
            StopReason::WallClock {
                limit_ms,
                elapsed_ms,
            } => {
                write!(
                    f,
                    "wall-clock budget exceeded ({elapsed_ms} ms > limit {limit_ms} ms)"
                )
            }
            StopReason::Cancelled(why) => write!(f, "cancelled: {why}"),
        }
    }
}

/// A watcher (and steerer) of an in-flight LASER run.
///
/// The session calls [`Observer::on_event`] for every [`LaserEvent`];
/// returning `ControlFlow::Break(reason)` cancels the run, which surfaces as
/// [`LaserError::Stopped`](crate::system::LaserError::Stopped) from
/// [`LaserSession::run`](crate::session::LaserSession::run).
///
/// Any `FnMut(&LaserEvent) -> ControlFlow<StopReason>` closure (that is
/// `Send`) is an observer:
///
/// ```
/// use std::ops::ControlFlow;
/// use laser_core::{LaserEvent, Observer, StopReason};
///
/// let mut quanta = 0u32;
/// let mut observer = move |event: &LaserEvent| {
///     if let LaserEvent::QuantumCompleted { .. } = event {
///         quanta += 1;
///         if quanta > 100 {
///             return ControlFlow::Break(StopReason::Cancelled("enough".into()));
///         }
///     }
///     ControlFlow::Continue(())
/// };
/// assert!(observer
///     .on_event(&LaserEvent::Finished { steps: 0, cycles: 0 })
///     .is_continue());
/// ```
pub trait Observer: Send {
    /// React to one event. `Break` cancels the run.
    fn on_event(&mut self, event: &LaserEvent) -> ControlFlow<StopReason>;
}

impl<F> Observer for F
where
    F: FnMut(&LaserEvent) -> ControlFlow<StopReason> + Send,
{
    fn on_event(&mut self, event: &LaserEvent) -> ControlFlow<StopReason> {
        self(event)
    }
}

/// An observer that ignores every event and never stops the run — the default
/// when a session is built without one.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullObserver;

impl Observer for NullObserver {
    fn on_event(&mut self, _event: &LaserEvent) -> ControlFlow<StopReason> {
        ControlFlow::Continue(())
    }
}

/// An observer that records the full event sequence behind a shareable
/// handle.
///
/// Cloning an `EventLog` clones the *handle*, not the log: hand one clone to
/// [`SessionBuilder::observer`](crate::session::SessionBuilder::observer) and
/// keep the other to read [`EventLog::events`] back after the run — even when
/// the session was moved to another thread.
#[derive(Debug, Clone, Default)]
pub struct EventLog {
    events: Arc<Mutex<Vec<LaserEvent>>>,
}

impl EventLog {
    /// A fresh, empty log.
    pub fn new() -> Self {
        EventLog::default()
    }

    /// A snapshot of every event recorded so far.
    pub fn events(&self) -> Vec<LaserEvent> {
        self.events.lock().unwrap().clone() // lint:allow(panic) — lock poisoning only follows a panic already unwinding this run
    }
}

impl Observer for EventLog {
    fn on_event(&mut self, event: &LaserEvent) -> ControlFlow<StopReason> {
        self.events.lock().unwrap().push(event.clone()); // lint:allow(panic) — lock poisoning only follows a panic already unwinding this run
        ControlFlow::Continue(())
    }
}

/// Resource limits for one run (one campaign cell): a step budget, a
/// wall-clock budget, neither, or both. Enforced by [`BudgetObserver`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CellBudget {
    /// Maximum instructions the run may retire.
    pub max_steps: Option<u64>,
    /// Maximum real time the run may hold its worker.
    pub max_wall: Option<Duration>,
}

impl CellBudget {
    /// A pure step budget. Step budgets are deterministic: the same run trips
    /// (or doesn't) at the same event on every thread count.
    pub fn steps(max_steps: u64) -> Self {
        CellBudget {
            max_steps: Some(max_steps),
            max_wall: None,
        }
    }

    /// A pure wall-clock budget. Wall-clock budgets depend on real time and
    /// machine load; use step budgets where determinism matters.
    pub fn wall(max_wall: Duration) -> Self {
        CellBudget {
            max_steps: None,
            max_wall: Some(max_wall),
        }
    }

    /// Whether this budget can never stop a run.
    pub fn is_unlimited(&self) -> bool {
        self.max_steps.is_none() && self.max_wall.is_none()
    }
}

/// An observer that cancels a run once it exceeds a [`CellBudget`].
///
/// Steps are accumulated from [`LaserEvent::QuantumCompleted`] events and
/// also checked against [`LaserEvent::Finished`], so tools that report only a
/// final event (a native run, the baselines) are still held to the budget —
/// their over-budget cells are marked after completion rather than cancelled
/// mid-flight.
#[derive(Debug)]
pub struct BudgetObserver {
    budget: CellBudget,
    steps: u64,
    started: Instant,
}

impl BudgetObserver {
    /// Start enforcing `budget` now (the wall clock starts at construction).
    pub fn new(budget: CellBudget) -> Self {
        BudgetObserver {
            budget,
            steps: 0,
            started: Instant::now(), // lint:allow(wall-clock) — BudgetObserver is the opt-in wall-clock budget; it aborts runs and never feeds simulated state or emitted bytes
        }
    }

    fn check(&self, total_steps: u64) -> ControlFlow<StopReason> {
        if let Some(limit) = self.budget.max_steps {
            if total_steps > limit {
                return ControlFlow::Break(StopReason::StepBudget {
                    limit,
                    used: total_steps,
                });
            }
        }
        if let Some(limit) = self.budget.max_wall {
            let elapsed = self.started.elapsed();
            if elapsed > limit {
                return ControlFlow::Break(StopReason::WallClock {
                    limit_ms: limit.as_millis() as u64,
                    elapsed_ms: elapsed.as_millis() as u64,
                });
            }
        }
        ControlFlow::Continue(())
    }
}

impl Observer for BudgetObserver {
    fn on_event(&mut self, event: &LaserEvent) -> ControlFlow<StopReason> {
        match event {
            LaserEvent::QuantumCompleted { steps, .. } => {
                self.steps += steps;
                self.check(self.steps)
            }
            LaserEvent::Finished { steps, .. } => self.check(self.steps.max(*steps)),
            _ => ControlFlow::Continue(()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quantum(steps: u64) -> LaserEvent {
        LaserEvent::QuantumCompleted { steps, cycles: 0 }
    }

    #[test]
    fn observers_are_send() {
        fn assert_send<T: Send>() {}
        assert_send::<NullObserver>();
        assert_send::<EventLog>();
        assert_send::<BudgetObserver>();
        assert_send::<Box<dyn Observer>>();
    }

    #[test]
    fn event_log_handle_shares_the_log() {
        let log = EventLog::new();
        let mut writer = log.clone();
        assert!(writer.on_event(&quantum(10)).is_continue());
        assert!(writer
            .on_event(&LaserEvent::Finished {
                steps: 10,
                cycles: 99
            })
            .is_continue());
        assert_eq!(
            log.events(),
            vec![
                quantum(10),
                LaserEvent::Finished {
                    steps: 10,
                    cycles: 99
                }
            ]
        );
    }

    #[test]
    fn step_budget_trips_when_accumulated_steps_exceed_the_limit() {
        let mut obs = BudgetObserver::new(CellBudget::steps(25));
        assert!(obs.on_event(&quantum(10)).is_continue());
        assert!(obs.on_event(&quantum(10)).is_continue());
        assert_eq!(
            obs.on_event(&quantum(10)),
            ControlFlow::Break(StopReason::StepBudget {
                limit: 25,
                used: 30
            })
        );
    }

    #[test]
    fn step_budget_also_checks_a_bare_finished_event() {
        // Tools that emit no quanta (native, baselines) report their total at
        // Finished; the budget must still hold them to it.
        let mut obs = BudgetObserver::new(CellBudget::steps(100));
        assert!(obs
            .on_event(&LaserEvent::Finished {
                steps: 100,
                cycles: 5
            })
            .is_continue());
        let mut obs = BudgetObserver::new(CellBudget::steps(100));
        assert_eq!(
            obs.on_event(&LaserEvent::Finished {
                steps: 101,
                cycles: 5
            }),
            ControlFlow::Break(StopReason::StepBudget {
                limit: 100,
                used: 101
            })
        );
    }

    #[test]
    fn unlimited_budget_never_stops() {
        assert!(CellBudget::default().is_unlimited());
        assert!(!CellBudget::steps(1).is_unlimited());
        assert!(!CellBudget::wall(Duration::from_millis(1)).is_unlimited());
        let mut obs = BudgetObserver::new(CellBudget::default());
        assert!(obs.on_event(&quantum(u64::MAX / 2)).is_continue());
        assert!(obs.on_event(&quantum(u64::MAX / 2)).is_continue());
    }

    #[test]
    fn wall_clock_budget_trips_on_elapsed_time() {
        let mut obs = BudgetObserver::new(CellBudget::wall(Duration::from_millis(1)));
        std::thread::sleep(Duration::from_millis(5));
        match obs.on_event(&quantum(1)) {
            ControlFlow::Break(StopReason::WallClock { limit_ms: 1, .. }) => {}
            other => panic!("expected wall-clock stop, got {other:?}"),
        }
    }

    #[test]
    fn stop_reason_display_is_stable() {
        assert_eq!(
            StopReason::StepBudget {
                limit: 10,
                used: 12
            }
            .to_string(),
            "step budget exceeded (12 steps > limit 10)"
        );
        assert_eq!(
            StopReason::WallClock {
                limit_ms: 5,
                elapsed_ms: 9
            }
            .to_string(),
            "wall-clock budget exceeded (9 ms > limit 5 ms)"
        );
        assert_eq!(
            StopReason::Cancelled("why".into()).to_string(),
            "cancelled: why"
        );
    }
}
