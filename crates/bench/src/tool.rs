//! The [`Tool`] abstraction: LASER, VTune, Sheriff and native execution
//! behind one interface.
//!
//! The paper's evaluation repeatedly runs the same 35 workloads under
//! different tools (Figures 10–14, Tables 1–2). A `Tool` encapsulates "run
//! this workload under me and tell me what you saw" so the
//! [`crate::campaign::Campaign`] runner can fan arbitrary `workload × tool`
//! grids across a thread pool. Implementations are `Send + Sync` values whose
//! `run` takes `&self`, and every underlying simulation is deterministic, so
//! a cell's result is independent of which worker thread computes it.

use laser_baselines::{Sheriff, SheriffConfig, SheriffFailure, SheriffMode, Vtune, VtuneConfig};
use laser_core::LaserConfig;
use laser_workloads::{BuildOptions, WorkloadSpec};

use crate::runner::{build_under_tool, run_laser, run_native};

/// What one tool observed on one workload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ToolRun {
    /// End-to-end cycles of the run, all tool overhead included.
    pub cycles: u64,
    /// Labels of the contention sites the tool reported (source lines for
    /// LASER/VTune, allocation-site cache lines for Sheriff-Detect).
    pub reported: Vec<String>,
    /// Whether online repair was invoked during the run (LASER only).
    pub repair_invoked: bool,
}

/// Why a tool produced no run for a cell.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ToolFailure {
    /// The tool cannot run this workload at all (Sheriff's compatibility
    /// matrix: crashes and unsupported constructs).
    Unsupported(String),
    /// The underlying simulation failed (e.g. step-budget exhaustion).
    Error(String),
}

impl std::fmt::Display for ToolFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ToolFailure::Unsupported(why) => write!(f, "unsupported: {why}"),
            ToolFailure::Error(why) => write!(f, "error: {why}"),
        }
    }
}

/// A contention tool (or the absence of one) that can run a workload.
pub trait Tool: Send + Sync {
    /// Stable display name, used as the cell key in campaign results.
    fn name(&self) -> &str;

    /// Build and run `spec` at `opts` under this tool.
    ///
    /// # Errors
    /// Returns [`ToolFailure::Unsupported`] when the tool cannot run the
    /// workload and [`ToolFailure::Error`] when the simulation fails.
    fn run(&self, spec: &WorkloadSpec, opts: &BuildOptions) -> Result<ToolRun, ToolFailure>;
}

/// Native execution: no tool attached; the baseline every overhead figure is
/// normalized against.
#[derive(Debug, Clone, Copy, Default)]
pub struct NativeTool;

impl Tool for NativeTool {
    fn name(&self) -> &str {
        "native"
    }

    fn run(&self, spec: &WorkloadSpec, opts: &BuildOptions) -> Result<ToolRun, ToolFailure> {
        let result = run_native(spec, opts).map_err(|e| ToolFailure::Error(e.to_string()))?;
        Ok(ToolRun {
            cycles: result.cycles,
            reported: Vec::new(),
            repair_invoked: false,
        })
    }
}

/// The LASER system (detection, and repair when the configuration allows it).
#[derive(Debug, Clone, Default)]
pub struct LaserTool {
    config: LaserConfig,
}

impl LaserTool {
    /// Run LASER with `config` (e.g. [`LaserConfig::detection_only`]).
    pub fn new(config: LaserConfig) -> Self {
        LaserTool { config }
    }
}

impl Tool for LaserTool {
    fn name(&self) -> &str {
        if self.config.enable_repair {
            "laser"
        } else {
            "laser-detect"
        }
    }

    fn run(&self, spec: &WorkloadSpec, opts: &BuildOptions) -> Result<ToolRun, ToolFailure> {
        let outcome = run_laser(spec, opts, self.config.clone())
            .map_err(|e| ToolFailure::Error(e.to_string()))?;
        Ok(ToolRun {
            cycles: outcome.cycles(),
            reported: outcome
                .report
                .lines
                .iter()
                .map(|l| format!("{} ({})", l.location.label(), l.kind))
                .collect(),
            repair_invoked: outcome.repair.is_some(),
        })
    }
}

/// The VTune profiler model.
#[derive(Debug, Clone, Default)]
pub struct VtuneTool {
    config: VtuneConfig,
}

impl VtuneTool {
    /// Run VTune with an explicit configuration.
    pub fn new(config: VtuneConfig) -> Self {
        VtuneTool { config }
    }
}

impl Tool for VtuneTool {
    fn name(&self) -> &str {
        "vtune"
    }

    fn run(&self, spec: &WorkloadSpec, opts: &BuildOptions) -> Result<ToolRun, ToolFailure> {
        let image = build_under_tool(spec, opts);
        let outcome = Vtune::new(self.config.clone())
            .run(&image)
            .map_err(|e| ToolFailure::Error(e.to_string()))?;
        Ok(ToolRun {
            cycles: outcome.run.cycles,
            reported: outcome
                .reported_lines
                .iter()
                .map(|l| l.location.label())
                .collect(),
            repair_invoked: false,
        })
    }
}

/// The Sheriff baseline in either mode.
#[derive(Debug, Clone)]
pub struct SheriffTool {
    config: SheriffConfig,
    mode: SheriffMode,
}

impl SheriffTool {
    /// Sheriff with the default cost model in `mode`.
    pub fn new(mode: SheriffMode) -> Self {
        SheriffTool {
            config: SheriffConfig::default(),
            mode,
        }
    }

    /// Sheriff with an explicit cost model.
    pub fn with_config(config: SheriffConfig, mode: SheriffMode) -> Self {
        SheriffTool { config, mode }
    }
}

impl Tool for SheriffTool {
    fn name(&self) -> &str {
        match self.mode {
            SheriffMode::Detect => "sheriff-detect",
            SheriffMode::Protect => "sheriff-protect",
        }
    }

    fn run(&self, spec: &WorkloadSpec, opts: &BuildOptions) -> Result<ToolRun, ToolFailure> {
        let outcome = Sheriff::new(self.config)
            .run(spec, opts, self.mode)
            .map_err(|e| ToolFailure::Error(e.to_string()))?;
        match outcome.result {
            Ok(run) => Ok(ToolRun {
                cycles: run.cycles,
                reported: run
                    .reported_lines
                    .iter()
                    .map(|line| format!("line@{line:#x}"))
                    .collect(),
                repair_invoked: false,
            }),
            Err(SheriffFailure::Crash) => Err(ToolFailure::Unsupported(
                "crashes under Sheriff".to_string(),
            )),
            Err(SheriffFailure::Incompatible) => Err(ToolFailure::Unsupported(
                "uses constructs Sheriff does not support".to_string(),
            )),
        }
    }
}

/// The default tool panel: native, LASER, VTune and both Sheriff modes —
/// every column of the paper's comparison tables.
pub fn default_tools() -> Vec<Box<dyn Tool>> {
    vec![
        Box::new(NativeTool),
        Box::new(LaserTool::default()),
        Box::new(VtuneTool::default()),
        Box::new(SheriffTool::new(SheriffMode::Detect)),
        Box::new(SheriffTool::new(SheriffMode::Protect)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use laser_workloads::find;

    fn opts() -> BuildOptions {
        BuildOptions::scaled(0.08)
    }

    #[test]
    fn tools_are_share_and_send() {
        fn assert_sync_send<T: Send + Sync>() {}
        assert_sync_send::<NativeTool>();
        assert_sync_send::<LaserTool>();
        assert_sync_send::<VtuneTool>();
        assert_sync_send::<SheriffTool>();
        assert_sync_send::<Box<dyn Tool>>();
    }

    #[test]
    fn native_runs_and_reports_nothing() {
        let spec = find("swaptions").unwrap();
        let run = NativeTool.run(&spec, &opts()).unwrap();
        assert!(run.cycles > 0);
        assert!(run.reported.is_empty());
        assert!(!run.repair_invoked);
    }

    #[test]
    fn laser_tool_reports_contention_with_overhead() {
        let spec = find("histogram'").unwrap();
        let native = NativeTool.run(&spec, &opts()).unwrap();
        let laser = LaserTool::new(LaserConfig::detection_only())
            .run(&spec, &opts())
            .unwrap();
        assert!(laser.cycles >= native.cycles);
        assert!(!laser.reported.is_empty(), "histogram' contends");
    }

    #[test]
    fn sheriff_tool_surfaces_incompatibility() {
        let spec = find("dedup").unwrap();
        let out = SheriffTool::new(SheriffMode::Detect).run(&spec, &opts());
        assert!(matches!(out, Err(ToolFailure::Unsupported(_))));
    }

    #[test]
    fn tool_names_are_distinct() {
        let tools = default_tools();
        let mut names: Vec<&str> = tools.iter().map(|t| t.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), tools.len());
    }
}
