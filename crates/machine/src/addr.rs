//! Virtual addresses and cache-line arithmetic.

/// A virtual address in the simulated process.
pub type Addr = u64;

/// Cache line size in bytes (the paper's machine, like all modern x86 parts,
/// uses 64-byte lines).
pub const CACHE_LINE_SIZE: u64 = 64;

/// The address of the cache line containing `addr`.
pub fn line_of(addr: Addr) -> Addr {
    addr & !(CACHE_LINE_SIZE - 1)
}

/// The byte offset of `addr` within its cache line.
pub fn line_offset(addr: Addr) -> u64 {
    addr & (CACHE_LINE_SIZE - 1)
}

/// True if an access of `size` bytes at `addr` crosses a cache-line boundary.
pub fn crosses_line(addr: Addr, size: u8) -> bool {
    size > 0 && line_of(addr) != line_of(addr + size as u64 - 1)
}

/// Iterate over the cache lines touched by an access of `size` bytes at
/// `addr`, in address order, without allocating. This is what the machine's
/// access path uses; [`lines_touched`] is the collecting convenience wrapper.
pub fn iter_lines_touched(addr: Addr, size: u8) -> impl Iterator<Item = Addr> {
    let first = line_of(addr);
    let last = if size == 0 {
        first
    } else {
        line_of(addr + size as u64 - 1)
    };
    (first..=last).step_by(CACHE_LINE_SIZE as usize)
}

/// The set of cache lines touched by an access of `size` bytes at `addr`.
pub fn lines_touched(addr: Addr, size: u8) -> Vec<Addr> {
    iter_lines_touched(addr, size).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_arithmetic() {
        assert_eq!(line_of(0), 0);
        assert_eq!(line_of(63), 0);
        assert_eq!(line_of(64), 64);
        assert_eq!(line_of(130), 128);
        assert_eq!(line_offset(0), 0);
        assert_eq!(line_offset(63), 63);
        assert_eq!(line_offset(65), 1);
    }

    #[test]
    fn line_crossing() {
        assert!(!crosses_line(0, 8));
        assert!(!crosses_line(56, 8));
        assert!(crosses_line(60, 8));
        assert!(!crosses_line(60, 4));
        assert!(!crosses_line(100, 0));
        assert_eq!(lines_touched(60, 8), vec![0, 64]);
        assert_eq!(lines_touched(8, 8), vec![0]);
        assert_eq!(lines_touched(100, 0), vec![64]);
    }
}
