//! Minimal JSON document model: build, render and parse JSON values without
//! `serde_json`.
//!
//! The offline build cannot pull `serde_json`, but the experiment harness
//! needs machine-readable output (`experiments --format json`). This module
//! provides the smallest useful subset: a [`Value`] tree, a compact writer
//! ([`Value::render`]) and a strict recursive-descent parser
//! ([`Value::parse`]) used by tests and CI to check that emitted output is
//! well-formed. When the real `serde_json` becomes available, callers can
//! migrate to it mechanically — the shapes are deliberately the same.

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer (covers every count this workspace emits).
    Int(i64),
    /// A floating-point number; non-finite values render as `null`.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Value>),
    /// An object. Insertion order is preserved so output is deterministic.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// An empty object, to be filled with [`Value::set`].
    pub fn object() -> Value {
        Value::Object(Vec::new())
    }

    /// Append a key/value pair to an object (panics on non-objects: emission
    /// code constructs objects locally, so a mismatch is a programming error).
    pub fn set(mut self, key: &str, value: impl Into<Value>) -> Value {
        match &mut self {
            Value::Object(pairs) => pairs.push((key.to_string(), value.into())),
            other => panic!("Value::set on non-object {other:?}"),
        }
        self
    }

    /// Look up a key of an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Render as compact JSON.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        use fmt::Write as _;
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Value::Float(f) => {
                if f.is_finite() {
                    // `{:?}` keeps a decimal point or exponent, so the value
                    // stays a float on round-trip.
                    let _ = write!(out, "{f:?}");
                } else {
                    out.push_str("null");
                }
            }
            Value::Str(s) => write_json_string(s, out),
            Value::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Value::Object(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_json_string(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Parse a JSON document (strict: the whole input must be one value).
    ///
    /// # Errors
    /// Returns a [`ParseError`] describing the first offending byte offset.
    pub fn parse(input: &str) -> Result<Value, ParseError> {
        let bytes = input.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(ParseError::new(pos, "trailing data after value"));
        }
        Ok(value)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Value {
        Value::Bool(b)
    }
}
impl From<i64> for Value {
    fn from(i: i64) -> Value {
        Value::Int(i)
    }
}
impl From<u64> for Value {
    fn from(u: u64) -> Value {
        i64::try_from(u)
            .map(Value::Int)
            .unwrap_or(Value::Float(u as f64))
    }
}
impl From<u32> for Value {
    fn from(u: u32) -> Value {
        Value::Int(i64::from(u))
    }
}
impl From<usize> for Value {
    fn from(u: usize) -> Value {
        Value::from(u as u64)
    }
}
impl From<f64> for Value {
    fn from(f: f64) -> Value {
        Value::Float(f)
    }
}
impl From<&str> for Value {
    fn from(s: &str) -> Value {
        Value::Str(s.to_string())
    }
}
impl From<String> for Value {
    fn from(s: String) -> Value {
        Value::Str(s)
    }
}
impl From<Vec<Value>> for Value {
    fn from(items: Vec<Value>) -> Value {
        Value::Array(items)
    }
}
impl<T: Into<Value>> From<Option<T>> for Value {
    fn from(v: Option<T>) -> Value {
        v.map(Into::into).unwrap_or(Value::Null)
    }
}

fn write_json_string(s: &str, out: &mut String) {
    use fmt::Write as _;
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A JSON parse error: byte offset plus message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the offending input.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl ParseError {
    fn new(offset: usize, message: &str) -> ParseError {
        ParseError {
            offset,
            message: message.to_string(),
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "JSON parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for ParseError {}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, lit: &str) -> Result<(), ParseError> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(ParseError::new(*pos, "unexpected token"))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value, ParseError> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(ParseError::new(*pos, "unexpected end of input")),
        Some(b'n') => expect(bytes, pos, "null").map(|()| Value::Null),
        Some(b't') => expect(bytes, pos, "true").map(|()| Value::Bool(true)),
        Some(b'f') => expect(bytes, pos, "false").map(|()| Value::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Value::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Value::Array(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Value::Array(items));
                    }
                    _ => return Err(ParseError::new(*pos, "expected ',' or ']'")),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut pairs = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Value::Object(pairs));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                if bytes.get(*pos) != Some(&b':') {
                    return Err(ParseError::new(*pos, "expected ':'"));
                }
                *pos += 1;
                pairs.push((key, parse_value(bytes, pos)?));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Value::Object(pairs));
                    }
                    _ => return Err(ParseError::new(*pos, "expected ',' or '}'")),
                }
            }
        }
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, ParseError> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(ParseError::new(*pos, "expected '\"'"));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(ParseError::new(*pos, "unterminated string")),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .and_then(|h| u32::from_str_radix(h, 16).ok())
                            .ok_or_else(|| ParseError::new(*pos, "bad \\u escape"))?;
                        // Surrogate pairs are not needed for this workspace's
                        // output; reject them rather than mis-decode.
                        let c = char::from_u32(hex)
                            .ok_or_else(|| ParseError::new(*pos, "surrogate \\u escape"))?;
                        out.push(c);
                        *pos += 4;
                    }
                    _ => return Err(ParseError::new(*pos, "bad escape")),
                }
                *pos += 1;
            }
            Some(&b) if b < 0x20 => {
                return Err(ParseError::new(*pos, "control byte in string"));
            }
            Some(_) => {
                // Consume one UTF-8 character (input is a &str, so this is
                // always well-formed).
                let s = &bytes[*pos..];
                let c = std::str::from_utf8(s)
                    .map_err(|_| ParseError::new(*pos, "invalid utf-8"))?
                    .chars()
                    .next()
                    .unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Value, ParseError> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut is_float = false;
    while let Some(&b) = bytes.get(*pos) {
        match b {
            b'0'..=b'9' => *pos += 1,
            b'.' | b'e' | b'E' | b'+' | b'-' => {
                is_float = true;
                *pos += 1;
            }
            _ => break,
        }
    }
    let text = std::str::from_utf8(&bytes[start..*pos])
        .map_err(|_| ParseError::new(start, "invalid number"))?;
    if text.is_empty() || text == "-" {
        return Err(ParseError::new(start, "expected a value"));
    }
    if is_float {
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| ParseError::new(start, "invalid number"))
    } else {
        text.parse::<i64>()
            .map(Value::Int)
            .map_err(|_| ParseError::new(start, "invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_compact_json() {
        let v = Value::object()
            .set("name", "histogram'")
            .set("cycles", 12345u64)
            .set("norm", 1.25)
            .set("ok", true)
            .set("failure", Value::Null)
            .set(
                "reported",
                Value::Array(vec!["a.c:1 (false sharing)".into()]),
            );
        assert_eq!(
            v.render(),
            r#"{"name":"histogram'","cycles":12345,"norm":1.25,"ok":true,"failure":null,"reported":["a.c:1 (false sharing)"]}"#
        );
    }

    #[test]
    fn escapes_strings() {
        let v = Value::Str("a\"b\\c\nd\u{1}".to_string());
        assert_eq!(v.render(), "\"a\\\"b\\\\c\\nd\\u0001\"");
        assert_eq!(Value::parse(&v.render()).unwrap(), v);
    }

    #[test]
    fn round_trips_nested_values() {
        let v = Value::object()
            .set(
                "cells",
                Value::Array(vec![
                    Value::object().set("w", "dedup").set("n", -3i64),
                    Value::object().set("f", 0.5).set("none", Value::Null),
                ]),
            )
            .set("empty_obj", Value::object())
            .set("empty_arr", Value::Array(vec![]));
        let text = v.render();
        assert_eq!(Value::parse(&text).unwrap(), v);
    }

    #[test]
    fn parses_whitespace_and_rejects_trailing_garbage() {
        assert_eq!(
            Value::parse(" { \"a\" : [ 1 , 2.5 , null ] } ").unwrap(),
            Value::object().set(
                "a",
                Value::Array(vec![Value::Int(1), Value::Float(2.5), Value::Null])
            )
        );
        assert!(Value::parse("{} x").is_err());
        assert!(Value::parse("{\"a\":}").is_err());
        assert!(Value::parse("[1,]").is_err());
        assert!(Value::parse("").is_err());
    }

    #[test]
    fn non_finite_floats_render_as_null() {
        assert_eq!(Value::Float(f64::NAN).render(), "null");
        assert_eq!(Value::Float(f64::INFINITY).render(), "null");
    }

    #[test]
    fn object_get_finds_keys() {
        let v = Value::object().set("a", 1i64);
        assert_eq!(v.get("a"), Some(&Value::Int(1)));
        assert_eq!(v.get("b"), None);
        assert_eq!(Value::Null.get("a"), None);
    }
}
