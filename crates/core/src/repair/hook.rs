//! The SSB instrumentation hook — LASERREPAIR's Pintool (paper Section 6).
//!
//! [`SsbHook`] implements the machine's [`ExecHook`] interface and applies a
//! [`RepairPlan`] online: instrumented stores are diverted into the executing
//! core's [`SoftwareStoreBuffer`], instrumented loads consult the buffer, and
//! the buffer is flushed — atomically, inside a hardware transaction — at the
//! plan's flush blocks, at fences/atomics, at thread exit, and pre-emptively
//! when it outgrows the transaction capacity.

use serde::{Deserialize, Serialize};

use laser_isa::program::{BlockId, Pc};
use laser_machine::htm::HtmOutcome;
use laser_machine::{ExecHook, HookAction, HookCtx, MemAccessKind, MemOp};

use super::plan::RepairPlan;
use super::ssb::{SoftwareStoreBuffer, SsbLookup};

/// Per-operation instrumentation costs in cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SsbCosts {
    /// Cost of buffering one store.
    pub store: u64,
    /// Cost of an SSB lookup on a load.
    pub load: u64,
    /// Cost of a speculative-alias runtime check.
    pub alias_check: u64,
    /// Fixed cost of initiating a flush (on top of the transaction and the
    /// writes themselves).
    pub flush_base: u64,
}

impl Default for SsbCosts {
    fn default() -> Self {
        SsbCosts {
            store: 6,
            load: 6,
            alias_check: 2,
            flush_base: 12,
        }
    }
}

/// Counters describing what the instrumentation did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SsbStats {
    /// Stores diverted into the SSB.
    pub buffered_stores: u64,
    /// Loads fully satisfied from the SSB.
    pub ssb_load_hits: u64,
    /// Instrumented loads that fell through to shared memory.
    pub ssb_load_misses: u64,
    /// Speculative-alias checks executed.
    pub speculative_checks: u64,
    /// Speculative loads that actually aliased a buffered store (forcing a
    /// flush).
    pub misspeculations: u64,
    /// Flush operations executed.
    pub flushes: u64,
    /// Flushes that committed inside a hardware transaction.
    pub htm_flushes: u64,
    /// Flushes that fell back to a fenced, non-transactional path.
    pub fallback_flushes: u64,
    /// Pre-emptive flushes triggered by the buffer outgrowing the transaction
    /// capacity.
    pub preemptive_flushes: u64,
}

/// Number of SSB entries beyond which a pre-emptive flush is inserted (the L1
/// associativity of the paper's machine).
pub const PREEMPTIVE_FLUSH_ENTRIES: usize = 8;

/// The online-repair instrumentation tool.
///
/// The hook owns its statistics outright (no `Rc<RefCell<..>>` sharing), so a
/// machine carrying it remains `Send`; the system reads the final counters
/// back through [`ExecHook::as_any`] downcasting once the run finishes.
pub struct SsbHook {
    plan: RepairPlan,
    costs: SsbCosts,
    buffers: Vec<SoftwareStoreBuffer>,
    stats: SsbStats,
}

impl std::fmt::Debug for SsbHook {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SsbHook")
            .field("instrumented_blocks", &self.plan.instrumented_blocks.len())
            .field("stats", &self.stats)
            .finish()
    }
}

impl SsbHook {
    /// Create the hook for `num_cores` cores, applying `plan`.
    pub fn new(plan: RepairPlan, num_cores: usize) -> Self {
        SsbHook::with_costs(plan, num_cores, SsbCosts::default())
    }

    /// Create the hook with explicit instrumentation costs.
    pub fn with_costs(plan: RepairPlan, num_cores: usize, costs: SsbCosts) -> Self {
        SsbHook {
            plan,
            costs,
            buffers: (0..num_cores).map(|_| SoftwareStoreBuffer::new()).collect(),
            stats: SsbStats::default(),
        }
    }

    /// The instrumentation counters so far.
    pub fn stats(&self) -> SsbStats {
        self.stats
    }

    /// The plan being applied.
    pub fn plan(&self) -> &RepairPlan {
        &self.plan
    }

    fn flush(&mut self, ctx: &mut HookCtx<'_>, pc: Pc) -> u64 {
        let core = ctx.core().0;
        if self.buffers[core].is_empty() {
            return 0;
        }
        let writes = self.buffers[core].drain_writes();
        self.stats.flushes += 1;
        let mut cycles = self.costs.flush_base;
        match ctx.htm_flush(pc, &writes) {
            HtmOutcome::Committed { cycles: c } => {
                self.stats.htm_flushes += 1;
                cycles += c;
            }
            HtmOutcome::CapacityAborted => {
                // Fall back to a fenced, write-at-a-time flush.
                self.stats.fallback_flushes += 1;
                for (addr, size, value) in &writes {
                    cycles += ctx.mem_write(pc, *addr, *size, *value);
                }
                cycles += ctx.latency().fence;
            }
        }
        cycles
    }
}

impl ExecHook for SsbHook {
    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }

    fn on_mem_op(&mut self, ctx: &mut HookCtx<'_>, op: &MemOp) -> HookAction {
        let core = ctx.core().0;
        match op.kind {
            MemAccessKind::Store if self.plan.ssb_stores.contains(&op.pc) => {
                self.buffers[core].put(op.addr, op.size, op.store_value.unwrap_or(0));
                self.stats.buffered_stores += 1;
                let mut extra = self.costs.store;
                if self.buffers[core].len() > PREEMPTIVE_FLUSH_ENTRIES {
                    self.stats.preemptive_flushes += 1;
                    extra += self.flush(ctx, op.pc);
                }
                HookAction::Handled {
                    load_value: None,
                    extra_cycles: extra,
                }
            }
            MemAccessKind::Load if self.plan.ssb_loads.contains(&op.pc) => {
                let mut extra = self.costs.load;
                let value = match self.buffers[core].lookup(op.addr, op.size) {
                    SsbLookup::Hit(v) => {
                        self.stats.ssb_load_hits += 1;
                        v
                    }
                    SsbLookup::Miss => {
                        self.stats.ssb_load_misses += 1;
                        let (v, c) = ctx.mem_read(op.pc, op.addr, op.size);
                        extra += c;
                        v
                    }
                    SsbLookup::Partial => {
                        self.stats.ssb_load_hits += 1;
                        let (mem, c) = ctx.mem_read(op.pc, op.addr, op.size);
                        extra += c;
                        self.buffers[core].merge(op.addr, op.size, mem)
                    }
                };
                HookAction::Handled {
                    load_value: Some(value),
                    extra_cycles: extra,
                }
            }
            MemAccessKind::Load if self.plan.speculative_loads.contains(&op.pc) => {
                // Runtime aliasing check: if the speculation fails (the load
                // address overlaps a buffered store) the SSB is flushed and the
                // load proceeds against memory.
                self.stats.speculative_checks += 1;
                let mut extra = self.costs.alias_check;
                if self.buffers[core].overlaps(op.addr, op.size) {
                    self.stats.misspeculations += 1;
                    extra += self.flush(ctx, op.pc);
                }
                let (v, c) = ctx.mem_read(op.pc, op.addr, op.size);
                HookAction::Handled {
                    load_value: Some(v),
                    extra_cycles: extra + c,
                }
            }
            _ => HookAction::Passthrough,
        }
    }

    fn on_fence(&mut self, ctx: &mut HookCtx<'_>, pc: Pc) -> u64 {
        self.flush(ctx, pc)
    }

    fn on_block_entry(&mut self, ctx: &mut HookCtx<'_>, block: BlockId) -> u64 {
        if self.plan.flush_blocks.contains(&block) {
            // Attribute the flush to the block's entry; the PC value is only
            // used for HITM attribution of the flush's own stores.
            self.flush(ctx, 0)
        } else {
            0
        }
    }

    fn on_thread_exit(&mut self, ctx: &mut HookCtx<'_>) -> u64 {
        self.flush(ctx, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use laser_isa::inst::{Operand, Reg};
    use laser_isa::ProgramBuilder;
    use laser_machine::{Machine, MachineConfig, ThreadSpec, WorkloadImage};

    /// Read the SSB statistics back out of the machine's attached hook — the
    /// owned-stats replacement for the old shared `Rc<RefCell<..>>` handle.
    fn ssb_stats(m: &Machine) -> SsbStats {
        m.hook()
            .and_then(|h| h.as_any())
            .and_then(|a| a.downcast_ref::<SsbHook>())
            .map(|h| h.stats())
            .expect("SsbHook attached")
    }

    /// Two threads false-sharing one line through a counted loop. Returns the
    /// image, the contending store PC and the shared allocation's address.
    fn fs_image(iters: u64) -> (WorkloadImage, Pc, u64) {
        let mut b = ProgramBuilder::new("fs");
        b.source("fs.c", 7);
        let entry = b.block("entry");
        let body = b.block("body");
        let exit = b.block("exit");
        b.switch_to(entry);
        b.movi(Reg(2), 0);
        b.jump(body);
        b.switch_to(body);
        b.load(Reg(1), Reg(0), 0, 8);
        b.addi(Reg(1), Reg(1), 1);
        b.store(Operand::Reg(Reg(1)), Reg(0), 0, 8);
        b.addi(Reg(2), Reg(2), 1);
        b.cmp_lt(Reg(3), Reg(2), Operand::Imm(iters));
        b.branch(Reg(3), body, exit);
        b.switch_to(exit);
        b.halt();
        let program = b.finish();
        let store_pc = program.pc_of(body, 2);
        let mut image = WorkloadImage::new("fs", program);
        let base = image.layout_mut().heap_alloc(64, 64).unwrap();
        image.push_thread(ThreadSpec::new("t0", "entry").with_reg(Reg(0), base));
        image.push_thread(ThreadSpec::new("t1", "entry").with_reg(Reg(0), base + 8));
        (image, store_pc, base)
    }

    #[test]
    fn ssb_repair_removes_hitms_and_preserves_results() {
        let iters = 2000;
        let (image, store_pc, base) = fs_image(iters);

        // Native run for comparison.
        let mut native = Machine::new(MachineConfig::default(), &image);
        let native_result = native.run_to_completion().unwrap();
        assert!(native_result.stats.hitm_events > 1000);

        // Repaired run.
        let plan = RepairPlan::analyze(image.program(), &[store_pc], 4.0, 12).expect("plan exists");
        assert!(plan.profitable);
        let hook = SsbHook::new(plan, 4);
        let mut repaired = Machine::new(MachineConfig::default(), &image);
        repaired.attach_hook(Box::new(hook));
        let repaired_result = repaired.run_to_completion().unwrap();

        // The counters end with the same values (single-threaded semantics
        // preserved: each thread increments its own slot `iters` times).
        for t in 0..2u64 {
            let a = native.read_u64(base + t * 8);
            let b = repaired.read_u64(base + t * 8);
            assert_eq!(a, b, "memory mismatch at slot {t}");
            assert_eq!(a, iters);
        }

        // Contention is gone and the program is faster.
        assert!(repaired_result.stats.hitm_events < native_result.stats.hitm_events / 10);
        assert!(repaired_result.cycles < native_result.cycles);

        let s = ssb_stats(&repaired);
        assert!(s.buffered_stores >= 2 * iters);
        assert!(s.flushes >= 2);
        assert!(s.htm_flushes >= 1);
        assert!(s.ssb_load_hits > 0);
    }

    #[test]
    fn buffer_is_flushed_at_thread_exit() {
        // One thread, one buffered store, no loop: the final value must still
        // reach memory because the exit flush writes it back.
        let mut b = ProgramBuilder::new("once");
        b.source("once.c", 1);
        let body = b.block("body");
        let exit = b.block("exit");
        b.switch_to(body);
        b.store(Operand::Imm(42), Reg(0), 0, 8);
        b.jump(exit);
        b.switch_to(exit);
        b.halt();
        let program = b.finish();
        let store_pc = program.pc_of(body, 0);
        let mut image = WorkloadImage::new("once", program);
        let base = image.layout_mut().heap_alloc(8, 64).unwrap();
        image.push_thread(ThreadSpec::new("t0", "body").with_reg(Reg(0), base));

        let plan = RepairPlan::analyze(image.program(), &[store_pc], 0.0, 12).unwrap();
        let hook = SsbHook::new(plan, 4);
        let mut m = Machine::new(MachineConfig::default(), &image);
        m.attach_hook(Box::new(hook));
        m.run_to_completion().unwrap();
        assert_eq!(m.read_u64(base), 42);
        assert!(ssb_stats(&m).flushes >= 1);
    }

    #[test]
    fn preemptive_flush_bounds_buffer_growth() {
        // A thread storing to 32 different words before any flush point would
        // overflow the transaction capacity; pre-emptive flushes keep it legal.
        let mut b = ProgramBuilder::new("wide");
        b.source("wide.c", 1);
        let body = b.block("body");
        let exit = b.block("exit");
        b.switch_to(body);
        for i in 0..32 {
            b.store(Operand::Imm(i as u64 + 1), Reg(0), i * 64, 8);
        }
        b.jump(exit);
        b.switch_to(exit);
        b.halt();
        let program = b.finish();
        let pcs: Vec<Pc> = (0..32).map(|i| program.pc_of(body, i)).collect();
        let mut image = WorkloadImage::new("wide", program);
        let base = image.layout_mut().heap_alloc(64 * 33, 64).unwrap();
        image.push_thread(ThreadSpec::new("t0", "body").with_reg(Reg(0), base));

        let plan = RepairPlan::analyze(image.program(), &pcs, 0.0, 12).unwrap();
        let hook = SsbHook::new(plan, 4);
        let mut m = Machine::new(MachineConfig::default(), &image);
        m.attach_hook(Box::new(hook));
        m.run_to_completion().unwrap();
        for i in 0..32u64 {
            assert_eq!(m.read_u64(base + i * 64), i + 1);
        }
        let s = ssb_stats(&m);
        assert!(s.preemptive_flushes > 0);
        // Every flush stayed within transaction capacity or fell back safely.
        assert_eq!(s.flushes, s.htm_flushes + s.fallback_flushes);
    }
}
