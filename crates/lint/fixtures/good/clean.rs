//! Good fixture: the idioms this workspace uses instead of the flagged ones.
//! Expected findings: none.

use std::collections::{BTreeMap, BTreeSet};

/// Deterministic order: BTree containers may be iterated freely.
pub fn totals(counts: &BTreeMap<u64, u64>) -> u64 {
    counts.values().sum()
}

/// Integer accumulation is exact, so order cannot change the result.
pub fn count_lines(lines: &BTreeSet<u64>) -> usize {
    lines.iter().count()
}

/// Errors are returned, not panicked.
pub fn take(v: Option<u64>) -> Result<u64, &'static str> {
    v.ok_or("value missing")
}

/// A custom hasher is explicit: three generic parameters, not two.
pub fn explicit_hasher() -> std::collections::HashMap<u64, u64, std::hash::RandomState> {
    std::collections::HashMap::with_hasher(std::hash::RandomState::new())
}
