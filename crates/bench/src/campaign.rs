//! Parallel experiment campaigns: a `workload × tool` grid fanned across a
//! thread pool.
//!
//! A [`Campaign`] is the unit in which the paper's evaluation actually runs:
//! 35 workloads under up to 5 tools. Every cell — one tool on one workload —
//! is an independent, deterministic simulation, and the execution stack is
//! built from owned `Send` values (see `laser_core::session`), so cells can
//! be computed by any worker in any order. Results are stored by cell index
//! and aggregated in grid order, which makes the output **byte-identical**
//! whatever the thread count: `threads = 1` is the reference serial
//! execution, `threads = N` is just faster.
//!
//! Long campaigns survive misbehaving cells: a panic inside a [`Tool`] is
//! caught per cell and recorded as [`ToolFailure::Panicked`], so one bad
//! `(workload, tool)` combination costs one grid entry, not the whole run.
//! A campaign can also bound every cell with a [`CellBudget`]
//! ([`Campaign::with_cell_budget`]): a [`BudgetObserver`] is threaded through
//! [`Tool::run_observed`] into each run, and a cell that trips its budget is
//! recorded as [`ToolFailure::BudgetExceeded`] — again one grid entry, not
//! the whole run. Step budgets are deterministic, so budgeted campaigns keep
//! the byte-identical-across-thread-counts guarantee.
//!
//! Callers that want incremental feedback pass a progress sink to
//! [`Campaign::run_with_progress`]; cells are announced as they start and
//! complete ([`CampaignProgress`]), while the aggregated result stays
//! deterministic.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use laser_core::{BudgetObserver, CellBudget, PipelineConfig, TopologySpec};
use laser_workloads::{registry, BuildOptions, WorkloadSpec};

use crate::cache::{CellCache, CellConfig};
use crate::tool::{default_tools, Tool, ToolFailure, ToolRun};
use crate::topofile::{CustomTopology, Deployment};

/// One `workload × tool` cell of a finished campaign.
#[derive(Debug, Clone, PartialEq)]
pub struct CellResult {
    /// Workload name.
    pub workload: String,
    /// Tool name.
    pub tool: String,
    /// What the tool produced, or why it could not run.
    pub outcome: Result<ToolRun, ToolFailure>,
}

impl CellResult {
    /// One-word status for progress displays and machine-readable output.
    pub fn status(&self) -> &'static str {
        match &self.outcome {
            Ok(_) => "ok",
            Err(ToolFailure::Unsupported(_)) => "unsupported",
            Err(ToolFailure::Error(_)) => "error",
            Err(ToolFailure::Panicked { .. }) => "panicked",
            Err(ToolFailure::BudgetExceeded { .. }) => "budget-exceeded",
        }
    }
}

/// One progress notification from an in-flight campaign, as delivered to the
/// sink passed to [`Campaign::run_with_progress`].
///
/// Notification order depends on scheduling — that is the point: the sink
/// streams what is happening while the run is hot — but the aggregated
/// [`CampaignResult`] never does.
#[derive(Debug, Clone, Copy)]
pub enum CampaignProgress<'a> {
    /// A worker claimed a cell and is about to run it.
    Started {
        /// Index of the cell in grid (aggregation) order.
        index: usize,
        /// Total cells in the campaign.
        total: usize,
        /// Workload name.
        workload: &'a str,
        /// Tool name.
        tool: &'a str,
    },
    /// A cell finished (successfully or not).
    Finished {
        /// Cells finished so far, including this one.
        done: usize,
        /// Total cells in the campaign.
        total: usize,
        /// The completed cell, including its outcome.
        cell: &'a CellResult,
        /// Whether the cell was answered from the campaign's [`CellCache`]
        /// instead of being simulated. Always `false` without a cache.
        cached: bool,
    },
}

/// A workload name passed to [`Campaign::with_workload_names`] that is not in
/// the campaign's workload set. Surfacing this as an error (instead of
/// silently dropping the name) is what keeps a typo from quietly running an
/// empty or partial grid.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownWorkload(pub String);

impl std::fmt::Display for UnknownWorkload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "unknown workload '{}' (names are case-sensitive; the alternative-input histogram \
             is \"histogram'\")",
            self.0
        )
    }
}

impl std::error::Error for UnknownWorkload {}

/// Check every name in `names` against `workloads`, rejecting the first
/// unknown one. This is the validation behind
/// [`Campaign::with_workload_names`], exposed so callers (the `experiments`
/// binary's `--only` list) can fail fast *before* any cell is simulated.
///
/// # Errors
/// Returns [`UnknownWorkload`] for the first name that matches no workload.
pub fn validate_workload_names(
    names: &[&str],
    workloads: &[WorkloadSpec],
) -> Result<(), UnknownWorkload> {
    for name in names {
        if !workloads.iter().any(|w| &w.name == name) {
            return Err(UnknownWorkload((*name).to_string()));
        }
    }
    Ok(())
}

/// A configured experiment campaign.
pub struct Campaign {
    workloads: Vec<WorkloadSpec>,
    tools: Vec<Box<dyn Tool>>,
    /// The cells to run, as `(workload index, tool index, topology)` triples
    /// in grid (aggregation) order. A cross-product campaign is
    /// workload-major on the flat topology; a sparse campaign (built by the
    /// grid cache) lists exactly the cells the planned experiments need,
    /// which may mix topologies.
    cells: Vec<(usize, usize, TopologySpec)>,
    opts: BuildOptions,
    threads: usize,
    budget: CellBudget,
    pipeline: PipelineConfig,
    /// Bespoke topology overriding every cell's preset, if any (see
    /// [`Campaign::with_custom_topology`]).
    custom: Option<Arc<CustomTopology>>,
    cache: Option<Arc<CellCache>>,
}

impl Default for Campaign {
    /// The full suite under the default tool panel, one worker per available
    /// core.
    fn default() -> Self {
        Campaign::new(registry(), default_tools())
    }
}

impl Campaign {
    /// A campaign over the full `workloads × tools` cross product, on the
    /// flat (single-socket) topology.
    pub fn new(workloads: Vec<WorkloadSpec>, tools: Vec<Box<dyn Tool>>) -> Self {
        let pairs = (0..workloads.len())
            .flat_map(|w| (0..tools.len()).map(move |t| (w, t)))
            .collect();
        Campaign::from_cells(workloads, tools, pairs)
    }

    /// A campaign over an explicit cell list on the flat topology. `pairs`
    /// index into `workloads` and `tools` and define the aggregation order.
    pub fn from_cells(
        workloads: Vec<WorkloadSpec>,
        tools: Vec<Box<dyn Tool>>,
        pairs: Vec<(usize, usize)>,
    ) -> Self {
        let cells = pairs
            .into_iter()
            .map(|(w, t)| (w, t, TopologySpec::Flat))
            .collect();
        Campaign::from_cells_at(workloads, tools, cells)
    }

    /// A campaign over an explicit cell list that may mix socket topologies:
    /// each `(workload, tool, topology)` triple runs the tool with the
    /// machine deployed on that topology preset (and the build options
    /// adapted to it). This is how the grid cache runs cross-socket sweeps
    /// next to flat cells in one parallel campaign.
    pub fn from_cells_at(
        workloads: Vec<WorkloadSpec>,
        tools: Vec<Box<dyn Tool>>,
        cells: Vec<(usize, usize, TopologySpec)>,
    ) -> Self {
        debug_assert!(cells
            .iter()
            .all(|&(w, t, _)| w < workloads.len() && t < tools.len()));
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        Campaign {
            workloads,
            tools,
            cells,
            opts: BuildOptions::default(),
            threads,
            budget: CellBudget::default(),
            pipeline: PipelineConfig::default(),
            custom: None,
            cache: None,
        }
    }

    /// Restrict the campaign to the named workloads, keeping grid order.
    ///
    /// # Errors
    /// Returns [`UnknownWorkload`] for the first name that does not match any
    /// workload of this campaign; nothing is silently dropped.
    pub fn with_workload_names(mut self, names: &[&str]) -> Result<Self, UnknownWorkload> {
        validate_workload_names(names, &self.workloads)?;
        self.cells
            .retain(|&(w, _, _)| names.contains(&self.workloads[w].name));
        Ok(self)
    }

    /// Run every cell on `topology` (default: flat). Cell keys keep their
    /// bare tool names on the flat preset and gain an `@2s` / `@4s` suffix
    /// on the multi-socket ones, so sweeps over several topologies never
    /// collide.
    pub fn with_topology(mut self, topology: TopologySpec) -> Self {
        for cell in &mut self.cells {
            cell.2 = topology;
        }
        self
    }

    /// Deploy every cell on a bespoke topology instead of its preset
    /// (`--topology-file` / a scenario's `"custom_topology"`). Cell keys
    /// gain an `@layout-name` suffix and the cache fingerprints the full
    /// layout, so custom cells never alias preset ones. The override is
    /// campaign-wide: the per-cell preset axis is ignored while it is set.
    pub fn with_custom_topology(mut self, custom: Arc<CustomTopology>) -> Self {
        self.custom = Some(custom);
        self
    }

    /// Set the build options applied to every cell.
    pub fn with_options(mut self, opts: BuildOptions) -> Self {
        self.opts = opts;
        self
    }

    /// Set the worker-thread count (clamped to at least 1).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Bound every cell with `budget`: a [`BudgetObserver`] is threaded into
    /// each run and a cell that trips it is recorded as
    /// [`ToolFailure::BudgetExceeded`] without disturbing the other cells.
    /// Step budgets keep campaigns deterministic across thread counts;
    /// wall-clock budgets trade that determinism for a hard time bound.
    pub fn with_cell_budget(mut self, budget: CellBudget) -> Self {
        self.budget = budget;
        self
    }

    /// Deploy every cell's session with `pipeline` (see
    /// [`Tool::set_pipeline`]): LASER cells move their detector stage to a
    /// worker thread so record processing overlaps the simulated quantum.
    /// Cell results — and therefore the whole aggregated campaign — are
    /// byte-identical to an un-pipelined run; only the wall-clock changes.
    pub fn with_pipeline(mut self, pipeline: PipelineConfig) -> Self {
        for tool in &mut self.tools {
            tool.set_pipeline(pipeline);
        }
        self.pipeline = pipeline;
        self
    }

    /// Consult `cache` before simulating any cell and write finished cells
    /// back to it. Hits return byte-for-byte what a fresh simulation would
    /// have produced (simulation is deterministic and the fingerprint covers
    /// the full cell config), so a cached campaign's aggregated output is
    /// identical to an uncached one — only faster. Share one `Arc` across
    /// campaigns to reuse results between runs and processes.
    pub fn with_cache(mut self, cache: Arc<CellCache>) -> Self {
        self.cache = Some(cache);
        self
    }

    /// Number of cells the campaign will run.
    pub fn cells(&self) -> usize {
        self.cells.len()
    }

    /// The configured worker-thread count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The per-cell budget (unlimited by default).
    pub fn cell_budget(&self) -> CellBudget {
        self.budget
    }

    /// The session pipeline deployment (inline by default).
    pub fn pipeline(&self) -> PipelineConfig {
        self.pipeline
    }

    /// Run every cell and aggregate in grid order. The aggregation is
    /// independent of the thread count.
    pub fn run(&self) -> CampaignResult {
        self.run_with_progress(|_| {})
    }

    /// Like [`Campaign::run`], streaming [`CampaignProgress`] notifications
    /// to `progress` as cells start and finish. Notification order depends on
    /// scheduling (that is the point: callers stream progress while the run
    /// is hot), but the returned aggregation does not.
    pub fn run_with_progress<F>(&self, progress: F) -> CampaignResult
    where
        F: Fn(CampaignProgress) + Sync,
    {
        let total = self.cells.len();
        let done = AtomicUsize::new(0);
        let cells = ordered_parallel(total, self.threads, |i| {
            let (w, t, topo) = self.cells[i];
            let workload = &self.workloads[w];
            let tool = &self.tools[t];
            progress(CampaignProgress::Started {
                index: i,
                total,
                workload: workload.name,
                tool: tool.name(),
            });
            let deploy = match &self.custom {
                Some(custom) => Deployment::Custom(Arc::clone(custom)),
                None => Deployment::Preset(topo),
            };
            let config = CellConfig {
                workload: workload.name,
                tool: tool.name(),
                topology: topo,
                custom_topology: self.custom.as_deref(),
                opts: &self.opts,
                budget: self.budget,
                pipeline: self.pipeline,
            };
            let (cell, cached) = match self.cache.as_ref().and_then(|c| c.load(&config)) {
                Some(cell) => (cell, true),
                None => {
                    // A panicking tool must cost one cell, not the campaign:
                    // the scoped worker would otherwise unwind and poison the
                    // whole grid.
                    let outcome = catch_unwind(AssertUnwindSafe(|| {
                        if self.budget.is_unlimited() {
                            tool.run_deployed(workload, &self.opts, &deploy)
                        } else {
                            let observer = Box::new(BudgetObserver::new(self.budget));
                            tool.run_observed_deployed(workload, &self.opts, &deploy, observer)
                        }
                    }))
                    .unwrap_or_else(|payload| {
                        Err(ToolFailure::Panicked {
                            message: panic_message(payload.as_ref()),
                        })
                    });
                    let cell = CellResult {
                        workload: workload.name.to_string(),
                        tool: deploy.cell_key(tool.name()),
                        outcome,
                    };
                    if let Some(cache) = &self.cache {
                        cache.store(&config, &cell);
                    }
                    (cell, false)
                }
            };
            progress(CampaignProgress::Finished {
                done: done.fetch_add(1, Ordering::Relaxed) + 1,
                total,
                cell: &cell,
                cached,
            });
            cell
        });
        CampaignResult { cells }
    }
}

/// Extract a human-readable message from a panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Deterministically-ordered parallel map: compute `f(0..n)` on up to
/// `threads` workers off a shared atomic counter and return the results in
/// index order. This is the executor under [`Campaign::run`]; the Figure 3
/// characterization reuses it directly because its unit of work is a test
/// case, not a `workload × tool` cell.
pub fn ordered_parallel<T, F>(n: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let slots: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    let workers = threads.clamp(1, n.max(1));

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                // Work stealing off a shared counter: each worker claims the
                // next unclaimed index until the range is drained.
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                *slots[i].lock().unwrap() = Some(f(i)); // lint:allow(panic) — lock poisoning only follows a panic already unwinding this run
            });
        }
    });

    slots
        .into_iter()
        .map(|slot| slot.into_inner().unwrap().expect("every index is computed")) // lint:allow(panic) — the scoped-thread join above guarantees every slot was filled exactly once
        .collect()
}

/// The aggregated results of a campaign, in grid order.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignResult {
    /// One entry per cell, in the campaign's grid order.
    pub cells: Vec<CellResult>,
}

impl CampaignResult {
    /// The cell for a given workload/tool pair, if present.
    pub fn cell(&self, workload: &str, tool: &str) -> Option<&CellResult> {
        self.cells
            .iter()
            .find(|c| c.workload == workload && c.tool == tool)
    }

    /// Runtime of `workload` under `tool` normalized to its native run on
    /// the *same topology* (a `laser@2s` cell normalizes against
    /// `native@2s`); `None` unless both cells completed and the campaign
    /// included the native tool there.
    pub fn normalized(&self, workload: &str, tool: &str) -> Option<f64> {
        let tool_cycles = self.cell(workload, tool)?.outcome.as_ref().ok()?.cycles;
        let native_key = match tool.rsplit_once('@') {
            Some((_, topo)) => format!("native@{topo}"),
            None => "native".to_string(),
        };
        let native_cycles = self
            .cell(workload, &native_key)?
            .outcome
            .as_ref()
            .ok()?
            .cycles;
        Some(tool_cycles as f64 / native_cycles.max(1) as f64)
    }

    /// Render the whole grid as a stable text table. Byte-identical for
    /// identical campaigns regardless of how many threads computed them.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "Campaign: {:<20} {:<16} {:>14} {:>8} {:>7}  reported",
            "workload", "tool", "cycles", "norm", "repair"
        );
        for c in &self.cells {
            match &c.outcome {
                Ok(run) => {
                    let norm = self
                        .normalized(&c.workload, &c.tool)
                        .map(|n| format!("{n:.3}"))
                        .unwrap_or_else(|| "-".to_string());
                    let _ = writeln!(
                        out,
                        "          {:<20} {:<16} {:>14} {:>8} {:>7}  {}",
                        c.workload,
                        c.tool,
                        run.cycles,
                        norm,
                        if run.repair_invoked { "yes" } else { "-" },
                        if run.reported.is_empty() {
                            "-".to_string()
                        } else {
                            run.reported_labels().join("; ")
                        }
                    );
                }
                Err(failure) => {
                    let _ = writeln!(
                        out,
                        "          {:<20} {:<16} {:>14} {:>8} {:>7}  {failure}",
                        c.workload, c.tool, "-", "-", "-"
                    );
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tool::{LaserTool, NativeTool};
    use laser_core::LaserConfig;
    use std::sync::atomic::AtomicUsize;

    fn small_campaign(threads: usize) -> Campaign {
        Campaign::new(
            registry(),
            vec![
                Box::new(NativeTool),
                Box::new(LaserTool::new(LaserConfig::detection_only())),
            ],
        )
        .with_workload_names(&["histogram'", "swaptions"])
        .unwrap()
        .with_options(BuildOptions::scaled(0.08))
        .with_threads(threads)
    }

    #[test]
    fn grid_is_workload_major_and_complete() {
        let result = small_campaign(2).run();
        assert_eq!(result.cells.len(), 4);
        assert_eq!(
            result
                .cells
                .iter()
                .map(|c| (c.workload.as_str(), c.tool.as_str()))
                .collect::<Vec<_>>(),
            vec![
                ("histogram'", "native"),
                ("histogram'", "laser-detect"),
                ("swaptions", "native"),
                ("swaptions", "laser-detect"),
            ]
        );
        assert!(result.cells.iter().all(|c| c.outcome.is_ok()));
    }

    #[test]
    fn normalized_overhead_is_sane() {
        let result = small_campaign(4).run();
        let norm = result.normalized("histogram'", "laser-detect").unwrap();
        assert!(
            norm >= 1.0,
            "tool run cannot beat native without repair: {norm}"
        );
        assert!(result.normalized("histogram'", "native").unwrap() == 1.0);
        assert!(result.normalized("histogram'", "no-such-tool").is_none());
    }

    #[test]
    fn thread_count_caps_do_not_drop_cells() {
        // More workers than cells must still fill the grid exactly once each.
        let result = small_campaign(64).run();
        assert_eq!(result.cells.len(), 4);
        assert!(result.cells.iter().all(|c| c.outcome.is_ok()));
    }

    #[test]
    fn unknown_workload_names_are_an_error() {
        let err = match Campaign::new(registry(), vec![Box::new(NativeTool)])
            .with_workload_names(&["histogram'", "histogramm"])
        {
            Err(e) => e,
            Ok(_) => panic!("typo'd workload name must not be silently dropped"),
        };
        assert_eq!(err, UnknownWorkload("histogramm".to_string()));
        assert!(err.to_string().contains("histogramm"));
    }

    #[test]
    fn progress_announces_every_cell_start_and_finish() {
        let campaign = small_campaign(3);
        let starts = Mutex::new(Vec::new());
        let finishes = Mutex::new(Vec::new());
        let result = campaign.run_with_progress(|p| match p {
            CampaignProgress::Started {
                index,
                total,
                workload,
                tool,
            } => {
                starts
                    .lock()
                    .unwrap()
                    .push((index, total, workload.to_string(), tool.to_string()))
            }
            CampaignProgress::Finished {
                done, total, cell, ..
            } => finishes.lock().unwrap().push((
                done,
                total,
                cell.workload.clone(),
                cell.tool.clone(),
            )),
        });
        let mut starts = starts.into_inner().unwrap();
        let mut finishes = finishes.into_inner().unwrap();
        let n = result.cells.len();
        assert_eq!(starts.len(), n);
        assert_eq!(finishes.len(), n);
        assert!(starts.iter().all(|(_, total, _, _)| *total == n));
        // Every cell index is started exactly once...
        starts.sort();
        assert_eq!(
            starts.iter().map(|(i, _, _, _)| *i).collect::<Vec<_>>(),
            (0..n).collect::<Vec<_>>()
        );
        // ...and every completion count 1..=n is announced exactly once.
        finishes.sort();
        assert_eq!(
            finishes.iter().map(|(d, _, _, _)| *d).collect::<Vec<_>>(),
            (1..=n).collect::<Vec<_>>()
        );
    }

    #[test]
    fn step_budget_marks_over_budget_cells_without_disturbing_the_rest() {
        // A budget that every cell blows through: each cell fails on its own,
        // the grid shape survives.
        let result = small_campaign(2)
            .with_cell_budget(CellBudget::steps(10))
            .run();
        assert_eq!(result.cells.len(), 4);
        for cell in &result.cells {
            assert_eq!(cell.status(), "budget-exceeded", "{cell:?}");
            assert!(matches!(
                &cell.outcome,
                Err(ToolFailure::BudgetExceeded { .. })
            ));
        }
        // An unlimited budget behaves exactly like no budget.
        let unlimited = small_campaign(2)
            .with_cell_budget(CellBudget::default())
            .run();
        assert_eq!(unlimited.cells, small_campaign(2).run().cells);
    }

    #[test]
    fn validate_workload_names_rejects_the_first_unknown_name() {
        let workloads = registry();
        assert_eq!(
            validate_workload_names(&["histogram'", "swaptions"], &workloads),
            Ok(())
        );
        assert_eq!(validate_workload_names(&[], &workloads), Ok(()));
        // `histogram` and `histogram'` are *both* real workloads (the
        // Phoenix original and its alternative-input variant) — neither is a
        // typo of the other, and both must validate.
        assert_eq!(
            validate_workload_names(&["histogram", "histogram'"], &workloads),
            Ok(())
        );
        assert_eq!(
            validate_workload_names(&["histogram'", "histogramm", "bogus"], &workloads),
            Err(UnknownWorkload("histogramm".to_string())),
            "the first unknown name is the one reported"
        );
        assert_eq!(
            validate_workload_names(&[""], &workloads),
            Err(UnknownWorkload(String::new())),
            "empty entries from a stray comma are unknown, not ignored"
        );
    }

    #[test]
    fn pipelined_campaign_is_byte_identical_to_inline() {
        let inline = small_campaign(2).run();
        let piped = small_campaign(2)
            .with_pipeline(PipelineConfig::pipelined())
            .run();
        assert_eq!(inline.cells, piped.cells);
        assert_eq!(inline.render(), piped.render());
    }

    #[test]
    fn budgeted_campaigns_stay_deterministic_across_thread_counts() {
        let budget = CellBudget::steps(200_000);
        let serial = small_campaign(1).with_cell_budget(budget).run();
        let parallel = small_campaign(8).with_cell_budget(budget).run();
        assert_eq!(serial.cells, parallel.cells);
        assert_eq!(serial.render(), parallel.render());
    }

    /// A tool that panics on one workload and works on the rest.
    struct PanickyTool;

    impl Tool for PanickyTool {
        fn name(&self) -> &str {
            "panicky"
        }

        fn run_observed_deployed(
            &self,
            spec: &WorkloadSpec,
            opts: &BuildOptions,
            deploy: &Deployment,
            observer: Box<dyn laser_core::Observer>,
        ) -> Result<ToolRun, ToolFailure> {
            if spec.name == "swaptions" {
                panic!("deliberate test panic on {}", spec.name);
            }
            NativeTool.run_observed_deployed(spec, opts, deploy, observer)
        }
    }

    #[test]
    fn a_panicking_cell_does_not_destroy_the_campaign() {
        let result = Campaign::new(registry(), vec![Box::new(PanickyTool)])
            .with_workload_names(&["histogram'", "swaptions", "kmeans"])
            .unwrap()
            .with_options(BuildOptions::scaled(0.06))
            .with_threads(2)
            .run();
        assert_eq!(result.cells.len(), 3);
        let bad = result.cell("swaptions", "panicky").unwrap();
        assert_eq!(
            bad.outcome,
            Err(ToolFailure::Panicked {
                message: "deliberate test panic on swaptions".to_string()
            })
        );
        assert_eq!(bad.status(), "panicked");
        // The other cells completed normally.
        assert!(result
            .cell("histogram'", "panicky")
            .unwrap()
            .outcome
            .is_ok());
        assert!(result.cell("kmeans", "panicky").unwrap().outcome.is_ok());
    }

    #[test]
    fn ordered_parallel_preserves_index_order() {
        let calls = AtomicUsize::new(0);
        let out = ordered_parallel(100, 8, |i| {
            calls.fetch_add(1, Ordering::Relaxed);
            i * 2
        });
        assert_eq!(calls.load(Ordering::Relaxed), 100);
        assert_eq!(out, (0..100).map(|i| i * 2).collect::<Vec<_>>());
        assert_eq!(ordered_parallel(0, 4, |i| i), Vec::<usize>::new());
    }
}
