//! Dominator and post-dominator analysis.
//!
//! LASERREPAIR places software-store-buffer flush operations so that they
//! *post-dominate* the instrumented basic blocks (Section 5.3), which
//! minimises the dynamic number of flushes (e.g. one flush at a loop exit
//! rather than one per iteration). This module implements the classic
//! iterative data-flow formulation of dominators; programs in this
//! reproduction have tens of blocks so the simple algorithm is plenty.

use std::collections::BTreeSet;

use crate::cfg::Cfg;
use crate::program::BlockId;

fn intersect_all(sets: &[BTreeSet<usize>], preds: &[usize], universe: usize) -> BTreeSet<usize> {
    let mut iter = preds.iter();
    let first = match iter.next() {
        Some(&p) => p,
        None => return (0..universe).collect(),
    };
    let mut acc = sets[first].clone();
    for &p in iter {
        acc = acc.intersection(&sets[p]).copied().collect();
    }
    acc
}

/// Dominator sets computed from a designated entry block.
///
/// Block `a` dominates `b` iff every path from the entry to `b` passes through
/// `a`. Every block dominates itself.
#[derive(Debug, Clone)]
pub struct Dominators {
    dom: Vec<BTreeSet<usize>>,
    entry: BlockId,
}

impl Dominators {
    /// Compute dominators of every block reachable from `entry`.
    pub fn compute(cfg: &Cfg, entry: BlockId) -> Self {
        let n = cfg.num_blocks();
        let universe: BTreeSet<usize> = (0..n).collect();
        let mut dom: Vec<BTreeSet<usize>> = vec![universe; n];
        dom[entry.0 as usize] = BTreeSet::from([entry.0 as usize]);
        let mut changed = true;
        while changed {
            changed = false;
            for b in 0..n {
                if b == entry.0 as usize {
                    continue;
                }
                let preds: Vec<usize> = cfg
                    .predecessors(BlockId(b as u32))
                    .iter()
                    .map(|p| p.0 as usize)
                    .collect();
                let mut new = intersect_all(&dom, &preds, n);
                new.insert(b);
                if new != dom[b] {
                    dom[b] = new;
                    changed = true;
                }
            }
        }
        Dominators { dom, entry }
    }

    /// The entry block used for this analysis.
    pub fn entry(&self) -> BlockId {
        self.entry
    }

    /// True if `a` dominates `b`.
    pub fn dominates(&self, a: BlockId, b: BlockId) -> bool {
        self.dom[b.0 as usize].contains(&(a.0 as usize))
    }

    /// All dominators of `b`.
    pub fn dominators_of(&self, b: BlockId) -> Vec<BlockId> {
        let mut v: Vec<BlockId> = self.dom[b.0 as usize]
            .iter()
            .map(|&i| BlockId(i as u32))
            .collect();
        v.sort();
        v
    }
}

/// Post-dominator sets, computed against a virtual exit node that every
/// `Halt` block flows into.
///
/// Block `a` post-dominates `b` iff every path from `b` to a thread exit
/// passes through `a`.
#[derive(Debug, Clone)]
pub struct PostDominators {
    // pdom[b] over indices 0..n (real blocks) plus n = virtual exit.
    pdom: Vec<BTreeSet<usize>>,
    n: usize,
}

impl PostDominators {
    /// Compute post-dominators for every block of the CFG.
    pub fn compute(cfg: &Cfg) -> Self {
        let n = cfg.num_blocks();
        let virtual_exit = n;
        // successors in the reverse problem = CFG successors, with Halt blocks
        // additionally flowing to the virtual exit.
        let exit_set: BTreeSet<usize> = cfg.exit_blocks().iter().map(|b| b.0 as usize).collect();
        let universe: BTreeSet<usize> = (0..=n).collect();
        let mut pdom: Vec<BTreeSet<usize>> = vec![universe; n + 1];
        pdom[virtual_exit] = BTreeSet::from([virtual_exit]);
        let mut changed = true;
        while changed {
            changed = false;
            for b in 0..n {
                let mut succs: Vec<usize> = cfg
                    .successors(BlockId(b as u32))
                    .iter()
                    .map(|s| s.0 as usize)
                    .collect();
                if exit_set.contains(&b) {
                    succs.push(virtual_exit);
                }
                let mut new = intersect_all(&pdom, &succs, n + 1);
                new.insert(b);
                if new != pdom[b] {
                    pdom[b] = new;
                    changed = true;
                }
            }
        }
        PostDominators { pdom, n }
    }

    /// True if `a` post-dominates `b`.
    pub fn post_dominates(&self, a: BlockId, b: BlockId) -> bool {
        self.pdom[b.0 as usize].contains(&(a.0 as usize))
    }

    /// Blocks that post-dominate **all** of `blocks` (excluding the virtual
    /// exit). This is the candidate set for flush placement.
    pub fn common_post_dominators(&self, blocks: &[BlockId]) -> Vec<BlockId> {
        if blocks.is_empty() {
            return Vec::new();
        }
        let mut acc = self.pdom[blocks[0].0 as usize].clone();
        for b in &blocks[1..] {
            acc = acc
                .intersection(&self.pdom[b.0 as usize])
                .copied()
                .collect();
        }
        let mut v: Vec<BlockId> = acc
            .into_iter()
            .filter(|&i| i < self.n)
            .map(|i| BlockId(i as u32))
            .collect();
        v.sort();
        v
    }

    /// Among `candidates`, pick the post-dominator "closest" to the given
    /// blocks: the candidate that is post-dominated by every other candidate.
    /// Returns `None` if `candidates` is empty.
    pub fn nearest(&self, candidates: &[BlockId]) -> Option<BlockId> {
        candidates
            .iter()
            .copied()
            .find(|&c| {
                candidates
                    .iter()
                    .all(|&other| self.post_dominates(other, c))
            })
            .or_else(|| candidates.first().copied())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::inst::Reg;
    use crate::program::Program;

    /// Diamond: entry -> {left, right} -> join -> exit(halt)
    fn diamond() -> (Program, BlockId, BlockId, BlockId, BlockId, BlockId) {
        let mut b = ProgramBuilder::new("diamond");
        let entry = b.block("entry");
        let left = b.block("left");
        let right = b.block("right");
        let join = b.block("join");
        let exit = b.block("exit");
        b.switch_to(entry);
        b.cmp_eq(Reg(1), Reg(0), 0u64.into());
        b.branch(Reg(1), left, right);
        b.switch_to(left);
        b.nop();
        b.jump(join);
        b.switch_to(right);
        b.nop();
        b.jump(join);
        b.switch_to(join);
        b.nop();
        b.jump(exit);
        b.switch_to(exit);
        b.halt();
        (b.finish(), entry, left, right, join, exit)
    }

    #[test]
    fn dominators_of_diamond() {
        let (p, entry, left, right, join, exit) = diamond();
        let cfg = Cfg::build(&p);
        let dom = Dominators::compute(&cfg, entry);
        assert!(dom.dominates(entry, exit));
        assert!(dom.dominates(entry, left));
        assert!(dom.dominates(join, exit));
        assert!(!dom.dominates(left, join));
        assert!(!dom.dominates(right, join));
        assert!(dom.dominates(join, join));
        assert_eq!(dom.entry(), entry);
        assert!(dom.dominators_of(exit).contains(&entry));
    }

    #[test]
    fn post_dominators_of_diamond() {
        let (p, entry, left, right, join, exit) = diamond();
        let cfg = Cfg::build(&p);
        let pdom = PostDominators::compute(&cfg);
        assert!(pdom.post_dominates(join, entry));
        assert!(pdom.post_dominates(join, left));
        assert!(pdom.post_dominates(exit, entry));
        assert!(!pdom.post_dominates(left, entry));
        assert!(!pdom.post_dominates(right, entry));
        let common = pdom.common_post_dominators(&[left, right]);
        assert!(common.contains(&join));
        assert!(common.contains(&exit));
        assert!(!common.contains(&left));
        assert_eq!(pdom.nearest(&common), Some(join));
    }

    #[test]
    fn loop_flush_point_is_exit_block() {
        // entry -> head; head -> {body, after}; body -> head; after: halt
        // The nearest common post-dominator of {body} that is outside the loop
        // is `after`, mirroring the paper's Figure 7 (flush at loop exit).
        let mut b = ProgramBuilder::new("loop");
        let entry = b.block("entry");
        let head = b.block("head");
        let body = b.block("body");
        let after = b.block("after");
        b.switch_to(entry);
        b.movi(Reg(1), 0);
        b.jump(head);
        b.switch_to(head);
        b.cmp_lt(Reg(2), Reg(1), 100u64.into());
        b.branch(Reg(2), body, after);
        b.switch_to(body);
        b.addi(Reg(1), Reg(1), 1);
        b.jump(head);
        b.switch_to(after);
        b.halt();
        let p = b.finish();
        let cfg = Cfg::build(&p);
        let pdom = PostDominators::compute(&cfg);
        let common = pdom.common_post_dominators(&[body]);
        // body is trivially its own post-dominator; but `after` must also be
        // in the set and is the right place for a flush outside the loop.
        assert!(common.contains(&after));
        assert!(pdom.post_dominates(after, entry));
        assert!(pdom.post_dominates(after, head));
    }

    #[test]
    fn empty_candidates_have_no_nearest() {
        let (p, ..) = diamond();
        let cfg = Cfg::build(&p);
        let pdom = PostDominators::compute(&cfg);
        assert!(pdom.nearest(&[]).is_none());
        assert!(pdom.common_post_dominators(&[]).is_empty());
    }
}
