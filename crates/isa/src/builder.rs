//! An ergonomic builder for constructing [`Program`]s.
//!
//! The synthetic workloads in `laser-workloads` use this builder to express
//! the kernels of Phoenix / Parsec / Splash2x benchmarks. The builder tracks a
//! "current source location" so that consecutive instructions can share a
//! source line, exactly as compiled code does.

use crate::inst::{AluOp, CmpOp, Inst, MemAddr, Operand, Reg, RmwOp, Terminator};
use crate::program::{BasicBlock, BlockId, Pc, Program, SourceLoc};

/// Default base PC for application code (mirrors the traditional ELF text
/// segment base).
pub const DEFAULT_BASE_PC: Pc = 0x0040_0000;

struct PendingBlock {
    label: String,
    insts: Vec<Inst>,
    srcs: Vec<Option<SourceLoc>>,
    term: Option<Terminator>,
    term_src: Option<SourceLoc>,
}

/// Incrementally builds a [`Program`].
///
/// Blocks are declared up front with [`ProgramBuilder::block`] (so forward
/// branches can reference them), filled in with instruction-emitting methods
/// after [`ProgramBuilder::switch_to`], and sealed with a terminator
/// ([`jump`](ProgramBuilder::jump), [`branch`](ProgramBuilder::branch) or
/// [`halt`](ProgramBuilder::halt)).
///
/// # Example
///
/// ```
/// use laser_isa::builder::ProgramBuilder;
/// use laser_isa::inst::{Operand, Reg};
///
/// // for (r1 = 0; r1 < 10; r1++) { *r0 += 1 }
/// let mut b = ProgramBuilder::new("loop");
/// let head = b.block("head");
/// let body = b.block("body");
/// let exit = b.block("exit");
/// b.switch_to(head);
/// b.movi(Reg(1), 0);
/// b.jump(body);
/// b.switch_to(body);
/// b.load(Reg(2), Reg(0), 0, 8);
/// b.addi(Reg(2), Reg(2), 1);
/// b.store(Operand::Reg(Reg(2)), Reg(0), 0, 8);
/// b.addi(Reg(1), Reg(1), 1);
/// b.cmp_lt(Reg(3), Reg(1), Operand::Imm(10));
/// b.branch(Reg(3), body, exit);
/// b.switch_to(exit);
/// b.halt();
/// let p = b.finish();
/// assert!(p.num_insts() > 7);
/// ```
pub struct ProgramBuilder {
    name: String,
    base_pc: Pc,
    blocks: Vec<PendingBlock>,
    current: Option<usize>,
    current_src: Option<SourceLoc>,
}

impl ProgramBuilder {
    /// Start building a program called `name` at the default base PC.
    pub fn new(name: impl Into<String>) -> Self {
        ProgramBuilder {
            name: name.into(),
            base_pc: DEFAULT_BASE_PC,
            blocks: Vec::new(),
            current: None,
            current_src: None,
        }
    }

    /// Override the base PC of the program's code region.
    pub fn with_base_pc(mut self, base_pc: Pc) -> Self {
        self.base_pc = base_pc;
        self
    }

    /// Set the source location attached to subsequently emitted instructions.
    pub fn source(&mut self, file: &str, line: u32) -> &mut Self {
        self.current_src = Some(SourceLoc::new(file, line));
        self
    }

    /// Declare a new basic block and return its id. The block can be filled in
    /// later; declaring before use allows forward branches.
    pub fn block(&mut self, label: &str) -> BlockId {
        let id = BlockId(self.blocks.len() as u32);
        self.blocks.push(PendingBlock {
            label: label.to_string(),
            insts: Vec::new(),
            srcs: Vec::new(),
            term: None,
            term_src: None,
        });
        id
    }

    /// Make `block` the target of subsequent instruction-emitting calls.
    ///
    /// # Panics
    /// Panics if the block id was not created by this builder.
    pub fn switch_to(&mut self, block: BlockId) {
        assert!(
            (block.0 as usize) < self.blocks.len(),
            "block {block} does not belong to this builder"
        );
        self.current = Some(block.0 as usize);
    }

    /// The block currently being filled.
    pub fn current_block(&self) -> Option<BlockId> {
        self.current.map(|i| BlockId(i as u32))
    }

    fn cur(&mut self) -> &mut PendingBlock {
        let idx = self
            .current
            .expect("switch_to must be called before emitting instructions"); // lint:allow(panic) — builder misuse is a workload-definition bug; fail fast at build time
        &mut self.blocks[idx]
    }

    /// Emit a raw instruction.
    pub fn emit(&mut self, inst: Inst) -> &mut Self {
        let src = self.current_src.clone();
        let b = self.cur();
        assert!(b.term.is_none(), "cannot emit into a sealed block");
        b.insts.push(inst);
        b.srcs.push(src);
        self
    }

    // --- memory ---

    /// `dst = load size bytes from [base + offset]`.
    pub fn load(&mut self, dst: Reg, base: Reg, offset: i64, size: u8) -> &mut Self {
        self.emit(Inst::Load {
            dst,
            addr: MemAddr::base_offset(base, offset),
            size,
        })
    }

    /// `dst = load size bytes from addr`.
    pub fn load_addr(&mut self, dst: Reg, addr: MemAddr, size: u8) -> &mut Self {
        self.emit(Inst::Load { dst, addr, size })
    }

    /// `store size bytes of src to [base + offset]`.
    pub fn store(&mut self, src: Operand, base: Reg, offset: i64, size: u8) -> &mut Self {
        self.emit(Inst::Store {
            src,
            addr: MemAddr::base_offset(base, offset),
            size,
        })
    }

    /// `store size bytes of src to addr`.
    pub fn store_addr(&mut self, src: Operand, addr: MemAddr, size: u8) -> &mut Self {
        self.emit(Inst::Store { src, addr, size })
    }

    /// Atomic fetch-and-add of `operand` to `[base + offset]`; old value in `dst`.
    pub fn atomic_fetch_add(
        &mut self,
        dst: Reg,
        base: Reg,
        offset: i64,
        operand: Operand,
        size: u8,
    ) -> &mut Self {
        self.emit(Inst::AtomicRmw {
            op: RmwOp::FetchAdd,
            dst,
            addr: MemAddr::base_offset(base, offset),
            operand,
            expected: None,
            size,
        })
    }

    /// Atomic exchange of `operand` with `[base + offset]`; old value in `dst`.
    pub fn atomic_exchange(
        &mut self,
        dst: Reg,
        base: Reg,
        offset: i64,
        operand: Operand,
        size: u8,
    ) -> &mut Self {
        self.emit(Inst::AtomicRmw {
            op: RmwOp::Exchange,
            dst,
            addr: MemAddr::base_offset(base, offset),
            operand,
            expected: None,
            size,
        })
    }

    /// Atomic compare-and-swap: if `[base + offset] == expected` store
    /// `operand`; old value in `dst`.
    pub fn atomic_cas(
        &mut self,
        dst: Reg,
        base: Reg,
        offset: i64,
        expected: Operand,
        operand: Operand,
        size: u8,
    ) -> &mut Self {
        self.emit(Inst::AtomicRmw {
            op: RmwOp::CompareExchange,
            dst,
            addr: MemAddr::base_offset(base, offset),
            operand,
            expected: Some(expected),
            size,
        })
    }

    /// Non-atomic memory-destination add (`add [base + offset], operand`),
    /// the shape compilers emit for shared-counter increments.
    pub fn mem_add(&mut self, base: Reg, offset: i64, operand: Operand, size: u8) -> &mut Self {
        self.mem_rmw(AluOp::Add, base, offset, operand, size)
    }

    /// Non-atomic memory-destination read-modify-write with an arbitrary ALU
    /// operation.
    pub fn mem_rmw(
        &mut self,
        op: AluOp,
        base: Reg,
        offset: i64,
        operand: Operand,
        size: u8,
    ) -> &mut Self {
        self.emit(Inst::MemRmw {
            op,
            addr: MemAddr::base_offset(base, offset),
            operand,
            size,
        })
    }

    /// A full memory fence.
    pub fn fence(&mut self) -> &mut Self {
        self.emit(Inst::Fence)
    }

    /// A spin-loop `pause` hint.
    pub fn pause(&mut self) -> &mut Self {
        self.emit(Inst::Pause)
    }

    /// A no-op (compute filler).
    pub fn nop(&mut self) -> &mut Self {
        self.emit(Inst::Nop)
    }

    /// Emit `n` no-ops. The Section 3.1 characterization tests vary loop-body
    /// length with this.
    pub fn nops(&mut self, n: usize) -> &mut Self {
        for _ in 0..n {
            self.nop();
        }
        self
    }

    // --- register ops ---

    /// `dst = src` (register or immediate).
    pub fn mov(&mut self, dst: Reg, src: Operand) -> &mut Self {
        self.emit(Inst::Mov { dst, src })
    }

    /// `dst = imm`.
    pub fn movi(&mut self, dst: Reg, imm: u64) -> &mut Self {
        self.mov(dst, Operand::Imm(imm))
    }

    /// `dst = op(lhs, rhs)`.
    pub fn alu(&mut self, op: AluOp, dst: Reg, lhs: Reg, rhs: Operand) -> &mut Self {
        self.emit(Inst::Alu { op, dst, lhs, rhs })
    }

    /// `dst = lhs + rhs`.
    pub fn add(&mut self, dst: Reg, lhs: Reg, rhs: Operand) -> &mut Self {
        self.alu(AluOp::Add, dst, lhs, rhs)
    }

    /// `dst = lhs + imm`.
    pub fn addi(&mut self, dst: Reg, lhs: Reg, imm: u64) -> &mut Self {
        self.add(dst, lhs, Operand::Imm(imm))
    }

    /// `dst = lhs - rhs`.
    pub fn sub(&mut self, dst: Reg, lhs: Reg, rhs: Operand) -> &mut Self {
        self.alu(AluOp::Sub, dst, lhs, rhs)
    }

    /// `dst = lhs * rhs`.
    pub fn mul(&mut self, dst: Reg, lhs: Reg, rhs: Operand) -> &mut Self {
        self.alu(AluOp::Mul, dst, lhs, rhs)
    }

    /// `dst = cmp(lhs, rhs)`.
    pub fn cmp(&mut self, op: CmpOp, dst: Reg, lhs: Reg, rhs: Operand) -> &mut Self {
        self.emit(Inst::Cmp { op, dst, lhs, rhs })
    }

    /// `dst = lhs < rhs`.
    pub fn cmp_lt(&mut self, dst: Reg, lhs: Reg, rhs: Operand) -> &mut Self {
        self.cmp(CmpOp::Lt, dst, lhs, rhs)
    }

    /// `dst = lhs == rhs`.
    pub fn cmp_eq(&mut self, dst: Reg, lhs: Reg, rhs: Operand) -> &mut Self {
        self.cmp(CmpOp::Eq, dst, lhs, rhs)
    }

    /// `dst = lhs != rhs`.
    pub fn cmp_ne(&mut self, dst: Reg, lhs: Reg, rhs: Operand) -> &mut Self {
        self.cmp(CmpOp::Ne, dst, lhs, rhs)
    }

    // --- terminators ---

    fn seal(&mut self, term: Terminator) {
        let src = self.current_src.clone();
        let b = self.cur();
        assert!(b.term.is_none(), "block already sealed");
        b.term = Some(term);
        b.term_src = src;
    }

    /// Seal the current block with an unconditional jump.
    pub fn jump(&mut self, target: BlockId) {
        self.seal(Terminator::Jump(target));
    }

    /// Seal the current block with a conditional branch on `cond != 0`.
    pub fn branch(&mut self, cond: Reg, if_true: BlockId, if_false: BlockId) {
        self.seal(Terminator::Branch {
            cond,
            if_true,
            if_false,
        });
    }

    /// Seal the current block by halting the thread.
    pub fn halt(&mut self) {
        self.seal(Terminator::Halt);
    }

    /// Finish building and produce the immutable [`Program`].
    ///
    /// # Panics
    /// Panics if any declared block was left without a terminator.
    pub fn finish(self) -> Program {
        let mut blocks = Vec::with_capacity(self.blocks.len());
        let mut srcs = Vec::with_capacity(self.blocks.len());
        for (i, pending) in self.blocks.into_iter().enumerate() {
            let term = pending
                .term
                .unwrap_or_else(|| panic!("block '{}' was never sealed", pending.label)); // lint:allow(panic) — builder misuse is a workload-definition bug; fail fast at build time
            let mut block_srcs = pending.srcs;
            block_srcs.push(pending.term_src);
            blocks.push(BasicBlock {
                id: BlockId(i as u32),
                label: pending.label,
                insts: pending.insts,
                term,
            });
            srcs.push(block_srcs);
        }
        assert!(
            !blocks.is_empty(),
            "a program must contain at least one block"
        );
        Program::from_parts(self.name, blocks, self.base_pc, srcs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::Inst;

    #[test]
    fn builds_blocks_in_declaration_order() {
        let mut b = ProgramBuilder::new("order");
        let first = b.block("first");
        let second = b.block("second");
        b.switch_to(second);
        b.halt();
        b.switch_to(first);
        b.nop();
        b.jump(second);
        let p = b.finish();
        assert_eq!(p.blocks().len(), 2);
        assert_eq!(p.blocks()[0].label, "first");
        assert_eq!(p.blocks()[1].label, "second");
        assert_eq!(p.block_by_label("second"), Some(second));
        assert_eq!(p.block_by_label("first"), Some(first));
    }

    #[test]
    #[should_panic(expected = "never sealed")]
    fn unsealed_block_panics() {
        let mut b = ProgramBuilder::new("bad");
        let blk = b.block("open");
        b.switch_to(blk);
        b.nop();
        let _ = b.finish();
    }

    #[test]
    #[should_panic(expected = "already sealed")]
    fn double_seal_panics() {
        let mut b = ProgramBuilder::new("bad");
        let blk = b.block("b");
        b.switch_to(blk);
        b.halt();
        b.halt();
    }

    #[test]
    fn source_attaches_to_following_instructions() {
        let mut b = ProgramBuilder::new("src");
        let blk = b.block("b");
        b.switch_to(blk);
        b.source("f.c", 7);
        b.nop();
        b.source("f.c", 9);
        b.nop();
        b.halt();
        let p = b.finish();
        let pc0 = p.block_entry_pc(blk);
        assert_eq!(p.source_of(pc0).unwrap().line, 7);
        assert_eq!(p.source_of(pc0 + 4).unwrap().line, 9);
        // terminator inherits line 9
        assert_eq!(p.source_of(pc0 + 8).unwrap().line, 9);
    }

    #[test]
    fn custom_base_pc() {
        let mut b = ProgramBuilder::new("base").with_base_pc(0x1000);
        let blk = b.block("b");
        b.switch_to(blk);
        b.halt();
        let p = b.finish();
        assert_eq!(p.base_pc(), 0x1000);
    }

    #[test]
    fn atomic_helpers_emit_rmw() {
        let mut b = ProgramBuilder::new("atomics");
        let blk = b.block("b");
        b.switch_to(blk);
        b.atomic_fetch_add(Reg(1), Reg(0), 0, Operand::Imm(1), 8);
        b.atomic_exchange(Reg(2), Reg(0), 8, Operand::Imm(1), 4);
        b.atomic_cas(Reg(3), Reg(0), 16, Operand::Imm(0), Operand::Imm(1), 8);
        b.halt();
        let p = b.finish();
        let insts: Vec<_> = p.blocks()[0].insts.iter().collect();
        assert_eq!(insts.len(), 3);
        assert!(insts.iter().all(|i| matches!(i, Inst::AtomicRmw { .. })));
    }

    #[test]
    fn nops_emits_requested_count() {
        let mut b = ProgramBuilder::new("nops");
        let blk = b.block("b");
        b.switch_to(blk);
        b.nops(17);
        b.halt();
        let p = b.finish();
        assert_eq!(p.blocks()[0].insts.len(), 17);
    }
}
