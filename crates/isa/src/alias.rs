//! Simplified speculative alias analysis (paper Section 5.3).
//!
//! To reduce the number of loads that must consult the software store buffer,
//! LASERREPAIR "assumes loads using a register unused by any store do not
//! alias. Such loads do not require SSB modification. To validate this
//! speculation, an aliasing check is inserted between the def and use of each
//! load address". This module performs the static half of that analysis: it
//! partitions the loads of an instrumented region into those that must use the
//! SSB and those that may speculatively skip it (subject to a runtime check).

use std::collections::{BTreeMap, BTreeSet};

use crate::program::{BlockId, Pc, Program};
use crate::Reg;

/// Result of the speculative alias analysis over an instrumented region.
#[derive(Debug, Clone, Default)]
pub struct AliasSpeculation {
    /// Loads that may skip the SSB, pending a runtime aliasing check.
    pub speculative_loads: BTreeSet<Pc>,
    /// Loads that must always go through the SSB.
    pub ssb_loads: BTreeSet<Pc>,
    /// Base registers used by stores in the region; a runtime check compares a
    /// speculative load's address against addresses formed from these.
    pub store_base_regs: BTreeSet<Reg>,
    /// For each speculative load, the number of uses sharing its address
    /// definition (multiple uses of one def need only one check).
    pub checks_required: BTreeMap<Pc, usize>,
}

impl AliasSpeculation {
    /// Analyse the loads and stores of `region` (a set of basic blocks of
    /// `program`).
    ///
    /// A load is *speculative* (may skip the SSB) when its base register is
    /// not used as the base register of any store in the region; otherwise it
    /// must consult the SSB.
    pub fn analyze(program: &Program, region: &BTreeSet<BlockId>) -> Self {
        let mut store_base_regs: BTreeSet<Reg> = BTreeSet::new();
        // First pass: collect store address registers.
        for &bid in region {
            let block = program.block(bid);
            for inst in &block.insts {
                if inst.is_store() {
                    if let Some(addr) = inst.mem_addr() {
                        for r in addr.regs() {
                            store_base_regs.insert(r);
                        }
                    }
                }
            }
        }
        // Second pass: classify loads and count checks per base register def.
        let mut speculative_loads = BTreeSet::new();
        let mut ssb_loads = BTreeSet::new();
        let mut checks_required = BTreeMap::new();
        let mut uses_per_base: BTreeMap<(BlockId, Reg), usize> = BTreeMap::new();
        for &bid in region {
            let block = program.block(bid);
            for (i, inst) in block.insts.iter().enumerate() {
                if !inst.is_load() {
                    continue;
                }
                let pc = program.pc_of(bid, i);
                // RMWs always go through the SSB: they are also stores.
                if inst.is_store() {
                    ssb_loads.insert(pc);
                    continue;
                }
                let addr = inst.mem_addr().expect("loads have addresses"); // lint:allow(panic) — guarded by is_load() just above; every load carries an address
                let aliases_store = addr.regs().iter().any(|r| store_base_regs.contains(r));
                if aliases_store {
                    ssb_loads.insert(pc);
                } else {
                    speculative_loads.insert(pc);
                    let key = (bid, addr.base);
                    *uses_per_base.entry(key).or_insert(0) += 1;
                }
            }
        }
        // Multiple uses of the same def require only one check: attribute the
        // check count to each speculative load for cost accounting.
        for &bid in region {
            let block = program.block(bid);
            for (i, inst) in block.insts.iter().enumerate() {
                if !inst.is_load() || inst.is_store() {
                    continue;
                }
                let pc = program.pc_of(bid, i);
                if !speculative_loads.contains(&pc) {
                    continue;
                }
                let addr = inst.mem_addr().expect("loads have addresses"); // lint:allow(panic) — guarded by is_load() just above; every load carries an address
                let uses = uses_per_base.get(&(bid, addr.base)).copied().unwrap_or(1);
                checks_required.insert(pc, usize::max(1, uses));
            }
        }
        AliasSpeculation {
            speculative_loads,
            ssb_loads,
            store_base_regs,
            checks_required,
        }
    }

    /// Total number of runtime alias checks needed (one per distinct address
    /// definition, not per use).
    pub fn num_checks(&self) -> usize {
        // one check per (block, base reg) group == number of distinct values
        // in checks_required divided by uses; approximate as number of groups.
        let mut groups: BTreeSet<usize> = BTreeSet::new();
        let mut count = 0usize;
        for &uses in self.checks_required.values() {
            // Each group of `uses` loads contributes exactly one check; we
            // count 1/uses per load and sum.
            groups.insert(uses);
            count += 1;
        }
        // Conservative: if we cannot reconstruct exact grouping, assume one
        // check per speculative load with shared-def discounting applied by
        // the caller. Here: count distinct defs as ceil(sum over loads of
        // 1/uses).
        let mut acc = 0f64;
        for &uses in self.checks_required.values() {
            acc += 1.0 / uses as f64;
        }
        let exact = acc.round() as usize;
        if exact == 0 && count > 0 {
            1
        } else {
            exact
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::inst::{Operand, Reg};

    #[test]
    fn loads_with_store_base_regs_need_ssb() {
        let mut b = ProgramBuilder::new("alias");
        let blk = b.block("b");
        b.switch_to(blk);
        // store via r0; load via r0 (must SSB); load via r5 (speculative)
        b.store(Operand::Imm(1), Reg(0), 0, 8);
        b.load(Reg(1), Reg(0), 8, 8);
        b.load(Reg(2), Reg(5), 0, 8);
        b.load(Reg(3), Reg(5), 8, 8);
        b.halt();
        let p = b.finish();
        let region: BTreeSet<BlockId> = [blk].into_iter().collect();
        let spec = AliasSpeculation::analyze(&p, &region);
        let base = p.base_pc();
        assert!(spec.ssb_loads.contains(&(base + 4)));
        assert!(spec.speculative_loads.contains(&(base + 8)));
        assert!(spec.speculative_loads.contains(&(base + 12)));
        assert!(spec.store_base_regs.contains(&Reg(0)));
        assert!(!spec.store_base_regs.contains(&Reg(5)));
        // Two speculative loads sharing one def (r5): one check.
        assert_eq!(spec.num_checks(), 1);
    }

    #[test]
    fn rmw_loads_always_use_ssb() {
        let mut b = ProgramBuilder::new("alias-rmw");
        let blk = b.block("b");
        b.switch_to(blk);
        b.atomic_fetch_add(Reg(1), Reg(7), 0, Operand::Imm(1), 8);
        b.halt();
        let p = b.finish();
        let region: BTreeSet<BlockId> = [blk].into_iter().collect();
        let spec = AliasSpeculation::analyze(&p, &region);
        assert_eq!(spec.ssb_loads.len(), 1);
        assert!(spec.speculative_loads.is_empty());
    }

    #[test]
    fn empty_region_is_empty_result() {
        let mut b = ProgramBuilder::new("empty");
        let blk = b.block("b");
        b.switch_to(blk);
        b.halt();
        let p = b.finish();
        let _ = p;
        let spec = AliasSpeculation::analyze(&p, &BTreeSet::new());
        assert!(spec.speculative_loads.is_empty());
        assert!(spec.ssb_loads.is_empty());
        assert_eq!(spec.num_checks(), 0);
    }
}
